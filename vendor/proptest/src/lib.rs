//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! re-implements the subset of proptest the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`, range and tuple
//! strategies, `prop::collection::vec`, the [`proptest!`] macro
//! (including `#![proptest_config(..)]`), and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from upstream: cases are sampled from a deterministic
//! per-test RNG (seeded from the test name, so runs are reproducible)
//! and failing cases are **not shrunk** — the failure message reports
//! the case number instead. That trades debuggability for zero
//! dependencies; the assertions themselves are unchanged.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::Range;

/// Per-test deterministic random source.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed deterministically from a test name (FNV-1a over the bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// How a strategy produces values: one sample per test case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// Strategy combinators namespace (mirrors `proptest::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// `Vec` strategy: each case draws a length in `size`, then that
        /// many elements.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = if self.size.start >= self.size.end {
                    self.size.start
                } else {
                    rng.gen_range(self.size.clone())
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Test-runner knobs (field subset of upstream `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
    /// Give up after this many `prop_assume!` rejections in total.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// An assertion failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// A failing-case error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    /// A rejected-case error.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { .. }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_inner {
    (($config:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut ran = 0u32;
                let mut case = 0u32;
                // cap total attempts so aggressive prop_assume! cannot spin forever
                while ran < config.cases && case < config.cases.saturating_add(config.max_global_rejects) {
                    case += 1;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    match outcome {
                        Ok(()) => ran += 1,
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property failed at case {case}: {msg}");
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // Bind first: negating `$cond` textually would trip lints on
        // the caller's expression (e.g. `neg_cmp_op_on_partial_ord`).
        let __prop_assert_holds: bool = $cond;
        if !__prop_assert_holds {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        let __prop_assert_holds: bool = $cond;
        if !__prop_assert_holds {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        let s = (0.0f64..1.0, 1u32..10);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn map_and_vec_compose() {
        let mut rng = crate::TestRng::deterministic("compose");
        let s = prop::collection::vec((0.5f64..10.0, 0.0f64..50.0), 1..8).prop_map(|v| v.len());
        for _ in 0..100 {
            let n = s.generate(&mut rng);
            assert!((1..8).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_and_asserts(x in 0.0f64..1.0, n in 1usize..5) {
            prop_assume!(n != 4);
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert_eq!(n, n);
            prop_assert_ne!(n, 4);
            if x < 0.0 {
                return Ok(()); // exercise the early-return form
            }
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        // No `#[test]` on the inner item: the attribute is rejected on
        // non-module-level functions, and this one is driven manually.
        proptest! {
            fn inner(x in 0.0f64..1.0) {
                prop_assert!(x < 0.0, "x was {x}");
            }
        }
        inner();
    }
}
