//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly instead of a `Result`. If a
//! thread panicked while holding the lock, the poison is cleared and
//! the lock is handed out anyway — matching parking_lot's semantics of
//! not propagating poisoning.

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        let mut m = m;
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: the lock is still usable
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
