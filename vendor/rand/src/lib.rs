//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the exact API subset the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen_range` / `gen_bool` over the range types that
//! appear in the generators and workload samplers.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fully
//! deterministic for a given seed, which is all the experiment harness
//! requires (it never asks for OS entropy). Streams do **not** match
//! upstream `rand`; every consumer in this workspace seeds explicitly
//! and only relies on determinism, not on specific values.

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seeding entry points (subset of upstream `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods for sampling typed values (subset of upstream
/// `rand::Rng`). Blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (`0 ≤ p ≤ 1`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to draw a uniform sample of `T` from an RNG.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "empty f64 range {}..{}",
            self.start,
            self.end
        );
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// Uniform integer in `[0, bound)` by rejection sampling (no modulo
/// bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "empty integer range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Zone is the largest multiple of `bound` that fits in u64.
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                let off = uniform_below(rng, span);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators (subset of upstream `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Statistically strong, tiny, and seedable from a single `u64`
    /// (expanded through SplitMix64 as the xoshiro authors recommend).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(
            same,
            (0..8)
                .map(|_| a.gen_range(0u64..u64::MAX))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-0.05f64..0.05);
            assert!((-0.05..0.05).contains(&x));
            let i = rng.gen_range(3u32..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(0usize..=4);
            assert!(j <= 4);
        }
        // degenerate inclusive range is fine
        assert_eq!(rng.gen_range(9usize..=9), 9);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac={frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn all_values_reachable_small_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
