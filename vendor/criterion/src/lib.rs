//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored
//! crate implements the API subset the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size` / `bench_with_input` / `finish`, [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Statistics are deliberately simple: each benchmark is warmed up,
//! then timed over `sample_size` samples of an adaptively chosen
//! iteration count; the mean, minimum, and maximum per-iteration times
//! are printed. There is no HTML report and no outlier analysis — the
//! numbers go to stdout (and are machine-readable enough for the
//! `BENCH_*.json` emitters in `fp-bench`).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    /// Target total measuring time per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement: Duration::from_millis(500),
        }
    }
}

/// One timing summary, per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Mean seconds per iteration.
    pub mean: f64,
    /// Fastest sample, seconds per iteration.
    pub min: f64,
    /// Slowest sample, seconds per iteration.
    pub max: f64,
    /// Iterations per sample.
    pub iters: u64,
}

impl Criterion {
    /// Override the number of samples taken per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.sample_size, self.measurement, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Benchmark a closure under `id` within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&full, n, self.criterion.measurement, &mut f);
        self
    }

    /// Benchmark a closure that receives `input` by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(
            &full,
            n,
            self.criterion.measurement,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Close the group (upstream writes reports here; we do nothing).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into [`BenchmarkId`] (mirrors upstream's blanket use of
/// strings or explicit ids).
pub trait IntoBenchmarkId {
    /// Convert.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, called `self.iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement: Duration,
    f: &mut F,
) -> Summary {
    // Warm-up & calibration: find an iteration count whose sample time
    // is measurable but keeps the whole benchmark near `measurement`.
    let mut iters = 1u64;
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let t = b.elapsed;
        if t >= Duration::from_millis(2) || iters >= 1 << 24 {
            break t.as_secs_f64() / iters as f64;
        }
        iters *= 4;
    };
    let budget = measurement.as_secs_f64() / sample_size as f64;
    let iters = ((budget / per_iter.max(1e-12)) as u64).clamp(1, 1 << 28);

    let mut times = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let max = times.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{name:<56} time: [{} {} {}]  ({} iters x {} samples)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        iters,
        sample_size
    );
    Summary {
        mean,
        min,
        max,
        iters,
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declare a benchmark group function, upstream-compatible.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark binary's `main`, upstream-compatible.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion {
            sample_size: 2,
            measurement: Duration::from_millis(4),
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1));
        });
        assert!(ran);
    }

    #[test]
    fn groups_compose_ids() {
        let mut c = Criterion {
            sample_size: 2,
            measurement: Duration::from_millis(4),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| black_box(7)));
        group.finish();
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(5e-9).contains("ns"));
        assert!(fmt_time(5e-6).contains("us"));
        assert!(fmt_time(5e-3).contains("ms"));
        assert!(fmt_time(5.0).contains('s'));
    }
}
