//! Offline stand-in for the `bytes` crate.
//!
//! Provides the [`Buf`] / [`BufMut`] cursor traits with the
//! little-endian accessors the CCAM page codecs use, implemented for
//! `&[u8]` (reading advances the slice) and `Vec<u8>` (writing
//! appends). Semantics match upstream for this subset, including
//! panicking on read underflow.

/// Sequential reader over a byte buffer. Every `get_*` consumes bytes
/// from the front; reading past the end panics, like upstream.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Consume `cnt` bytes without interpreting them.
    fn advance(&mut self, cnt: usize);

    /// Copy `dst.len()` bytes out and consume them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// `true` while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.len(),
            "advance past end of buffer: {cnt} > {}",
            self.len()
        );
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "read past end of buffer: need {}, have {}",
            dst.len(),
            self.len()
        );
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Sequential writer into a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u16_le(258);
        out.put_u32_le(70_000);
        out.put_u64_le(1 << 40);
        out.put_f64_le(-2.5);
        let mut r: &[u8] = &out;
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 8);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 258);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f64_le(), -2.5);
        assert!(!r.has_remaining());
    }

    #[test]
    fn advance_skips_bytes() {
        let data = [1u8, 2, 3, 4, 5];
        let mut r: &[u8] = &data;
        r.advance(3);
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.get_u8(), 4);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1u8];
        let _ = r.get_u32_le();
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut r: &[u8] = &[1u8];
        r.advance(2);
    }
}
