//! Disk-resident queries through CCAM.
//!
//! Run with `cargo run --release --example disk_network`.
//!
//! Stores the metro network in a 2048-byte-page file behind the
//! Connectivity-Clustered Access Method (§2.2), reopens it cold, runs
//! interval queries straight off disk, and compares buffer-pool
//! behaviour across page-placement policies — the storage half of the
//! paper's system.

use std::sync::Arc;

use ccam::{BlockStore, CcamStore, FileStore, PlacementPolicy, DEFAULT_PAGE_SIZE};
use fastest_paths::prelude::*;
use roadnet::generators::{suffolk_like, MetroConfig};
use roadnet::workload::sample_pairs;

fn main() {
    let net = suffolk_like(&MetroConfig::small(123)).expect("generator succeeds");
    println!("in-memory network:\n{}", roadnet::NetworkStats::of(&net));

    let dir = std::env::temp_dir().join(format!("fastest-paths-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    let mut report: Vec<(String, u64, u64)> = Vec::new();
    for (name, policy) in [
        (
            "ccam (connectivity-clustered)",
            PlacementPolicy::ConnectivityClustered,
        ),
        ("hilbert-packed", PlacementPolicy::HilbertPacked),
        ("random placement", PlacementPolicy::Random { seed: 1 }),
    ] {
        let path = dir.join(format!("{}.db", name.split_whitespace().next().unwrap()));
        let store: Arc<dyn BlockStore> =
            Arc::new(FileStore::create(&path, DEFAULT_PAGE_SIZE).expect("create store"));
        // build, then reopen cold with a tiny pool so placement matters
        CcamStore::build(&net, Arc::clone(&store), policy, 64).expect("build succeeds");
        let disk = CcamStore::open(store, 8).expect("reopen succeeds");

        let engine = Engine::new(&disk, EngineConfig::default());
        let pairs = sample_pairs(&net, 10, 1.0, 2.5, 5).expect("sampling succeeds");
        let before = disk.stats();
        for p in &pairs {
            let q = QuerySpec::new(
                p.source,
                p.target,
                Interval::of(hm(7, 0), hm(8, 0)),
                DayCategory::WORKDAY,
            );
            let ans = engine.all_fastest_paths(&q).expect("reachable");
            std::hint::black_box(ans);
        }
        let d = disk.stats().since(&before);
        report.push((name.to_string(), d.hits + d.misses, d.misses));
    }

    println!("10 allFP queries, 8-frame buffer pool, page size {DEFAULT_PAGE_SIZE}:");
    println!(
        "{:<32} {:>14} {:>12} {:>9}",
        "placement", "logical reads", "page faults", "hit %"
    );
    for (name, logical, faults) in &report {
        println!(
            "{name:<32} {logical:>14} {faults:>12} {:>8.1}%",
            100.0 * (logical - faults) as f64 / (*logical).max(1) as f64
        );
    }

    std::fs::remove_dir_all(&dir).ok();
    println!("\nSame answers, same logical reads — placement only changes how");
    println!("often a logical read misses the pool and touches the disk.");
}
