//! Quickstart: the paper's §4.3 running example, end to end.
//!
//! Run with `cargo run --example quickstart`.
//!
//! Builds the three-node network of Figure 2, poses the allFP query
//! "leaving s between 6:50 and 7:05, what are all the fastest paths to
//! e?" and prints the same answer the paper derives in §4.6.

use fastest_paths::prelude::*;

fn main() {
    let (net, ids) = fastest_paths::roadnet::examples::paper_running_example();
    println!(
        "network: {} nodes, {} directed edges",
        net.n_nodes(),
        net.n_edges()
    );

    let query = QuerySpec::new(
        ids.s,
        ids.e,
        Interval::of(hm(6, 50), hm(7, 5)),
        DayCategory::WORKDAY,
    );
    let engine = Engine::new(&net, EngineConfig::default());

    // --- singleFP -----------------------------------------------------------
    let single = engine
        .single_fastest_path(&query)
        .expect("e is reachable from s");
    println!(
        "\nsingleFP: travel {} when leaving within [{} - {}]",
        fmt_duration(single.travel_minutes),
        fmt_minutes(single.best_leaving.lo()),
        fmt_minutes(single.best_leaving.hi()),
    );
    let names: Vec<String> = single.path.nodes.iter().map(|n| n.to_string()).collect();
    println!("  path: {}", names.join(" -> "));

    // --- allFP --------------------------------------------------------------
    let all = engine
        .all_fastest_paths(&query)
        .expect("e is reachable from s");
    println!("\nallFP partitioning of [6:50 - 7:05]:");
    print!("{}", all.describe());

    println!(
        "search effort: {} paths expanded over {} distinct nodes",
        all.stats.expanded_paths, all.stats.expanded_nodes
    );

    // Sanity: this is exactly the paper's §4.6 answer.
    assert_eq!(all.partition.len(), 3);
    assert!((single.travel_minutes - 5.0).abs() < 1e-9);
}
