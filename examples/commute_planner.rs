//! Commute planner: allFP over a synthetic metro during morning rush.
//!
//! Run with `cargo run --release --example commute_planner`.
//!
//! Generates the Suffolk-like metro network (reduced scale for a quick
//! run), picks a suburb→downtown commute, and asks: "I can leave any
//! time between 6:30 and 9:30 — which route should I take when?" It
//! then shows what the boundary-node estimator (§5) buys in search
//! effort over the naive one.

use fastest_paths::prelude::*;
use roadnet::generators::{suffolk_like, MetroConfig};
use roadnet::workload::sample_pairs;

fn main() {
    let cfg = MetroConfig::small(2026);
    let net = suffolk_like(&cfg).expect("generator succeeds");
    println!("metro network:\n{}", roadnet::NetworkStats::of(&net));

    // A commute: suburb (far from center) to downtown (near center).
    let pair = sample_pairs(&net, 50, 1.8, 2.6, 7)
        .expect("sampling succeeds")
        .into_iter()
        .map(|p| {
            // prefer pairs heading toward the core
            let t = net.point(p.target).expect("valid node");
            (t.x.hypot(t.y), p)
        })
        .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"))
        .map(|(_, p)| p)
        .expect("at least one pair");
    println!(
        "commute: {} -> {} ({:.1} miles as the crow flies)",
        pair.source, pair.target, pair.euclidean
    );

    let query = QuerySpec::new(
        pair.source,
        pair.target,
        Interval::of(hm(6, 30), hm(9, 30)),
        DayCategory::WORKDAY,
    );

    // --- naive estimator ------------------------------------------------------
    let naive = Engine::for_network(&net, EngineConfig::default()).expect("estimator builds");
    let t0 = std::time::Instant::now();
    let ans = naive.all_fastest_paths(&query).expect("reachable");
    let naive_time = t0.elapsed();

    println!(
        "\nallFP over [6:30 - 9:30], {} distinct fastest paths:",
        ans.paths.len()
    );
    for (iv, idx) in &ans.partition {
        let p = &ans.paths[*idx];
        println!(
            "  leave [{} - {}]: {} hops, {} at the start of the window",
            fmt_minutes(iv.lo()),
            fmt_minutes(iv.hi()),
            p.n_edges(),
            fmt_duration(p.travel.eval(iv.lo())),
        );
    }
    println!(
        "\nnaiveLB:  {} paths expanded / {} nodes, {:?}",
        ans.stats.expanded_paths, ans.stats.expanded_nodes, naive_time
    );

    // --- boundary-node estimator ----------------------------------------------
    let boundary = Engine::for_network(
        &net,
        EngineConfig {
            estimator: EstimatorKind::Boundary { grid: 8 },
            ..Default::default()
        },
    )
    .expect("precomputation succeeds");
    let t0 = std::time::Instant::now();
    let ans_bd = boundary.all_fastest_paths(&query).expect("reachable");
    let bd_time = t0.elapsed();
    println!(
        "bdLB:     {} paths expanded / {} nodes, {:?} (same {} sub-intervals)",
        ans_bd.stats.expanded_paths,
        ans_bd.stats.expanded_nodes,
        bd_time,
        ans_bd.partition.len()
    );

    // What would you lose by ignoring traffic? Drive the non-rush route
    // at the worst rush instant.
    let border = &ans.lower_border;
    let worst_l = {
        // maximize border over the interval by sampling its pieces
        let mut best = (query.interval.lo(), 0.0f64);
        for p in border.pieces() {
            for l in [p.interval.lo(), p.interval.hi()] {
                let v = border.eval(l);
                if v > best.1 {
                    best = (l, v);
                }
            }
        }
        best.0
    };
    println!(
        "\nworst-case smart travel time during the window: {} (leaving {})",
        fmt_duration(border.eval(worst_l)),
        fmt_minutes(worst_l)
    );
}
