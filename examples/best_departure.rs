//! Best departure time: singleFP vs the Discrete Time model.
//!
//! Run with `cargo run --release --example best_departure`.
//!
//! A courier can leave any time in a two-hour evening window. singleFP
//! answers "when should I leave, and which way?" exactly, in one
//! search. The Discrete Time baseline answers the same question by
//! running one classic A\* per probed instant — the example shows how
//! its accuracy and cost scale with the probing step (the paper's
//! Figure 10 in miniature).

use allfp::baseline::discrete_time;
use allfp::NaiveLb;
use fastest_paths::prelude::*;
use roadnet::generators::{suffolk_like, MetroConfig};
use roadnet::workload::sample_pairs;

fn main() {
    let net = suffolk_like(&MetroConfig::small(99)).expect("generator succeeds");
    // A cross-town trip: both endpoints well outside downtown, on
    // opposite sides, so every reasonable route crosses the congested
    // core or detours around it.
    let pair = sample_pairs(&net, 200, 2.5, 3.8, 31)
        .expect("sampling succeeds")
        .into_iter()
        .filter(|p| {
            let s = net.point(p.source).expect("valid node");
            let t = net.point(p.target).expect("valid node");
            let (rs, rt) = (s.x.hypot(s.y), t.x.hypot(t.y));
            // opposite sides: the segment between them passes near 0
            rs > 1.2 && rt > 1.2 && (s.x * t.x + s.y * t.y) < 0.0
        })
        .max_by(|a, b| a.euclidean.partial_cmp(&b.euclidean).expect("finite"))
        .expect("network is large enough");
    // Morning rush slows inbound highways and Boston locals 7–10am.
    // The window deliberately ends just past 10am: the best departures
    // are the final few minutes, a plateau that coarse discretization
    // steps straight over.
    let window = Interval::of(hm(8, 10), hm(10, 7));
    println!(
        "courier run {} -> {} ({:.1} mi euclidean), may leave [{} - {}]",
        pair.source,
        pair.target,
        pair.euclidean,
        fmt_minutes(window.lo()),
        fmt_minutes(window.hi())
    );

    let query = QuerySpec::new(pair.source, pair.target, window, DayCategory::WORKDAY);
    let engine = Engine::new(&net, EngineConfig::default());

    let t0 = std::time::Instant::now();
    let exact = engine.single_fastest_path(&query).expect("reachable");
    let exact_elapsed = t0.elapsed();
    println!(
        "\nsingleFP (exact):  {} leaving [{} - {}]   ({} paths expanded, {:?})",
        fmt_duration(exact.travel_minutes),
        fmt_minutes(exact.best_leaving.lo()),
        fmt_minutes(exact.best_leaving.hi()),
        exact.stats.expanded_paths,
        exact_elapsed,
    );

    let lb = NaiveLb::new(net.max_speed());
    println!("\nDiscrete Time model at decreasing step sizes:");
    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>12}",
        "step", "travel", "vs exact", "queries", "time"
    );
    for step in [60.0, 10.0, 1.0, 1.0 / 6.0] {
        let t0 = std::time::Instant::now();
        let d = discrete_time(
            &net,
            query.source,
            query.target,
            &query.interval,
            step,
            query.category,
            &lb,
        )
        .expect("reachable");
        let elapsed = t0.elapsed();
        println!(
            "{:>10} {:>12} {:>11.3}x {:>10} {:>12?}",
            fmt_duration(step),
            fmt_duration(d.travel_minutes),
            d.travel_minutes / exact.travel_minutes,
            d.queries,
            elapsed,
        );
    }
    println!("\nThe discrete model can only approach the exact answer by paying");
    println!("one full search per probe; singleFP gets it exactly in one pass.");
}
