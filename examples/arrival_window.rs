//! Arrival-interval queries: "be at the office between 8:45 and 9:15".
//!
//! Run with `cargo run --release --example arrival_window`.
//!
//! The paper's problem statement allows "a leaving or arrival time
//! interval"; this example exercises the arrival side, answered
//! exactly by the time-mirroring reduction (see
//! `allfp::arrival`): which route to take — and when to leave — for
//! every admissible arrival instant.

use allfp::arrival::{ArrivalPlanner, ArrivalQuerySpec};
use fastest_paths::prelude::*;
use roadnet::generators::{suffolk_like, MetroConfig};
use roadnet::workload::commute_pairs;

fn main() {
    let net = suffolk_like(&MetroConfig::small(7)).expect("generator succeeds");
    // a morning commute into downtown
    let pair = commute_pairs(&net, 1, 1.5, 3.0, 1.0, 11)
        .expect("sampling succeeds")
        .pop()
        .expect("network is large enough");
    println!(
        "meeting at {} (downtown), coming from {} ({:.1} mi away)",
        pair.target, pair.source, pair.euclidean
    );

    let planner = ArrivalPlanner::new(&net, EngineConfig::default()).expect("planner builds");
    let q = ArrivalQuerySpec {
        source: pair.source,
        target: pair.target,
        arrival: Interval::of(hm(8, 45), hm(9, 15)),
        category: DayCategory::WORKDAY,
    };

    let ans = planner.all_fastest_paths(&q).expect("reachable");
    println!("\nfastest routes by arrival time (window 8:45 - 9:15):");
    for (iv, idx) in &ans.partition {
        let path = &ans.paths[*idx];
        let a = iv.mid();
        let t = path.travel.eval_clamped(a);
        println!(
            "  arrive [{} - {}]: {} hops; e.g. arrive {} by leaving {} ({})",
            fmt_minutes(iv.lo()),
            fmt_minutes(iv.hi()),
            path.n_edges(),
            fmt_minutes(a),
            fmt_minutes(a - t),
            fmt_duration(t),
        );
    }

    let single = planner.single_fastest_path(&q).expect("reachable");
    println!(
        "\ncheapest arrival overall: {} — leave {}, arrive [{} - {}]",
        fmt_duration(single.travel_minutes),
        fmt_minutes(single.departure),
        fmt_minutes(single.best_arrival.lo()),
        fmt_minutes(single.best_arrival.hi()),
    );
    println!(
        "(search: {} paths expanded on the time-mirrored network)",
        single.stats.expanded_paths
    );
}
