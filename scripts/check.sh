#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 suite (ROADMAP.md).
# Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

# The concurrency stress tests interleave differently depending on how
# many tests run at once; rerun them with the test-thread pinning
# removed so a developer's RUST_TEST_THREADS=1 cannot mask a race.
echo "==> concurrency stress (RUST_TEST_THREADS unpinned)"
env -u RUST_TEST_THREADS cargo test -q -p fp-allfp --test concurrency
env -u RUST_TEST_THREADS cargo test -q -p fp-ccam concurrent

# Fault tolerance end to end: seeded fault schedules under the live
# query stack, corruption detection, budget degradation, panic
# isolation. Unpinned for the same reason as the concurrency stress.
echo "==> fault-injection stress (RUST_TEST_THREADS unpinned)"
env -u RUST_TEST_THREADS cargo test -q -p fp-allfp --test faults

# Overload resilience: the seeded chaos scenario (2x overload + fault
# storm, virtual time) plus the service-behavior tests. The threaded
# serve test interleaves; unpinned like the other stress suites.
echo "==> overload-chaos stress (RUST_TEST_THREADS unpinned)"
env -u RUST_TEST_THREADS cargo test -q -p fp-allfp --test overload

# Live updates: the seeded update-storm chaos scenario (2x overload +
# budget-fault window + concurrent delta stream, every answer checked
# bit-for-bit against a from-scratch build of its pinned epoch), the
# delta/epoch property suite, and the hierarchy refresh suite
# (incremental refresh == from-scratch rebuild, live topologies stay
# exact under deltas). The bench smoke below additionally gates
# goodput-under-storm >= 0.5 and scoped invalidation < 20%.
echo "==> update-storm chaos + live-update proptests (RUST_TEST_THREADS unpinned)"
env -u RUST_TEST_THREADS cargo test -q -p fp-allfp --test update_storm
cargo test -q -p fp-allfp --release --test live_props
cargo test -q -p fp-hierarchy --release --test live_refresh

# Cluster serving: the deterministic sharded-fleet simulator. The
# chaos suite composes 2x overload with a node crash/restart, a
# partition storm, RPC latency spikes and live deltas, and asserts
# exact accounting, bit-exact replay, fired robustness machinery
# (retries, breakers, replica failovers) and goodput >= 0.5 under
# sustained node loss; the equivalence suite pins every cluster-served
# answer bit-identical to the flat single-node pipeline (and answer
# values to the hierarchy backend) on the same pinned epoch.
echo "==> cluster chaos + cross-partition equivalence"
cargo test -q -p fp-cluster --release --test cluster_chaos
cargo test -q -p fp-cluster --release --test cluster_equivalence

# Hierarchy exactness: the golden equivalence suite pins the
# contraction hierarchy's answers bit-for-bit to the flat engine's
# (routes, partitions, travel functions) under compressed, exact and
# parallel-build configurations, and the contraction property tests
# fuzz overlay soundness, parallel-vs-serial determinism across
# thread counts, and compressed-vs-exact answer identity on random
# networks.
echo "==> hierarchy equivalence (golden suite + contraction/determinism proptests)"
cargo test -q -p fp-allfp --release --test hierarchy_equivalence
cargo test -q -p fp-hierarchy --release --test contraction_props

# Piece-reduction admissibility: the bounded-error overlay storage is
# only sound if reduced functions stay one-sided lower bounds within
# the measured gap, pin both endpoints, keep FIFO, and reduce
# deterministically — fuzzed here.
echo "==> piece-reduction admissibility proptests"
cargo test -q -p fp-pwl --release --test reduce_props

# Allocation gates ride along with the batch smoke: the pooled PWL
# kernel loop must allocate exactly zero in steady state, and the
# whole engine must stay under the allocs-per-expansion budget (both
# measured by a counting global allocator inside fp-bench). The smoke
# also races the hierarchy against the flat engine, gating the >=10x
# singleFP expansion speedup (wall-clock twin on multi-core hosts
# only), the <=0.5x overlay byte footprint against the old
# materialized layout, and the
# >=1.5x 4-thread contraction speedup (multi-core hosts only).
# Continental-scale gates ride the same smoke: the metro-huge smoke
# tier (16 384 nodes) must bulk-build byte-identically at 1/2/4
# threads, keep the builder's transient scratch bounded under the
# graph bytes, and serve its fig9 workload through the mmap-backed
# store (store-equivalence across Mem/File/Mmap is pinned separately
# by the fp-allfp store_equivalence golden suite in tier 1). Runtime
# stays bounded: the million-node tier runs only under --report.
echo "==> batch-driver smoke (answers + scaling + checksum + allocation + overload + live-update + cluster + hierarchy + metro-huge gates)"
cargo bench -p fp-bench --bench engine_hotpath -- --smoke

echo "All checks passed."
