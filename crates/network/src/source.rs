//! Storage-independent network access.
//!
//! The query engine never assumes the network is in memory: the paper
//! stores it on disk behind CCAM (§2.2) and accesses it through
//! `FindNode` / `GetSuccessor` operations. [`NetworkSource`] is that
//! operation set; `fp-ccam` implements it over 2048-byte disk pages
//! with a buffer pool, and [`RoadNetwork`] implements it directly for
//! in-memory runs.

use traffic::CapeCodPattern;

use crate::{Edge, NodeId, PatternId, Point, Result, RoadNetwork};

/// Read access to a CapeCod network, independent of storage layout.
///
/// Implementations may perform I/O in `find_node` / `successors`
/// (CCAM reads pages through a buffer pool); callers should treat the
/// calls as potentially expensive and read each node once per
/// expansion, as `IntAllFastestPaths` does.
pub trait NetworkSource {
    /// Number of nodes in the network.
    fn n_nodes(&self) -> usize;

    /// Location of `node` (CCAM: `FindNode`).
    fn find_node(&self, node: NodeId) -> Result<Point>;

    /// Outgoing edges of `node` (CCAM: `GetSuccessor`).
    fn successors(&self, node: NodeId) -> Result<Vec<Edge>>;

    /// Fill `buf` with the outgoing edges of `node`, clearing it first.
    ///
    /// Hot loops (the allFP engine expands thousands of nodes per
    /// query) call this with a reused buffer to avoid a fresh `Vec`
    /// per expansion; implementations that can copy from an internal
    /// slice should override the default, which delegates to
    /// [`NetworkSource::successors`].
    fn successors_into(&self, node: NodeId, buf: &mut Vec<Edge>) -> Result<()> {
        buf.clear();
        buf.extend(self.successors(node)?);
        Ok(())
    }

    /// Speed pattern by id (pattern tables are small and cached in
    /// memory by every implementation).
    fn pattern(&self, id: PatternId) -> Result<&CapeCodPattern>;

    /// Maximum speed in the network, miles per minute.
    fn max_speed(&self) -> f64;

    /// Euclidean distance between two nodes, miles.
    fn euclidean(&self, a: NodeId, b: NodeId) -> Result<f64> {
        Ok(self.find_node(a)?.distance(&self.find_node(b)?))
    }
}

impl NetworkSource for RoadNetwork {
    fn n_nodes(&self) -> usize {
        RoadNetwork::n_nodes(self)
    }

    fn find_node(&self, node: NodeId) -> Result<Point> {
        self.point(node).copied()
    }

    fn successors(&self, node: NodeId) -> Result<Vec<Edge>> {
        Ok(self.neighbors(node)?.to_vec())
    }

    fn successors_into(&self, node: NodeId, buf: &mut Vec<Edge>) -> Result<()> {
        buf.clear();
        buf.extend_from_slice(self.neighbors(node)?);
        Ok(())
    }

    fn pattern(&self, id: PatternId) -> Result<&CapeCodPattern> {
        RoadNetwork::pattern(self, id)
    }

    fn max_speed(&self) -> f64 {
        RoadNetwork::max_speed(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::{PatternSchema, RoadClass};

    #[test]
    fn road_network_implements_source() {
        let schema = PatternSchema::table1().unwrap();
        let mut net = RoadNetwork::with_schema(&schema);
        let a = net.add_node(0.0, 0.0).unwrap();
        let b = net.add_node(1.0, 0.0).unwrap();
        net.add_bidirectional(a, b, 1.0, RoadClass::LocalOutside)
            .unwrap();

        let src: &dyn NetworkSource = &net;
        assert_eq!(src.n_nodes(), 2);
        assert_eq!(src.find_node(a).unwrap(), Point { x: 0.0, y: 0.0 });
        assert_eq!(src.successors(a).unwrap().len(), 1);
        assert!((src.euclidean(a, b).unwrap() - 1.0).abs() < 1e-12);
        assert!(src.pattern(PatternId(3)).is_ok());
        assert!(src.find_node(NodeId(9)).is_err());
    }
}
