//! Plain-text network interchange format.
//!
//! Lets users load real road data (e.g. a TIGER/Line extract they are
//! licensed to use) instead of the synthetic generators, and lets
//! experiments pin a generated network to disk for exact replay.
//!
//! Format (line-oriented, `#` comments, whitespace-separated):
//!
//! ```text
//! capecod-network v1
//! pattern <n_profiles> { <n_pieces> <start speed>... }...
//! node <x> <y>
//! edge <from> <to> <distance> <class 0..=3> <pattern>
//! ```
//!
//! Nodes and patterns are implicitly numbered in order of appearance.
//! Speeds are miles/minute, times minutes-of-day, distances miles —
//! the same units as the in-memory model.

use std::fmt::Write as _;
use std::path::Path;

use traffic::{CapeCodPattern, ProfilePiece, RoadClass, SpeedProfile};

use crate::{NetworkError, NodeId, PatternId, Result, RoadNetwork};

/// Serialize `net` to the text format.
pub fn to_string(net: &RoadNetwork) -> String {
    let mut out = String::new();
    out.push_str("capecod-network v1\n");
    for pat in net.patterns() {
        let _ = write!(out, "pattern {}", pat.n_categories());
        for c in 0..pat.n_categories() {
            let profile = pat
                .profile(traffic::DayCategory(c as u8))
                .expect("category < n_categories");
            let _ = write!(out, " {}", profile.pieces().len());
            for p in profile.pieces() {
                let _ = write!(out, " {} {}", p.start, p.speed);
            }
        }
        out.push('\n');
    }
    for n in net.node_ids() {
        let p = net.point(n).expect("valid id");
        let _ = writeln!(out, "node {} {}", p.x, p.y);
    }
    for n in net.node_ids() {
        for e in net.neighbors(n).expect("valid id") {
            let _ = writeln!(
                out,
                "edge {} {} {} {} {}",
                n.0,
                e.to.0,
                e.distance,
                e.class.index(),
                e.pattern.0
            );
        }
    }
    out
}

/// Parse the text format back into a network.
pub fn from_str(text: &str) -> Result<RoadNetwork> {
    fn parse_err(line_no: usize, msg: impl Into<String>) -> NetworkError {
        NetworkError::Parse {
            line: line_no,
            message: msg.into(),
        }
    }

    let mut lines = text.lines().enumerate();
    let header = lines
        .next()
        .map(|(_, l)| l.trim())
        .ok_or_else(|| parse_err(0, "empty input"))?;
    if header != "capecod-network v1" {
        return Err(parse_err(1, format!("bad header '{header}'")));
    }

    let mut net = RoadNetwork::empty();
    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tok = line.split_whitespace();
        let kind = tok.next().expect("non-empty line has a first token");
        let mut next_f64 = |what: &str| -> Result<f64> {
            tok.next()
                .ok_or_else(|| parse_err(line_no, format!("missing {what}")))?
                .parse::<f64>()
                .map_err(|e| parse_err(line_no, format!("bad {what}: {e}")))
        };
        match kind {
            "pattern" => {
                let n_profiles = next_f64("profile count")? as usize;
                let mut profiles = Vec::with_capacity(n_profiles);
                for _ in 0..n_profiles {
                    let n_pieces = next_f64("piece count")? as usize;
                    let mut pieces = Vec::with_capacity(n_pieces);
                    for _ in 0..n_pieces {
                        let start = next_f64("piece start")?;
                        let speed = next_f64("piece speed")?;
                        pieces.push(ProfilePiece { start, speed });
                    }
                    profiles.push(SpeedProfile::new(pieces)?);
                }
                net.add_pattern(CapeCodPattern::new(profiles)?);
            }
            "node" => {
                let x = next_f64("x")?;
                let y = next_f64("y")?;
                net.add_node(x, y)?;
            }
            "edge" => {
                let from = next_f64("from")? as u32;
                let to = next_f64("to")? as u32;
                let distance = next_f64("distance")?;
                let class_idx = next_f64("class")? as usize;
                let pattern = next_f64("pattern")? as u16;
                let class = RoadClass::from_index(class_idx)
                    .ok_or_else(|| parse_err(line_no, format!("bad class {class_idx}")))?;
                net.add_edge(
                    NodeId(from),
                    NodeId(to),
                    distance,
                    class,
                    PatternId(pattern),
                )?;
            }
            other => return Err(parse_err(line_no, format!("unknown record '{other}'"))),
        }
        if tok.next().is_some() {
            return Err(parse_err(line_no, "trailing tokens"));
        }
    }
    Ok(net)
}

/// Write `net` to `path`.
pub fn save(net: &RoadNetwork, path: &Path) -> Result<()> {
    std::fs::write(path, to_string(net)).map_err(|e| NetworkError::Parse {
        line: 0,
        message: format!("write failed: {e}"),
    })
}

/// Load a network from `path`.
pub fn load(path: &Path) -> Result<RoadNetwork> {
    let text = std::fs::read_to_string(path).map_err(|e| NetworkError::Parse {
        line: 0,
        message: format!("read failed: {e}"),
    })?;
    from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{suffolk_like, MetroConfig};
    use crate::NetworkStats;

    #[test]
    fn round_trips_the_running_example() {
        let (net, _) = crate::examples::paper_running_example();
        let text = to_string(&net);
        let back = from_str(&text).unwrap();
        assert_eq!(back.n_nodes(), net.n_nodes());
        assert_eq!(back.n_edges(), net.n_edges());
        assert_eq!(back.patterns(), net.patterns());
        for n in net.node_ids() {
            assert_eq!(back.point(n).unwrap(), net.point(n).unwrap());
            assert_eq!(back.neighbors(n).unwrap(), net.neighbors(n).unwrap());
        }
    }

    #[test]
    fn round_trips_a_metro() {
        let net = suffolk_like(&MetroConfig::small(5)).unwrap();
        let back = from_str(&to_string(&net)).unwrap();
        let a = NetworkStats::of(&net);
        let b = NetworkStats::of(&back);
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str("").is_err());
        assert!(from_str("wrong header").is_err());
        assert!(from_str("capecod-network v1\nfrobnicate 1 2").is_err());
        assert!(from_str("capecod-network v1\nnode 1").is_err()); // missing y
        assert!(from_str("capecod-network v1\nnode 0 0\nnode 1 0\nedge 0 1 1.0 9 0").is_err()); // bad class
        assert!(from_str("capecod-network v1\nnode 0 0 7").is_err()); // trailing
                                                                      // geometric invariant still enforced on load
        let short = "capecod-network v1\npattern 1 1 0 1\nnode 0 0\nnode 5 0\nedge 0 1 1.0 3 0";
        assert!(from_str(short).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ok() {
        let text = "capecod-network v1\n# a comment\n\npattern 1 1 0 1\nnode 0 0 # inline\nnode 1 0\nedge 0 1 1.0 3 0\n";
        let net = from_str(text).unwrap();
        assert_eq!(net.n_nodes(), 2);
        assert_eq!(net.n_edges(), 1);
    }

    #[test]
    fn file_round_trip() {
        let net = suffolk_like(&MetroConfig::small(2)).unwrap();
        let dir = std::env::temp_dir().join(format!("fp-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.txt");
        save(&net, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(NetworkStats::of(&net), NetworkStats::of(&back));
        std::fs::remove_dir_all(&dir).ok();
    }
}
