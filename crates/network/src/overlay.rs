//! Serialization hooks for contraction-hierarchy overlays.
//!
//! `fp-hierarchy` contracts a network into an overlay whose expensive
//! part is the *structure* — the node order and which shortcut arcs
//! exist, discovered through thousands of witness searches. The travel
//! functions themselves are cheap to rebuild deterministically (base
//! arcs from the network, shortcuts by re-composing their via pairs in
//! arc order). A [`HierarchySnapshot`] therefore stores only the
//! structure, making saved overlays small and exactly restorable: the
//! rebuilt functions are bit-identical because re-composition runs the
//! same kernels on the same inputs in the same order.
//!
//! **Format v2** additionally records how the overlay *stores* its
//! functions: the bounded-error band the build reduced them with
//! ([`OverlaySnapshot::compress_eps`], so a restore reproduces the
//! stored approximations bit for bit regardless of the restoring
//! configuration), and the per-arc scalar/band tables
//! ([`BandTable`]) — exact min/max, approximation gap, max slope and
//! time-bucketed min/max bands — so external consumers can read
//! admissible bounds without recomposing a single function. All float
//! payloads are stored as `u64` bit patterns: exact round-trips, `Eq`
//! on snapshots stays structural. v1 inputs still decode (no band
//! data, exact storage).
//!
//! The byte format is self-contained (no serde): magic `FPOV`, a
//! format version, length-prefixed sections, and a trailing FNV-1a
//! checksum over everything before it. Decoding validates structure
//! and checksum and never panics on corrupt input.

/// One arc's structural record: endpoints, the via pair for shortcuts,
/// and whether parallel-arc domination disabled it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotArc {
    /// Tail node index.
    pub from: u32,
    /// Head node index.
    pub to: u32,
    /// `Some((a, b))` when the arc is a shortcut composing stored arcs
    /// `a` then `b` (both indices precede this arc's own).
    pub via: Option<(u32, u32)>,
    /// Excluded from query adjacency (kept for unpacking).
    pub disabled: bool,
}

/// Per-arc scalar and banded bounds (format v2). All values are `f64`
/// bit patterns; every vector indexed by arc, the band vectors with
/// stride `n_bands`. Describes the **exact** functions even when the
/// stored ones are reduced — these are the pruning bounds.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BandTable {
    /// Buckets per arc over one day period.
    pub n_bands: u32,
    /// Exact global minimum per arc.
    pub arc_min: Vec<u64>,
    /// Exact global maximum per arc.
    pub arc_max: Vec<u64>,
    /// Measured reduction gap per arc (0 with exact storage).
    pub arc_err: Vec<u64>,
    /// Max slope of the exact function per arc, clamped to `≥ 0`.
    pub arc_slope_max: Vec<u64>,
    /// Per-bucket exact minimum, `arcs × n_bands`.
    pub band_min: Vec<u64>,
    /// Per-bucket exact maximum, `arcs × n_bands`.
    pub band_max: Vec<u64>,
}

/// The structure of one contracted overlay (one day category).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlaySnapshot {
    /// Raw day-category index (`traffic::DayCategory.0`).
    pub category: u8,
    /// Contraction rank per node.
    pub ranks: Vec<u32>,
    /// Arc records in storage order: base arcs first (network edge
    /// iteration order), then shortcuts in creation order.
    pub arcs: Vec<SnapshotArc>,
    /// Bit pattern of the error band the stored functions were reduced
    /// with; `None` = exact storage. Restores must honor this over
    /// their own configuration to reproduce the build bit for bit.
    pub compress_eps: Option<u64>,
    /// Scalar/banded pruning bounds (v2; `None` on v1 inputs).
    pub bands: Option<BandTable>,
}

/// A full hierarchy snapshot: one overlay per preprocessed category.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HierarchySnapshot {
    /// Overlays in preprocessing order.
    pub overlays: Vec<OverlaySnapshot>,
}

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OverlayCodecError {
    /// Fewer bytes than the structure promised.
    Truncated,
    /// The leading magic was not `FPOV`.
    BadMagic,
    /// A format version this build does not read.
    BadVersion(u32),
    /// The trailing checksum did not match the payload.
    BadChecksum,
    /// Structurally invalid (e.g. a shortcut referencing a later arc).
    Malformed(&'static str),
}

impl std::fmt::Display for OverlayCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OverlayCodecError::Truncated => write!(f, "overlay snapshot truncated"),
            OverlayCodecError::BadMagic => write!(f, "overlay snapshot has bad magic"),
            OverlayCodecError::BadVersion(v) => {
                write!(f, "overlay snapshot format version {v} not supported")
            }
            OverlayCodecError::BadChecksum => write!(f, "overlay snapshot checksum mismatch"),
            OverlayCodecError::Malformed(what) => write!(f, "overlay snapshot malformed: {what}"),
        }
    }
}

impl std::error::Error for OverlayCodecError {}

const MAGIC: &[u8; 4] = b"FPOV";
const VERSION: u32 = 2;
/// Oldest format this build still decodes.
const MIN_VERSION: u32 = 1;
/// Sanity cap on band buckets per arc in decoded input.
const MAX_BANDS: u32 = 4096;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Reader<'b> {
    buf: &'b [u8],
    pos: usize,
}

impl<'b> Reader<'b> {
    fn take(&mut self, n: usize) -> Result<&'b [u8], OverlayCodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(OverlayCodecError::Truncated)?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, OverlayCodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, OverlayCodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, OverlayCodecError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// `n` little-endian `u64`s, capacity-guarded against corrupt
    /// length fields.
    fn u64s(&mut self, n: usize) -> Result<Vec<u64>, OverlayCodecError> {
        let mut v = Vec::with_capacity(n.min(self.buf.len() / 8));
        for _ in 0..n {
            v.push(self.u64()?);
        }
        Ok(v)
    }
}

fn push_u64s(out: &mut Vec<u8>, vals: &[u64]) {
    for &v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

impl HierarchySnapshot {
    /// Encode to the versioned, checksummed byte format (writes v2).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.overlays.len() as u32).to_le_bytes());
        for o in &self.overlays {
            out.push(o.category);
            out.extend_from_slice(&(o.ranks.len() as u32).to_le_bytes());
            for &r in &o.ranks {
                out.extend_from_slice(&r.to_le_bytes());
            }
            out.extend_from_slice(&(o.arcs.len() as u32).to_le_bytes());
            for a in &o.arcs {
                out.extend_from_slice(&a.from.to_le_bytes());
                out.extend_from_slice(&a.to.to_le_bytes());
                let flags = u8::from(a.via.is_some()) | (u8::from(a.disabled) << 1);
                out.push(flags);
                if let Some((x, y)) = a.via {
                    out.extend_from_slice(&x.to_le_bytes());
                    out.extend_from_slice(&y.to_le_bytes());
                }
            }
            // v2 storage section: presence flags, then the payloads.
            let flags = u8::from(o.compress_eps.is_some()) | (u8::from(o.bands.is_some()) << 1);
            out.push(flags);
            if let Some(eps) = o.compress_eps {
                out.extend_from_slice(&eps.to_le_bytes());
            }
            if let Some(b) = &o.bands {
                out.extend_from_slice(&b.n_bands.to_le_bytes());
                push_u64s(&mut out, &b.arc_min);
                push_u64s(&mut out, &b.arc_max);
                push_u64s(&mut out, &b.arc_err);
                push_u64s(&mut out, &b.arc_slope_max);
                push_u64s(&mut out, &b.band_min);
                push_u64s(&mut out, &b.band_max);
            }
        }
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decode and validate (structure and checksum). Reads v1 and v2;
    /// corrupt or truncated input yields a typed error, never a panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, OverlayCodecError> {
        if bytes.len() < 8 {
            return Err(OverlayCodecError::Truncated);
        }
        let (payload, sum_bytes) = bytes.split_at(bytes.len() - 8);
        let mut sum = [0u8; 8];
        sum.copy_from_slice(sum_bytes);
        if fnv1a(payload) != u64::from_le_bytes(sum) {
            return Err(OverlayCodecError::BadChecksum);
        }
        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        if r.take(4)? != MAGIC {
            return Err(OverlayCodecError::BadMagic);
        }
        let version = r.u32()?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(OverlayCodecError::BadVersion(version));
        }
        let n_overlays = r.u32()? as usize;
        let mut overlays = Vec::new();
        for _ in 0..n_overlays {
            let category = r.u8()?;
            let n_ranks = r.u32()? as usize;
            let mut ranks = Vec::with_capacity(n_ranks.min(payload.len() / 4));
            for _ in 0..n_ranks {
                ranks.push(r.u32()?);
            }
            let n_arcs = r.u32()? as usize;
            let mut arcs = Vec::with_capacity(n_arcs.min(payload.len() / 9));
            for i in 0..n_arcs {
                let from = r.u32()?;
                let to = r.u32()?;
                let flags = r.u8()?;
                if flags & !0b11 != 0 {
                    return Err(OverlayCodecError::Malformed("unknown arc flags"));
                }
                let via = if flags & 1 != 0 {
                    let a = r.u32()?;
                    let b = r.u32()?;
                    if a as usize >= i || b as usize >= i {
                        return Err(OverlayCodecError::Malformed(
                            "shortcut references a later arc",
                        ));
                    }
                    Some((a, b))
                } else {
                    None
                };
                let n = ranks.len() as u32;
                if from >= n || to >= n {
                    return Err(OverlayCodecError::Malformed("arc endpoint out of range"));
                }
                arcs.push(SnapshotArc {
                    from,
                    to,
                    via,
                    disabled: flags & 2 != 0,
                });
            }
            let (compress_eps, bands) = if version >= 2 {
                let flags = r.u8()?;
                if flags & !0b11 != 0 {
                    return Err(OverlayCodecError::Malformed("unknown storage flags"));
                }
                let eps = if flags & 1 != 0 { Some(r.u64()?) } else { None };
                let bands = if flags & 2 != 0 {
                    let n_bands = r.u32()?;
                    if n_bands == 0 || n_bands > MAX_BANDS {
                        return Err(OverlayCodecError::Malformed("band bucket count"));
                    }
                    let per_arc = arcs.len();
                    let per_band = per_arc
                        .checked_mul(n_bands as usize)
                        .ok_or(OverlayCodecError::Malformed("band table overflow"))?;
                    Some(BandTable {
                        n_bands,
                        arc_min: r.u64s(per_arc)?,
                        arc_max: r.u64s(per_arc)?,
                        arc_err: r.u64s(per_arc)?,
                        arc_slope_max: r.u64s(per_arc)?,
                        band_min: r.u64s(per_band)?,
                        band_max: r.u64s(per_band)?,
                    })
                } else {
                    None
                };
                (eps, bands)
            } else {
                (None, None)
            };
            overlays.push(OverlaySnapshot {
                category,
                ranks,
                arcs,
                compress_eps,
                bands,
            });
        }
        if r.pos != payload.len() {
            return Err(OverlayCodecError::Malformed("trailing bytes"));
        }
        Ok(HierarchySnapshot { overlays })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_arcs() -> Vec<SnapshotArc> {
        vec![
            SnapshotArc {
                from: 0,
                to: 1,
                via: None,
                disabled: false,
            },
            SnapshotArc {
                from: 1,
                to: 2,
                via: None,
                disabled: true,
            },
            SnapshotArc {
                from: 0,
                to: 2,
                via: Some((0, 1)),
                disabled: false,
            },
        ]
    }

    fn sample() -> HierarchySnapshot {
        let arcs = sample_arcs();
        let n = arcs.len();
        HierarchySnapshot {
            overlays: vec![OverlaySnapshot {
                category: 0,
                ranks: vec![2, 0, 1],
                arcs,
                compress_eps: Some(0.5f64.to_bits()),
                bands: Some(BandTable {
                    n_bands: 2,
                    arc_min: vec![1.0f64.to_bits(); n],
                    arc_max: vec![9.0f64.to_bits(); n],
                    arc_err: vec![0u64; n],
                    arc_slope_max: vec![0.25f64.to_bits(); n],
                    band_min: vec![1.5f64.to_bits(); n * 2],
                    band_max: vec![8.0f64.to_bits(); n * 2],
                }),
            }],
        }
    }

    #[test]
    fn roundtrip() {
        let snap = sample();
        let bytes = snap.to_bytes();
        assert_eq!(HierarchySnapshot::from_bytes(&bytes).unwrap(), snap);
    }

    #[test]
    fn roundtrip_without_storage_section_payloads() {
        let mut snap = sample();
        snap.overlays[0].compress_eps = None;
        snap.overlays[0].bands = None;
        let bytes = snap.to_bytes();
        assert_eq!(HierarchySnapshot::from_bytes(&bytes).unwrap(), snap);
    }

    #[test]
    fn empty_roundtrip() {
        let snap = HierarchySnapshot::default();
        let bytes = snap.to_bytes();
        assert_eq!(HierarchySnapshot::from_bytes(&bytes).unwrap(), snap);
    }

    #[test]
    fn v1_inputs_still_decode() {
        // Hand-built v1 bytes for the sample structure: no storage
        // section, version 1.
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&1u32.to_le_bytes());
        out.extend_from_slice(&1u32.to_le_bytes()); // one overlay
        out.push(0); // category
        out.extend_from_slice(&3u32.to_le_bytes());
        for r in [2u32, 0, 1] {
            out.extend_from_slice(&r.to_le_bytes());
        }
        let arcs = sample_arcs();
        out.extend_from_slice(&(arcs.len() as u32).to_le_bytes());
        for a in &arcs {
            out.extend_from_slice(&a.from.to_le_bytes());
            out.extend_from_slice(&a.to.to_le_bytes());
            let flags = u8::from(a.via.is_some()) | (u8::from(a.disabled) << 1);
            out.push(flags);
            if let Some((x, y)) = a.via {
                out.extend_from_slice(&x.to_le_bytes());
                out.extend_from_slice(&y.to_le_bytes());
            }
        }
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());

        let snap = HierarchySnapshot::from_bytes(&out).unwrap();
        assert_eq!(snap.overlays[0].arcs, arcs);
        assert_eq!(snap.overlays[0].compress_eps, None);
        assert_eq!(snap.overlays[0].bands, None);
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = sample().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert_eq!(
            HierarchySnapshot::from_bytes(&bytes),
            Err(OverlayCodecError::BadChecksum)
        );
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample().to_bytes();
        for cut in [0, 4, 7, bytes.len() - 1] {
            assert!(HierarchySnapshot::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn forward_reference_rejected() {
        let mut snap = sample();
        snap.overlays[0].arcs[2].via = Some((0, 5));
        let bytes = snap.to_bytes();
        assert_eq!(
            HierarchySnapshot::from_bytes(&bytes),
            Err(OverlayCodecError::Malformed(
                "shortcut references a later arc"
            ))
        );
    }

    #[test]
    fn bad_version_rejected() {
        let snap = sample();
        let mut bytes = snap.to_bytes();
        bytes[4] = 9; // bump version byte, then re-checksum
        let n = bytes.len() - 8;
        let sum = fnv1a(&bytes[..n]);
        bytes[n..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            HierarchySnapshot::from_bytes(&bytes),
            Err(OverlayCodecError::BadVersion(9))
        );
    }
}
