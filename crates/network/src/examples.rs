//! The paper's §4.3 running example, reconstructed exactly.
//!
//! Figure 2's three-node network: source `s`, intermediate `n`, end
//! `e`, with the leaving interval `I = [6:50, 7:05]`. The edge speeds
//! are reverse-engineered from the travel-time functions printed in
//! §4.3–§4.4 (the unit tests of `fp-traffic` verify the match):
//!
//! * `s → e`: 6 miles at a constant 1 mpm (so `T ≡ 6 min`);
//! * `s → n`: 2 miles at 1/3 mpm before 7:00 and 1 mpm after
//!   (`T = 6` then ramps down to `2`);
//! * `n → e`: 3 miles at 1 mpm before 7:08 and 0.3 mpm after
//!   (`T = 3` then ramps up).
//!
//! Locations are chosen so `d_euc(n, e) = 1` mile, giving the naive
//! estimate `T_est(n ⇒ e) = 1 min` used in Figure 3, and so that every
//! edge length dominates its Euclidean distance.

use traffic::{CapeCodPattern, RoadClass, SpeedProfile};

use crate::{NodeId, RoadNetwork};

/// Node ids of the running example, in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperExampleIds {
    /// The source node `s`.
    pub s: NodeId,
    /// The intermediate node `n`.
    pub n: NodeId,
    /// The end node `e`.
    pub e: NodeId,
}

/// Build the §4.3 running example network.
///
/// The workday category carries the example's time-varying speeds;
/// the non-workday category is constant 1 mpm everywhere.
pub fn paper_running_example() -> (RoadNetwork, PaperExampleIds) {
    let mut net = RoadNetwork::empty();

    let hm = pwl::time::hm;
    // Category 0 (workday) carries the example's time-varying speeds;
    // category 1 (non-workday) is constant at the base speed, like the
    // §2.1 example pattern.
    let with_flat_nonworkday = |workday: SpeedProfile| {
        let flat = SpeedProfile::constant(1.0).expect("valid");
        CapeCodPattern::new(vec![workday, flat]).expect("two profiles")
    };

    // s → e: constant 1 mpm.
    let pat_se = net.add_pattern(with_flat_nonworkday(
        SpeedProfile::constant(1.0).expect("valid"),
    ));
    // s → n: 1/3 mpm before 7:00, 1 mpm after.
    let pat_sn = net.add_pattern(with_flat_nonworkday(
        SpeedProfile::from_pairs(&[(0.0, 1.0 / 3.0), (hm(7, 0), 1.0)]).expect("valid"),
    ));
    // n → e: 1 mpm before 7:08, 0.3 mpm after.
    let pat_ne = net.add_pattern(with_flat_nonworkday(
        SpeedProfile::from_pairs(&[(0.0, 1.0), (hm(7, 8), 0.3)]).expect("valid"),
    ));

    // Locations: d_euc(n, e) = 1 (Figure 3's estimate), all edge
    // lengths ≥ euclidean.
    let s = net.add_node(0.0, 0.0).expect("finite");
    let n = net.add_node(0.8, 0.6).expect("finite"); // 1.0 mi from s
    let e = net.add_node(1.8, 0.6).expect("finite"); // 1.0 mi from n, ~1.9 from s

    net.add_edge(s, e, 6.0, RoadClass::LocalOutside, pat_se)
        .expect("valid edge");
    net.add_edge(s, n, 2.0, RoadClass::LocalOutside, pat_sn)
        .expect("valid edge");
    net.add_edge(n, e, 3.0, RoadClass::LocalOutside, pat_ne)
        .expect("valid edge");

    (net, PaperExampleIds { s, n, e })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwl::time::hm;
    use pwl::{approx_eq, Interval};
    use traffic::{travel::travel_time_fn, DayCategory};

    #[test]
    fn geometry_matches_figure_3() {
        let (net, ids) = paper_running_example();
        assert_eq!(net.n_nodes(), 3);
        assert_eq!(net.n_edges(), 3);
        // d_euc(n, e) = 1 mile, v_max = 1 mpm → naive estimate 1 min.
        assert!(approx_eq(net.euclidean(ids.n, ids.e).unwrap(), 1.0));
        assert!(approx_eq(net.max_speed(), 1.0));
    }

    #[test]
    fn edge_functions_match_section_4_3() {
        let (net, ids) = paper_running_example();
        let i = Interval::of(hm(6, 50), hm(7, 5));
        let cat = DayCategory::WORKDAY;

        let se = &net.neighbors(ids.s).unwrap()[0];
        assert_eq!(se.to, ids.e);
        let t_se = travel_time_fn(net.profile(se, cat).unwrap(), se.distance, &i).unwrap();
        assert!(approx_eq(t_se.eval(hm(6, 50)), 6.0));
        assert!(approx_eq(t_se.eval(hm(7, 5)), 6.0));

        let sn = &net.neighbors(ids.s).unwrap()[1];
        assert_eq!(sn.to, ids.n);
        let t_sn = travel_time_fn(net.profile(sn, cat).unwrap(), sn.distance, &i).unwrap();
        assert!(approx_eq(t_sn.eval(hm(6, 50)), 6.0));
        assert!(approx_eq(t_sn.eval(hm(6, 54)), 6.0));
        assert!(approx_eq(t_sn.eval(hm(7, 0)), 2.0));
        assert!(approx_eq(t_sn.eval(hm(7, 5)), 2.0));
    }
}
