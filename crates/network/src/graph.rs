//! The CapeCod road network: nodes with coordinates, directed edges
//! with lengths and speed patterns.

use traffic::{
    CapeCodPattern, DayCategory, PatternSchema, PatternUpdate, RoadClass, SpeedProfile,
    TrafficDelta,
};

use crate::{NetworkError, Result};

/// A node identifier — a dense index into the network's node table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A pattern identifier — an index into the network's pattern table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatternId(pub u16);

/// A point in the plane, in miles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// East–west coordinate, miles.
    pub x: f64,
    /// North–south coordinate, miles.
    pub y: f64,
}

impl Point {
    /// Euclidean distance to `other`, miles.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }
}

/// A directed edge `u → v` with its length, road class, and speed
/// pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Head node `v`.
    pub to: NodeId,
    /// Length in miles (≥ the Euclidean distance between endpoints).
    pub distance: f64,
    /// Road class (drives the Table 1 schema and the constant-speed
    /// baseline's speed limit).
    pub class: RoadClass,
    /// Speed pattern of the segment.
    pub pattern: PatternId,
}

/// What applying one [`TrafficDelta`] did — the numbers the epoch
/// layer's scoped invalidation and the service counters key off.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaReport {
    /// Sequence number echoed from the delta.
    pub seq: u64,
    /// Directed edges the updates named (including no-op repoints to
    /// the pattern id the edge already had).
    pub edges_matched: usize,
    /// Directed edges whose pattern id actually changed.
    pub edges_changed: usize,
    /// Fresh pattern ids appended to the table.
    pub patterns_added: usize,
    /// Updates that interned to an already-present identical pattern.
    pub patterns_interned: usize,
    /// Distinct `(from, to)` endpoint pairs whose edges changed — the
    /// dirty set scoped invalidation propagates from.
    pub changed: Vec<(u32, u32)>,
    /// Did any changed edge's pattern `max_speed` change? `false`
    /// means a `BestTime` boundary table is reusable verbatim
    /// (its per-edge weights `distance / max_speed` are untouched).
    pub best_time_weights_changed: bool,
}

/// `patterns[id].max_speed()`, `NaN`-safe for out-of-range ids (which
/// `apply_delta` has already validated away).
fn self_pattern_max(patterns: &[CapeCodPattern], id: PatternId) -> f64 {
    patterns
        .get(usize::from(id.0))
        .map_or(f64::NAN, CapeCodPattern::max_speed)
}

/// A CapeCod road network (Definition 3): a directed spatial graph
/// whose edges carry CapeCod speed patterns.
///
/// Patterns live in a small *pattern table*; edges reference patterns
/// by [`PatternId`]. Networks built from a [`PatternSchema`] install
/// one pattern per [`RoadClass`] (ids `0..4` in `RoadClass::ALL`
/// order); bespoke networks (like the paper's running example) append
/// additional patterns with [`RoadNetwork::add_pattern`].
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    points: Vec<Point>,
    adj: Vec<Vec<Edge>>,
    patterns: Vec<CapeCodPattern>,
    max_speed: f64,
}

impl RoadNetwork {
    /// An empty network seeded with the four class patterns of
    /// `schema` (pattern id = `RoadClass::index`).
    pub fn with_schema(schema: &PatternSchema) -> Self {
        let patterns: Vec<CapeCodPattern> = RoadClass::ALL
            .iter()
            .map(|&c| schema.pattern(c).clone())
            .collect();
        let max_speed = patterns
            .iter()
            .map(CapeCodPattern::max_speed)
            .fold(f64::NEG_INFINITY, f64::max);
        RoadNetwork {
            points: Vec::new(),
            adj: Vec::new(),
            patterns,
            max_speed,
        }
    }

    /// An empty network with an empty pattern table.
    pub fn empty() -> Self {
        RoadNetwork {
            points: Vec::new(),
            adj: Vec::new(),
            patterns: Vec::new(),
            max_speed: 0.0,
        }
    }

    /// Append a pattern to the pattern table, returning its id.
    pub fn add_pattern(&mut self, pattern: CapeCodPattern) -> PatternId {
        let id = PatternId(self.patterns.len() as u16);
        self.max_speed = self.max_speed.max(pattern.max_speed());
        self.patterns.push(pattern);
        id
    }

    /// Add a node at `(x, y)` miles, returning its id.
    pub fn add_node(&mut self, x: f64, y: f64) -> Result<NodeId> {
        if !x.is_finite() || !y.is_finite() {
            return Err(NetworkError::BadCoordinate(x, y));
        }
        let id = NodeId(self.points.len() as u32);
        self.points.push(Point { x, y });
        self.adj.push(Vec::new());
        Ok(id)
    }

    /// Add a directed edge `from → to` with explicit pattern.
    ///
    /// `distance` must be positive and at least the Euclidean distance
    /// between the endpoints (within a small slack) — the invariant the
    /// lower-bound estimators rely on.
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        distance: f64,
        class: RoadClass,
        pattern: PatternId,
    ) -> Result<()> {
        let pf = *self.point(from)?;
        let pt = *self.point(to)?;
        if usize::from(pattern.0) >= self.patterns.len() {
            return Err(NetworkError::UnknownPattern(pattern));
        }
        let euclidean = pf.distance(&pt);
        if !distance.is_finite() || distance <= 0.0 || distance < euclidean - 1e-9 {
            return Err(NetworkError::BadEdgeLength {
                length: distance,
                euclidean,
            });
        }
        self.adj[from.index()].push(Edge {
            to,
            distance,
            class,
            pattern,
        });
        Ok(())
    }

    /// Add a directed edge whose pattern is the class pattern installed
    /// by [`RoadNetwork::with_schema`].
    pub fn add_class_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        distance: f64,
        class: RoadClass,
    ) -> Result<()> {
        self.add_edge(from, to, distance, class, PatternId(class.index() as u16))
    }

    /// Add both directions of a segment with the same length and class.
    pub fn add_bidirectional(
        &mut self,
        a: NodeId,
        b: NodeId,
        distance: f64,
        class: RoadClass,
    ) -> Result<()> {
        self.add_class_edge(a, b, distance, class)?;
        self.add_class_edge(b, a, distance, class)
    }

    /// Number of nodes.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.points.len()
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Location of `node`.
    pub fn point(&self, node: NodeId) -> Result<&Point> {
        self.points
            .get(node.index())
            .ok_or(NetworkError::UnknownNode(node))
    }

    /// Outgoing edges of `node`.
    pub fn neighbors(&self, node: NodeId) -> Result<&[Edge]> {
        self.adj
            .get(node.index())
            .map(Vec::as_slice)
            .ok_or(NetworkError::UnknownNode(node))
    }

    /// Euclidean distance between two nodes, miles.
    pub fn euclidean(&self, a: NodeId, b: NodeId) -> Result<f64> {
        Ok(self.point(a)?.distance(self.point(b)?))
    }

    /// The pattern table.
    #[inline]
    pub fn patterns(&self) -> &[CapeCodPattern] {
        &self.patterns
    }

    /// Pattern by id.
    pub fn pattern(&self, id: PatternId) -> Result<&CapeCodPattern> {
        self.patterns
            .get(usize::from(id.0))
            .ok_or(NetworkError::UnknownPattern(id))
    }

    /// Speed profile of `edge` under `category`.
    pub fn profile(&self, edge: &Edge, category: DayCategory) -> Result<&SpeedProfile> {
        Ok(self.pattern(edge.pattern)?.profile(category)?)
    }

    /// The maximum speed appearing anywhere in the pattern table
    /// (miles per minute) — the `v_max` of the naive estimator.
    #[inline]
    pub fn max_speed(&self) -> f64 {
        self.max_speed
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.points.len() as u32).map(NodeId)
    }

    /// Reverse adjacency: for each node, the list of `(source, edge)`
    /// pairs of its incoming edges. Built on demand (used by the
    /// boundary-node precomputation's reverse Dijkstra).
    pub fn reverse_adj(&self) -> Vec<Vec<(NodeId, Edge)>> {
        let mut rev: Vec<Vec<(NodeId, Edge)>> = vec![Vec::new(); self.n_nodes()];
        for (u, edges) in self.adj.iter().enumerate() {
            for e in edges {
                rev[e.to.index()].push((NodeId(u as u32), *e));
            }
        }
        rev
    }

    /// The network with every edge reversed and every pattern
    /// time-mirrored.
    ///
    /// This is the arrival-interval query reduction's substrate: a
    /// trip `u → v` arriving at time `a` in this network corresponds
    /// exactly to a trip `v → u` departing at `1440 − a` in the
    /// original (`∫ v(τ) dτ` is preserved under `τ ↦ 1440 − τ`), so a
    /// *leaving-interval* query here answers an *arrival-interval*
    /// query there.
    pub fn reversed_time_mirrored(&self) -> RoadNetwork {
        let patterns: Vec<CapeCodPattern> = self
            .patterns
            .iter()
            .map(CapeCodPattern::time_mirrored)
            .collect();
        let mut adj: Vec<Vec<Edge>> = vec![Vec::new(); self.points.len()];
        for (u, edges) in self.adj.iter().enumerate() {
            for e in edges {
                adj[e.to.index()].push(Edge {
                    to: NodeId(u as u32),
                    distance: e.distance,
                    class: e.class,
                    pattern: e.pattern,
                });
            }
        }
        RoadNetwork {
            points: self.points.clone(),
            adj,
            patterns,
            max_speed: self.max_speed,
        }
    }

    /// Apply a live-traffic delta, producing the **next version** of
    /// this network; `self` is untouched, so queries pinned to it keep
    /// a fully consistent view (the epoch layer publishes the result
    /// atomically — see `allfp::epoch`).
    ///
    /// The pattern table is **append-only**: replacement patterns are
    /// *interned* — an update whose pattern is structurally identical
    /// to a table entry reuses that entry's id, anything else is
    /// appended under a fresh id — and existing ids are never mutated
    /// or reused. A pattern id therefore means the same function in
    /// every network version that knows it, which is what keeps the
    /// engine's travel-function cache (keyed by pattern id) exact
    /// across epochs with no invalidation on the hot path.
    ///
    /// An update named `from → to` re-points **every** parallel edge
    /// between those endpoints; later updates in the batch win over
    /// earlier ones. Errors ([`NetworkError::NoSuchEdge`], exhausted
    /// id space) reject the whole batch — the returned network is
    /// never partially updated.
    pub fn apply_delta(&self, delta: &TrafficDelta) -> Result<(RoadNetwork, DeltaReport)> {
        let mut next = self.clone();
        let mut report = DeltaReport {
            seq: delta.seq,
            ..DeltaReport::default()
        };
        for update in &delta.updates {
            let PatternUpdate { from, to, pattern } = update;
            let id = next.intern_pattern(pattern, &mut report)?;
            let edges = next
                .adj
                .get_mut(*from as usize)
                .ok_or(NetworkError::UnknownNode(NodeId(*from)))?;
            let mut matched = false;
            for e in edges.iter_mut().filter(|e| e.to.0 == *to) {
                matched = true;
                report.edges_matched += 1;
                if e.pattern != id {
                    let old_max = self_pattern_max(&next.patterns, e.pattern);
                    let new_max = self_pattern_max(&next.patterns, id);
                    if old_max != new_max {
                        report.best_time_weights_changed = true;
                    }
                    e.pattern = id;
                    report.edges_changed += 1;
                    if !report.changed.contains(&(*from, *to)) {
                        report.changed.push((*from, *to));
                    }
                }
            }
            if !matched {
                return Err(NetworkError::NoSuchEdge {
                    from: *from,
                    to: *to,
                });
            }
        }
        Ok((next, report))
    }

    /// Find `pattern` in the table or append it, returning its id.
    fn intern_pattern(
        &mut self,
        pattern: &CapeCodPattern,
        report: &mut DeltaReport,
    ) -> Result<PatternId> {
        if let Some(i) = self.patterns.iter().position(|p| p == pattern) {
            report.patterns_interned += 1;
            return Ok(PatternId(i as u16));
        }
        if self.patterns.len() > usize::from(u16::MAX) {
            return Err(NetworkError::PatternTableFull);
        }
        report.patterns_added += 1;
        Ok(self.add_pattern(pattern.clone()))
    }

    /// Which pattern ids are referenced by at least one edge —
    /// `mask[id]` is `true` iff some edge points at `id`. The epoch
    /// layer uses this to flush cache entries for ids no live network
    /// version references any more.
    pub fn referenced_patterns(&self) -> Vec<bool> {
        let mut mask = vec![false; self.patterns.len()];
        for edges in &self.adj {
            for e in edges {
                if let Some(slot) = mask.get_mut(usize::from(e.pattern.0)) {
                    *slot = true;
                }
            }
        }
        mask
    }

    /// A deterministic seeded delta touching `n_edges` distinct
    /// directed edges (fewer if the network is smaller): each chosen
    /// edge's current pattern is rescaled by a seed-derived factor in
    /// `[0.5, 1.5] \ {1.0}`, the shape live congestion feeds produce.
    /// Identical `(network, seed, n_edges, seq)` always yields an
    /// identical delta — the chaos harness replays on this.
    pub fn seeded_delta(&self, seed: u64, n_edges: usize, seq: u64) -> Result<TrafficDelta> {
        let mut flat: Vec<(u32, usize)> = Vec::with_capacity(self.n_edges());
        for (u, edges) in self.adj.iter().enumerate() {
            for (k, _) in edges.iter().enumerate() {
                flat.push((u as u32, k));
            }
        }
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        // Partial Fisher–Yates over the flat edge list: the first
        // `n_edges` slots end up a uniform distinct sample.
        let take = n_edges.min(flat.len());
        for i in 0..take {
            let j = i + (next() as usize) % (flat.len() - i);
            flat.swap(i, j);
        }
        let mut updates = Vec::with_capacity(take);
        for &(u, k) in &flat[..take] {
            let e = self.adj[u as usize][k];
            let r = next() % 11; // 0..=10
            let factor = if r == 5 {
                0.45
            } else {
                0.5 + f64::from(r as u32) / 10.0
            };
            let pattern = self.pattern(e.pattern)?.with_speed_factor(factor)?;
            updates.push(PatternUpdate {
                from: u,
                to: e.to.0,
                pattern,
            });
        }
        Ok(TrafficDelta::new(seq, updates))
    }

    /// Bounding box of all node locations as
    /// `((min_x, min_y), (max_x, max_y))`; `None` for an empty network.
    pub fn bounding_box(&self) -> Option<(Point, Point)> {
        let first = self.points.first()?;
        let mut min = *first;
        let mut max = *first;
        for p in &self.points {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        Some((min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_net() -> (RoadNetwork, NodeId, NodeId) {
        let schema = PatternSchema::table1().unwrap();
        let mut net = RoadNetwork::with_schema(&schema);
        let a = net.add_node(0.0, 0.0).unwrap();
        let b = net.add_node(3.0, 4.0).unwrap(); // 5 miles apart
        (net, a, b)
    }

    #[test]
    fn schema_patterns_installed() {
        let (net, _, _) = two_node_net();
        assert_eq!(net.patterns().len(), 4);
        assert!((net.max_speed() - 65.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn add_edge_validates_geometry() {
        let (mut net, a, b) = two_node_net();
        // shorter than euclidean: rejected
        assert!(matches!(
            net.add_class_edge(a, b, 4.9, RoadClass::LocalOutside),
            Err(NetworkError::BadEdgeLength { .. })
        ));
        assert!(net
            .add_class_edge(a, b, 5.0, RoadClass::LocalOutside)
            .is_ok());
        assert!(net
            .add_class_edge(a, b, 6.2, RoadClass::LocalOutside)
            .is_ok());
        assert!(matches!(
            net.add_class_edge(a, b, 0.0, RoadClass::LocalOutside),
            Err(NetworkError::BadEdgeLength { .. })
        ));
        assert_eq!(net.n_edges(), 2);
    }

    #[test]
    fn unknown_ids_rejected() {
        let (mut net, a, _) = two_node_net();
        let ghost = NodeId(99);
        assert!(matches!(
            net.point(ghost),
            Err(NetworkError::UnknownNode(_))
        ));
        assert!(net
            .add_class_edge(a, ghost, 1.0, RoadClass::LocalOutside)
            .is_err());
        assert!(net
            .add_edge(a, a, 1.0, RoadClass::LocalOutside, PatternId(77))
            .is_err());
    }

    #[test]
    fn neighbors_and_reverse() {
        let (mut net, a, b) = two_node_net();
        net.add_bidirectional(a, b, 5.5, RoadClass::LocalBoston)
            .unwrap();
        assert_eq!(net.neighbors(a).unwrap().len(), 1);
        assert_eq!(net.neighbors(a).unwrap()[0].to, b);
        let rev = net.reverse_adj();
        assert_eq!(rev[a.index()].len(), 1);
        assert_eq!(rev[a.index()][0].0, b);
        assert_eq!(net.n_edges(), 2);
    }

    #[test]
    fn custom_patterns() {
        let mut net = RoadNetwork::empty();
        let p = net.add_pattern(CapeCodPattern::paper_example());
        assert_eq!(p, PatternId(0));
        let a = net.add_node(0.0, 0.0).unwrap();
        let b = net.add_node(1.0, 0.0).unwrap();
        net.add_edge(a, b, 1.0, RoadClass::LocalOutside, p).unwrap();
        assert_eq!(net.max_speed(), 1.0);
        let prof = net
            .profile(&net.neighbors(a).unwrap()[0], DayCategory::WORKDAY)
            .unwrap();
        assert_eq!(prof.speed_at(pwl::time::hm(8, 0)), 0.5);
    }

    #[test]
    fn reversed_time_mirrored_flips_edges_and_profiles() {
        let schema = PatternSchema::table1().unwrap();
        let mut net = RoadNetwork::with_schema(&schema);
        let a = net.add_node(0.0, 0.0).unwrap();
        let b = net.add_node(1.0, 0.0).unwrap();
        net.add_class_edge(a, b, 1.2, RoadClass::InboundHighway)
            .unwrap();

        let rev = net.reversed_time_mirrored();
        assert_eq!(rev.n_nodes(), 2);
        assert_eq!(rev.n_edges(), 1);
        assert!(rev.neighbors(a).unwrap().is_empty());
        let e = &rev.neighbors(b).unwrap()[0];
        assert_eq!(e.to, a);
        assert_eq!(e.distance, 1.2);
        assert_eq!(e.class, RoadClass::InboundHighway);
        // inbound rush [7:00, 10:00) mirrors to (14:00, 17:00]
        let prof = rev.profile(e, DayCategory::WORKDAY).unwrap();
        assert!((prof.speed_at(pwl::time::hm(15, 0)) - 20.0 / 60.0).abs() < 1e-12);
        assert!((prof.speed_at(pwl::time::hm(8, 0)) - 65.0 / 60.0).abs() < 1e-12);
        // double mirror restores the original patterns
        let back = rev.reversed_time_mirrored();
        assert_eq!(back.patterns(), net.patterns());
        assert_eq!(back.neighbors(a).unwrap(), net.neighbors(a).unwrap());
    }

    #[test]
    fn bounding_box() {
        let (net, _, _) = two_node_net();
        let (min, max) = net.bounding_box().unwrap();
        assert_eq!((min.x, min.y), (0.0, 0.0));
        assert_eq!((max.x, max.y), (3.0, 4.0));
        assert!(RoadNetwork::empty().bounding_box().is_none());
    }

    #[test]
    fn euclidean_distance() {
        let (net, a, b) = two_node_net();
        assert!((net.euclidean(a, b).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn apply_delta_appends_and_repoints() {
        let (mut net, a, b) = two_node_net();
        net.add_bidirectional(a, b, 5.5, RoadClass::LocalBoston)
            .unwrap();
        let before_patterns = net.patterns().len();
        let old_id = net.neighbors(a).unwrap()[0].pattern;
        let slow = net.pattern(old_id).unwrap().with_speed_factor(0.5).unwrap();
        let delta = TrafficDelta::new(
            7,
            vec![PatternUpdate {
                from: a.0,
                to: b.0,
                pattern: slow.clone(),
            }],
        );
        let (next, report) = net.apply_delta(&delta).unwrap();
        // source untouched
        assert_eq!(net.neighbors(a).unwrap()[0].pattern, old_id);
        assert_eq!(net.patterns().len(), before_patterns);
        // next version repointed, appended one pattern
        assert_eq!(report.seq, 7);
        assert_eq!(report.edges_matched, 1);
        assert_eq!(report.edges_changed, 1);
        assert_eq!(report.patterns_added, 1);
        assert_eq!(report.changed, vec![(a.0, b.0)]);
        assert!(report.best_time_weights_changed);
        let new_id = next.neighbors(a).unwrap()[0].pattern;
        assert_ne!(new_id, old_id);
        assert_eq!(next.pattern(new_id).unwrap(), &slow);
        assert_eq!(next.patterns().len(), before_patterns + 1);
        // the reverse edge kept its pattern
        assert_eq!(next.neighbors(b).unwrap()[0].pattern, old_id);
        // old id still resolves in the next version (append-only)
        assert_eq!(next.pattern(old_id).unwrap(), net.pattern(old_id).unwrap());

        // re-applying the same content interns, adds nothing
        let (next2, report2) = next.apply_delta(&delta).unwrap();
        assert_eq!(report2.patterns_added, 0);
        assert_eq!(report2.patterns_interned, 1);
        assert_eq!(report2.edges_changed, 0);
        assert!(report2.changed.is_empty());
        assert_eq!(next2.patterns().len(), next.patterns().len());
    }

    #[test]
    fn apply_delta_rejects_missing_edges() {
        let (net, a, b) = two_node_net();
        let delta = TrafficDelta::new(
            1,
            vec![PatternUpdate {
                from: a.0,
                to: b.0,
                pattern: CapeCodPattern::paper_example(),
            }],
        );
        assert!(matches!(
            net.apply_delta(&delta),
            Err(NetworkError::NoSuchEdge { .. })
        ));
        let ghost = TrafficDelta::new(
            1,
            vec![PatternUpdate {
                from: 99,
                to: 0,
                pattern: CapeCodPattern::paper_example(),
            }],
        );
        assert!(net.apply_delta(&ghost).is_err());
    }

    #[test]
    fn referenced_patterns_tracks_edges() {
        let (mut net, a, b) = two_node_net();
        net.add_class_edge(a, b, 5.0, RoadClass::LocalOutside)
            .unwrap();
        let mask = net.referenced_patterns();
        assert_eq!(mask.len(), net.patterns().len());
        assert!(mask[RoadClass::LocalOutside.index()]);
        assert!(!mask[RoadClass::InboundHighway.index()]);
    }

    #[test]
    fn seeded_delta_is_deterministic_and_applies() {
        let schema = PatternSchema::table1().unwrap();
        let mut net = RoadNetwork::with_schema(&schema);
        let mut nodes = Vec::new();
        for i in 0..4 {
            nodes.push(net.add_node(f64::from(i), 0.0).unwrap());
        }
        for w in nodes.windows(2) {
            net.add_bidirectional(w[0], w[1], 1.0, RoadClass::LocalOutside)
                .unwrap();
        }
        let d1 = net.seeded_delta(42, 3, 1).unwrap();
        let d2 = net.seeded_delta(42, 3, 1).unwrap();
        assert_eq!(d1, d2);
        assert_eq!(d1.len(), 3);
        assert_ne!(net.seeded_delta(43, 3, 1).unwrap(), d1);
        let (next, report) = net.apply_delta(&d1).unwrap();
        assert_eq!(report.edges_changed, report.edges_matched);
        assert!(next.patterns().len() > net.patterns().len());
        // asking for more edges than exist saturates
        assert_eq!(net.seeded_delta(1, 999, 2).unwrap().len(), net.n_edges());
    }
}
