//! The CapeCod road network: nodes with coordinates, directed edges
//! with lengths and speed patterns.

use traffic::{CapeCodPattern, DayCategory, PatternSchema, RoadClass, SpeedProfile};

use crate::{NetworkError, Result};

/// A node identifier — a dense index into the network's node table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A pattern identifier — an index into the network's pattern table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatternId(pub u16);

/// A point in the plane, in miles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// East–west coordinate, miles.
    pub x: f64,
    /// North–south coordinate, miles.
    pub y: f64,
}

impl Point {
    /// Euclidean distance to `other`, miles.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }
}

/// A directed edge `u → v` with its length, road class, and speed
/// pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Head node `v`.
    pub to: NodeId,
    /// Length in miles (≥ the Euclidean distance between endpoints).
    pub distance: f64,
    /// Road class (drives the Table 1 schema and the constant-speed
    /// baseline's speed limit).
    pub class: RoadClass,
    /// Speed pattern of the segment.
    pub pattern: PatternId,
}

/// A CapeCod road network (Definition 3): a directed spatial graph
/// whose edges carry CapeCod speed patterns.
///
/// Patterns live in a small *pattern table*; edges reference patterns
/// by [`PatternId`]. Networks built from a [`PatternSchema`] install
/// one pattern per [`RoadClass`] (ids `0..4` in `RoadClass::ALL`
/// order); bespoke networks (like the paper's running example) append
/// additional patterns with [`RoadNetwork::add_pattern`].
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    points: Vec<Point>,
    adj: Vec<Vec<Edge>>,
    patterns: Vec<CapeCodPattern>,
    max_speed: f64,
}

impl RoadNetwork {
    /// An empty network seeded with the four class patterns of
    /// `schema` (pattern id = `RoadClass::index`).
    pub fn with_schema(schema: &PatternSchema) -> Self {
        let patterns: Vec<CapeCodPattern> = RoadClass::ALL
            .iter()
            .map(|&c| schema.pattern(c).clone())
            .collect();
        let max_speed = patterns
            .iter()
            .map(CapeCodPattern::max_speed)
            .fold(f64::NEG_INFINITY, f64::max);
        RoadNetwork {
            points: Vec::new(),
            adj: Vec::new(),
            patterns,
            max_speed,
        }
    }

    /// An empty network with an empty pattern table.
    pub fn empty() -> Self {
        RoadNetwork {
            points: Vec::new(),
            adj: Vec::new(),
            patterns: Vec::new(),
            max_speed: 0.0,
        }
    }

    /// Append a pattern to the pattern table, returning its id.
    pub fn add_pattern(&mut self, pattern: CapeCodPattern) -> PatternId {
        let id = PatternId(self.patterns.len() as u16);
        self.max_speed = self.max_speed.max(pattern.max_speed());
        self.patterns.push(pattern);
        id
    }

    /// Add a node at `(x, y)` miles, returning its id.
    pub fn add_node(&mut self, x: f64, y: f64) -> Result<NodeId> {
        if !x.is_finite() || !y.is_finite() {
            return Err(NetworkError::BadCoordinate(x, y));
        }
        let id = NodeId(self.points.len() as u32);
        self.points.push(Point { x, y });
        self.adj.push(Vec::new());
        Ok(id)
    }

    /// Add a directed edge `from → to` with explicit pattern.
    ///
    /// `distance` must be positive and at least the Euclidean distance
    /// between the endpoints (within a small slack) — the invariant the
    /// lower-bound estimators rely on.
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        distance: f64,
        class: RoadClass,
        pattern: PatternId,
    ) -> Result<()> {
        let pf = *self.point(from)?;
        let pt = *self.point(to)?;
        if usize::from(pattern.0) >= self.patterns.len() {
            return Err(NetworkError::UnknownPattern(pattern));
        }
        let euclidean = pf.distance(&pt);
        if !distance.is_finite() || distance <= 0.0 || distance < euclidean - 1e-9 {
            return Err(NetworkError::BadEdgeLength {
                length: distance,
                euclidean,
            });
        }
        self.adj[from.index()].push(Edge {
            to,
            distance,
            class,
            pattern,
        });
        Ok(())
    }

    /// Add a directed edge whose pattern is the class pattern installed
    /// by [`RoadNetwork::with_schema`].
    pub fn add_class_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        distance: f64,
        class: RoadClass,
    ) -> Result<()> {
        self.add_edge(from, to, distance, class, PatternId(class.index() as u16))
    }

    /// Add both directions of a segment with the same length and class.
    pub fn add_bidirectional(
        &mut self,
        a: NodeId,
        b: NodeId,
        distance: f64,
        class: RoadClass,
    ) -> Result<()> {
        self.add_class_edge(a, b, distance, class)?;
        self.add_class_edge(b, a, distance, class)
    }

    /// Number of nodes.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.points.len()
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Location of `node`.
    pub fn point(&self, node: NodeId) -> Result<&Point> {
        self.points
            .get(node.index())
            .ok_or(NetworkError::UnknownNode(node))
    }

    /// Outgoing edges of `node`.
    pub fn neighbors(&self, node: NodeId) -> Result<&[Edge]> {
        self.adj
            .get(node.index())
            .map(Vec::as_slice)
            .ok_or(NetworkError::UnknownNode(node))
    }

    /// Euclidean distance between two nodes, miles.
    pub fn euclidean(&self, a: NodeId, b: NodeId) -> Result<f64> {
        Ok(self.point(a)?.distance(self.point(b)?))
    }

    /// The pattern table.
    #[inline]
    pub fn patterns(&self) -> &[CapeCodPattern] {
        &self.patterns
    }

    /// Pattern by id.
    pub fn pattern(&self, id: PatternId) -> Result<&CapeCodPattern> {
        self.patterns
            .get(usize::from(id.0))
            .ok_or(NetworkError::UnknownPattern(id))
    }

    /// Speed profile of `edge` under `category`.
    pub fn profile(&self, edge: &Edge, category: DayCategory) -> Result<&SpeedProfile> {
        Ok(self.pattern(edge.pattern)?.profile(category)?)
    }

    /// The maximum speed appearing anywhere in the pattern table
    /// (miles per minute) — the `v_max` of the naive estimator.
    #[inline]
    pub fn max_speed(&self) -> f64 {
        self.max_speed
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.points.len() as u32).map(NodeId)
    }

    /// Reverse adjacency: for each node, the list of `(source, edge)`
    /// pairs of its incoming edges. Built on demand (used by the
    /// boundary-node precomputation's reverse Dijkstra).
    pub fn reverse_adj(&self) -> Vec<Vec<(NodeId, Edge)>> {
        let mut rev: Vec<Vec<(NodeId, Edge)>> = vec![Vec::new(); self.n_nodes()];
        for (u, edges) in self.adj.iter().enumerate() {
            for e in edges {
                rev[e.to.index()].push((NodeId(u as u32), *e));
            }
        }
        rev
    }

    /// The network with every edge reversed and every pattern
    /// time-mirrored.
    ///
    /// This is the arrival-interval query reduction's substrate: a
    /// trip `u → v` arriving at time `a` in this network corresponds
    /// exactly to a trip `v → u` departing at `1440 − a` in the
    /// original (`∫ v(τ) dτ` is preserved under `τ ↦ 1440 − τ`), so a
    /// *leaving-interval* query here answers an *arrival-interval*
    /// query there.
    pub fn reversed_time_mirrored(&self) -> RoadNetwork {
        let patterns: Vec<CapeCodPattern> = self
            .patterns
            .iter()
            .map(CapeCodPattern::time_mirrored)
            .collect();
        let mut adj: Vec<Vec<Edge>> = vec![Vec::new(); self.points.len()];
        for (u, edges) in self.adj.iter().enumerate() {
            for e in edges {
                adj[e.to.index()].push(Edge {
                    to: NodeId(u as u32),
                    distance: e.distance,
                    class: e.class,
                    pattern: e.pattern,
                });
            }
        }
        RoadNetwork {
            points: self.points.clone(),
            adj,
            patterns,
            max_speed: self.max_speed,
        }
    }

    /// Bounding box of all node locations as
    /// `((min_x, min_y), (max_x, max_y))`; `None` for an empty network.
    pub fn bounding_box(&self) -> Option<(Point, Point)> {
        let first = self.points.first()?;
        let mut min = *first;
        let mut max = *first;
        for p in &self.points {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        Some((min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_net() -> (RoadNetwork, NodeId, NodeId) {
        let schema = PatternSchema::table1().unwrap();
        let mut net = RoadNetwork::with_schema(&schema);
        let a = net.add_node(0.0, 0.0).unwrap();
        let b = net.add_node(3.0, 4.0).unwrap(); // 5 miles apart
        (net, a, b)
    }

    #[test]
    fn schema_patterns_installed() {
        let (net, _, _) = two_node_net();
        assert_eq!(net.patterns().len(), 4);
        assert!((net.max_speed() - 65.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn add_edge_validates_geometry() {
        let (mut net, a, b) = two_node_net();
        // shorter than euclidean: rejected
        assert!(matches!(
            net.add_class_edge(a, b, 4.9, RoadClass::LocalOutside),
            Err(NetworkError::BadEdgeLength { .. })
        ));
        assert!(net
            .add_class_edge(a, b, 5.0, RoadClass::LocalOutside)
            .is_ok());
        assert!(net
            .add_class_edge(a, b, 6.2, RoadClass::LocalOutside)
            .is_ok());
        assert!(matches!(
            net.add_class_edge(a, b, 0.0, RoadClass::LocalOutside),
            Err(NetworkError::BadEdgeLength { .. })
        ));
        assert_eq!(net.n_edges(), 2);
    }

    #[test]
    fn unknown_ids_rejected() {
        let (mut net, a, _) = two_node_net();
        let ghost = NodeId(99);
        assert!(matches!(
            net.point(ghost),
            Err(NetworkError::UnknownNode(_))
        ));
        assert!(net
            .add_class_edge(a, ghost, 1.0, RoadClass::LocalOutside)
            .is_err());
        assert!(net
            .add_edge(a, a, 1.0, RoadClass::LocalOutside, PatternId(77))
            .is_err());
    }

    #[test]
    fn neighbors_and_reverse() {
        let (mut net, a, b) = two_node_net();
        net.add_bidirectional(a, b, 5.5, RoadClass::LocalBoston)
            .unwrap();
        assert_eq!(net.neighbors(a).unwrap().len(), 1);
        assert_eq!(net.neighbors(a).unwrap()[0].to, b);
        let rev = net.reverse_adj();
        assert_eq!(rev[a.index()].len(), 1);
        assert_eq!(rev[a.index()][0].0, b);
        assert_eq!(net.n_edges(), 2);
    }

    #[test]
    fn custom_patterns() {
        let mut net = RoadNetwork::empty();
        let p = net.add_pattern(CapeCodPattern::paper_example());
        assert_eq!(p, PatternId(0));
        let a = net.add_node(0.0, 0.0).unwrap();
        let b = net.add_node(1.0, 0.0).unwrap();
        net.add_edge(a, b, 1.0, RoadClass::LocalOutside, p).unwrap();
        assert_eq!(net.max_speed(), 1.0);
        let prof = net
            .profile(&net.neighbors(a).unwrap()[0], DayCategory::WORKDAY)
            .unwrap();
        assert_eq!(prof.speed_at(pwl::time::hm(8, 0)), 0.5);
    }

    #[test]
    fn reversed_time_mirrored_flips_edges_and_profiles() {
        let schema = PatternSchema::table1().unwrap();
        let mut net = RoadNetwork::with_schema(&schema);
        let a = net.add_node(0.0, 0.0).unwrap();
        let b = net.add_node(1.0, 0.0).unwrap();
        net.add_class_edge(a, b, 1.2, RoadClass::InboundHighway)
            .unwrap();

        let rev = net.reversed_time_mirrored();
        assert_eq!(rev.n_nodes(), 2);
        assert_eq!(rev.n_edges(), 1);
        assert!(rev.neighbors(a).unwrap().is_empty());
        let e = &rev.neighbors(b).unwrap()[0];
        assert_eq!(e.to, a);
        assert_eq!(e.distance, 1.2);
        assert_eq!(e.class, RoadClass::InboundHighway);
        // inbound rush [7:00, 10:00) mirrors to (14:00, 17:00]
        let prof = rev.profile(e, DayCategory::WORKDAY).unwrap();
        assert!((prof.speed_at(pwl::time::hm(15, 0)) - 20.0 / 60.0).abs() < 1e-12);
        assert!((prof.speed_at(pwl::time::hm(8, 0)) - 65.0 / 60.0).abs() < 1e-12);
        // double mirror restores the original patterns
        let back = rev.reversed_time_mirrored();
        assert_eq!(back.patterns(), net.patterns());
        assert_eq!(back.neighbors(a).unwrap(), net.neighbors(a).unwrap());
    }

    #[test]
    fn bounding_box() {
        let (net, _, _) = two_node_net();
        let (min, max) = net.bounding_box().unwrap();
        assert_eq!((min.x, min.y), (0.0, 0.0));
        assert_eq!((max.x, max.y), (3.0, 4.0));
        assert!(RoadNetwork::empty().bounding_box().is_none());
    }

    #[test]
    fn euclidean_distance() {
        let (net, a, b) = two_node_net();
        assert!((net.euclidean(a, b).unwrap() - 5.0).abs() < 1e-12);
    }
}
