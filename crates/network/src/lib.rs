//! Road-network model and synthetic generators.
//!
//! A **CapeCod network** (Definition 3 of the ICDE 2006 paper) is a
//! directed graph whose nodes carry spatial locations and whose edges
//! carry a length and a CapeCod speed pattern. This crate provides:
//!
//! * [`RoadNetwork`] — the in-memory graph: node coordinates,
//!   adjacency lists, a pattern table, and a [`RoadClass`] per edge;
//! * [`generators`] — deterministic synthetic networks:
//!   * [`generators::suffolk_like`] — the experiment substrate
//!     standing in for the paper's 2003 TIGER/Line Suffolk County
//!     extract (see DESIGN.md §3 for the substitution argument): a
//!     dense urban core, radial inbound/outbound highway pairs, a
//!     perimeter ring, and irregular local grids;
//!   * [`generators::grid`] — regular grids for unit tests;
//!   * [`generators::random_geometric`] — random geometric graphs
//!     for property tests;
//! * [`examples`] — the paper's §4.3 three-node running example,
//!   reconstructed so that every worked number in the paper can be
//!   asserted by tests;
//! * [`workload`] — query-pair sampling by Euclidean distance, used
//!   by every experiment in §6.
//!
//! # Geometry invariant
//!
//! `add_edge` rejects edges shorter than the Euclidean distance
//! between their endpoints. This is what makes
//! `d_euc(n, e) / v_max` (and the boundary-node estimator built on
//! network distances) a genuine lower bound on travel time.

mod graph;
mod source;
mod stats;

pub mod examples;
pub mod generators;
pub mod io;
pub mod overlay;
pub mod workload;

pub use graph::{DeltaReport, Edge, NodeId, PatternId, Point, RoadNetwork};
pub use source::NetworkSource;
pub use stats::NetworkStats;

/// Failure class of a storage-layer error surfaced through a
/// [`NetworkSource`] backed by disk (see `fp-ccam`).
///
/// The network crate knows nothing about pages or checksums; it only
/// carries the *class* so engine-level callers can route on it —
/// retry transients, refuse corrupted data, report I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFaultKind {
    /// Data failed an integrity check (checksum/format mismatch).
    /// Never retryable: the bytes on disk are wrong.
    Corruption,
    /// A transient fault (interrupted read/write) that exhausted the
    /// storage layer's bounded retries. Safe to retry the whole query.
    Transient,
    /// A hard I/O failure from the operating system.
    Io,
    /// Any other storage-layer failure.
    Other,
}

/// Errors from network construction and lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// Node id out of range.
    UnknownNode(NodeId),
    /// Pattern id out of range.
    UnknownPattern(PatternId),
    /// Edge length shorter than the straight-line distance between its
    /// endpoints (would break lower-bound estimators), or non-positive.
    BadEdgeLength {
        /// Offending length (miles).
        length: f64,
        /// Straight-line distance between the endpoints (miles).
        euclidean: f64,
    },
    /// A coordinate was not finite.
    BadCoordinate(f64, f64),
    /// Text-format parse failure (see [`crate::io`]).
    Parse {
        /// 1-based line number (0 for I/O-level failures).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A [`traffic::TrafficDelta`] update named a directed edge the
    /// network does not have.
    NoSuchEdge {
        /// Tail node index from the update.
        from: u32,
        /// Head node index from the update.
        to: u32,
    },
    /// The append-only pattern table is out of [`PatternId`] space
    /// (u16 ids): the delta cannot be applied without a full rebuild.
    PatternTableFull,
    /// Propagated traffic-layer error.
    Traffic(traffic::TrafficError),
    /// A storage-layer failure from a disk-backed [`NetworkSource`]
    /// (classified so callers can route on the failure class rather
    /// than pattern-match on message text).
    Storage {
        /// What class of failure this is.
        kind: StorageFaultKind,
        /// Human-readable detail from the storage layer.
        message: String,
    },
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            NetworkError::UnknownPattern(p) => write!(f, "unknown pattern {p:?}"),
            NetworkError::BadEdgeLength { length, euclidean } => write!(
                f,
                "edge length {length} shorter than euclidean distance {euclidean} (or non-positive)"
            ),
            NetworkError::BadCoordinate(x, y) => write!(f, "bad coordinate ({x}, {y})"),
            NetworkError::NoSuchEdge { from, to } => {
                write!(f, "delta update targets missing edge {from} -> {to}")
            }
            NetworkError::PatternTableFull => {
                write!(f, "pattern table exhausted its u16 id space")
            }
            NetworkError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetworkError::Traffic(e) => write!(f, "traffic error: {e}"),
            NetworkError::Storage { kind, message } => {
                write!(f, "storage failure ({kind:?}): {message}")
            }
        }
    }
}

impl std::error::Error for NetworkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetworkError::Traffic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<traffic::TrafficError> for NetworkError {
    fn from(e: traffic::TrafficError) -> Self {
        NetworkError::Traffic(e)
    }
}

/// Convenient `Result` alias for this crate.
pub type Result<T> = std::result::Result<T, NetworkError>;

/// Re-export: road classes live in the traffic crate (they index the
/// pattern schema) but are a core part of the network vocabulary.
pub use traffic::RoadClass;
