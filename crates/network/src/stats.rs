//! Summary statistics for a network (printed by the experiment
//! harness next to the paper's dataset description).

use traffic::RoadClass;

use crate::RoadNetwork;

/// Size and composition summary of a [`RoadNetwork`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed edges.
    pub directed_edges: usize,
    /// Directed edge count per road class, in [`RoadClass::ALL`] order.
    pub class_counts: [usize; 4],
    /// Mean out-degree.
    pub avg_out_degree: f64,
    /// Total length of all directed edges, miles.
    pub total_miles: f64,
    /// Width and height of the bounding box, miles.
    pub extent: (f64, f64),
}

impl NetworkStats {
    /// Compute statistics for `net`.
    pub fn of(net: &RoadNetwork) -> NetworkStats {
        let mut class_counts = [0usize; 4];
        let mut total_miles = 0.0;
        let mut directed_edges = 0usize;
        for n in net.node_ids() {
            for e in net.neighbors(n).expect("node id from iterator") {
                class_counts[e.class.index()] += 1;
                total_miles += e.distance;
                directed_edges += 1;
            }
        }
        let nodes = net.n_nodes();
        let extent = match net.bounding_box() {
            Some((min, max)) => (max.x - min.x, max.y - min.y),
            None => (0.0, 0.0),
        };
        NetworkStats {
            nodes,
            directed_edges,
            class_counts,
            avg_out_degree: if nodes == 0 {
                0.0
            } else {
                directed_edges as f64 / nodes as f64
            },
            total_miles,
            extent,
        }
    }
}

impl std::fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} nodes, {} directed edges (avg out-degree {:.2}), {:.0} road-miles, extent {:.1} x {:.1} mi",
            self.nodes, self.directed_edges, self.avg_out_degree, self.total_miles,
            self.extent.0, self.extent.1
        )?;
        for (i, c) in RoadClass::ALL.iter().enumerate() {
            writeln!(f, "  {c}: {} edges", self.class_counts[i])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic::PatternSchema;

    #[test]
    fn stats_count_classes() {
        let schema = PatternSchema::table1().unwrap();
        let mut net = crate::RoadNetwork::with_schema(&schema);
        let a = net.add_node(0.0, 0.0).unwrap();
        let b = net.add_node(1.0, 0.0).unwrap();
        net.add_class_edge(a, b, 1.0, RoadClass::InboundHighway)
            .unwrap();
        net.add_class_edge(b, a, 1.0, RoadClass::OutboundHighway)
            .unwrap();
        net.add_bidirectional(a, b, 1.2, RoadClass::LocalBoston)
            .unwrap();
        let s = NetworkStats::of(&net);
        assert_eq!(s.nodes, 2);
        assert_eq!(s.directed_edges, 4);
        assert_eq!(s.class_counts, [1, 1, 2, 0]);
        assert!((s.avg_out_degree - 2.0).abs() < 1e-12);
        assert!((s.total_miles - 4.4).abs() < 1e-9);
        let text = s.to_string();
        assert!(text.contains("inbound-highway: 1 edges"));
    }
}
