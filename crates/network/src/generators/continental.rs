//! The continental tier: seeded million-node networks, generated
//! *lazily*.
//!
//! The paper's experiments top out at county scale (≈14k nodes). To
//! exercise CCAM at continental scale — where the graph no longer fits
//! comfortably in memory and builds must stream — this generator tiles
//! a `cells_x × cells_y` lattice of `cell_w × cell_h` street cells and
//! defines every node location and every adjacency list as a **pure
//! function of `(config, node id)`**:
//!
//! * jittered lattice positions from a splitmix64 hash of the id (the
//!   same mixing constants as `RoadNetwork::seeded_delta`);
//! * deterministic edge rules — per-cell row chains, a column-0 spine
//!   per cell, guaranteed corner stitches between adjacent cells (so
//!   the network is provably connected), plus hash-thinned extra
//!   vertical streets;
//! * per-edge distance `euclidean × (1 + wiggle)` with the wiggle
//!   hashed from the unordered node pair, so both endpoints derive the
//!   identical (and metric-valid) length;
//! * the paper's Table 1 road classes: a central band of cells carries
//!   a transcontinental highway corridor (toward the center as
//!   [`RoadClass::InboundHighway`], away as
//!   [`RoadClass::OutboundHighway`]), core cells are
//!   [`RoadClass::LocalBoston`], everything else
//!   [`RoadClass::LocalOutside`] — each with its CapeCod pattern.
//!
//! [`ContinentalNet`] implements [`NetworkSource`] directly over those
//! rules, so the CCAM bulk builder can stream a million-node network
//! to pages without the graph ever existing in memory; [`continental`]
//! materializes the identical [`RoadNetwork`] (test- and small-scale
//! path). The two agree node-for-node and edge-for-edge, pinned by the
//! tests below.

use traffic::{CapeCodPattern, PatternSchema, RoadClass};

use crate::source::NetworkSource;
use crate::{Edge, NetworkError, NodeId, PatternId, Point, Result, RoadNetwork};

/// Parameters for the continental tier. The network has
/// `cells_x · cells_y · cell_w · cell_h` nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct ContinentalConfig {
    /// Hash seed; equal configs with equal seeds are identical
    /// networks, bit for bit.
    pub seed: u64,
    /// Cell columns.
    pub cells_x: u32,
    /// Cell rows.
    pub cells_y: u32,
    /// Street-lattice columns per cell.
    pub cell_w: u32,
    /// Street-lattice rows per cell.
    pub cell_h: u32,
    /// Lattice spacing, miles.
    pub spacing: f64,
    /// Positional jitter as a fraction of spacing (< 0.5 keeps the
    /// lattice planar).
    pub jitter: f64,
    /// Per-mille of candidate extra vertical streets to keep (adds
    /// cycles beyond the guaranteed spanning structure).
    pub extra_link_permille: u32,
    /// Half-width, in cells, of the `LocalBoston` core around the
    /// center cell.
    pub core_cells: u32,
}

impl ContinentalConfig {
    /// The metro-huge tier: 16×16 cells of 64×64 nodes = 1,048,576
    /// nodes — the million-node CCAM scaling target.
    pub fn metro_huge(seed: u64) -> Self {
        ContinentalConfig {
            seed,
            cells_x: 16,
            cells_y: 16,
            cell_w: 64,
            cell_h: 64,
            spacing: 0.05,
            jitter: 0.3,
            extra_link_permille: 300,
            core_cells: 1,
        }
    }

    /// A scaled-down huge tier (4×4 cells of 32×32 = 16,384 nodes)
    /// with the same structure, for the CI smoke gate.
    pub fn smoke(seed: u64) -> Self {
        ContinentalConfig {
            cells_x: 4,
            cells_y: 4,
            cell_w: 32,
            cell_h: 32,
            ..ContinentalConfig::metro_huge(seed)
        }
    }

    /// Total node count.
    pub fn n_nodes(&self) -> usize {
        (self.cells_x as usize) * (self.cells_y as usize) * self.nodes_per_cell()
    }

    fn nodes_per_cell(&self) -> usize {
        (self.cell_w as usize) * (self.cell_h as usize)
    }
}

/// splitmix64 finalizer — the repo's standard seeded hash (see
/// `RoadNetwork::seeded_delta`).
fn mix64(seed: u64, v: u64) -> u64 {
    let mut z = seed
        .wrapping_add(v.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a hash to `[0, 1)` with full 53-bit mantissa entropy.
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A node's decoded lattice coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Coords {
    cx: u32,
    cy: u32,
    i: u32,
    j: u32,
}

/// A lazily generated continental network: every [`NetworkSource`]
/// call recomputes from the config, so the memory footprint is the
/// pattern table and nothing else, at any node count.
pub struct ContinentalNet {
    cfg: ContinentalConfig,
    patterns: Vec<CapeCodPattern>,
    max_speed: f64,
}

impl ContinentalNet {
    /// Validate the config and set up the pattern table.
    pub fn new(cfg: ContinentalConfig) -> Result<ContinentalNet> {
        if cfg.cell_w == 0 || cfg.cell_h == 0 || cfg.cells_x == 0 || cfg.cells_y == 0 {
            return Err(NetworkError::BadCoordinate(0.0, 0.0));
        }
        if cfg.n_nodes() > u32::MAX as usize {
            return Err(NetworkError::BadCoordinate(cfg.n_nodes() as f64, 0.0));
        }
        let schema = PatternSchema::table1()?;
        let patterns: Vec<CapeCodPattern> = RoadClass::ALL
            .iter()
            .map(|c| schema.pattern(*c).clone())
            .collect();
        let max_speed = patterns
            .iter()
            .map(CapeCodPattern::max_speed)
            .fold(f64::NEG_INFINITY, f64::max);
        Ok(ContinentalNet {
            cfg,
            patterns,
            max_speed,
        })
    }

    /// The generating config.
    pub fn config(&self) -> &ContinentalConfig {
        &self.cfg
    }

    /// The pattern table (one [`CapeCodPattern`] per [`RoadClass`], in
    /// [`RoadClass::ALL`] order — matching the [`PatternId`]s the
    /// edges carry). Bulk builders persist this alongside the pages.
    pub fn patterns(&self) -> &[CapeCodPattern] {
        &self.patterns
    }

    fn decode(&self, node: NodeId) -> Result<Coords> {
        let id = node.index();
        if id >= self.cfg.n_nodes() {
            return Err(NetworkError::UnknownNode(node));
        }
        let npc = self.cfg.nodes_per_cell();
        let (cell, k) = (id / npc, id % npc);
        Ok(Coords {
            cx: (cell % self.cfg.cells_x as usize) as u32,
            cy: (cell / self.cfg.cells_x as usize) as u32,
            i: (k % self.cfg.cell_w as usize) as u32,
            j: (k / self.cfg.cell_w as usize) as u32,
        })
    }

    fn encode(&self, c: Coords) -> NodeId {
        let npc = self.cfg.nodes_per_cell();
        let cell = (c.cy as usize) * (self.cfg.cells_x as usize) + c.cx as usize;
        NodeId((cell * npc + (c.j as usize) * (self.cfg.cell_w as usize) + c.i as usize) as u32)
    }

    /// Global (unjittered) lattice column/row of a node.
    fn lattice(&self, c: Coords) -> (u64, u64) {
        (
            u64::from(c.cx) * u64::from(self.cfg.cell_w) + u64::from(c.i),
            u64::from(c.cy) * u64::from(self.cfg.cell_h) + u64::from(c.j),
        )
    }

    fn point_of(&self, c: Coords) -> Point {
        let (gx, gy) = self.lattice(c);
        let id = u64::from(self.encode(c).0);
        let jx = (unit_f64(mix64(self.cfg.seed, id.wrapping_mul(2))) - 0.5)
            * 2.0
            * self.cfg.jitter
            * self.cfg.spacing;
        let jy = (unit_f64(mix64(self.cfg.seed, id.wrapping_mul(2) + 1)) - 0.5)
            * 2.0
            * self.cfg.jitter
            * self.cfg.spacing;
        Point {
            x: gx as f64 * self.cfg.spacing + jx,
            y: gy as f64 * self.cfg.spacing + jy,
        }
    }

    /// Whether a node sits on the transcontinental highway corridor:
    /// row 0 of every cell in the central band of cell rows.
    fn on_highway(&self, c: Coords) -> bool {
        c.j == 0 && c.cy == self.cfg.cells_y / 2
    }

    /// Whether a cell belongs to the `LocalBoston` core.
    fn in_core(&self, c: Coords) -> bool {
        let (ccx, ccy) = (self.cfg.cells_x / 2, self.cfg.cells_y / 2);
        c.cx.abs_diff(ccx) <= self.cfg.core_cells && c.cy.abs_diff(ccy) <= self.cfg.core_cells
    }

    /// Keep the extra vertical street whose *lower* endpoint is `low`?
    fn keep_extra(&self, low: Coords) -> bool {
        let id = u64::from(self.encode(low).0);
        mix64(self.cfg.seed ^ 0x5EED_11BB, id) % 1000 < u64::from(self.cfg.extra_link_permille)
    }

    /// The directed edge `from → to` under the generation rules.
    fn edge(&self, from: Coords, to: Coords) -> Edge {
        let (a, b) = (self.encode(from), self.encode(to));
        let (pa, pb) = (self.point_of(from), self.point_of(to));
        let (lo, hi) = (a.0.min(b.0), a.0.max(b.0));
        let wiggle = unit_f64(mix64(
            self.cfg.seed ^ 0xD15_7A4CE,
            (u64::from(lo) << 32) | u64::from(hi),
        )) * 0.15;
        let class = if self.on_highway(from) && self.on_highway(to) {
            // Inbound points toward the center meridian; ties (mirror
            // pairs around the center) resolve outbound.
            let center =
                (u64::from(self.cfg.cells_x) * u64::from(self.cfg.cell_w) - 1) as f64 / 2.0;
            let (gxf, _) = self.lattice(from);
            let (gxt, _) = self.lattice(to);
            if (gxt as f64 - center).abs() < (gxf as f64 - center).abs() {
                RoadClass::InboundHighway
            } else {
                RoadClass::OutboundHighway
            }
        } else if self.in_core(from) && self.in_core(to) {
            RoadClass::LocalBoston
        } else {
            RoadClass::LocalOutside
        };
        Edge {
            to: b,
            distance: pa.distance(&pb) * (1.0 + wiggle),
            class,
            pattern: PatternId(class.index() as u16),
        }
    }
}

impl NetworkSource for ContinentalNet {
    fn n_nodes(&self) -> usize {
        self.cfg.n_nodes()
    }

    fn find_node(&self, node: NodeId) -> Result<Point> {
        Ok(self.point_of(self.decode(node)?))
    }

    fn successors(&self, node: NodeId) -> Result<Vec<Edge>> {
        let mut out = Vec::new();
        self.successors_into(node, &mut out)?;
        Ok(out)
    }

    fn successors_into(&self, node: NodeId, out: &mut Vec<Edge>) -> Result<()> {
        out.clear();
        let c = self.decode(node)?;
        let cfg = &self.cfg;
        let mut push = |to: Coords| out.push(self.edge(c, to));

        // 1. row chain, left then right
        if c.i > 0 {
            push(Coords { i: c.i - 1, ..c });
        }
        if c.i + 1 < cfg.cell_w {
            push(Coords { i: c.i + 1, ..c });
        }
        // 2. corner stitches to the horizontally adjacent cells
        if c.i == 0 && c.j == 0 && c.cx > 0 {
            push(Coords {
                cx: c.cx - 1,
                i: cfg.cell_w - 1,
                ..c
            });
        }
        if c.i == cfg.cell_w - 1 && c.j == 0 && c.cx + 1 < cfg.cells_x {
            push(Coords {
                cx: c.cx + 1,
                i: 0,
                ..c
            });
        }
        // 3. column-0 spine, down then up
        if c.i == 0 {
            if c.j > 0 {
                push(Coords { j: c.j - 1, ..c });
            }
            if c.j + 1 < cfg.cell_h {
                push(Coords { j: c.j + 1, ..c });
            }
            // 4. corner stitches to the vertically adjacent cells
            if c.j == 0 && c.cy > 0 {
                push(Coords {
                    cy: c.cy - 1,
                    j: cfg.cell_h - 1,
                    ..c
                });
            }
            if c.j == cfg.cell_h - 1 && c.cy + 1 < cfg.cells_y {
                push(Coords {
                    cy: c.cy + 1,
                    j: 0,
                    ..c
                });
            }
        }
        // 5. hash-thinned extra vertical streets (columns ≥ 1; column 0
        // already has the spine)
        if c.i >= 1 {
            if c.j > 0 && self.keep_extra(Coords { j: c.j - 1, ..c }) {
                push(Coords { j: c.j - 1, ..c });
            }
            if c.j + 1 < cfg.cell_h && self.keep_extra(c) {
                push(Coords { j: c.j + 1, ..c });
            }
        }
        Ok(())
    }

    fn pattern(&self, id: PatternId) -> Result<&CapeCodPattern> {
        self.patterns
            .get(usize::from(id.0))
            .ok_or(NetworkError::UnknownPattern(id))
    }

    fn max_speed(&self) -> f64 {
        self.max_speed
    }
}

/// Materialize the continental network as a [`RoadNetwork`] —
/// node-for-node and edge-for-edge identical to [`ContinentalNet`]
/// over the same config (pinned by the equivalence test). Intended for
/// tests and small tiers; the million-node tier should stream through
/// [`ContinentalNet`] instead.
pub fn continental(cfg: &ContinentalConfig) -> Result<RoadNetwork> {
    let lazy = ContinentalNet::new(cfg.clone())?;
    let schema = PatternSchema::table1()?;
    let mut net = RoadNetwork::with_schema(&schema);
    let n = lazy.n_nodes();
    for id in 0..n {
        let p = lazy.find_node(NodeId(id as u32))?;
        net.add_node(p.x, p.y)?;
    }
    let mut edges = Vec::new();
    for id in 0..n {
        let u = NodeId(id as u32);
        lazy.successors_into(u, &mut edges)?;
        for e in &edges {
            net.add_class_edge(u, e.to, e.distance, e.class)?;
        }
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::is_connected_undirected;

    fn tiny(seed: u64) -> ContinentalConfig {
        ContinentalConfig {
            cells_x: 4,
            cells_y: 4,
            cell_w: 6,
            cell_h: 6,
            ..ContinentalConfig::metro_huge(seed)
        }
    }

    #[test]
    fn node_count_matches_config() {
        assert_eq!(ContinentalConfig::metro_huge(0).n_nodes(), 1 << 20);
        assert_eq!(ContinentalConfig::smoke(0).n_nodes(), 16_384);
        assert_eq!(tiny(0).n_nodes(), 576);
    }

    #[test]
    fn materialized_is_connected_and_classed() {
        let net = continental(&tiny(7)).unwrap();
        assert_eq!(net.n_nodes(), 576);
        assert!(is_connected_undirected(&net));
        let mut class_seen = [false; 4];
        for u in net.node_ids() {
            for e in net.neighbors(u).unwrap() {
                class_seen[e.class.index()] = true;
                // every directed edge has a reverse companion
                assert!(
                    net.neighbors(e.to).unwrap().iter().any(|r| r.to == u),
                    "edge {u} -> {} has no reverse",
                    e.to
                );
            }
        }
        assert_eq!(class_seen, [true; 4], "some road class missing");
    }

    #[test]
    fn lazy_equals_materialized() {
        let cfg = tiny(42);
        let lazy = ContinentalNet::new(cfg.clone()).unwrap();
        let net = continental(&cfg).unwrap();
        assert_eq!(NetworkSource::n_nodes(&lazy), net.n_nodes());
        assert!((lazy.max_speed() - NetworkSource::max_speed(&net)).abs() < 1e-12);
        for u in net.node_ids() {
            assert_eq!(
                lazy.find_node(u).unwrap(),
                *net.point(u).unwrap(),
                "node {u} location diverged"
            );
            assert_eq!(
                lazy.successors(u).unwrap().as_slice(),
                net.neighbors(u).unwrap(),
                "node {u} adjacency diverged"
            );
        }
        for pid in 0..4u16 {
            assert_eq!(
                NetworkSource::pattern(&lazy, PatternId(pid)).unwrap(),
                NetworkSource::pattern(&net, PatternId(pid)).unwrap()
            );
        }
    }

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let a = continental(&tiny(1)).unwrap();
        let b = continental(&tiny(1)).unwrap();
        let c = continental(&tiny(2)).unwrap();
        assert_eq!(a.n_edges(), b.n_edges());
        for u in a.node_ids() {
            assert_eq!(a.point(u).unwrap(), b.point(u).unwrap());
        }
        let moved = a
            .node_ids()
            .filter(|&u| a.point(u).unwrap() != c.point(u).unwrap())
            .count();
        assert!(moved > 500, "different seed barely moved nodes: {moved}");
    }

    #[test]
    fn highway_corridor_spans_the_band() {
        let cfg = tiny(3);
        let net = continental(&cfg).unwrap();
        let lazy = ContinentalNet::new(cfg.clone()).unwrap();
        let mut inbound = 0usize;
        let mut outbound = 0usize;
        for u in net.node_ids() {
            for e in net.neighbors(u).unwrap() {
                match e.class {
                    RoadClass::InboundHighway => inbound += 1,
                    RoadClass::OutboundHighway => outbound += 1,
                    _ => {
                        // locals never sit fully on the corridor row
                        let c_from = lazy.decode(u).unwrap();
                        let c_to = lazy.decode(e.to).unwrap();
                        assert!(!(lazy.on_highway(c_from) && lazy.on_highway(c_to)));
                    }
                }
            }
        }
        // the corridor crosses the full width, one chain per band cell
        let corridor = (cfg.cells_x * cfg.cell_w - 1) as usize;
        assert_eq!(inbound + outbound, 2 * corridor);
        assert!(inbound > 0 && outbound > 0);
    }

    #[test]
    fn rejects_degenerate_and_oversized_configs() {
        assert!(ContinentalNet::new(ContinentalConfig {
            cell_w: 0,
            ..tiny(0)
        })
        .is_err());
        assert!(ContinentalNet::new(ContinentalConfig {
            cells_x: 1 << 16,
            cells_y: 1 << 16,
            ..tiny(0)
        })
        .is_err());
    }
}
