//! Random geometric networks for property tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traffic::{PatternSchema, RoadClass};

use crate::generators::UnionFind;
use crate::{NodeId, Result, RoadNetwork};

/// `n` nodes uniform in a `side × side` mile square; each node is
/// connected bidirectionally to its `k` nearest neighbors, and a
/// spanning pass guarantees undirected connectivity. Classes are all
/// [`RoadClass::LocalOutside`]; patterns from Table 1.
pub fn random_geometric(n: usize, side: f64, k: usize, seed: u64) -> Result<RoadNetwork> {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = PatternSchema::table1()?;
    let mut net = RoadNetwork::with_schema(&schema);

    let mut pts = Vec::with_capacity(n);
    for _ in 0..n {
        let (x, y) = (rng.gen_range(0.0..side), rng.gen_range(0.0..side));
        net.add_node(x, y)?;
        pts.push((x, y));
    }

    let dist = |a: usize, b: usize| -> f64 {
        let (ax, ay) = pts[a];
        let (bx, by) = pts[b];
        (ax - bx).hypot(ay - by)
    };

    let mut uf = UnionFind::new(n);
    let mut added = std::collections::HashSet::new();
    let connect = |net: &mut RoadNetwork,
                   uf: &mut UnionFind,
                   added: &mut std::collections::HashSet<(usize, usize)>,
                   a: usize,
                   b: usize|
     -> Result<()> {
        let key = (a.min(b), a.max(b));
        if a == b || !added.insert(key) {
            return Ok(());
        }
        uf.union(a as u32, b as u32);
        net.add_bidirectional(
            NodeId(a as u32),
            NodeId(b as u32),
            dist(a, b).max(1e-6),
            RoadClass::LocalOutside,
        )
    };

    // k nearest neighbors (O(n²) — property-test scale only).
    for a in 0..n {
        let mut order: Vec<usize> = (0..n).filter(|&b| b != a).collect();
        order.sort_by(|&x, &y| dist(a, x).partial_cmp(&dist(a, y)).expect("finite"));
        for &b in order.iter().take(k) {
            connect(&mut net, &mut uf, &mut added, a, b)?;
        }
    }

    // Connectivity pass: link each remaining component to its nearest
    // outside node.
    loop {
        let root0 = uf.find(0);
        let Some(stranded) = (0..n).find(|&i| uf.find(i as u32) != root0) else {
            break;
        };
        let mut best: Option<(usize, f64)> = None;
        for b in 0..n {
            if uf.find(b as u32) == root0 {
                let d = dist(stranded, b);
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((b, d));
                }
            }
        }
        let (b, _) = best.expect("root component is non-empty");
        connect(&mut net, &mut uf, &mut added, stranded, b)?;
    }

    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::is_connected_undirected;

    #[test]
    fn generates_connected_network() {
        let net = random_geometric(60, 3.0, 3, 42).unwrap();
        assert_eq!(net.n_nodes(), 60);
        assert!(net.n_edges() >= 2 * 59); // at least a spanning tree, doubled
        assert!(is_connected_undirected(&net));
    }

    #[test]
    fn deterministic_for_seed() {
        let a = random_geometric(40, 2.0, 3, 7).unwrap();
        let b = random_geometric(40, 2.0, 3, 7).unwrap();
        assert_eq!(a.n_nodes(), b.n_nodes());
        assert_eq!(a.n_edges(), b.n_edges());
        for (pa, pb) in a.node_ids().zip(b.node_ids()) {
            assert_eq!(a.point(pa).unwrap(), b.point(pb).unwrap());
        }
        let c = random_geometric(40, 2.0, 3, 8).unwrap();
        let same = a
            .node_ids()
            .all(|i| a.point(i).unwrap() == c.point(i).unwrap());
        assert!(!same, "different seeds should differ");
    }

    #[test]
    fn tiny_network() {
        let net = random_geometric(2, 1.0, 1, 1).unwrap();
        assert_eq!(net.n_nodes(), 2);
        assert!(is_connected_undirected(&net));
    }
}
