//! The Suffolk-like metro network — the experiment substrate.
//!
//! The paper evaluates on a TIGER/Line extract of Suffolk County, MA
//! (metropolitan Boston): 14,456 nodes and 20,461 edges across four
//! road classes. That dataset is not redistributable here, so this
//! generator produces a deterministic synthetic stand-in with the same
//! structural ingredients (see DESIGN.md §3):
//!
//! * a **dense urban core** (disc of radius `core_radius`) of
//!   jittered local streets, class [`RoadClass::LocalBoston`];
//! * a **sparser suburban grid** out to `extent`, class
//!   [`RoadClass::LocalOutside`];
//! * `n_highways` **radial highways** from the core to the edge, each
//!   a pair of one-way chains — toward the core as
//!   [`RoadClass::InboundHighway`], away as
//!   [`RoadClass::OutboundHighway`] — with interchanges onto the local
//!   grid;
//! * an optional **ring highway** just outside the core;
//! * local streets thinned to a realistic average degree (a spanning
//!   tree is always retained, so the network stays connected).
//!
//! With default parameters the network has ≈14–15k nodes and ≈20k
//! undirected road segments (≈40k directed edges), matching the
//! paper's dataset scale under the reading that TIGER segment counts
//! are undirected.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use traffic::{PatternSchema, RoadClass};

use crate::generators::UnionFind;
use crate::{NodeId, Point, Result, RoadNetwork};

/// Parameters for [`suffolk_like`]. Distances in miles.
#[derive(Debug, Clone, PartialEq)]
pub struct MetroConfig {
    /// RNG seed; equal configs with equal seeds produce identical
    /// networks.
    pub seed: u64,
    /// Half-width of the square region (networks span `2·extent` per
    /// axis).
    pub extent: f64,
    /// Radius of the urban core disc.
    pub core_radius: f64,
    /// Street spacing inside the core.
    pub core_spacing: f64,
    /// Street spacing outside the core.
    pub outer_spacing: f64,
    /// Positional jitter as a fraction of local spacing.
    pub jitter: f64,
    /// Number of radial highways.
    pub n_highways: usize,
    /// Node spacing along highways.
    pub highway_spacing: f64,
    /// Probability of keeping a non-spanning-tree local street.
    pub keep_extra_edge_prob: f64,
    /// Every k-th highway node gets an interchange to the local grid.
    pub interchange_every: usize,
    /// Whether to add a ring highway just outside the core.
    pub ring: bool,
    /// Whether to carve a harbor — a water sector with no local
    /// streets, crossed only by bridge highways. Suffolk County is
    /// bounded by Boston Harbor; the resulting detours are what makes
    /// network distance exceed Euclidean distance, the gap the
    /// boundary-node estimator (§5) exploits.
    pub harbor: bool,
    /// Harbor sector center angle, radians (default: southeast).
    pub harbor_angle: f64,
    /// Harbor sector half-angle, radians.
    pub harbor_half_angle: f64,
}

impl Default for MetroConfig {
    /// Full experiment scale: ≈14–15k nodes (the paper's dataset size).
    fn default() -> Self {
        MetroConfig {
            seed: 0x5EED_CAFE,
            extent: 4.0,
            core_radius: 2.0,
            core_spacing: 0.05,
            outer_spacing: 0.08,
            jitter: 0.3,
            n_highways: 8,
            highway_spacing: 0.25,
            keep_extra_edge_prob: 0.45,
            interchange_every: 4,
            ring: true,
            harbor: true,
            harbor_angle: -std::f64::consts::FRAC_PI_4,
            harbor_half_angle: 0.45,
        }
    }
}

impl MetroConfig {
    /// A reduced configuration (≈1–2k nodes) for tests and quick runs.
    pub fn small(seed: u64) -> Self {
        MetroConfig {
            seed,
            extent: 2.0,
            core_radius: 1.0,
            core_spacing: 0.14,
            outer_spacing: 0.22,
            ..MetroConfig::default()
        }
    }

    /// A medium configuration (≈3–4k nodes) covering the full 8×8-mile
    /// extent — same trip distances as the paper's workloads at a
    /// fraction of the node count; the experiment harness's default.
    pub fn medium(seed: u64) -> Self {
        MetroConfig {
            seed,
            core_spacing: 0.11,
            outer_spacing: 0.18,
            ..MetroConfig::default()
        }
    }
}

/// Spatial hash over generated points for nearest-neighbor stitching.
struct BucketIndex {
    cell: f64,
    buckets: HashMap<(i32, i32), Vec<(NodeId, Point)>>,
}

impl BucketIndex {
    fn new(cell: f64) -> Self {
        BucketIndex {
            cell,
            buckets: HashMap::new(),
        }
    }

    fn key(&self, p: &Point) -> (i32, i32) {
        (
            (p.x / self.cell).floor() as i32,
            (p.y / self.cell).floor() as i32,
        )
    }

    fn insert(&mut self, id: NodeId, p: Point) {
        self.buckets.entry(self.key(&p)).or_default().push((id, p));
    }

    /// Nearest inserted node to `p`, searching outward ring by ring.
    fn nearest(&self, p: &Point) -> Option<(NodeId, f64)> {
        let (cx, cy) = self.key(p);
        let mut best: Option<(NodeId, f64)> = None;
        for radius in 0i32..16 {
            for dx in -radius..=radius {
                for dy in -radius..=radius {
                    if dx.abs().max(dy.abs()) != radius {
                        continue; // ring cells only
                    }
                    if let Some(v) = self.buckets.get(&(cx + dx, cy + dy)) {
                        for (id, q) in v {
                            let d = p.distance(q);
                            if best.is_none_or(|(_, bd)| d < bd) {
                                best = Some((*id, d));
                            }
                        }
                    }
                }
            }
            // Once we have a candidate, one extra ring guarantees
            // correctness under the hash geometry.
            if let Some((_, bd)) = best {
                if bd <= (radius as f64) * self.cell {
                    break;
                }
            }
        }
        best
    }
}

/// `true` if `(x, y)` lies in the harbor water sector.
fn in_harbor(cfg: &MetroConfig, x: f64, y: f64) -> bool {
    if !cfg.harbor {
        return false;
    }
    let r = x.hypot(y);
    if r <= cfg.core_radius * 0.55 {
        return false; // downtown waterfront stays on land
    }
    let angle = y.atan2(x);
    let mut diff = angle - cfg.harbor_angle;
    while diff > std::f64::consts::PI {
        diff -= std::f64::consts::TAU;
    }
    while diff < -std::f64::consts::PI {
        diff += std::f64::consts::TAU;
    }
    diff.abs() < cfg.harbor_half_angle
}

/// Generate the Suffolk-like metro network.
pub fn suffolk_like(cfg: &MetroConfig) -> Result<RoadNetwork> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let schema = PatternSchema::table1()?;
    let mut net = RoadNetwork::with_schema(&schema);

    let mut index = BucketIndex::new(cfg.outer_spacing.max(cfg.core_spacing) * 1.5);
    let mut local_nodes: Vec<NodeId> = Vec::new();
    // candidate undirected local street segments
    let mut candidates: Vec<(NodeId, NodeId)> = Vec::new();

    // --- 1. core grid (disc) ------------------------------------------------
    let core_ids = lay_grid(
        &mut net,
        &mut rng,
        cfg.core_spacing,
        cfg.jitter,
        -cfg.core_radius,
        cfg.core_radius,
        |x, y| x.hypot(y) <= cfg.core_radius && !in_harbor(cfg, x, y),
        &mut local_nodes,
        &mut candidates,
    )?;
    for &(id, p) in &core_ids {
        index.insert(id, p);
    }

    // --- 2. outer grid (annulus to the square edge) -------------------------
    let outer_ids = lay_grid(
        &mut net,
        &mut rng,
        cfg.outer_spacing,
        cfg.jitter,
        -cfg.extent,
        cfg.extent,
        |x, y| x.hypot(y) > cfg.core_radius && !in_harbor(cfg, x, y),
        &mut local_nodes,
        &mut candidates,
    )?;

    // --- 3. stitch outer grid to core along the seam ------------------------
    let seam = cfg.core_radius + 1.6 * cfg.outer_spacing;
    for &(id, p) in &outer_ids {
        let r = p.x.hypot(p.y);
        if r <= seam {
            if let Some((near, _)) = index.nearest(&p) {
                candidates.push((id, near));
            }
        }
        index.insert(id, p);
    }

    // --- 4. thin local streets, keeping a spanning tree ---------------------
    let mut uf = UnionFind::new(net.n_nodes() + 4096);
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    shuffle(&mut order, &mut rng);
    let mut kept: Vec<(NodeId, NodeId)> = Vec::with_capacity(candidates.len());
    let mut extras: Vec<(NodeId, NodeId)> = Vec::new();
    for i in order {
        let (a, b) = candidates[i];
        if uf.union(a.0, b.0) {
            kept.push((a, b));
        } else {
            extras.push((a, b));
        }
    }
    for (a, b) in extras {
        if rng.gen_bool(cfg.keep_extra_edge_prob) {
            kept.push((a, b));
        }
    }
    for (a, b) in kept {
        let d = net.euclidean(a, b)?;
        let class = local_class(&net, cfg, a, b)?;
        net.add_bidirectional(a, b, d.max(1e-6), class)?;
    }

    // --- 5. radial highways --------------------------------------------------
    for h in 0..cfg.n_highways {
        let theta = (h as f64) / (cfg.n_highways as f64) * std::f64::consts::TAU
            + rng.gen_range(-0.05..0.05);
        let (dx, dy) = (theta.cos(), theta.sin());
        // from just inside the core to the edge of the square region
        let r_start = cfg.core_radius * 0.2;
        let r_end = cfg.extent / dx.abs().max(dy.abs()).max(1e-9) * 0.95;
        let r_end = r_end.min(cfg.extent * 1.35);
        let mut chain: Vec<NodeId> = Vec::new();
        let mut r = r_start;
        while r <= r_end {
            let id = net.add_node(r * dx, r * dy)?;
            chain.push(id);
            r += cfg.highway_spacing;
        }
        for w in chain.windows(2) {
            let (inner, outer) = (w[0], w[1]);
            let d = net.euclidean(inner, outer)?;
            // toward the core = inbound; away = outbound
            net.add_class_edge(outer, inner, d, RoadClass::InboundHighway)?;
            net.add_class_edge(inner, outer, d, RoadClass::OutboundHighway)?;
        }
        // interchanges onto the local grid (not mid-bridge: skip sites
        // whose nearest street is far away, i.e. over water)
        let max_ramp = 4.0 * cfg.outer_spacing;
        for (i, &hw) in chain.iter().enumerate() {
            if i % cfg.interchange_every == 0 {
                let p = *net.point(hw)?;
                if in_harbor(cfg, p.x, p.y) {
                    continue; // no exits mid-bridge
                }
                if let Some((near, d)) = index.nearest(&p) {
                    if d <= max_ramp {
                        let class = local_class(&net, cfg, hw, near)?;
                        net.add_bidirectional(hw, near, d.max(1e-6), class)?;
                    }
                }
            }
        }
    }

    // --- 6. ring highway ------------------------------------------------------
    if cfg.ring {
        let r = cfg.core_radius + 3.0 * cfg.outer_spacing;
        let n_ring = ((std::f64::consts::TAU * r) / cfg.highway_spacing).ceil() as usize;
        let mut ring: Vec<NodeId> = Vec::with_capacity(n_ring);
        for k in 0..n_ring {
            let a = (k as f64) / (n_ring as f64) * std::f64::consts::TAU;
            ring.push(net.add_node(r * a.cos(), r * a.sin())?);
        }
        for k in 0..n_ring {
            let (a, b) = (ring[k], ring[(k + 1) % n_ring]);
            let d = net.euclidean(a, b)?;
            // one-way pair; class assignment is arbitrary for a ring —
            // clockwise as outbound, counter-clockwise as inbound.
            net.add_class_edge(a, b, d, RoadClass::OutboundHighway)?;
            net.add_class_edge(b, a, d, RoadClass::InboundHighway)?;
            if k % cfg.interchange_every == 0 {
                let p = *net.point(a)?;
                if in_harbor(cfg, p.x, p.y) {
                    continue; // no exits mid-bridge
                }
                if let Some((near, d)) = index.nearest(&p) {
                    if d <= 4.0 * cfg.outer_spacing {
                        let class = local_class(&net, cfg, a, near)?;
                        net.add_bidirectional(a, near, d.max(1e-6), class)?;
                    }
                }
            }
        }
    }

    // --- 7. final connectivity sweep ------------------------------------------
    connect_components(&mut net, cfg)?;

    Ok(net)
}

/// Lay a jittered grid over `[lo, hi]²` keeping points where
/// `keep(x, y)`; records nodes and 4-neighbor candidate segments.
#[allow(clippy::too_many_arguments)]
fn lay_grid(
    net: &mut RoadNetwork,
    rng: &mut StdRng,
    spacing: f64,
    jitter: f64,
    lo: f64,
    hi: f64,
    keep: impl Fn(f64, f64) -> bool,
    local_nodes: &mut Vec<NodeId>,
    candidates: &mut Vec<(NodeId, NodeId)>,
) -> Result<Vec<(NodeId, Point)>> {
    // The grid-coordinate map is internal (left/down neighbor lookup);
    // callers get the nodes as a Vec in generation order. Returning the
    // HashMap itself would hand callers a process-random iteration
    // order (std's hasher is seeded per process), and the stitching
    // pass inserts into the spatial index *while* querying it — seeded
    // runs would produce different networks from run to run.
    let mut ids: HashMap<(i32, i32), (NodeId, Point)> = HashMap::new();
    let mut laid: Vec<(NodeId, Point)> = Vec::new();
    let n = ((hi - lo) / spacing).floor() as i32;
    for j in 0..=n {
        for i in 0..=n {
            let gx = lo + f64::from(i) * spacing;
            let gy = lo + f64::from(j) * spacing;
            if !keep(gx, gy) {
                continue;
            }
            let jx = gx + rng.gen_range(-jitter..jitter) * spacing;
            let jy = gy + rng.gen_range(-jitter..jitter) * spacing;
            let id = net.add_node(jx, jy)?;
            let p = Point { x: jx, y: jy };
            ids.insert((i, j), (id, p));
            laid.push((id, p));
            local_nodes.push(id);
            if let Some(&(left, _)) = ids.get(&(i - 1, j)) {
                candidates.push((left, id));
            }
            if let Some(&(down, _)) = ids.get(&(i, j - 1)) {
                candidates.push((down, id));
            }
        }
    }
    Ok(laid)
}

/// Local street class from endpoint radii: inside the core disc →
/// `LocalBoston`, otherwise `LocalOutside`.
fn local_class(net: &RoadNetwork, cfg: &MetroConfig, a: NodeId, b: NodeId) -> Result<RoadClass> {
    let pa = net.point(a)?;
    let pb = net.point(b)?;
    let ra = pa.x.hypot(pa.y);
    let rb = pb.x.hypot(pb.y);
    Ok(if ra.max(rb) <= cfg.core_radius * 1.02 {
        RoadClass::LocalBoston
    } else {
        RoadClass::LocalOutside
    })
}

/// Fisher–Yates shuffle with the generator's RNG (keeps `rand`'s
/// `SliceRandom` out of the public dependency surface).
fn shuffle(xs: &mut [usize], rng: &mut StdRng) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

/// If the undirected view has several components (rare — seam
/// stitching can miss), link each to the main component at its closest
/// node pair.
fn connect_components(net: &mut RoadNetwork, cfg: &MetroConfig) -> Result<()> {
    loop {
        let n = net.n_nodes();
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let rev = net.reverse_adj();
        while let Some(u) = stack.pop() {
            for e in net.neighbors(u)? {
                if !seen[e.to.index()] {
                    seen[e.to.index()] = true;
                    stack.push(e.to);
                }
            }
            for (v, _) in &rev[u.index()] {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    stack.push(*v);
                }
            }
        }
        let Some(stranded) = (0..n).find(|&i| !seen[i]) else {
            return Ok(());
        };
        // nearest seen node to the stranded one
        let sp = *net.point(NodeId(stranded as u32))?;
        let mut best: Option<(usize, f64)> = None;
        for (i, &s) in seen.iter().enumerate() {
            if s {
                let d = net.point(NodeId(i as u32))?.distance(&sp);
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((i, d));
                }
            }
        }
        let (b, d) = best.expect("component with node 0 is non-empty");
        let class = local_class(net, cfg, NodeId(stranded as u32), NodeId(b as u32))?;
        net.add_bidirectional(
            NodeId(stranded as u32),
            NodeId(b as u32),
            d.max(1e-6),
            class,
        )?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::is_connected_undirected;
    use crate::NetworkStats;

    #[test]
    fn small_metro_is_connected_and_classed() {
        let net = suffolk_like(&MetroConfig::small(11)).unwrap();
        assert!(net.n_nodes() > 300, "got {}", net.n_nodes());
        assert!(is_connected_undirected(&net));
        let stats = NetworkStats::of(&net);
        // all four classes present
        for (i, &c) in stats.class_counts.iter().enumerate() {
            assert!(c > 0, "class {i} missing: {stats}");
        }
        // inbound and outbound highway counts are paired
        assert_eq!(stats.class_counts[0], stats.class_counts[1]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = suffolk_like(&MetroConfig::small(5)).unwrap();
        let b = suffolk_like(&MetroConfig::small(5)).unwrap();
        assert_eq!(a.n_nodes(), b.n_nodes());
        assert_eq!(a.n_edges(), b.n_edges());
        let c = suffolk_like(&MetroConfig::small(6)).unwrap();
        assert!(
            a.n_nodes() != c.n_nodes() || a.n_edges() != c.n_edges(),
            "different seeds should perturb the network"
        );
    }

    #[test]
    fn core_streets_are_boston_class() {
        let net = suffolk_like(&MetroConfig::small(3)).unwrap();
        let cfg = MetroConfig::small(3);
        for u in net.node_ids() {
            for e in net.neighbors(u).unwrap() {
                if e.class == RoadClass::LocalBoston {
                    let p = net.point(u).unwrap();
                    let q = net.point(e.to).unwrap();
                    assert!(p.x.hypot(p.y) <= cfg.core_radius * 1.05);
                    assert!(q.x.hypot(q.y) <= cfg.core_radius * 1.05);
                }
            }
        }
    }

    #[test]
    fn harbor_carves_a_detour() {
        let with = suffolk_like(&MetroConfig::small(9)).unwrap();
        let without = suffolk_like(&MetroConfig {
            harbor: false,
            ..MetroConfig::small(9)
        })
        .unwrap();
        // fewer local nodes with the harbor carved out
        assert!(with.n_nodes() < without.n_nodes());
        // no local street endpoints deep inside the water sector
        let cfg = MetroConfig::small(9);
        for u in with.node_ids() {
            for e in with.neighbors(u).unwrap() {
                if e.class == RoadClass::LocalBoston || e.class == RoadClass::LocalOutside {
                    let p = with.point(u).unwrap();
                    // allow seam nodes right at the sector edge
                    let angle = p.y.atan2(p.x);
                    let diff = (angle - cfg.harbor_angle).abs();
                    let well_inside = diff < cfg.harbor_half_angle - 0.12
                        && p.x.hypot(p.y) > cfg.core_radius * 0.7;
                    assert!(
                        !well_inside,
                        "local street endpoint deep in the harbor at ({}, {})",
                        p.x, p.y
                    );
                }
            }
        }
        assert!(is_connected_undirected(&with));
    }

    #[test]
    #[ignore = "full-scale network (run explicitly: cargo test -- --ignored)"]
    fn full_scale_matches_paper_magnitude() {
        let net = suffolk_like(&MetroConfig::default()).unwrap();
        let stats = NetworkStats::of(&net);
        assert!(
            (10_000..=20_000).contains(&stats.nodes),
            "nodes {} out of paper magnitude",
            stats.nodes
        );
        assert!(is_connected_undirected(&net));
    }
}
