//! Deterministic synthetic network generators.
//!
//! Every generator takes an explicit seed and produces the same network
//! on every run. [`suffolk_like`] is the experiment substrate standing
//! in for the paper's TIGER/Line Suffolk County extract; [`grid`] and
//! [`random_geometric`] back unit and property tests.

mod continental;
mod grid;
mod metro;
mod random_geo;

pub use continental::{continental, ContinentalConfig, ContinentalNet};
pub use grid::grid;
pub use metro::{suffolk_like, MetroConfig};
pub use random_geo::random_geometric;

use crate::{NodeId, RoadNetwork};

/// Union-find over node indices, used by generators to guarantee
/// connectivity while thinning edges.
pub(crate) struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    pub(crate) fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    pub(crate) fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // path compression
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Union the sets; returns `true` if they were previously disjoint.
    pub(crate) fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        true
    }
}

/// Check that the network is connected when edges are viewed as
/// undirected (generators guarantee this; tests assert it).
pub fn is_connected_undirected(net: &RoadNetwork) -> bool {
    let n = net.n_nodes();
    if n == 0 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![NodeId(0)];
    seen[0] = true;
    let rev = net.reverse_adj();
    let mut count = 0usize;
    while let Some(u) = stack.pop() {
        count += 1;
        for e in net.neighbors(u).expect("valid id") {
            if !seen[e.to.index()] {
                seen[e.to.index()] = true;
                stack.push(e.to);
            }
        }
        for (v, _) in &rev[u.index()] {
            if !seen[v.index()] {
                seen[v.index()] = true;
                stack.push(*v);
            }
        }
    }
    count == n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0));
        assert!(uf.union(1, 3));
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(4));
    }
}
