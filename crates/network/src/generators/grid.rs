//! Regular grid networks for unit tests and micro-experiments.

use traffic::{PatternSchema, RoadClass};

use crate::{NodeId, Result, RoadNetwork};

/// An `nx × ny` grid with `spacing` miles between neighbors, all edges
/// bidirectional with class `class`, patterns from Table 1.
///
/// Node `(i, j)` (column `i`, row `j`) has id `j * nx + i`.
pub fn grid(nx: usize, ny: usize, spacing: f64, class: RoadClass) -> Result<RoadNetwork> {
    let schema = PatternSchema::table1()?;
    let mut net = RoadNetwork::with_schema(&schema);
    for j in 0..ny {
        for i in 0..nx {
            net.add_node(i as f64 * spacing, j as f64 * spacing)?;
        }
    }
    let id = |i: usize, j: usize| NodeId((j * nx + i) as u32);
    for j in 0..ny {
        for i in 0..nx {
            if i + 1 < nx {
                net.add_bidirectional(id(i, j), id(i + 1, j), spacing, class)?;
            }
            if j + 1 < ny {
                net.add_bidirectional(id(i, j), id(i, j + 1), spacing, class)?;
            }
        }
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::is_connected_undirected;

    #[test]
    fn grid_shape() {
        let net = grid(4, 3, 0.5, RoadClass::LocalOutside).unwrap();
        assert_eq!(net.n_nodes(), 12);
        // undirected edges: 3*3 horizontal + 4*2 vertical = 17 → 34 directed
        assert_eq!(net.n_edges(), 34);
        assert!(is_connected_undirected(&net));
        let (min, max) = net.bounding_box().unwrap();
        assert_eq!((min.x, min.y), (0.0, 0.0));
        assert_eq!((max.x, max.y), (1.5, 1.0));
    }

    #[test]
    fn single_row_grid() {
        let net = grid(5, 1, 1.0, RoadClass::LocalBoston).unwrap();
        assert_eq!(net.n_nodes(), 5);
        assert_eq!(net.n_edges(), 8);
        assert!(is_connected_undirected(&net));
    }
}
