//! Query-pair sampling for the §6 experiments.
//!
//! Every experiment poses batches of queries whose source and end nodes
//! are a controlled Euclidean distance apart ("varying the Euclidean
//! distance between the source and the destination nodes", §6.2 — 1 to
//! 8 miles; "about 7 to 8 miles", §6.3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{NodeId, Result, RoadNetwork};

/// A sampled source/target pair with its Euclidean distance (miles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryPair {
    /// Source node `s`.
    pub source: NodeId,
    /// End node `e`.
    pub target: NodeId,
    /// Euclidean distance between them, miles.
    pub euclidean: f64,
}

/// Sample up to `count` node pairs whose Euclidean distance lies in
/// `[dist_lo, dist_hi]` miles.
///
/// Rejection-samples uniformly over node pairs; gives up after a bounded
/// number of attempts, so sparse distance bands on small networks may
/// return fewer than `count` pairs (callers should check `len`).
pub fn sample_pairs(
    net: &RoadNetwork,
    count: usize,
    dist_lo: f64,
    dist_hi: f64,
    seed: u64,
) -> Result<Vec<QueryPair>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = net.n_nodes() as u32;
    let mut out = Vec::with_capacity(count);
    if n < 2 {
        return Ok(out);
    }
    let max_attempts = count.saturating_mul(4000).max(100_000);
    for _ in 0..max_attempts {
        if out.len() == count {
            break;
        }
        let a = NodeId(rng.gen_range(0..n));
        let b = NodeId(rng.gen_range(0..n));
        if a == b {
            continue;
        }
        let d = net.euclidean(a, b)?;
        if d >= dist_lo && d <= dist_hi {
            out.push(QueryPair {
                source: a,
                target: b,
                euclidean: d,
            });
        }
    }
    Ok(out)
}

/// Sample commute pairs: the source in the suburbs (outside
/// `downtown_radius · 1.5` from the origin), the target downtown
/// (inside `downtown_radius`), Euclidean distance within the band.
///
/// This is the §6 constant-speed comparison workload: the paper's 50%
/// improvement claim is about drivers *heading into the congested
/// core* during rush hours. Swap source/target for the evening
/// direction.
pub fn commute_pairs(
    net: &RoadNetwork,
    count: usize,
    dist_lo: f64,
    dist_hi: f64,
    downtown_radius: f64,
    seed: u64,
) -> Result<Vec<QueryPair>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = net.n_nodes() as u32;
    let mut out = Vec::with_capacity(count);
    if n < 2 {
        return Ok(out);
    }
    let max_attempts = count.saturating_mul(20_000).max(200_000);
    for _ in 0..max_attempts {
        if out.len() == count {
            break;
        }
        let a = NodeId(rng.gen_range(0..n));
        let b = NodeId(rng.gen_range(0..n));
        if a == b {
            continue;
        }
        let pa = net.point(a)?;
        let pb = net.point(b)?;
        if pa.x.hypot(pa.y) < downtown_radius * 1.5 || pb.x.hypot(pb.y) > downtown_radius {
            continue;
        }
        let d = pa.distance(pb);
        if d >= dist_lo && d <= dist_hi {
            out.push(QueryPair {
                source: a,
                target: b,
                euclidean: d,
            });
        }
    }
    Ok(out)
}

/// The Figure 9 workload: for each whole-mile distance in
/// `1..=max_miles`, `per_bucket` pairs at that distance ±`half_band`.
pub fn distance_buckets(
    net: &RoadNetwork,
    per_bucket: usize,
    max_miles: usize,
    half_band: f64,
    seed: u64,
) -> Result<Vec<(f64, Vec<QueryPair>)>> {
    let mut out = Vec::with_capacity(max_miles);
    for mile in 1..=max_miles {
        let center = mile as f64;
        let pairs = sample_pairs(
            net,
            per_bucket,
            (center - half_band).max(0.05),
            center + half_band,
            seed.wrapping_add(mile as u64),
        )?;
        out.push((center, pairs));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::grid;
    use traffic::RoadClass;

    #[test]
    fn pairs_respect_distance_band() {
        let net = grid(20, 20, 0.5, RoadClass::LocalOutside).unwrap();
        let pairs = sample_pairs(&net, 50, 2.0, 4.0, 99).unwrap();
        assert_eq!(pairs.len(), 50);
        for p in &pairs {
            assert!(p.euclidean >= 2.0 && p.euclidean <= 4.0);
            assert_ne!(p.source, p.target);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let net = grid(10, 10, 0.5, RoadClass::LocalOutside).unwrap();
        let a = sample_pairs(&net, 20, 1.0, 3.0, 7).unwrap();
        let b = sample_pairs(&net, 20, 1.0, 3.0, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn impossible_band_returns_fewer() {
        let net = grid(3, 3, 0.1, RoadClass::LocalOutside).unwrap();
        // max distance in a 0.2 x 0.2 grid is ~0.28 miles
        let pairs = sample_pairs(&net, 10, 5.0, 8.0, 1).unwrap();
        assert!(pairs.is_empty());
    }

    #[test]
    fn buckets_cover_each_mile() {
        let net = grid(25, 25, 0.4, RoadClass::LocalOutside).unwrap();
        let buckets = distance_buckets(&net, 10, 5, 0.25, 3).unwrap();
        assert_eq!(buckets.len(), 5);
        for (center, pairs) in &buckets {
            for p in pairs {
                assert!((p.euclidean - center).abs() <= 0.25 + 1e-9);
            }
        }
    }
}
