//! Property tests: the exact speed→travel-time conversion agrees with
//! direct integration and Equation (1), and always preserves FIFO.

use proptest::prelude::*;
use pwl::time::hm;
use pwl::{approx_eq, Interval, MonotonePwl};
use traffic::travel::{eq1_two_speed, travel_time_at, travel_time_fn};
use traffic::SpeedProfile;

/// Random daily profile: 1–5 pieces, speeds in [0.05, 1.2] mpm
/// (3–72 MPH), boundaries spread over the day.
fn arb_profile() -> impl Strategy<Value = SpeedProfile> {
    (
        prop::collection::vec((1.0f64..400.0, 0.05f64..1.2), 0..4),
        0.05f64..1.2,
    )
        .prop_map(|(raw, v0)| {
            let mut pairs = vec![(0.0, v0)];
            let mut start = 0.0;
            for (gap, v) in raw {
                start += gap;
                if start >= 1439.0 {
                    break;
                }
                pairs.push((start, v));
            }
            SpeedProfile::from_pairs(&pairs).expect("generated profile valid")
        })
}

proptest! {
    #[test]
    fn function_matches_integration(
        profile in arb_profile(),
        lo in 0.0f64..1400.0,
        len in 10.0f64..400.0,
        distance in 0.2f64..15.0,
    ) {
        let leaving = Interval::of(lo, lo + len);
        let t = travel_time_fn(&profile, distance, &leaving).unwrap();
        for k in 0..=64 {
            let l = leaving.lo() + leaving.len() * (k as f64) / 64.0;
            let want = travel_time_at(&profile, distance, l).unwrap();
            prop_assert!(
                approx_eq(t.eval(l), want),
                "l={l}: fn={} direct={want}", t.eval(l)
            );
        }
    }

    #[test]
    fn fifo_always_holds(
        profile in arb_profile(),
        lo in 0.0f64..1400.0,
        len in 10.0f64..400.0,
        distance in 0.2f64..15.0,
    ) {
        let leaving = Interval::of(lo, lo + len);
        let t = travel_time_fn(&profile, distance, &leaving).unwrap();
        prop_assert!(t.is_continuous());
        prop_assert!(MonotonePwl::arrival_from_travel(&t).is_ok());
        // travel time bounded by distance over extreme speeds
        let min = t.minimum().value;
        let max = t.maximum();
        prop_assert!(pwl::approx_le(distance / profile.max_speed(), min + 1e-6));
        prop_assert!(pwl::approx_le(max, distance / profile.min_speed() + 1e-6));
    }

    #[test]
    fn equation_1_special_case(
        v1 in 0.1f64..1.2,
        v2 in 0.1f64..1.2,
        distance in 0.2f64..10.0,
        frac in 0.05f64..0.95,
    ) {
        // speed v1 before t2 = 8:00, v2 after; leaving in [5:00, 8:00]
        let t2 = hm(8, 0);
        let profile = SpeedProfile::from_pairs(&[(0.0, v1), (t2, v2)]).unwrap();
        let l = hm(5, 0) + frac * (t2 - hm(5, 0));
        let direct = travel_time_at(&profile, distance, l).unwrap();
        let eq1 = eq1_two_speed(distance, v1, v2, t2, l);
        // Equation (1) only covers objects that finish before the speed
        // changes again (here: before next midnight); guard like the paper.
        if l + direct < hm(24, 0) {
            prop_assert!(approx_eq(direct, eq1), "direct={direct} eq1={eq1}");
        }
    }

    #[test]
    fn later_leaving_never_arrives_earlier(
        profile in arb_profile(),
        lo in 0.0f64..1400.0,
        distance in 0.2f64..15.0,
    ) {
        // discrete FIFO check, independent of the pwl machinery
        let mut prev_arrival = f64::NEG_INFINITY;
        for k in 0..60 {
            let l = lo + (k as f64) * 2.0;
            let arr = l + travel_time_at(&profile, distance, l).unwrap();
            prop_assert!(arr + 1e-9 >= prev_arrival, "FIFO violated at l={l}");
            prev_arrival = arr;
        }
    }
}
