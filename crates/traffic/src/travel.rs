//! From speed patterns to travel-time functions (§4.1).
//!
//! The paper derives, for a road segment of length `d` with speed `v₁`
//! during `[t₁, t₂)` and `v₂` afterwards, the two-piece travel-time
//! function of Equation (1). This module implements the general exact
//! conversion for *any* number of speed pieces:
//!
//! ```text
//! D(t)  = ∫_{w₀}^{t} v(τ) dτ          (cumulative distance, increasing)
//! A(l)  = D⁻¹(D(l) + d)               (arrival time at the segment head)
//! T(l)  = A(l) − l                    (travel time)
//! ```
//!
//! `T` is continuous piecewise-linear in the leaving time `l`, and the
//! paper's Equation (1) falls out as the two-speed special case (the
//! unit tests check this identity). Because every speed is positive,
//! `A` is strictly increasing — the FIFO property of the Flow Speed
//! Model — so the construction never fails on valid profiles.

use pwl::{Interval, Pwl};

use crate::{Result, SpeedProfile, TrafficError};

/// Exact travel-time function `T(l)` for traversing `distance` miles
/// starting at any `l ∈ leaving`, under `profile`.
///
/// The returned [`Pwl`] is continuous, defined exactly on `leaving`,
/// and simplified (no redundant breakpoints).
pub fn travel_time_fn(profile: &SpeedProfile, distance: f64, leaving: &Interval) -> Result<Pwl> {
    if !distance.is_finite() || distance <= 0.0 {
        return Err(TrafficError::BadDistance(distance));
    }
    // D must extend past the latest possible arrival:
    // T(l) ≤ distance / v_min for every l.
    let slack = distance / profile.min_speed() + 1.0;
    let window = Interval::of(leaving.lo(), leaving.hi() + slack);
    let dcum = profile.cumulative_distance(&window)?;

    if leaving.is_degenerate() {
        // Degenerate query interval: a single-instant leaving time.
        // Return a constant function on a hair-width interval so the
        // caller can still treat it uniformly.
        // Width chosen to clear `Interval::is_degenerate`'s scaled
        // tolerance at minutes-of-day magnitudes.
        let t = travel_time_at(profile, distance, leaving.lo())?;
        return Ok(Pwl::constant(
            Interval::of(leaving.lo(), leaving.lo() + 0.01),
            t,
        )?);
    }

    let dinv = dcum.inverse();
    let g = dcum.restrict(leaving)?.add_scalar(distance);
    let arrival = dinv.compose(&g)?;
    Ok(arrival.as_pwl().sub_identity().simplify())
}

/// Travel time for a single leaving instant, by direct integration —
/// no function construction; used by the discrete-time baseline and
/// the fixed-instant A\* special case.
pub fn travel_time_at(profile: &SpeedProfile, distance: f64, leave: f64) -> Result<f64> {
    if !distance.is_finite() || distance <= 0.0 {
        return Err(TrafficError::BadDistance(distance));
    }
    let mut remaining = distance;
    let mut t = leave;
    loop {
        let until = profile.next_change_after(t);
        // Sample the speed strictly inside (t, until): sampling at `t`
        // can land on the wrong side of a boundary when `t` itself was
        // reconstructed from a boundary with float rounding.
        let v = profile.speed_at(0.5 * (t + until));
        let reachable = v * (until - t);
        if reachable >= remaining {
            return Ok(t + remaining / v - leave);
        }
        remaining -= reachable;
        t = until;
    }
}

/// The paper's Equation (1): travel time over a segment of length `d`
/// with speed `v1` before `t2` and `v2` from `t2` on, for a leaving
/// time `l ≤ t2`:
///
/// ```text
/// T(l) = d/v1                                 if l < t2 − d/v1
/// T(l) = (1 − v1/v2)·(t2 − l) + d/v2          if t2 − d/v1 ≤ l ≤ t2
/// ```
///
/// Provided as an executable reference; the unit and property tests
/// assert [`travel_time_fn`] agrees with it on two-speed profiles.
pub fn eq1_two_speed(d: f64, v1: f64, v2: f64, t2: f64, l: f64) -> f64 {
    if l < t2 - d / v1 {
        d / v1
    } else {
        (1.0 - v1 / v2) * (t2 - l) + d / v2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwl::time::hm;
    use pwl::{approx_eq, MonotonePwl};

    /// The paper's s → n segment: 2 miles, 1/3 mpm before 7:00, 1 mpm
    /// after (reconstructed from the §4.3 function values).
    fn paper_s_to_n() -> SpeedProfile {
        SpeedProfile::from_pairs(&[(0.0, 1.0 / 3.0), (hm(7, 0), 1.0)]).unwrap()
    }

    /// The paper's n → e segment: 3 miles, 1 mpm before 7:08, 0.3 mpm
    /// after (reconstructed from the §4.4 function values).
    fn paper_n_to_e() -> SpeedProfile {
        SpeedProfile::from_pairs(&[(0.0, 1.0), (hm(7, 8), 0.3)]).unwrap()
    }

    #[test]
    fn reproduces_paper_s_to_n_function() {
        // Paper §4.3: T(l ∈ [6:50, 7:05], s→n) =
        //   6                        on [6:50, 6:54)
        //   (2/3)(7:00 − l) + 2      on [6:54, 7:00)
        //   2                        on [7:00, 7:05]
        let t = travel_time_fn(&paper_s_to_n(), 2.0, &Interval::of(hm(6, 50), hm(7, 5))).unwrap();
        assert!(approx_eq(t.eval(hm(6, 50)), 6.0));
        assert!(approx_eq(t.eval(hm(6, 53)), 6.0));
        assert!(approx_eq(t.eval(hm(6, 54)), 6.0));
        assert!(approx_eq(t.eval(hm(6, 57)), (2.0 / 3.0) * 3.0 + 2.0));
        assert!(approx_eq(t.eval(hm(7, 0)), 2.0));
        assert!(approx_eq(t.eval(hm(7, 5)), 2.0));
        let bps = t.breakpoints();
        assert_eq!(bps.len(), 4, "{bps:?}");
        assert!(approx_eq(bps[1], hm(6, 54)));
        assert!(approx_eq(bps[2], hm(7, 0)));
    }

    #[test]
    fn reproduces_paper_n_to_e_function() {
        // Paper §4.4: T(l ∈ [6:56, 7:07], n→e) =
        //   3                          on [6:56, 7:05)
        //   10 − (7/3)(7:08 − l)       on [7:05, 7:07]
        let t = travel_time_fn(&paper_n_to_e(), 3.0, &Interval::of(hm(6, 56), hm(7, 7))).unwrap();
        assert!(approx_eq(t.eval(hm(6, 56)), 3.0));
        assert!(approx_eq(t.eval(hm(7, 5)), 3.0));
        assert!(approx_eq(t.eval(hm(7, 6)), 10.0 - (7.0 / 3.0) * 2.0));
        assert!(approx_eq(t.eval(hm(7, 7)), 10.0 - (7.0 / 3.0) * 1.0));
        assert_eq!(t.breakpoints().len(), 3);
        assert!(approx_eq(t.breakpoints()[1], hm(7, 5)));
    }

    #[test]
    fn agrees_with_equation_1() {
        // two-speed profile: v1 = 0.8 until t2 = 480, v2 = 0.25 after
        let (d, v1, v2, t2) = (4.0, 0.8, 0.25, hm(8, 0));
        let profile = SpeedProfile::from_pairs(&[(0.0, v1), (t2, v2)]).unwrap();
        let leaving = Interval::of(hm(6, 0), t2);
        let t = travel_time_fn(&profile, d, &leaving).unwrap();
        for k in 0..=100 {
            let l = leaving.lo() + leaving.len() * (k as f64) / 100.0;
            let want = eq1_two_speed(d, v1, v2, t2, l);
            assert!(approx_eq(t.eval(l), want), "l={l}: {} vs {want}", t.eval(l));
        }
    }

    #[test]
    fn matches_direct_integration() {
        let profile =
            SpeedProfile::from_pairs(&[(0.0, 0.9), (hm(7, 0), 0.3), (hm(9, 30), 0.7)]).unwrap();
        let leaving = Interval::of(hm(5, 0), hm(11, 0));
        let t = travel_time_fn(&profile, 6.5, &leaving).unwrap();
        for k in 0..=240 {
            let l = leaving.lo() + leaving.len() * (k as f64) / 240.0;
            let want = travel_time_at(&profile, 6.5, l).unwrap();
            assert!(approx_eq(t.eval(l), want), "l={l}: {} vs {want}", t.eval(l));
        }
    }

    #[test]
    fn constant_profile_gives_constant_time() {
        let profile = SpeedProfile::constant(0.5).unwrap();
        let t = travel_time_fn(&profile, 3.0, &Interval::of(0.0, 100.0)).unwrap();
        assert_eq!(t.n_pieces(), 1);
        assert!(approx_eq(t.eval(0.0), 6.0));
        assert!(approx_eq(t.eval(100.0), 6.0));
    }

    #[test]
    fn crossing_midnight_works() {
        let profile = SpeedProfile::with_rush_window(1.0, 0.5, hm(7, 0), hm(9, 0)).unwrap();
        let leaving = Interval::of(hm(23, 30), hm(24, 0) + hm(0, 30));
        let t = travel_time_fn(&profile, 45.0, &leaving).unwrap();
        // overnight there is no rush window before arrival: constant 45 min
        assert!(approx_eq(t.eval(hm(23, 30)), 45.0));
        assert!(approx_eq(t.eval(hm(24, 0) + hm(0, 15)), 45.0));
        // and the single-instant variant agrees
        assert!(approx_eq(
            travel_time_at(&profile, 45.0, hm(23, 45)).unwrap(),
            45.0
        ));
    }

    #[test]
    fn travel_time_at_spans_multiple_pieces() {
        // 1 mpm for 10 min (10 mi), then 0.1 mpm: 15 miles from 6:50,
        // window 7:00; 10 miles by 7:00, remaining 5 at 0.1 = 50 min.
        let profile = SpeedProfile::from_pairs(&[(0.0, 1.0), (hm(7, 0), 0.1)]).unwrap();
        let t = travel_time_at(&profile, 15.0, hm(6, 50)).unwrap();
        assert!(approx_eq(t, 60.0));
    }

    #[test]
    fn fifo_holds_for_generated_functions() {
        let profile =
            SpeedProfile::from_pairs(&[(0.0, 0.9), (hm(7, 0), 0.2), (hm(10, 0), 1.1)]).unwrap();
        let t = travel_time_fn(&profile, 8.0, &Interval::of(hm(4, 0), hm(12, 0))).unwrap();
        assert!(MonotonePwl::arrival_from_travel(&t).is_ok());
    }

    #[test]
    fn regression_float_boundary_never_loops() {
        // Found by property testing: a leaving time whose float
        // representation lands an ulp past a piece boundary used to make
        // `next_change_after` return a non-advancing instant, spinning
        // `travel_time_at` forever.
        let profile = SpeedProfile::from_pairs(&[
            (0.0, 1.0113780279312112),
            (37.98957755773383, 0.3945897943346046),
            (372.3803880380186, 0.2363979845192748),
        ])
        .unwrap();
        let l = 1470.4394593605966;
        let d = 7.718477952434894;
        let direct = travel_time_at(&profile, d, l).unwrap();
        let f = travel_time_fn(
            &profile,
            d,
            &Interval::of(1273.932250613864, 1535.941862276174),
        )
        .unwrap();
        assert!(approx_eq(f.eval(l), direct));
        // and exactly at the reconstructed boundary instant
        let boundary = 1440.0 + 37.98957755773383;
        let at_boundary = travel_time_at(&profile, d, boundary).unwrap();
        assert!(at_boundary > 0.0);
    }

    #[test]
    fn bad_distance_rejected() {
        let p = SpeedProfile::constant(1.0).unwrap();
        assert!(travel_time_fn(&p, 0.0, &Interval::of(0.0, 10.0)).is_err());
        assert!(travel_time_fn(&p, -1.0, &Interval::of(0.0, 10.0)).is_err());
        assert!(travel_time_at(&p, f64::NAN, 0.0).is_err());
    }

    #[test]
    fn degenerate_interval_gives_constant() {
        let p = SpeedProfile::constant(0.5).unwrap();
        let t = travel_time_fn(&p, 2.0, &Interval::of(100.0, 100.0)).unwrap();
        assert!(approx_eq(t.eval(100.0), 4.0));
    }
}
