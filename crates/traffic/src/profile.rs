//! Daily piecewise-constant speed profiles.

use pwl::time::MINUTES_PER_DAY;
use pwl::{Interval, MonotonePwl, Pwl};

use crate::{Result, TrafficError};

/// One piece of a daily speed profile: constant speed from `start`
/// (minutes since midnight) until the next piece begins.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilePiece {
    /// Start of the piece, minutes since midnight, in `[0, 1440)`.
    pub start: f64,
    /// Speed in miles per minute; finite and strictly positive.
    pub speed: f64,
}

/// A daily speed profile: piecewise-constant speed over the 24-hour
/// day, extended periodically for trips that cross midnight.
///
/// Invariants: the first piece starts at minute `0`, starts are
/// strictly increasing and below `1440`, and all speeds are finite and
/// positive. The paper's example "workday: \[0:00–7:00\): 1 mpm,
/// \[7:00–9:00\): 1/2 mpm, \[9:00–24:00\): 1 mpm" is three pieces.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedProfile {
    pieces: Vec<ProfilePiece>,
}

impl SpeedProfile {
    /// Build from pieces, validating the invariants.
    pub fn new(pieces: Vec<ProfilePiece>) -> Result<Self> {
        if pieces.is_empty() {
            return Err(TrafficError::BadPieces("no pieces".into()));
        }
        if pieces[0].start != 0.0 {
            return Err(TrafficError::BadPieces(format!(
                "first piece must start at minute 0, got {}",
                pieces[0].start
            )));
        }
        for w in pieces.windows(2) {
            if w[1].start <= w[0].start {
                return Err(TrafficError::BadPieces(format!(
                    "piece starts not increasing: {} then {}",
                    w[0].start, w[1].start
                )));
            }
        }
        let last = pieces[pieces.len() - 1].start;
        if last >= MINUTES_PER_DAY {
            return Err(TrafficError::BadPieces(format!(
                "piece start {last} beyond the 24-hour day"
            )));
        }
        for p in &pieces {
            if !p.speed.is_finite() || p.speed <= 0.0 {
                return Err(TrafficError::BadSpeed(p.speed));
            }
            if !p.start.is_finite() {
                return Err(TrafficError::BadPieces(format!(
                    "non-finite start {}",
                    p.start
                )));
            }
        }
        Ok(SpeedProfile { pieces })
    }

    /// A constant-speed profile (`speed` in miles per minute).
    pub fn constant(speed: f64) -> Result<Self> {
        Self::new(vec![ProfilePiece { start: 0.0, speed }])
    }

    /// Convenience constructor from `(start_minute, speed_mpm)` pairs.
    pub fn from_pairs(pairs: &[(f64, f64)]) -> Result<Self> {
        Self::new(
            pairs
                .iter()
                .map(|&(start, speed)| ProfilePiece { start, speed })
                .collect(),
        )
    }

    /// A profile with `base` speed everywhere except `[from, to)` where
    /// the speed is `reduced` — the common "rush-hour window" shape of
    /// Table 1. `from < to` must both lie within the day.
    pub fn with_rush_window(base: f64, reduced: f64, from: f64, to: f64) -> Result<Self> {
        if !(0.0..MINUTES_PER_DAY).contains(&from) || to <= from || to > MINUTES_PER_DAY {
            return Err(TrafficError::BadPieces(format!(
                "bad rush window [{from}, {to})"
            )));
        }
        let mut pieces = Vec::with_capacity(3);
        if from > 0.0 {
            pieces.push(ProfilePiece {
                start: 0.0,
                speed: base,
            });
            pieces.push(ProfilePiece {
                start: from,
                speed: reduced,
            });
        } else {
            pieces.push(ProfilePiece {
                start: 0.0,
                speed: reduced,
            });
        }
        if to < MINUTES_PER_DAY {
            pieces.push(ProfilePiece {
                start: to,
                speed: base,
            });
        }
        Self::new(pieces)
    }

    /// The pieces, in order of start time.
    pub fn pieces(&self) -> &[ProfilePiece] {
        &self.pieces
    }

    /// Speed (miles per minute) at time `t` (any finite minutes value;
    /// the profile repeats every 24 hours).
    pub fn speed_at(&self, t: f64) -> f64 {
        let tod = t.rem_euclid(MINUTES_PER_DAY);
        let idx = self.pieces.partition_point(|p| p.start <= tod);
        self.pieces[idx.saturating_sub(1)].speed
    }

    /// Maximum speed over the day.
    pub fn max_speed(&self) -> f64 {
        self.pieces
            .iter()
            .map(|p| p.speed)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum speed over the day.
    pub fn min_speed(&self) -> f64 {
        self.pieces
            .iter()
            .map(|p| p.speed)
            .fold(f64::INFINITY, f64::min)
    }

    /// The profile with time running backwards: speed at time `t`
    /// becomes the original speed at `1440 − t` (reflection around
    /// midnight, compatible with the periodic extension).
    ///
    /// This powers the arrival-interval query reduction: traversing an
    /// edge *backwards in time* from its head sees exactly the
    /// mirrored profile.
    pub fn time_mirrored(&self) -> SpeedProfile {
        // A piece [s, e) at speed v maps to [1440−e, 1440−s) at v.
        // The piece that contains midnight stays anchored at 0.
        let mut pieces: Vec<ProfilePiece> = Vec::with_capacity(self.pieces.len());
        for (i, p) in self.pieces.iter().enumerate().rev() {
            let end = self.pieces.get(i + 1).map_or(MINUTES_PER_DAY, |q| q.start);
            let start = if end >= MINUTES_PER_DAY {
                0.0
            } else {
                MINUTES_PER_DAY - end
            };
            pieces.push(ProfilePiece {
                start,
                speed: p.speed,
            });
        }
        SpeedProfile::new(pieces).expect("mirror of a valid profile is valid")
    }

    /// The first speed-change instant strictly after `t` (periodic
    /// across days). With a single constant piece this is the next
    /// midnight (a change point in form, though not in value).
    pub fn next_change_after(&self, t: f64) -> f64 {
        let day = (t / MINUTES_PER_DAY).floor();
        let base = day * MINUTES_PER_DAY;
        let tod = t - base;
        let idx = self.pieces.partition_point(|p| p.start <= tod);
        let candidate = match self.pieces.get(idx) {
            Some(p) => base + p.start,
            None => base + MINUTES_PER_DAY,
        };
        if candidate > t {
            candidate
        } else {
            // Float rounding: `base + start` reproduced a boundary at or
            // before `t` (tod was computed as `t - base`, which can land
            // an ulp past the piece start). Skip to the following change;
            // real piece gaps dwarf rounding error, so this is strictly
            // ahead of `t`.
            match self.pieces.get(idx + 1) {
                Some(p) => base + p.start,
                None => base + MINUTES_PER_DAY,
            }
        }
    }

    /// All speed-change instants inside the open interval
    /// `(window.lo, window.hi)`, unrolled across day boundaries.
    pub fn breakpoints_within(&self, window: &Interval) -> Vec<f64> {
        let mut out = Vec::new();
        let first_day = (window.lo() / MINUTES_PER_DAY).floor() as i64;
        let last_day = (window.hi() / MINUTES_PER_DAY).ceil() as i64;
        for day in first_day..=last_day {
            let base = (day as f64) * MINUTES_PER_DAY;
            for p in &self.pieces {
                let t = base + p.start;
                if t > window.lo() && t < window.hi() {
                    out.push(t);
                }
            }
        }
        out
    }

    /// The cumulative distance function `D(t) = ∫_{window.lo}^{t} v`
    /// over `window` (miles as a function of minutes) — continuous,
    /// strictly increasing, piecewise linear with one piece per
    /// constant-speed stretch.
    pub fn cumulative_distance(&self, window: &Interval) -> Result<MonotonePwl> {
        let mut xs = vec![window.lo()];
        xs.extend(self.breakpoints_within(window));
        xs.push(window.hi());

        let mut pts = Vec::with_capacity(xs.len());
        let mut dist = 0.0;
        pts.push((xs[0], 0.0));
        for w in xs.windows(2) {
            let v = self.speed_at(0.5 * (w[0] + w[1]));
            dist += v * (w[1] - w[0]);
            pts.push((w[1], dist));
        }
        Ok(MonotonePwl::new(Pwl::from_points(&pts)?)?)
    }
}

impl std::fmt::Display for SpeedProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (i, p) in self.pieces.iter().enumerate() {
            let end = self.pieces.get(i + 1).map_or(MINUTES_PER_DAY, |n| n.start);
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(
                f,
                "[{}-{}): {:.3} mpm",
                pwl::time::fmt_minutes(p.start),
                pwl::time::fmt_minutes(end),
                p.speed
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwl::approx_eq;
    use pwl::time::hm;

    fn workday_example() -> SpeedProfile {
        // Paper §2.1: 1 mpm except [7:00, 9:00) at 1/2 mpm.
        SpeedProfile::with_rush_window(1.0, 0.5, hm(7, 0), hm(9, 0)).unwrap()
    }

    #[test]
    fn validation() {
        assert!(SpeedProfile::new(vec![]).is_err());
        assert!(SpeedProfile::from_pairs(&[(5.0, 1.0)]).is_err()); // must start at 0
        assert!(SpeedProfile::from_pairs(&[(0.0, 1.0), (0.0, 2.0)]).is_err());
        assert!(SpeedProfile::from_pairs(&[(0.0, 0.0)]).is_err()); // zero speed
        assert!(SpeedProfile::from_pairs(&[(0.0, -1.0)]).is_err());
        assert!(SpeedProfile::from_pairs(&[(0.0, 1.0), (1500.0, 2.0)]).is_err());
        assert!(SpeedProfile::from_pairs(&[(0.0, 1.0), (60.0, 2.0)]).is_ok());
    }

    #[test]
    fn rush_window_shapes() {
        let p = workday_example();
        assert_eq!(p.pieces().len(), 3);
        assert_eq!(p.speed_at(hm(6, 59)), 1.0);
        assert_eq!(p.speed_at(hm(7, 0)), 0.5);
        assert_eq!(p.speed_at(hm(8, 59)), 0.5);
        assert_eq!(p.speed_at(hm(9, 0)), 1.0);
        // window starting at midnight
        let q = SpeedProfile::with_rush_window(1.0, 0.5, 0.0, 120.0).unwrap();
        assert_eq!(q.pieces().len(), 2);
        assert_eq!(q.speed_at(30.0), 0.5);
        // window ending at midnight
        let r = SpeedProfile::with_rush_window(1.0, 0.5, 1380.0, MINUTES_PER_DAY).unwrap();
        assert_eq!(r.pieces().len(), 2);
        assert_eq!(r.speed_at(1400.0), 0.5);
        assert_eq!(r.speed_at(10.0), 1.0);
    }

    #[test]
    fn periodic_wrap() {
        let p = workday_example();
        assert_eq!(p.speed_at(hm(7, 30) + MINUTES_PER_DAY), 0.5);
        assert_eq!(p.speed_at(hm(7, 30) + 3.0 * MINUTES_PER_DAY), 0.5);
        assert_eq!(p.speed_at(-MINUTES_PER_DAY + hm(7, 30)), 0.5);
        assert_eq!(p.max_speed(), 1.0);
        assert_eq!(p.min_speed(), 0.5);
    }

    #[test]
    fn breakpoints_unroll_across_days() {
        let p = workday_example();
        let w = Interval::of(hm(6, 0), hm(10, 0));
        let bps = p.breakpoints_within(&w);
        assert_eq!(bps, vec![hm(7, 0), hm(9, 0)]);
        // across midnight into the next day
        let w2 = Interval::of(hm(23, 0), MINUTES_PER_DAY + hm(8, 0));
        let bps2 = p.breakpoints_within(&w2);
        assert_eq!(bps2, vec![MINUTES_PER_DAY, MINUTES_PER_DAY + hm(7, 0)]);
    }

    #[test]
    fn cumulative_distance_integrates() {
        let p = workday_example();
        let d = p
            .cumulative_distance(&Interval::of(hm(6, 0), hm(10, 0)))
            .unwrap();
        // 6:00–7:00 at 1 mpm = 60 mi; 7:00–9:00 at 0.5 = 60 mi; 9:00–10:00 = 60 mi
        assert!(approx_eq(d.eval(hm(6, 0)), 0.0));
        assert!(approx_eq(d.eval(hm(7, 0)), 60.0));
        assert!(approx_eq(d.eval(hm(8, 0)), 90.0));
        assert!(approx_eq(d.eval(hm(9, 0)), 120.0));
        assert!(approx_eq(d.eval(hm(10, 0)), 180.0));
        // inverse answers "when has the object covered x miles?"
        assert!(approx_eq(d.inverse_at(90.0).unwrap(), hm(8, 0)));
    }

    #[test]
    fn cumulative_distance_across_midnight() {
        let p = workday_example();
        let d = p
            .cumulative_distance(&Interval::of(hm(23, 0), MINUTES_PER_DAY + hm(1, 0)))
            .unwrap();
        assert!(approx_eq(d.eval(MINUTES_PER_DAY + hm(1, 0)), 120.0));
    }

    #[test]
    fn time_mirror_reflects_speeds() {
        let p = workday_example();
        let m = p.time_mirrored();
        // speed at t in the mirror equals speed at 1440 − t originally
        // (probing away from piece boundaries, whose half-openness flips)
        for t in [
            0.0,
            hm(6, 59),
            hm(7, 0),
            hm(8, 30),
            hm(9, 0),
            hm(15, 30),
            hm(23, 59),
        ] {
            assert_eq!(
                m.speed_at(t),
                p.speed_at(MINUTES_PER_DAY - t),
                "mismatch at {t}"
            );
        }
        // rush window [7:00, 9:00) maps to (15:00, 17:00]
        assert_eq!(m.speed_at(hm(15, 30)), 0.5);
        assert_eq!(m.speed_at(hm(14, 59)), 1.0);
        assert_eq!(m.speed_at(hm(17, 1)), 1.0);
        // involution
        assert_eq!(m.time_mirrored(), p);
        // constants are fixed points
        let c = SpeedProfile::constant(0.7).unwrap();
        assert_eq!(c.time_mirrored(), c);
    }

    #[test]
    fn display_is_readable() {
        let p = workday_example();
        let s = p.to_string();
        assert!(s.contains("[7:00-9:00): 0.500 mpm"), "{s}");
    }
}
