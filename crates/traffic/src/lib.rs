//! CapeCod speed patterns (§2.1 of the ICDE 2006 paper).
//!
//! A **CapeCod** (CAtegorized PiecewisE COnstant speeD) pattern gives
//! each road segment one *daily speed profile per day category*
//! (Definition 2). Days are partitioned into categories — e.g.
//! *workday* / *non-workday* (Definition 1) — and within a category the
//! speed on a segment is a piecewise-constant function of the time of
//! day, extended periodically past midnight.
//!
//! The crate provides:
//!
//! * [`DayCategory`] / [`CategorySet`] — Definition 1;
//! * [`SpeedProfile`] — one day's piecewise-constant speeds, with the
//!   cumulative-distance function `D(t) = ∫ v` as a
//!   [`pwl::MonotonePwl`];
//! * [`CapeCodPattern`] — Definition 2: a profile per category;
//! * [`travel::travel_time_fn`] — the exact conversion from a speed
//!   profile to the piecewise-linear travel-time function of §4.1,
//!   generalized from the paper's two-speed Equation (1) to any number
//!   of speed pieces via `T(l) = D⁻¹(D(l) + d) − l`;
//! * [`RoadClass`] / [`PatternSchema`] — the Table 1 experiment schema
//!   (inbound/outbound highways, local roads in/outside Boston, with
//!   rush-hour slowdowns on workdays).
//!
//! The Flow Speed Model underlying CapeCod preserves FIFO (Sung et
//! al. 2000): an object leaving later never arrives earlier. This crate
//! produces arrival functions with strictly positive slope by
//! construction, which is what lets the query engine invert them.

mod category;
mod delta;
mod pattern;
mod profile;
mod schema;

pub mod travel;

pub use category::{CategorySet, DayCategory};
pub use delta::{PatternUpdate, TrafficDelta};
pub use pattern::CapeCodPattern;
pub use profile::{ProfilePiece, SpeedProfile};
pub use schema::{PatternSchema, RoadClass};

/// Errors from pattern construction and travel-time conversion.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficError {
    /// A speed was zero, negative, or non-finite.
    BadSpeed(f64),
    /// Profile piece boundaries were invalid (unsorted, out of range,
    /// or not starting at midnight).
    BadPieces(String),
    /// A pattern was asked for a category it does not define.
    UnknownCategory(DayCategory),
    /// A distance was zero, negative, or non-finite.
    BadDistance(f64),
    /// Propagated error from the pwl layer.
    Pwl(pwl::PwlError),
}

impl std::fmt::Display for TrafficError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrafficError::BadSpeed(v) => write!(f, "bad speed {v} (must be finite and > 0)"),
            TrafficError::BadPieces(msg) => write!(f, "bad profile pieces: {msg}"),
            TrafficError::UnknownCategory(c) => write!(f, "pattern has no profile for {c}"),
            TrafficError::BadDistance(d) => write!(f, "bad distance {d}"),
            TrafficError::Pwl(e) => write!(f, "pwl error: {e}"),
        }
    }
}

impl std::error::Error for TrafficError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrafficError::Pwl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pwl::PwlError> for TrafficError {
    fn from(e: pwl::PwlError) -> Self {
        TrafficError::Pwl(e)
    }
}

/// Convenient `Result` alias for this crate.
pub type Result<T> = std::result::Result<T, TrafficError>;
