//! CapeCod patterns (Definition 2): one speed profile per day category.

use crate::{DayCategory, Result, SpeedProfile, TrafficError};

/// A CapeCod pattern: a daily speed profile for every day category
/// (Definition 2).
///
/// Profiles are indexed by [`DayCategory`] position; a pattern built
/// for the default two-category set holds `[workday, non-workday]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CapeCodPattern {
    profiles: Vec<SpeedProfile>,
}

impl CapeCodPattern {
    /// Build from one profile per category, in category order.
    pub fn new(profiles: Vec<SpeedProfile>) -> Result<Self> {
        if profiles.is_empty() {
            return Err(TrafficError::BadPieces(
                "pattern needs at least one profile".into(),
            ));
        }
        Ok(CapeCodPattern { profiles })
    }

    /// A pattern with the same constant speed in every category
    /// (`speed` in miles per minute) — the "commercial navigation
    /// system" assumption the paper contrasts against.
    pub fn uniform(speed: f64, categories: usize) -> Result<Self> {
        let p = SpeedProfile::constant(speed)?;
        Self::new(vec![p; categories.max(1)])
    }

    /// The paper's §2.1 example: non-workday constant 1 mpm; workday
    /// 1 mpm with a \[7:00, 9:00) rush window at 1/2 mpm.
    pub fn paper_example() -> Self {
        let workday =
            SpeedProfile::with_rush_window(1.0, 0.5, pwl::time::hm(7, 0), pwl::time::hm(9, 0))
                .expect("valid window");
        let nonworkday = SpeedProfile::constant(1.0).expect("valid speed");
        CapeCodPattern::new(vec![workday, nonworkday]).expect("two profiles")
    }

    /// Profile for `category`.
    pub fn profile(&self, category: DayCategory) -> Result<&SpeedProfile> {
        self.profiles
            .get(usize::from(category.0))
            .ok_or(TrafficError::UnknownCategory(category))
    }

    /// Number of categories covered.
    pub fn n_categories(&self) -> usize {
        self.profiles.len()
    }

    /// The pattern with every profile time-mirrored (see
    /// [`SpeedProfile::time_mirrored`]); powers the arrival-interval
    /// query reduction.
    pub fn time_mirrored(&self) -> CapeCodPattern {
        CapeCodPattern {
            profiles: self
                .profiles
                .iter()
                .map(SpeedProfile::time_mirrored)
                .collect(),
        }
    }

    /// Maximum speed across all categories (used by the naive
    /// lower-bound estimator's `v_max`).
    pub fn max_speed(&self) -> f64 {
        self.profiles
            .iter()
            .map(SpeedProfile::max_speed)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum speed across all categories.
    pub fn min_speed(&self) -> f64 {
        self.profiles
            .iter()
            .map(SpeedProfile::min_speed)
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwl::time::hm;

    #[test]
    fn paper_example_pattern() {
        let p = CapeCodPattern::paper_example();
        assert_eq!(p.n_categories(), 2);
        let wd = p.profile(DayCategory::WORKDAY).unwrap();
        assert_eq!(wd.speed_at(hm(8, 0)), 0.5);
        let nwd = p.profile(DayCategory::NON_WORKDAY).unwrap();
        assert_eq!(nwd.speed_at(hm(8, 0)), 1.0);
        assert_eq!(p.max_speed(), 1.0);
        assert_eq!(p.min_speed(), 0.5);
        assert!(matches!(
            p.profile(DayCategory(7)),
            Err(TrafficError::UnknownCategory(DayCategory(7)))
        ));
    }

    #[test]
    fn uniform_pattern() {
        let p = CapeCodPattern::uniform(0.75, 2).unwrap();
        assert_eq!(p.n_categories(), 2);
        assert_eq!(
            p.profile(DayCategory::WORKDAY).unwrap().speed_at(hm(8, 0)),
            0.75
        );
        assert_eq!(p.max_speed(), 0.75);
        assert!(CapeCodPattern::uniform(0.0, 2).is_err());
    }

    #[test]
    fn time_mirrored_pattern_mirrors_every_profile() {
        let p = CapeCodPattern::paper_example();
        let m = p.time_mirrored();
        assert_eq!(m.n_categories(), 2);
        // workday rush [7:00, 9:00) shows up at (15:00, 17:00] mirrored
        let wd = m.profile(DayCategory::WORKDAY).unwrap();
        assert_eq!(wd.speed_at(hm(16, 0)), 0.5);
        assert_eq!(wd.speed_at(hm(8, 0)), 1.0);
        // non-workday constant is a fixed point
        let nwd = m.profile(DayCategory::NON_WORKDAY).unwrap();
        assert_eq!(nwd.pieces().len(), 1);
        // involution
        assert_eq!(m.time_mirrored(), p);
        // extremes preserved
        assert_eq!(m.max_speed(), p.max_speed());
        assert_eq!(m.min_speed(), p.min_speed());
    }

    #[test]
    fn empty_pattern_rejected() {
        assert!(CapeCodPattern::new(vec![]).is_err());
    }
}
