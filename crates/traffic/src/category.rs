//! Day categories (Definition 1).

/// A day category — an index into a [`CategorySet`].
///
/// Every day belongs to exactly one category; two days in the same
/// category exhibit identical speed patterns on every road segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DayCategory(pub u8);

impl DayCategory {
    /// The workday category of the default two-category set.
    pub const WORKDAY: DayCategory = DayCategory(0);
    /// The non-workday category of the default two-category set.
    pub const NON_WORKDAY: DayCategory = DayCategory(1);
}

impl std::fmt::Display for DayCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "category#{}", self.0)
    }
}

/// A named, ordered list of day categories (Definition 1).
///
/// The paper's experiments use `{workday, non-workday}`; the paper
/// notes accuracy can be improved by adding categories (e.g. splitting
/// Fridays out), which this type supports directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CategorySet {
    names: Vec<String>,
}

impl CategorySet {
    /// Build from category names; at least one name is required.
    pub fn new<S: Into<String>>(names: Vec<S>) -> Option<Self> {
        if names.is_empty() || names.len() > usize::from(u8::MAX) {
            return None;
        }
        Some(CategorySet {
            names: names.into_iter().map(Into::into).collect(),
        })
    }

    /// The paper's default set: `workday`, `non-workday`.
    pub fn workday_nonworkday() -> Self {
        CategorySet::new(vec!["workday", "non-workday"]).expect("two names")
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if the set is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of category `c`, if it exists.
    pub fn name(&self, c: DayCategory) -> Option<&str> {
        self.names.get(usize::from(c.0)).map(String::as_str)
    }

    /// Look up a category by name.
    pub fn by_name(&self, name: &str) -> Option<DayCategory> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| DayCategory(i as u8))
    }

    /// Iterate all categories in order.
    pub fn iter(&self) -> impl Iterator<Item = DayCategory> + '_ {
        (0..self.names.len()).map(|i| DayCategory(i as u8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_set() {
        let s = CategorySet::workday_nonworkday();
        assert_eq!(s.len(), 2);
        assert_eq!(s.name(DayCategory::WORKDAY), Some("workday"));
        assert_eq!(s.name(DayCategory::NON_WORKDAY), Some("non-workday"));
        assert_eq!(s.by_name("workday"), Some(DayCategory::WORKDAY));
        assert_eq!(s.by_name("friday"), None);
        assert_eq!(s.name(DayCategory(9)), None);
    }

    #[test]
    fn custom_set_with_friday() {
        let s = CategorySet::new(vec!["workday", "friday", "non-workday"]).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.by_name("friday"), Some(DayCategory(1)));
        assert_eq!(s.iter().count(), 3);
    }

    #[test]
    fn empty_set_rejected() {
        assert!(CategorySet::new(Vec::<String>::new()).is_none());
    }
}
