//! Live-traffic update batches: per-edge speed-pattern replacements.
//!
//! A [`TrafficDelta`] is the unit of live-traffic refresh: a batch of
//! [`PatternUpdate`]s, each replacing the [`CapeCodPattern`] of one
//! directed road segment (identified by its endpoint node indices).
//! Deltas are **pure data** — applying one to a network is the network
//! layer's job (`RoadNetwork::apply_delta`), and publishing the result
//! to concurrent queries is the engine's (`allfp::epoch`).
//!
//! Deltas describe *replacements*, never in-place mutations: the
//! network's pattern table is append-only, so a pattern id observed by
//! a pinned query can never change meaning under it. That single
//! property is what makes the travel-function cache (keyed by pattern
//! id) exact across epochs without any invalidation protocol on the
//! hot path — see DESIGN.md §14.

use crate::{CapeCodPattern, Result, TrafficError};

/// One edge's speed-pattern replacement: every directed edge
/// `from → to` of the target network takes `pattern`.
///
/// Endpoints are raw dense node indices (the traffic layer sits below
/// the network layer and cannot name its `NodeId` type); the network
/// validates them at apply time.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternUpdate {
    /// Tail node index of the edge.
    pub from: u32,
    /// Head node index of the edge.
    pub to: u32,
    /// The replacement pattern.
    pub pattern: CapeCodPattern,
}

/// A batch of per-edge speed-pattern replacements, applied atomically:
/// queries observe either none of the batch or all of it.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficDelta {
    /// Monotone batch sequence number (assigned by the producer;
    /// echoed in apply reports for tracing).
    pub seq: u64,
    /// The edge updates. Later entries win when two updates in the
    /// same batch target the same edge.
    pub updates: Vec<PatternUpdate>,
}

impl TrafficDelta {
    /// A delta carrying `updates` under sequence number `seq`.
    pub fn new(seq: u64, updates: Vec<PatternUpdate>) -> Self {
        TrafficDelta { seq, updates }
    }

    /// Number of edge updates in the batch.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Is the batch empty? (Applying an empty delta still publishes a
    /// fresh epoch — useful as a barrier.)
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// The single delta equivalent to applying `deltas` in order:
    /// last write wins per directed edge, entries ordered by first
    /// appearance of the edge. The merged delta carries the last
    /// input's `seq` (0 if empty).
    pub fn merged(deltas: &[TrafficDelta]) -> TrafficDelta {
        let mut updates: Vec<PatternUpdate> = Vec::new();
        for d in deltas {
            for u in &d.updates {
                match updates
                    .iter_mut()
                    .find(|p| p.from == u.from && p.to == u.to)
                {
                    Some(p) => p.pattern = u.pattern.clone(),
                    None => updates.push(u.clone()),
                }
            }
        }
        TrafficDelta {
            seq: deltas.last().map_or(0, |d| d.seq),
            updates,
        }
    }
}

impl CapeCodPattern {
    /// This pattern with every speed multiplied by `factor` — the shape
    /// live-traffic feeds produce (congestion and relief scale the
    /// whole profile). `factor` must be finite and strictly positive;
    /// the scaled profiles re-validate through the normal constructor,
    /// so an overflow to a non-positive speed is impossible.
    pub fn with_speed_factor(&self, factor: f64) -> Result<CapeCodPattern> {
        if !factor.is_finite() || factor <= 0.0 {
            return Err(TrafficError::BadSpeed(factor));
        }
        let mut profiles = Vec::new();
        for c in 0..self.n_categories() {
            let p = self.profile(crate::DayCategory(c as u8))?;
            let pieces = p
                .pieces()
                .iter()
                .map(|piece| crate::ProfilePiece {
                    start: piece.start,
                    speed: piece.speed * factor,
                })
                .collect();
            profiles.push(crate::SpeedProfile::new(pieces)?);
        }
        CapeCodPattern::new(profiles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DayCategory;

    #[test]
    fn merged_is_last_write_wins() {
        let a = CapeCodPattern::paper_example();
        let b = a.with_speed_factor(0.5).unwrap();
        let d1 = TrafficDelta::new(
            1,
            vec![
                PatternUpdate {
                    from: 0,
                    to: 1,
                    pattern: a.clone(),
                },
                PatternUpdate {
                    from: 1,
                    to: 2,
                    pattern: a.clone(),
                },
            ],
        );
        let d2 = TrafficDelta::new(
            2,
            vec![PatternUpdate {
                from: 0,
                to: 1,
                pattern: b.clone(),
            }],
        );
        let m = TrafficDelta::merged(&[d1, d2]);
        assert_eq!(m.seq, 2);
        assert_eq!(m.len(), 2);
        assert_eq!(m.updates[0].pattern, b);
        assert_eq!(m.updates[1].pattern, a);
        assert!(TrafficDelta::merged(&[]).is_empty());
    }

    #[test]
    fn speed_factor_scales_every_profile() {
        let p = CapeCodPattern::paper_example();
        let s = p.with_speed_factor(0.5).unwrap();
        let wd = s.profile(DayCategory::WORKDAY).unwrap();
        assert_eq!(wd.speed_at(pwl::time::hm(8, 0)), 0.25);
        assert_eq!(wd.speed_at(pwl::time::hm(12, 0)), 0.5);
        assert_eq!(s.max_speed(), 0.5);
        assert!(p.with_speed_factor(0.0).is_err());
        assert!(p.with_speed_factor(f64::NAN).is_err());
    }
}
