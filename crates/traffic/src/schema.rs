//! Road classes and the Table 1 pattern schema.
//!
//! The paper's experiments classify Suffolk County road segments into
//! four classes and assign each a CapeCod pattern ("based on our
//! unofficial driving experience") — reproduced here verbatim:
//!
//! | class | non-workday | workday |
//! |---|---|---|
//! | inbound highways  | 65 MPH | 20 MPH 7am–10am, 65 MPH otherwise |
//! | outbound highways | 65 MPH | 30 MPH 4pm–7pm, 65 MPH otherwise |
//! | local in Boston   | 40 MPH | 20 MPH 7–10am & 4–7pm, 40 MPH otherwise |
//! | local outside     | 40 MPH | 40 MPH |

use pwl::time::{hm, mph_to_mpm};

use crate::{CapeCodPattern, DayCategory, Result, SpeedProfile};

/// The four road classes of the paper's experimental setup (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RoadClass {
    /// Highway segments oriented toward the city core.
    InboundHighway,
    /// Highway segments oriented away from the city core.
    OutboundHighway,
    /// Local roads inside the urban core ("local roads in Boston").
    LocalBoston,
    /// Local roads outside the urban core.
    LocalOutside,
}

impl RoadClass {
    /// All classes, in stable order.
    pub const ALL: [RoadClass; 4] = [
        RoadClass::InboundHighway,
        RoadClass::OutboundHighway,
        RoadClass::LocalBoston,
        RoadClass::LocalOutside,
    ];

    /// Stable index of the class (used for storage encoding).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            RoadClass::InboundHighway => 0,
            RoadClass::OutboundHighway => 1,
            RoadClass::LocalBoston => 2,
            RoadClass::LocalOutside => 3,
        }
    }

    /// Inverse of [`RoadClass::index`].
    pub fn from_index(i: usize) -> Option<RoadClass> {
        RoadClass::ALL.get(i).copied()
    }

    /// The posted speed limit in miles per hour (the speed the
    /// "commercial navigation system" baseline assumes at all times).
    pub fn speed_limit_mph(self) -> f64 {
        match self {
            RoadClass::InboundHighway | RoadClass::OutboundHighway => 65.0,
            RoadClass::LocalBoston | RoadClass::LocalOutside => 40.0,
        }
    }
}

impl std::fmt::Display for RoadClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RoadClass::InboundHighway => "inbound-highway",
            RoadClass::OutboundHighway => "outbound-highway",
            RoadClass::LocalBoston => "local-boston",
            RoadClass::LocalOutside => "local-outside",
        };
        f.write_str(s)
    }
}

/// A mapping from road class to CapeCod pattern — the network-wide
/// "pattern table". Edges store a [`RoadClass`]; queries resolve the
/// class through the schema.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternSchema {
    patterns: [CapeCodPattern; 4],
}

impl PatternSchema {
    /// Build from one pattern per class, in [`RoadClass::ALL`] order.
    pub fn new(patterns: [CapeCodPattern; 4]) -> Self {
        PatternSchema { patterns }
    }

    /// **Table 1** of the paper, exactly. Category 0 is *workday*,
    /// category 1 is *non-workday*.
    pub fn table1() -> Result<Self> {
        let mph = mph_to_mpm;

        // Inbound highways: workday 20 MPH 7–10am, else 65.
        let inbound_wd = SpeedProfile::with_rush_window(mph(65.0), mph(20.0), hm(7, 0), hm(10, 0))?;
        let inbound_nwd = SpeedProfile::constant(mph(65.0))?;

        // Outbound highways: workday 30 MPH 4–7pm, else 65.
        let outbound_wd =
            SpeedProfile::with_rush_window(mph(65.0), mph(30.0), hm(16, 0), hm(19, 0))?;
        let outbound_nwd = SpeedProfile::constant(mph(65.0))?;

        // Local Boston: workday 20 MPH 7–10am and 4–7pm, else 40.
        let local_boston_wd = SpeedProfile::from_pairs(&[
            (0.0, mph(40.0)),
            (hm(7, 0), mph(20.0)),
            (hm(10, 0), mph(40.0)),
            (hm(16, 0), mph(20.0)),
            (hm(19, 0), mph(40.0)),
        ])?;
        let local_boston_nwd = SpeedProfile::constant(mph(40.0))?;

        // Local outside: 40 MPH always.
        let local_outside = SpeedProfile::constant(mph(40.0))?;

        Ok(PatternSchema::new([
            CapeCodPattern::new(vec![inbound_wd, inbound_nwd])?,
            CapeCodPattern::new(vec![outbound_wd, outbound_nwd])?,
            CapeCodPattern::new(vec![local_boston_wd, local_boston_nwd])?,
            CapeCodPattern::new(vec![local_outside.clone(), local_outside])?,
        ]))
    }

    /// The commercial-navigation-system assumption: every class moves
    /// at its posted speed limit at all times, in every category.
    pub fn constant_speed_limits() -> Result<Self> {
        let mk = |class: RoadClass| -> Result<CapeCodPattern> {
            CapeCodPattern::uniform(mph_to_mpm(class.speed_limit_mph()), 2)
        };
        Ok(PatternSchema::new([
            mk(RoadClass::InboundHighway)?,
            mk(RoadClass::OutboundHighway)?,
            mk(RoadClass::LocalBoston)?,
            mk(RoadClass::LocalOutside)?,
        ]))
    }

    /// Pattern for `class`.
    #[inline]
    pub fn pattern(&self, class: RoadClass) -> &CapeCodPattern {
        &self.patterns[class.index()]
    }

    /// Profile for `class` under `category`.
    pub fn profile(&self, class: RoadClass, category: DayCategory) -> Result<&SpeedProfile> {
        self.pattern(class).profile(category)
    }

    /// Maximum speed anywhere in the schema (the naive estimator's
    /// `v_max`), miles per minute.
    pub fn max_speed(&self) -> f64 {
        self.patterns
            .iter()
            .map(CapeCodPattern::max_speed)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum speed anywhere in the schema, miles per minute.
    pub fn min_speed(&self) -> f64 {
        self.patterns
            .iter()
            .map(CapeCodPattern::min_speed)
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwl::approx_eq;

    #[test]
    fn class_round_trip() {
        for c in RoadClass::ALL {
            assert_eq!(RoadClass::from_index(c.index()), Some(c));
        }
        assert_eq!(RoadClass::from_index(4), None);
    }

    #[test]
    fn table1_workday_speeds() {
        let s = PatternSchema::table1().unwrap();
        let wd = DayCategory::WORKDAY;
        // 8am: inbound crawls, outbound flows
        let t = hm(8, 0);
        assert!(approx_eq(
            s.profile(RoadClass::InboundHighway, wd)
                .unwrap()
                .speed_at(t),
            mph_to_mpm(20.0)
        ));
        assert!(approx_eq(
            s.profile(RoadClass::OutboundHighway, wd)
                .unwrap()
                .speed_at(t),
            mph_to_mpm(65.0)
        ));
        assert!(approx_eq(
            s.profile(RoadClass::LocalBoston, wd).unwrap().speed_at(t),
            mph_to_mpm(20.0)
        ));
        assert!(approx_eq(
            s.profile(RoadClass::LocalOutside, wd).unwrap().speed_at(t),
            mph_to_mpm(40.0)
        ));
        // 5pm: outbound crawls, inbound flows
        let t = hm(17, 0);
        assert!(approx_eq(
            s.profile(RoadClass::InboundHighway, wd)
                .unwrap()
                .speed_at(t),
            mph_to_mpm(65.0)
        ));
        assert!(approx_eq(
            s.profile(RoadClass::OutboundHighway, wd)
                .unwrap()
                .speed_at(t),
            mph_to_mpm(30.0)
        ));
        assert!(approx_eq(
            s.profile(RoadClass::LocalBoston, wd).unwrap().speed_at(t),
            mph_to_mpm(20.0)
        ));
        // noon: everything at base speed
        let t = hm(12, 0);
        for c in RoadClass::ALL {
            assert!(approx_eq(
                s.profile(c, wd).unwrap().speed_at(t),
                mph_to_mpm(c.speed_limit_mph())
            ));
        }
    }

    #[test]
    fn table1_nonworkday_is_flat() {
        let s = PatternSchema::table1().unwrap();
        let nwd = DayCategory::NON_WORKDAY;
        for c in RoadClass::ALL {
            let p = s.profile(c, nwd).unwrap();
            assert_eq!(p.pieces().len(), 1);
            assert!(approx_eq(
                p.speed_at(hm(8, 0)),
                mph_to_mpm(c.speed_limit_mph())
            ));
        }
    }

    #[test]
    fn schema_extremes() {
        let s = PatternSchema::table1().unwrap();
        assert!(approx_eq(s.max_speed(), mph_to_mpm(65.0)));
        assert!(approx_eq(s.min_speed(), mph_to_mpm(20.0)));
        let c = PatternSchema::constant_speed_limits().unwrap();
        assert!(approx_eq(c.max_speed(), mph_to_mpm(65.0)));
        assert!(approx_eq(c.min_speed(), mph_to_mpm(40.0)));
    }
}
