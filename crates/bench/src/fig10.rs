//! Figure 10: the CapeCod (continuous) model vs the Discrete Time
//! model — travel-time accuracy and query-time cost per discretization
//! level.
//!
//! Paper setup (§6.3): 100 queries, interval = 2 rush hours, distance
//! 7–8 miles, discretizations 1 h / 10 min / 1 min / 10 s. Both panels
//! report ratios *discrete over CapeCod*.

use std::time::Instant;

use allfp::baseline::discrete_time;
use allfp::{Engine, EngineConfig, NaiveLb, QuerySpec};
use pwl::time::hm;
use pwl::Interval;
use roadnet::workload::sample_pairs;
use roadnet::RoadNetwork;
use traffic::DayCategory;

use crate::report::{fnum, Table};
use crate::scenario::BackendSpec;

/// The probed discretization steps, minutes (1h, 10m, 1m, 10s).
pub const STEPS: [f64; 4] = [60.0, 10.0, 1.0, 1.0 / 6.0];

/// Aggregated ratios for one discretization step.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Row {
    /// Discretization step, minutes.
    pub step_minutes: f64,
    /// Mean of (discrete travel / exact travel) — Figure 10(a).
    pub travel_ratio: f64,
    /// Total discrete wall time / total exact wall time — Figure 10(b).
    pub time_ratio: f64,
    /// Machine-independent analogue: total discrete expanded nodes /
    /// total exact expanded paths.
    pub work_ratio: f64,
    /// Probes per query at this step.
    pub probes: usize,
}

/// Outcome of the Figure 10 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Result {
    /// One row per discretization step.
    pub rows: Vec<Fig10Row>,
    /// Queries that completed.
    pub queries: usize,
    /// Mean exact (CapeCod model) query time, milliseconds.
    pub exact_ms: f64,
}

/// Run the Figure 10 experiment.
///
/// The query interval straddles the end of the morning rush
/// (8:15–10:10) so that discretization genuinely matters: the best
/// departures form a short plateau after 10:00 that coarse probing
/// misses.
pub fn run(
    net: &RoadNetwork,
    n_queries: usize,
    dist_lo: f64,
    dist_hi: f64,
    seed: u64,
    backend: &BackendSpec,
) -> Fig10Result {
    let interval = Interval::of(hm(8, 15), hm(10, 10));
    let engine = backend
        .wrap(Engine::new(net, EngineConfig::default()))
        .expect("backend builds");
    let lb = NaiveLb::new(net.max_speed());

    let pairs = sample_pairs(net, n_queries, dist_lo, dist_hi, seed).expect("sampling succeeds");
    let mut exact_total_ms = 0.0f64;
    let mut exact_total_work = 0usize;
    let mut exacts = Vec::new();
    for p in &pairs {
        let q = QuerySpec::new(p.source, p.target, interval, DayCategory::WORKDAY);
        let t0 = Instant::now();
        let Ok(single) = engine.single_fastest_path(&q) else {
            continue;
        };
        exact_total_ms += t0.elapsed().as_secs_f64() * 1e3;
        exact_total_work += single.stats.expanded_paths.max(1);
        exacts.push((p, single));
    }

    let mut rows = Vec::with_capacity(STEPS.len());
    for step in STEPS {
        let mut travel_ratio_sum = 0.0f64;
        let mut total_ms = 0.0f64;
        let mut total_work = 0usize;
        let mut probes = 0usize;
        for (p, exact) in &exacts {
            let t0 = Instant::now();
            let d = discrete_time(
                net,
                p.source,
                p.target,
                &interval,
                step,
                DayCategory::WORKDAY,
                &lb,
            )
            .expect("reachable per exact run");
            total_ms += t0.elapsed().as_secs_f64() * 1e3;
            total_work += d.expanded_nodes;
            probes = d.queries;
            travel_ratio_sum += d.travel_minutes / exact.travel_minutes;
        }
        let n = exacts.len().max(1) as f64;
        rows.push(Fig10Row {
            step_minutes: step,
            travel_ratio: travel_ratio_sum / n,
            time_ratio: total_ms / exact_total_ms.max(1e-9),
            work_ratio: total_work as f64 / exact_total_work.max(1) as f64,
            probes,
        });
    }
    Fig10Result {
        rows,
        queries: exacts.len(),
        exact_ms: exact_total_ms / exacts.len().max(1) as f64,
    }
}

/// Render both panels of Figure 10.
pub fn render(result: &Fig10Result) -> Table {
    let mut t = Table::new(
        format!(
            "Figure 10 - Discrete Time vs CapeCod over {} queries (exact mean {:.2} ms)",
            result.queries, result.exact_ms
        ),
        &[
            "step",
            "probes",
            "travel ratio (10a)",
            "query-time ratio (10b)",
            "work ratio",
        ],
    );
    for r in &result.rows {
        t.push_row(vec![
            pwl::time::fmt_duration(r.step_minutes),
            r.probes.to_string(),
            fnum(r.travel_ratio, 3),
            fnum(r.time_ratio, 2),
            fnum(r.work_ratio, 2),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::BackendKind;
    use crate::scenario::{Scale, Scenario};

    #[test]
    fn ratios_behave_like_the_paper() {
        let s = Scenario::new(Scale::Small, 77);
        let result = run(&s.net, 4, 1.5, 3.0, 11, &BackendKind::Flat.into());
        assert!(result.queries >= 2);
        assert_eq!(result.rows.len(), 4);
        // travel ratio never below 1 and non-increasing as steps refine
        for w in result.rows.windows(2) {
            assert!(w[0].travel_ratio + 1e-9 >= w[1].travel_ratio);
        }
        for r in &result.rows {
            assert!(r.travel_ratio >= 1.0 - 1e-9, "{r:?}");
        }
        // work strictly grows as the step shrinks
        let w: Vec<f64> = result.rows.iter().map(|r| r.work_ratio).collect();
        assert!(w.windows(2).all(|x| x[1] > x[0]), "{w:?}");
        // finest step: ~700 probes of a few-hundred-node graph must
        // dwarf one interval query's work
        assert!(w[3] > w[0] * 50.0, "{w:?}");
    }
}
