//! The `metro-huge` tier: continental-scale (≥10⁶ node) builds and
//! queries over the streaming CCAM substrate.
//!
//! The runner exercises the full continental pipeline end to end:
//!
//! 1. bulk-build the lazily generated [`ContinentalNet`] straight to a
//!    [`FileStore`] at each swept thread count, verifying the builds
//!    are **byte-identical** (streamed file comparison, never the
//!    whole file in memory);
//! 2. serve the fig9 morning-rush workload through
//!    [`MmapStore::open_preferred`] — zero-copy OS-paged reads with a
//!    buffer pool far smaller than the graph — behind the partitioned
//!    boundary estimator (`bdLB-part`), which is precomputed from the
//!    lazy generator without materializing the graph;
//! 3. record the build walls, the analytic transient footprint of the
//!    builder (gated ≪ graph bytes), the process RSS high water, and
//!    the physical I/O counters (`bytes_read` / `bytes_written` /
//!    `mmap_faults`).
//!
//! `scripts/check.sh` runs the smoke tier (16 384 nodes) through the
//! engine-hotpath `--smoke` gate; the JSON report records the
//! million-node tier.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use allfp::{BoundaryLb, Engine, EngineConfig, MaxEstimator, NaiveLb, QuerySpec, WeightMode};
use ccam::{
    build_bulk, BlockStore, BulkBuildConfig, CcamStore, FileStore, MmapStore, DEFAULT_PAGE_SIZE,
};
use pwl::time::hm;
use pwl::Interval;
use roadnet::generators::{ContinentalConfig, ContinentalNet};
use roadnet::{NetworkSource, NodeId};
use traffic::DayCategory;

/// Thread counts swept by the parallel-build curve.
pub const BUILD_SWEEP: [usize; 3] = [1, 2, 4];

/// One point on the parallel-build curve.
#[derive(Debug, Clone)]
pub struct BuildPoint {
    /// Builder threads.
    pub threads: usize,
    /// Build wall time, seconds.
    pub wall_seconds: f64,
    /// Wall speedup versus the 1-thread build.
    pub speedup_vs_serial: f64,
}

/// Everything the metro-huge runner measures.
#[derive(Debug, Clone)]
pub struct MetroHugeReport {
    /// Tier label (`"metro-huge"` or `"smoke"`).
    pub tier: &'static str,
    /// Nodes in the tier.
    pub n_nodes: usize,
    /// Slotted data pages in the built store.
    pub data_pages: u64,
    /// All pages (superblock + patterns + data + index).
    pub total_pages: u64,
    /// On-disk bytes of the built store file.
    pub graph_bytes: u64,
    /// Analytic peak of the builder's transient allocations (points,
    /// degrees, Hilbert keys, sorted runs) — the bounded-memory
    /// claim's machine-checkable half.
    pub transient_build_bytes: usize,
    /// `VmHWM` from `/proc/self/status` after the run (process-wide
    /// high water; 0 where the file is unavailable).
    pub peak_rss_bytes: u64,
    /// Parallel-build sweep.
    pub build_sweep: Vec<BuildPoint>,
    /// Whether every swept build produced byte-identical files.
    pub deterministic: bool,
    /// `"mmap"` or `"file-fallback"` (platforms without mmap).
    pub store_kind: &'static str,
    /// Buffer-pool frames the query stack was limited to.
    pub pool_frames: usize,
    /// Partitioned-estimator precompute wall, seconds.
    pub estimator_wall_seconds: f64,
    /// Realized partition count of the estimator.
    pub estimator_groups: usize,
    /// Queries served.
    pub queries: usize,
    /// Failed queries (must be 0).
    pub query_failures: usize,
    /// Serving wall, seconds.
    pub query_wall_seconds: f64,
    /// Queries per second through the mmap stack.
    pub queries_per_sec: f64,
    /// Paths expanded across the workload.
    pub expanded_paths: usize,
    /// Physical page reads the serving stack issued.
    pub io_reads: u64,
    /// Bytes physically read while serving.
    pub io_bytes_read: u64,
    /// Bytes physically written while building (final build).
    pub io_bytes_written: u64,
    /// First-touch page faults counted by the mmap store.
    pub mmap_faults: u64,
}

/// `VmHWM` (peak resident set) in bytes, from `/proc/self/status`;
/// 0 when unavailable (non-Linux).
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Splitmix64 finalizer — the workload sampler's hash.
fn mix(seed: u64, v: u64) -> u64 {
    let mut h = seed
        .wrapping_add(v.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Distance-banded source–target pairs off the lazy generator (the
/// tier is too big for `roadnet::workload::sample_pairs`, which wants
/// a materialized network).
fn sample_pairs_lazy(
    net: &ContinentalNet,
    count: usize,
    min_miles: f64,
    max_miles: f64,
    seed: u64,
) -> Vec<(NodeId, NodeId)> {
    let n = net.n_nodes() as u64;
    let mut out = Vec::with_capacity(count);
    let mut attempt = 0u64;
    while out.len() < count && attempt < 100_000 {
        let a = NodeId((mix(seed, attempt * 2) % n) as u32);
        let b = NodeId((mix(seed, attempt * 2 + 1) % n) as u32);
        attempt += 1;
        if a == b {
            continue;
        }
        let (Ok(pa), Ok(pb)) = (net.find_node(a), net.find_node(b)) else {
            continue;
        };
        let d = pa.distance(&pb);
        if d >= min_miles && d <= max_miles {
            out.push((a, b));
        }
    }
    out
}

/// Streamed byte comparison of two files (1 MiB windows).
fn files_identical(a: &Path, b: &Path) -> std::io::Result<bool> {
    use std::io::Read;
    let (mut fa, mut fb) = (std::fs::File::open(a)?, std::fs::File::open(b)?);
    if fa.metadata()?.len() != fb.metadata()?.len() {
        return Ok(false);
    }
    let mut wa = vec![0u8; 1 << 20];
    let mut wb = vec![0u8; 1 << 20];
    loop {
        let na = fa.read(&mut wa)?;
        let nb = fb.read(&mut wb)?;
        if na != nb || wa[..na] != wb[..nb] {
            return Ok(false);
        }
        if na == 0 {
            return Ok(true);
        }
    }
}

/// Build the tier at each swept thread count, then serve `n_queries`
/// fig9 queries through the mmap stack with the partitioned boundary
/// estimator. `estimator_groups` is the target partition count.
pub fn run(
    cfg: &ContinentalConfig,
    tier: &'static str,
    n_queries: usize,
    estimator_groups: usize,
) -> MetroHugeReport {
    let lazy = ContinentalNet::new(cfg.clone()).expect("tier config is valid");
    let dir = std::env::temp_dir().join(format!("fp-metro-huge-{}-{tier}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // --- parallel-build sweep, byte-identity checked ------------------
    let mut sweep = Vec::new();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut transient = 0usize;
    let mut data_pages = 0u64;
    let mut total_pages = 0u64;
    let mut bytes_written = 0u64;
    for threads in BUILD_SWEEP {
        let path = dir.join(format!("tier-t{threads}.ccam"));
        let store = Arc::new(FileStore::create(&path, DEFAULT_PAGE_SIZE).expect("file store"));
        let bulk_cfg = BulkBuildConfig {
            threads,
            pool_frames: 256,
        };
        let start = Instant::now();
        let (built, stats) = build_bulk(&lazy, lazy.patterns(), Arc::clone(&store) as _, &bulk_cfg)
            .expect("bulk build succeeds");
        let wall = start.elapsed().as_secs_f64();
        drop(built);
        transient = transient.max(stats.transient_bytes);
        data_pages = stats.data_pages;
        total_pages = stats.total_pages;
        bytes_written = store.io_stats().bytes_written();
        sweep.push(BuildPoint {
            threads,
            wall_seconds: wall,
            speedup_vs_serial: 0.0, // filled below
        });
        paths.push(path);
    }
    let serial_wall = sweep[0].wall_seconds;
    for p in &mut sweep {
        p.speedup_vs_serial = serial_wall / p.wall_seconds.max(1e-12);
    }
    let mut deterministic = true;
    for p in &paths[1..] {
        deterministic &= files_identical(&paths[0], p).unwrap_or(false);
    }
    // Keep one file for serving, drop the rest.
    for p in &paths[1..] {
        std::fs::remove_file(p).ok();
    }
    let tier_path = &paths[0];
    let graph_bytes = std::fs::metadata(tier_path).map_or(0, |m| m.len());

    // --- partitioned estimator off the lazy generator -----------------
    let start = Instant::now();
    let bd = BoundaryLb::build_partitioned_auto(&lazy, estimator_groups, WeightMode::Distance)
        .expect("partitioned estimator builds");
    let estimator_wall = start.elapsed().as_secs_f64();
    let estimator_groups = bd.n_groups();

    // --- serve fig9 through the mmap stack ----------------------------
    let (store, store_kind): (Arc<dyn BlockStore>, &'static str) =
        match MmapStore::open(tier_path, DEFAULT_PAGE_SIZE) {
            Ok(m) => (Arc::new(m), "mmap"),
            Err(_) => (
                Arc::new(FileStore::open(tier_path, DEFAULT_PAGE_SIZE).expect("file reopens")),
                "file-fallback",
            ),
        };
    let store_stats = Arc::clone(&store);
    // Frames ≪ graph pages: the pool is a working set, not a copy.
    let pool_frames = ((total_pages / 8).clamp(128, 4096)) as usize;
    let disk = CcamStore::open(store, pool_frames).expect("ccam opens");

    let naive = NaiveLb::new(lazy.max_speed());
    let engine = Engine::with_estimator(
        &disk,
        Box::new(MaxEstimator::new(naive, bd, "bdLB-part")),
        EngineConfig::default(),
    );
    let interval = Interval::of(hm(7, 0), hm(10, 0));
    let queries: Vec<QuerySpec> = sample_pairs_lazy(&lazy, n_queries, 1.0, 3.0, 0xF19)
        .into_iter()
        .map(|(s, t)| QuerySpec::new(s, t, interval, DayCategory::WORKDAY))
        .collect();
    let mut expanded = 0usize;
    let mut failures = 0usize;
    let start = Instant::now();
    for q in &queries {
        match engine.all_fastest_paths(q) {
            Ok(a) => expanded += a.stats.expanded_paths,
            Err(_) => failures += 1,
        }
    }
    let query_wall = start.elapsed().as_secs_f64();

    let io = store_stats.io_stats();
    let report = MetroHugeReport {
        tier,
        n_nodes: lazy.n_nodes(),
        data_pages,
        total_pages,
        graph_bytes,
        transient_build_bytes: transient,
        peak_rss_bytes: peak_rss_bytes(),
        build_sweep: sweep,
        deterministic,
        store_kind,
        pool_frames,
        estimator_wall_seconds: estimator_wall,
        estimator_groups,
        queries: queries.len(),
        query_failures: failures,
        query_wall_seconds: query_wall,
        queries_per_sec: queries.len() as f64 / query_wall.max(1e-12),
        expanded_paths: expanded,
        io_reads: io.reads(),
        io_bytes_read: io.bytes_read(),
        io_bytes_written: bytes_written,
        mmap_faults: io.mmap_faults(),
    };
    drop(engine);
    drop(disk);
    std::fs::remove_dir_all(&dir).ok();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_tier_builds_and_serves() {
        let mut cfg = ContinentalConfig::smoke(0x5EED);
        // Debug-build test: shrink below the bench smoke tier.
        cfg.cells_x = 2;
        cfg.cells_y = 2;
        cfg.cell_w = 16;
        cfg.cell_h = 16;
        let r = run(&cfg, "unit", 3, 8);
        assert_eq!(r.n_nodes, 1024);
        assert!(r.deterministic, "swept builds diverged");
        assert_eq!(r.query_failures, 0);
        assert!(r.expanded_paths > 0);
        assert!(r.transient_build_bytes > 0);
        assert!((r.graph_bytes as usize) > r.transient_build_bytes / 8);
        if r.store_kind == "mmap" {
            assert!(r.mmap_faults > 0, "mmap store served without faulting");
        }
    }

    #[test]
    fn lazy_sampler_respects_band() {
        let net = ContinentalNet::new(ContinentalConfig::smoke(7)).unwrap();
        let pairs = sample_pairs_lazy(&net, 10, 0.5, 1.5, 42);
        assert_eq!(pairs.len(), 10);
        for (a, b) in pairs {
            let d = net
                .find_node(a)
                .unwrap()
                .distance(&net.find_node(b).unwrap());
            assert!((0.5..=1.5).contains(&d), "pair {a}->{b} at {d} miles");
        }
    }
}
