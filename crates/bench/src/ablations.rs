//! Ablations called out in DESIGN.md: bdLB grid granularity (A-1),
//! dominance pruning (A-2), and CCAM placement / buffer sizing (A-3).

use std::sync::Arc;
use std::time::Instant;

use allfp::{Engine, EngineConfig, EstimatorKind, QuerySpec};
use ccam::{CcamStore, MemStore, PlacementPolicy, DEFAULT_PAGE_SIZE};
use pwl::time::hm;
use pwl::Interval;
use roadnet::workload::sample_pairs;
use roadnet::RoadNetwork;
use traffic::DayCategory;

use crate::report::{fnum, Table};

/// A-1: sweep the boundary estimator's grid granularity.
///
/// Finer grids pay more precomputation for tighter bounds — up to a
/// point: past it, cells are so small that most of a route's length
/// lies in the *entry/exit* legs the table cannot see.
pub fn grid_sweep(net: &RoadNetwork, grids: &[usize], n_queries: usize, seed: u64) -> Table {
    let pairs = sample_pairs(net, n_queries, 1.5, 4.0, seed).expect("sampling succeeds");
    let interval = Interval::of(hm(7, 0), hm(10, 0));

    let mut t = Table::new(
        "Ablation A-1 - bdLB grid granularity (allFP, morning rush)",
        &[
            "grid",
            "precompute ms",
            "mean expanded nodes",
            "mean query ms",
        ],
    );
    for &grid in grids {
        let t0 = Instant::now();
        let engine = Engine::for_network(
            net,
            EngineConfig {
                estimator: if grid == 0 {
                    EstimatorKind::Naive
                } else {
                    EstimatorKind::BoundaryTime { grid }
                },
                ..Default::default()
            },
        )
        .expect("estimator builds");
        let pre_ms = t0.elapsed().as_secs_f64() * 1e3;

        let mut expanded = 0usize;
        let mut elapsed_ms = 0.0f64;
        let mut done = 0usize;
        for p in &pairs {
            let q = QuerySpec::new(p.source, p.target, interval, DayCategory::WORKDAY);
            let t0 = Instant::now();
            let Ok(ans) = engine.all_fastest_paths(&q) else {
                continue;
            };
            elapsed_ms += t0.elapsed().as_secs_f64() * 1e3;
            expanded += ans.stats.expanded_nodes;
            done += 1;
        }
        let n = done.max(1) as f64;
        t.push_row(vec![
            if grid == 0 {
                "naive".into()
            } else {
                grid.to_string()
            },
            fnum(pre_ms, 1),
            fnum(expanded as f64 / n, 1),
            fnum(elapsed_ms / n, 2),
        ]);
    }
    t
}

/// A-2: the paper's basic path expansion vs per-node dominance
/// pruning, on workloads small enough for the basic mode to finish.
pub fn pruning(net: &RoadNetwork, n_queries: usize, seed: u64) -> Table {
    let pairs = sample_pairs(net, n_queries, 1.0, 2.0, seed).expect("sampling succeeds");
    let interval = Interval::of(hm(7, 0), hm(8, 0));

    let mut t = Table::new(
        "Ablation A-2 - basic path expansion vs dominance pruning (allFP, 1h rush window)",
        &[
            "engine",
            "queries",
            "mean expanded paths",
            "mean pushed",
            "mean query ms",
        ],
    );
    for (name, prune) in [("basic (paper)", false), ("pruned (default)", true)] {
        let engine = Engine::new(
            net,
            EngineConfig {
                prune_dominated: prune,
                max_expansions: 500_000,
                ..Default::default()
            },
        );
        let mut expanded = 0usize;
        let mut pushed = 0usize;
        let mut elapsed_ms = 0.0;
        let mut done = 0usize;
        for p in &pairs {
            let q = QuerySpec::new(p.source, p.target, interval, DayCategory::WORKDAY);
            let t0 = Instant::now();
            let Ok(ans) = engine.all_fastest_paths(&q) else {
                continue;
            };
            elapsed_ms += t0.elapsed().as_secs_f64() * 1e3;
            expanded += ans.stats.expanded_paths;
            pushed += ans.stats.pushed;
            done += 1;
        }
        let n = done.max(1) as f64;
        t.push_row(vec![
            name.into(),
            done.to_string(),
            fnum(expanded as f64 / n, 1),
            fnum(pushed as f64 / n, 1),
            fnum(elapsed_ms / n, 2),
        ]);
    }
    t
}

/// A-3: CCAM placement policies under varying buffer-pool sizes —
/// page faults for the same logical access stream.
pub fn ccam_placement(net: &RoadNetwork, pool_frames: &[usize], seed: u64) -> Table {
    let pairs = sample_pairs(net, 8, 1.0, 2.5, seed).expect("sampling succeeds");
    let interval = Interval::of(hm(7, 0), hm(8, 0));

    let mut t = Table::new(
        "Ablation A-3 - CCAM placement vs buffer size (8 allFP queries, page 2048B)",
        &[
            "placement",
            "pool frames",
            "logical reads",
            "page faults",
            "hit %",
        ],
    );
    for (name, policy) in [
        ("ccam", PlacementPolicy::ConnectivityClustered),
        ("hilbert", PlacementPolicy::HilbertPacked),
        ("random", PlacementPolicy::Random { seed: 1 }),
    ] {
        for &frames in pool_frames {
            let store = Arc::new(MemStore::new(DEFAULT_PAGE_SIZE));
            let disk = CcamStore::build(net, store, policy, frames).expect("build succeeds");
            disk.clear_cache().expect("cache clears");
            let engine = Engine::new(&disk, EngineConfig::default());
            let before = disk.stats();
            for p in &pairs {
                let q = QuerySpec::new(p.source, p.target, interval, DayCategory::WORKDAY);
                if let Ok(ans) = engine.all_fastest_paths(&q) {
                    std::hint::black_box(&ans);
                }
            }
            let d = disk.stats().since(&before);
            let logical = d.hits + d.misses;
            t.push_row(vec![
                name.into(),
                frames.to_string(),
                logical.to_string(),
                d.misses.to_string(),
                fnum(100.0 * d.hits as f64 / logical.max(1) as f64, 1),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scale, Scenario};

    #[test]
    fn grid_sweep_produces_rows() {
        let s = Scenario::new(Scale::Small, 3);
        let t = grid_sweep(&s.net, &[0, 4, 8], 3, 2);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0][0], "naive");
    }

    #[test]
    fn pruning_rows_show_reduction() {
        let s = Scenario::new(Scale::Small, 3);
        let t = pruning(&s.net, 3, 2);
        assert_eq!(t.rows.len(), 2);
        let basic: f64 = t.rows[0][2].parse().unwrap();
        let pruned: f64 = t.rows[1][2].parse().unwrap();
        assert!(pruned <= basic + 1e-9, "basic {basic} pruned {pruned}");
    }

    #[test]
    fn ccam_placement_rows() {
        let s = Scenario::new(Scale::Small, 3);
        let t = ccam_placement(&s.net, &[8, 64], 2);
        assert_eq!(t.rows.len(), 6);
        // same logical reads across placements at equal pool size
        let logical_at = |row: usize| t.rows[row][2].clone();
        assert_eq!(logical_at(0), logical_at(2));
        assert_eq!(logical_at(0), logical_at(4));
    }
}
