//! Experiment scenarios: the network under test.

use roadnet::generators::{suffolk_like, MetroConfig};
use roadnet::{NetworkStats, RoadNetwork};

/// How large a network to run the experiments on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ≈0.5k nodes — smoke-test scale.
    Small,
    /// ≈3–4k nodes over the full 8×8-mile extent — the default; same
    /// trip distances as the paper with shorter runtimes.
    Medium,
    /// ≈14–15k nodes — the paper's dataset magnitude (Suffolk County:
    /// 14,456 nodes).
    Full,
}

impl std::str::FromStr for Scale {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "small" => Ok(Scale::Small),
            "medium" => Ok(Scale::Medium),
            "full" => Ok(Scale::Full),
            other => Err(format!("unknown scale '{other}' (small|medium|full)")),
        }
    }
}

/// A generated network plus its provenance, shared by all runners.
pub struct Scenario {
    /// The network under test.
    pub net: RoadNetwork,
    /// Scale used.
    pub scale: Scale,
    /// Seed used.
    pub seed: u64,
}

impl Scenario {
    /// Generate the scenario network.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let cfg = match scale {
            Scale::Small => MetroConfig::small(seed),
            Scale::Medium => MetroConfig::medium(seed),
            Scale::Full => MetroConfig {
                seed,
                ..MetroConfig::default()
            },
        };
        let net = suffolk_like(&cfg).expect("generator succeeds");
        Scenario { net, scale, seed }
    }

    /// Human-readable description, printed at the top of every run.
    pub fn describe(&self) -> String {
        format!(
            "scenario: {:?} scale, seed {}\n{}",
            self.scale,
            self.seed,
            NetworkStats::of(&self.net)
        )
    }

    /// Maximum query distance (miles) that the scenario's extent can
    /// support with a healthy sample population.
    pub fn max_query_miles(&self) -> usize {
        match self.scale {
            Scale::Small => 3,
            Scale::Medium | Scale::Full => 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_parse() {
        assert_eq!("small".parse::<Scale>().unwrap(), Scale::Small);
        assert_eq!("full".parse::<Scale>().unwrap(), Scale::Full);
        assert!("big".parse::<Scale>().is_err());
    }

    #[test]
    fn small_scenario_generates() {
        let s = Scenario::new(Scale::Small, 9);
        assert!(s.net.n_nodes() > 300);
        assert!(s.describe().contains("Small"));
        assert_eq!(s.max_query_miles(), 3);
    }
}
