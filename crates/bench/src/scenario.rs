//! Experiment scenarios: the network under test and the query backend
//! driving it.

use allfp::{Engine, PathfindBackend};
use hierarchy::{HierarchyConfig, HierarchyEngine};
use roadnet::generators::{suffolk_like, MetroConfig};
use roadnet::{NetworkSource, NetworkStats, RoadNetwork};

/// How large a network to run the experiments on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ≈0.5k nodes — smoke-test scale.
    Small,
    /// ≈3–4k nodes over the full 8×8-mile extent — the default; same
    /// trip distances as the paper with shorter runtimes.
    Medium,
    /// ≈14–15k nodes — the paper's dataset magnitude (Suffolk County:
    /// 14,456 nodes).
    Full,
}

impl std::str::FromStr for Scale {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "small" => Ok(Scale::Small),
            "medium" => Ok(Scale::Medium),
            // "large" is the colloquial name the hierarchy speedup gate
            // uses for the paper-magnitude network; accept both.
            "full" | "large" => Ok(Scale::Full),
            other => Err(format!("unknown scale '{other}' (small|medium|full|large)")),
        }
    }
}

/// Which query strategy an experiment drives: the flat best-first
/// engine, or the time-dependent contraction hierarchy built on top
/// of it (`fp-hierarchy`). Both answer bit-identically; only the work
/// per query differs, which is exactly what the figures measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Best-first interval search over the original network.
    #[default]
    Flat,
    /// Up–down search over a contracted overlay, answers re-composed
    /// through the flat pipeline (so they stay bit-identical).
    Ch,
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "flat" => Ok(BackendKind::Flat),
            "ch" | "hierarchy" => Ok(BackendKind::Ch),
            other => Err(format!("unknown backend '{other}' (flat|ch)")),
        }
    }
}

impl BackendKind {
    /// Short name for table titles and report rows.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Flat => "flat",
            BackendKind::Ch => "ch",
        }
    }

    /// Wrap an already-configured flat engine in the chosen backend
    /// with default hierarchy knobs. `Ch` runs preprocessing here
    /// (contraction of every configured day category), so callers
    /// should wrap once per engine, not per query.
    pub fn wrap<'a, S: NetworkSource>(
        self,
        engine: Engine<'a, S>,
    ) -> allfp::Result<Box<dyn PathfindBackend + 'a>> {
        BackendSpec::from(self).wrap(engine)
    }
}

/// Backend selection plus the hierarchy build knobs the CLI exposes
/// (`--threads`, `--overlay-compress`). [`BackendKind`] alone keeps
/// the defaults; experiments that honor the flags take a spec.
#[derive(Debug, Clone, Default)]
pub struct BackendSpec {
    /// Which search strategy to run.
    pub kind: BackendKind,
    /// Hierarchy build configuration (ignored by the flat backend).
    pub hierarchy: HierarchyConfig,
}

impl From<BackendKind> for BackendSpec {
    fn from(kind: BackendKind) -> Self {
        BackendSpec {
            kind,
            hierarchy: HierarchyConfig::default(),
        }
    }
}

impl BackendSpec {
    /// Short name for table titles and report rows.
    pub fn label(&self) -> &'static str {
        self.kind.label()
    }

    /// Wrap an already-configured flat engine in the chosen backend.
    /// `Ch` runs preprocessing here, so wrap once per engine, not per
    /// query.
    pub fn wrap<'a, S: NetworkSource>(
        &self,
        engine: Engine<'a, S>,
    ) -> allfp::Result<Box<dyn PathfindBackend + 'a>> {
        Ok(match self.kind {
            BackendKind::Flat => Box::new(engine),
            BackendKind::Ch => {
                Box::new(HierarchyEngine::with_flat(engine, self.hierarchy.clone())?)
            }
        })
    }
}

/// A generated network plus its provenance, shared by all runners.
pub struct Scenario {
    /// The network under test.
    pub net: RoadNetwork,
    /// Scale used.
    pub scale: Scale,
    /// Seed used.
    pub seed: u64,
}

impl Scenario {
    /// Generate the scenario network.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let cfg = match scale {
            Scale::Small => MetroConfig::small(seed),
            Scale::Medium => MetroConfig::medium(seed),
            Scale::Full => MetroConfig {
                seed,
                ..MetroConfig::default()
            },
        };
        let net = suffolk_like(&cfg).expect("generator succeeds");
        Scenario { net, scale, seed }
    }

    /// Human-readable description, printed at the top of every run.
    pub fn describe(&self) -> String {
        format!(
            "scenario: {:?} scale, seed {}\n{}",
            self.scale,
            self.seed,
            NetworkStats::of(&self.net)
        )
    }

    /// Maximum query distance (miles) that the scenario's extent can
    /// support with a healthy sample population.
    pub fn max_query_miles(&self) -> usize {
        match self.scale {
            Scale::Small => 3,
            Scale::Medium | Scale::Full => 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_parse() {
        assert_eq!("small".parse::<Scale>().unwrap(), Scale::Small);
        assert_eq!("full".parse::<Scale>().unwrap(), Scale::Full);
        assert!("big".parse::<Scale>().is_err());
    }

    #[test]
    fn small_scenario_generates() {
        let s = Scenario::new(Scale::Small, 9);
        assert!(s.net.n_nodes() > 300);
        assert!(s.describe().contains("Small"));
        assert_eq!(s.max_query_miles(), 3);
    }
}
