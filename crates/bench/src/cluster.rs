//! Deterministic cluster-chaos harness for the report and smoke gates.
//!
//! Drives the `fp-cluster` simulator's canned scenarios — the full
//! chaos composition (2× overload, a node crash and restart, a
//! partition storm, latency spikes, live traffic deltas) and the
//! sustained node-loss run — and folds the outcome into report-ready
//! numbers. Like [`crate::overload`], every scenario is a pure
//! function of its seed and [`run_chaos`] / [`run_node_loss`] execute
//! it twice to certify bit-exact replay (the `deterministic` field —
//! a CI gate, not an aspiration).

use cluster::{run_cluster_sim, ClusterScenario, ClusterSimResult, RpcCounters};

use crate::report::Table;

/// What one cluster run produced, in report-ready form.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Which canned scenario ran (`"chaos"` or `"node-loss"`).
    pub scenario: &'static str,
    /// Scenario seed.
    pub seed: u64,
    /// Simulated nodes in the fleet.
    pub sim_nodes: usize,
    /// Realized shard count.
    pub shards: usize,
    /// Arrivals offered to the fleet.
    pub submissions: usize,
    /// Admission-accepted submissions, fleet-wide.
    pub admitted: u64,
    /// Typed admission rejections plus unroutable arrivals.
    pub rejected: u64,
    /// Exact answers delivered.
    pub answered: u64,
    /// Degraded answers delivered.
    pub degraded: u64,
    /// Failed queries.
    pub failed: u64,
    /// Cancelled admissions (crash drains and deadline sheds).
    pub cancelled: u64,
    /// Arrivals with no live host (every replica down).
    pub unroutable: u64,
    /// Injected node crashes.
    pub crashes: u64,
    /// Node restarts (fresh incarnation, peers reset).
    pub restarts: u64,
    /// Fleet-wide RPC counters, folded over every node.
    pub rpc: RpcCounters,
    /// Arrivals routed past a dead primary at admission.
    pub routed_failovers: u64,
    /// Mean extra virtual latency of a replica failover.
    pub failover_latency_mean: f64,
    /// Worst-case failover latency observed.
    pub failover_latency_max: u64,
    /// `executed_units / (elapsed × nodes)`: useful work as a fraction
    /// of fleet capacity.
    pub goodput: f64,
    /// Did `ClusterStats::reconciles` hold, per node and fleet-wide?
    pub reconciled: bool,
    /// Did a second run of the same seed reproduce the run bit for
    /// bit — every outcome, counter, and answer signature?
    pub deterministic: bool,
}

/// Fold the per-node RPC counters into one fleet-wide total.
fn fold_rpc(result: &ClusterSimResult) -> RpcCounters {
    result
        .stats
        .nodes
        .iter()
        .fold(RpcCounters::default(), |mut acc, n| {
            acc.attempts += n.rpc.attempts;
            acc.retries += n.rpc.retries;
            acc.timeouts += n.rpc.timeouts;
            acc.peer_down += n.rpc.peer_down;
            acc.partition_drops += n.rpc.partition_drops;
            acc.breaker_skips += n.rpc.breaker_skips;
            acc.failovers += n.rpc.failovers;
            acc.shard_fetches += n.rpc.shard_fetches;
            acc.shard_unreachable += n.rpc.shard_unreachable;
            acc
        })
}

fn run_scenario(label: &'static str, sc: &ClusterScenario) -> ClusterReport {
    let a = run_cluster_sim(sc).expect("cluster scenario builds");
    let b = run_cluster_sim(sc).expect("cluster scenario builds");
    let deterministic = a == b;
    let s = &a.stats;
    ClusterReport {
        scenario: label,
        seed: sc.seed,
        sim_nodes: sc.n_sim_nodes,
        shards: a.n_shards,
        submissions: a.n_submissions,
        admitted: s.admitted,
        rejected: s.rejected + s.unroutable,
        answered: s.answered,
        degraded: s.degraded,
        failed: s.failed,
        cancelled: s.cancelled,
        unroutable: s.unroutable,
        crashes: s.crashes,
        restarts: s.restarts,
        rpc: fold_rpc(&a),
        routed_failovers: s.routed_failovers,
        failover_latency_mean: s.failover_latency.mean(),
        failover_latency_max: s.failover_latency.max(),
        goodput: a.goodput(),
        reconciled: s.reconciles(),
        deterministic,
    }
}

/// Run the full chaos composition (twice, to certify determinism) and
/// fold it into a [`ClusterReport`].
pub fn run_chaos(seed: u64) -> ClusterReport {
    run_scenario("chaos", &ClusterScenario::chaos(seed))
}

/// Run the sustained node-loss scenario (twice): one shard owner down
/// for most of the run, replication keeping every shard reachable.
pub fn run_node_loss(seed: u64) -> ClusterReport {
    run_scenario("node-loss", &ClusterScenario::node_loss(seed))
}

/// Render a report as a key/value table for the experiments CLI.
pub fn render(r: &ClusterReport) -> Table {
    let mut t = Table::new(
        format!(
            "Cluster twin - seeded {} scenario over {} nodes / {} shards in virtual time",
            r.scenario, r.sim_nodes, r.shards
        ),
        &["metric", "value"],
    );
    let rows: [(&str, String); 20] = [
        ("submissions", r.submissions.to_string()),
        ("admitted", r.admitted.to_string()),
        ("rejected", r.rejected.to_string()),
        ("answered", r.answered.to_string()),
        ("degraded", r.degraded.to_string()),
        ("failed", r.failed.to_string()),
        ("cancelled", r.cancelled.to_string()),
        ("unroutable", r.unroutable.to_string()),
        (
            "crashes / restarts",
            format!("{} / {}", r.crashes, r.restarts),
        ),
        ("rpc attempts", r.rpc.attempts.to_string()),
        ("rpc retries", r.rpc.retries.to_string()),
        ("rpc timeouts", r.rpc.timeouts.to_string()),
        ("rpc peer-down fast-fails", r.rpc.peer_down.to_string()),
        ("breaker skips", r.rpc.breaker_skips.to_string()),
        ("replica failovers", r.rpc.failovers.to_string()),
        ("routed failovers", r.routed_failovers.to_string()),
        (
            "failover latency mean / max",
            format!(
                "{:.1} / {}",
                r.failover_latency_mean, r.failover_latency_max
            ),
        ),
        ("goodput", format!("{:.4}", r.goodput)),
        ("reconciled", r.reconciled.to_string()),
        ("deterministic replay", r.deterministic.to_string()),
    ];
    for (k, v) in rows {
        t.push_row(vec![k.to_string(), v]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_run_is_reconciled_deterministic_and_robust() {
        let r = run_chaos(11);
        assert!(r.reconciled, "{r:?}");
        assert!(r.deterministic, "{r:?}");
        assert_eq!(r.crashes, 1, "{r:?}");
        assert_eq!(r.restarts, 1, "{r:?}");
        assert!(r.answered > 0, "{r:?}");
        assert!(r.rpc.retries > 0, "spikes must force retries: {r:?}");
        assert!(r.rpc.failovers > 0, "node loss must force failovers: {r:?}");
        assert_eq!(
            r.admitted + r.rejected,
            r.submissions as u64,
            "every arrival accounted for: {r:?}"
        );
    }

    #[test]
    fn node_loss_goodput_holds_above_half() {
        let r = run_node_loss(5);
        assert!(r.reconciled, "{r:?}");
        assert!(r.deterministic, "{r:?}");
        assert_eq!(r.crashes, 1, "{r:?}");
        assert_eq!(r.restarts, 0, "{r:?}");
        assert!(
            (0.5..=1.0).contains(&r.goodput),
            "goodput {:.3} outside [0.5, 1.0]: {r:?}",
            r.goodput
        );
    }
}
