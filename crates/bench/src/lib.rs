//! Experiment harness regenerating every table and figure of the
//! paper's evaluation (§6), plus the ablations called out in
//! DESIGN.md.
//!
//! The library half holds the runners; the `experiments` binary is the
//! CLI around them; the Criterion benches under `benches/` wrap the
//! same runners for statistically careful micro-timings.
//!
//! | artifact | runner | binary subcommand |
//! |---|---|---|
//! | Table 1 (pattern schema) | [`table1::render`] | `table1` |
//! | Figure 9(a)/(b) (expanded nodes, naiveLB vs bdLB) | [`fig9::run`] | `fig9` |
//! | Figure 10(a)/(b) (discrete vs CapeCod ratios) | [`fig10::run`] | `fig10` |
//! | §6 constant-speed comparison (≈50% claim) | [`const_speed::run`] | `const-speed` |
//! | A-1 grid granularity | [`ablations::grid_sweep`] | `ablation-grid` |
//! | A-2 dominance pruning | [`ablations::pruning`] | `ablation-pruning` |
//! | A-3 CCAM placement / buffer pool | [`ablations::ccam_placement`] | `ablation-ccam` |

pub mod ablations;
pub mod alloc;
pub mod cluster;
pub mod const_speed;
pub mod fig10;
pub mod fig9;
pub mod live_update;
pub mod metro_huge;
pub mod overload;
pub mod report;
pub mod scenario;
pub mod table1;

pub use report::Table;
pub use scenario::{BackendKind, BackendSpec, Scale, Scenario};
