//! The §6 constant-speed comparison: "The CapeCod model gives 50%
//! improvement regarding the travel time" over planning with speed
//! limits, under the Table 1 setup, for rush-hour departures.

use allfp::baseline::constant_speed_plan;
use allfp::{Engine, EngineConfig, QuerySpec};
use pwl::time::hm;
use pwl::Interval;
use roadnet::workload::commute_pairs;
use roadnet::{NetworkSource, RoadNetwork};
use traffic::DayCategory;

use crate::report::{fnum, Table};

/// Aggregate comparison at one departure instant.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstSpeedRow {
    /// Departure instant, minutes since midnight.
    pub leave: f64,
    /// Queries compared.
    pub queries: usize,
    /// Mean travel on the pattern-aware fastest path, minutes.
    pub smart_mean: f64,
    /// Mean travel when driving the constant-speed plan, minutes.
    pub constant_mean: f64,
    /// Mean per-query improvement, percent
    /// (`100 · (constant − smart) / constant`).
    pub improvement_pct: f64,
}

/// Run the comparison at several departure instants (rush and
/// off-peak; the paper notes the gap vanishes when speeds don't
/// differ).
///
/// The workload is a *commute*: suburb → downtown in the morning and
/// at noon, downtown → suburb in the evening — the trips whose
/// congestion exposure the paper's 50% claim is about.
pub fn run(net: &RoadNetwork, n_queries: usize, seed: u64) -> Vec<ConstSpeedRow> {
    let engine = Engine::new(net, EngineConfig::default());
    // (instant, evening?) — evening trips run the commute in reverse
    let instants = [(hm(8, 0), false), (hm(12, 0), false), (hm(17, 0), true)];
    let downtown_radius = downtown_radius(net);
    let pairs =
        commute_pairs(net, n_queries, 2.0, 6.0, downtown_radius, seed).expect("sampling succeeds");

    let mut rows = Vec::with_capacity(instants.len());
    for (leave, evening) in instants {
        let mut smart_sum = 0.0;
        let mut const_sum = 0.0;
        let mut improvement_sum = 0.0;
        let mut done = 0usize;
        for p in &pairs {
            let (src, dst) = if evening {
                (p.target, p.source)
            } else {
                (p.source, p.target)
            };
            let q = QuerySpec::new(src, dst, Interval::of(leave, leave), DayCategory::WORKDAY);
            let Ok(smart) = engine.single_fastest_path(&q) else {
                continue;
            };
            let Ok((_, constant)) =
                constant_speed_plan(net, q.source, q.target, leave, DayCategory::WORKDAY)
            else {
                continue;
            };
            smart_sum += smart.travel_minutes;
            const_sum += constant;
            improvement_sum += 100.0 * (constant - smart.travel_minutes) / constant.max(1e-9);
            done += 1;
        }
        let n = done.max(1) as f64;
        rows.push(ConstSpeedRow {
            leave,
            queries: done,
            smart_mean: smart_sum / n,
            constant_mean: const_sum / n,
            improvement_pct: improvement_sum / n,
        });
    }
    rows
}

/// Infer the downtown radius from the extent of LocalBoston streets.
fn downtown_radius(net: &RoadNetwork) -> f64 {
    let mut r = 0.0f64;
    for u in net.node_ids() {
        let p = net.find_node(u).expect("valid id");
        for e in net.neighbors(u).expect("valid id") {
            if e.class == traffic::RoadClass::LocalBoston {
                r = r.max(p.x.hypot(p.y));
                break;
            }
        }
    }
    if r == 0.0 {
        1.0
    } else {
        r
    }
}

/// Render the comparison.
pub fn render(rows: &[ConstSpeedRow]) -> Table {
    let mut t = Table::new(
        "Section 6 - CapeCod planning vs constant speed-limit planning (workday)",
        &[
            "departure",
            "queries",
            "smart mean",
            "constant mean",
            "improvement %",
        ],
    );
    for r in rows {
        t.push_row(vec![
            pwl::time::fmt_minutes(r.leave),
            r.queries.to_string(),
            pwl::time::fmt_duration(r.smart_mean),
            pwl::time::fmt_duration(r.constant_mean),
            fnum(r.improvement_pct, 1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scale, Scenario};

    #[test]
    fn rush_hour_shows_improvement_noon_does_not() {
        let s = Scenario::new(Scale::Small, 19);
        let rows = run(&s.net, 12, 3);
        assert_eq!(rows.len(), 3);
        let rush = &rows[0]; // 8am
        let noon = &rows[1];
        assert!(rush.queries >= 6);
        // smart is never worse, and strictly better at rush hour
        assert!(rush.improvement_pct >= 0.0);
        assert!(noon.improvement_pct >= -1e-9);
        assert!(
            rush.improvement_pct >= noon.improvement_pct,
            "rush {} vs noon {}",
            rush.improvement_pct,
            noon.improvement_pct
        );
    }
}
