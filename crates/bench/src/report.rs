//! Plain-text and CSV table rendering for experiment results.

/// A rendered experiment result: a titled table of strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title (the paper artifact it reproduces).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (same arity as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Render as CSV (header line + rows).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "=== {} ===", self.title)?;
        let line = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                write!(f, "{cell:>width$}  ", width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Format a float with `digits` decimals.
pub fn fnum(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text() {
        let mut t = Table::new("demo", &["miles", "value"]);
        t.push_row(vec!["1".into(), "10.5".into()]);
        t.push_row(vec!["10".into(), "7".into()]);
        let s = t.to_string();
        assert!(s.starts_with("=== demo ==="));
        assert!(s.contains("miles"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1,2".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,2\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }
}
