//! Deterministic live-update harness for the report and smoke gates.
//!
//! Two halves, both pure functions of the seed:
//!
//! * **Scoped invalidation** — build the metro-medium hierarchy with
//!   exact overlay storage, apply a seeded 1%-of-edges
//!   [`traffic::TrafficDelta`], and measure the incremental refresh:
//!   wall time and the fraction of shortcut arcs whose composition
//!   cone the delta touched (everything else is reused verbatim). The
//!   report gates this fraction under 20%.
//! * **Goodput under storm** — a virtual-time `QueryService` over an
//!   epoch-pinned [`allfp::LiveBackend`] at a seeded 2× offered load
//!   while a stream of deltas swaps epochs mid-flight; the service
//!   must keep ≥ half of capacity on useful work, reconcile every
//!   counter (including the epoch identities), and replay the run
//!   bit-identically.

use std::time::Instant;

use allfp::service::{
    ArrivalSchedule, DrainMode, ManualClock, Priority, QueryService, ServiceClock, ServiceConfig,
    ServiceOutcome, ServiceStats, Submission,
};
use allfp::{Engine, EngineConfig, EpochManager, LiveBackend};
use hierarchy::{HierarchyConfig, HierarchyEngine};
use roadnet::generators::grid;
use traffic::RoadClass;

use crate::report::Table;
use crate::scenario::{Scale, Scenario};

/// What one live-update run produced, in report-ready form.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveUpdateReport {
    /// Scenario seed.
    pub seed: u64,
    /// Scale label of the refresh substrate.
    pub scale: &'static str,
    /// Edges in the refresh network.
    pub n_edges: usize,
    /// Edges the seeded delta targeted (~1%).
    pub delta_edges: usize,
    /// Shortcut arcs in the overlay.
    pub shortcuts_total: usize,
    /// Shortcut arcs the refresh had to re-compose.
    pub shortcuts_rebuilt: usize,
    /// `shortcuts_rebuilt / shortcuts_total` — the scoped-invalidation
    /// metric (report gate: < 0.20 for a 1% delta).
    pub invalidation_fraction: f64,
    /// Wall seconds of the full from-scratch hierarchy build.
    pub build_wall_seconds: f64,
    /// Wall seconds of the incremental refresh.
    pub refresh_wall_seconds: f64,
    /// Submissions offered to the storm half.
    pub submissions: usize,
    /// Deltas applied during the storm.
    pub updates_applied: u64,
    /// Epochs published (seed + one per update).
    pub epochs_published: u64,
    /// Superseded epochs retired by the end of the run.
    pub epochs_retired: u64,
    /// Exact answers delivered under the storm.
    pub answered: u64,
    /// Typed admission rejections under the 2× load.
    pub rejected: u64,
    /// `executed_units / elapsed_units` under the storm (report gate:
    /// ≥ 0.5).
    pub goodput_ratio: f64,
    /// Did every counter identity hold at the end of the run?
    pub reconciled: bool,
    /// Did a second run of the same seed reproduce the storm, outcome
    /// for outcome?
    pub deterministic: bool,
}

/// One storm run's comparable residue.
#[derive(Debug, PartialEq)]
struct SimOutcome {
    stats: ServiceStats,
    terminals: Vec<(u64, &'static str)>,
    executed_units: u64,
    elapsed: u64,
}

fn storm_sim(seed: u64, submissions: usize, deltas: usize) -> SimOutcome {
    let net = grid(6, 6, 0.3, RoadClass::LocalOutside).expect("generator is infallible here");
    let specs = crate::overload::sample_specs(&net, 10, seed);
    let costs: Vec<u64> = {
        let calib = Engine::new(&net, EngineConfig::default());
        specs
            .iter()
            .map(|q| {
                calib
                    .all_fastest_paths(q)
                    .map(|a| a.stats.expanded_paths.max(1) as u64)
                    .unwrap_or(1)
            })
            .collect()
    };
    let mean_cost = (costs.iter().sum::<u64>() / costs.len() as u64).max(1);

    let mgr = EpochManager::new(net, EngineConfig::default()).expect("seed epoch builds");
    let live = LiveBackend::new(&mgr);
    let clock = ManualClock::new();
    let config = ServiceConfig {
        queue_capacity: 10,
        shed_expired: true,
        default_cost: mean_cost,
        initial_units_per_cost: 1.0,
        ..ServiceConfig::default()
    };
    let svc = QueryService::new(&live, &clock, config).with_epochs(&mgr);

    let gap = (mean_cost / 2).max(1);
    let schedule = ArrivalSchedule::open_loop(seed ^ 0x0F_F3_4D, submissions, gap);
    let horizon = *schedule.times().last().expect("non-empty schedule");
    let delta_times: Vec<u64> = (1..=deltas as u64)
        .map(|k| k * horizon / (deltas as u64 + 1))
        .collect();

    let mut executed_units = 0u64;
    let mut next = 0usize;
    let mut next_delta = 0usize;
    loop {
        let now = clock.now();
        if next_delta < delta_times.len() && delta_times[next_delta] <= now {
            let delta = mgr
                .current()
                .network()
                .seeded_delta(seed ^ (next_delta as u64), 4, next_delta as u64 + 1)
                .expect("seeded delta builds");
            mgr.apply_delta(&delta).expect("delta applies");
            next_delta += 1;
            continue;
        }
        if next < schedule.len() && schedule.times()[next] <= now {
            let idx = next % specs.len();
            let sub = Submission::new(specs[idx].clone())
                .with_class(if next % 4 == 3 {
                    Priority::Batch
                } else {
                    Priority::Interactive
                })
                .with_deadline(now + 5 * mean_cost)
                .with_cost_hint(costs[idx]);
            let _ = svc.submit(sub);
            next += 1;
            continue;
        }
        match svc.step() {
            Some(rep) => {
                executed_units += rep.cost;
                clock.advance(rep.cost);
            }
            None => {
                if next >= schedule.len() && next_delta >= delta_times.len() {
                    break;
                }
                let mut jump = u64::MAX;
                if next < schedule.len() {
                    jump = jump.min(schedule.times()[next]);
                }
                if next_delta < delta_times.len() {
                    jump = jump.min(delta_times[next_delta]);
                }
                clock.set(jump);
            }
        }
    }
    svc.begin_drain(DrainMode::Finish);
    while let Some(rep) = svc.step() {
        executed_units += rep.cost;
        clock.advance(rep.cost);
    }

    let terminals = svc
        .take_outcomes()
        .iter()
        .map(|(id, out)| {
            (
                *id,
                match out {
                    ServiceOutcome::Answered(_) => "answered",
                    ServiceOutcome::Degraded(_) => "degraded",
                    ServiceOutcome::Failed(_) => "failed",
                    ServiceOutcome::Cancelled(_) => "cancelled",
                },
            )
        })
        .collect();
    SimOutcome {
        stats: svc.stats(),
        terminals,
        executed_units,
        elapsed: clock.now(),
    }
}

/// Run both halves: the metro-medium scoped-invalidation measurement
/// and the seeded update storm (twice, to certify determinism).
pub fn run(seed: u64, submissions: usize, deltas: usize) -> LiveUpdateReport {
    // Scoped invalidation on metro-medium, exact overlay storage (an
    // incremental refresh re-composes from stored functions, which
    // must be exact — see `fp-hierarchy`).
    let scenario = Scenario::new(Scale::Medium, seed);
    let net = &scenario.net;
    let config = HierarchyConfig {
        overlay_compress: None,
        ..HierarchyConfig::default()
    };
    let t0 = Instant::now();
    let ch = HierarchyEngine::build(net, EngineConfig::default(), config)
        .expect("hierarchy builds on the scenario network");
    let build_wall_seconds = t0.elapsed().as_secs_f64();

    let delta_edges = (net.n_edges() / 100).max(1);
    let delta = net
        .seeded_delta(seed ^ 0xD17A, delta_edges, 1)
        .expect("seeded delta builds");
    let (net2, delta_report) = net.apply_delta(&delta).expect("delta applies");
    let t0 = Instant::now();
    let (_, rr) = ch
        .refreshed(
            Engine::new(&net2, EngineConfig::default()),
            &delta_report.changed,
        )
        .expect("refresh succeeds on exact storage");
    let refresh_wall_seconds = t0.elapsed().as_secs_f64();

    // The storm half, twice.
    let a = storm_sim(seed, submissions, deltas);
    let b = storm_sim(seed, submissions, deltas);
    let deterministic = a == b;
    let s = a.stats;
    LiveUpdateReport {
        seed,
        scale: "medium",
        n_edges: net.n_edges(),
        delta_edges,
        shortcuts_total: rr.shortcuts_total,
        shortcuts_rebuilt: rr.shortcuts_rebuilt,
        invalidation_fraction: rr.invalidation_fraction(),
        build_wall_seconds,
        refresh_wall_seconds,
        submissions,
        updates_applied: s.updates_applied,
        epochs_published: s.epochs_published,
        epochs_retired: s.epochs_retired,
        answered: s.answered,
        rejected: s.rejected,
        goodput_ratio: if a.elapsed > 0 {
            a.executed_units as f64 / a.elapsed as f64
        } else {
            0.0
        },
        reconciled: s.reconciles(),
        deterministic,
    }
}

/// Render a report as a key/value table for the experiments CLI.
pub fn render(r: &LiveUpdateReport) -> Table {
    let mut t = Table::new(
        format!(
            "Live update - {} refresh + seeded update storm (seed {:#x})",
            r.scale, r.seed
        ),
        &["metric", "value"],
    );
    let rows: [(&str, String); 14] = [
        ("edges (refresh substrate)", r.n_edges.to_string()),
        ("delta edges (~1%)", r.delta_edges.to_string()),
        (
            "shortcuts rebuilt / total",
            format!("{} / {}", r.shortcuts_rebuilt, r.shortcuts_total),
        ),
        (
            "invalidation fraction",
            format!("{:.4}", r.invalidation_fraction),
        ),
        (
            "full build wall (s)",
            format!("{:.3}", r.build_wall_seconds),
        ),
        ("refresh wall (s)", format!("{:.3}", r.refresh_wall_seconds)),
        ("storm submissions", r.submissions.to_string()),
        ("updates applied", r.updates_applied.to_string()),
        ("epochs published", r.epochs_published.to_string()),
        ("epochs retired", r.epochs_retired.to_string()),
        ("answered", r.answered.to_string()),
        ("goodput ratio", format!("{:.4}", r.goodput_ratio)),
        ("reconciled", r.reconciled.to_string()),
        ("deterministic replay", r.deterministic.to_string()),
    ];
    for (k, v) in rows {
        t.push_row(vec![k.to_string(), v]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_update_run_hits_the_report_gates() {
        let r = run(0x11FE, 80, 6);
        assert!(r.reconciled, "{r:?}");
        assert!(r.deterministic, "{r:?}");
        assert_eq!(r.updates_applied, 6, "{r:?}");
        assert_eq!(r.epochs_published, 7, "{r:?}");
        assert!(
            r.invalidation_fraction < 0.20,
            "1% delta rebuilt {:.1}% of shortcuts",
            r.invalidation_fraction * 100.0
        );
        assert!(r.shortcuts_rebuilt > 0, "delta touched no cone: {r:?}");
        assert!(
            r.refresh_wall_seconds < r.build_wall_seconds,
            "refresh slower than a full rebuild: {r:?}"
        );
        assert!((0.5..=1.0).contains(&r.goodput_ratio), "{r:?}");
    }
}
