//! Deterministic overload harness for the report and smoke gates.
//!
//! Drives a [`QueryService`] at a seeded 2× offered load in virtual
//! time ([`ManualClock`] advanced by measured work units), with tight
//! per-submission deadlines so every overload mechanism — typed
//! admission rejections, queue-head deadline sheds, priority classes —
//! actually fires. No storage faults here: the chaos composition lives
//! in `fp-allfp`'s `tests/overload.rs`; this runner measures the
//! steady-state shedding behavior the report tracks over time.
//!
//! The simulation is a pure function of the seed, and [`run`] executes
//! it twice to certify that (the `deterministic` field of the report —
//! a CI gate, not an aspiration).

use allfp::service::{
    ArrivalSchedule, DrainMode, ManualClock, Priority, QueryService, ServiceClock, ServiceConfig,
    ServiceOutcome, ServiceStats, Submission,
};
use allfp::{Engine, EngineConfig, QuerySpec};
use pwl::time::hm;
use pwl::Interval;
use roadnet::generators::grid;
use roadnet::{NodeId, RoadNetwork};
use traffic::{DayCategory, RoadClass};

use crate::report::Table;
use crate::scenario::{BackendKind, BackendSpec};

/// What one overload run produced, in report-ready form.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadReport {
    /// Which backend served the queries (`"flat"` or `"ch"`).
    pub backend: &'static str,
    /// Scenario seed.
    pub seed: u64,
    /// Total submissions offered.
    pub submissions: usize,
    /// Configured queue bound.
    pub queue_capacity: usize,
    /// Offered load relative to service capacity (2.0 = arrivals at
    /// twice the sustainable rate).
    pub offered_ratio: f64,
    /// Admission-accepted submissions.
    pub admitted: u64,
    /// Typed [`allfp::service::Overloaded`] rejections.
    pub rejected: u64,
    /// Exact answers delivered.
    pub answered: u64,
    /// Degraded answers delivered.
    pub degraded: u64,
    /// Cancelled admissions (here: deadline sheds).
    pub cancelled: u64,
    /// Queue-head deadline sheds (subset of `cancelled`).
    pub shed: u64,
    /// Highest queue depth observed.
    pub queue_depth_high_water: usize,
    /// Work units spent executing queries.
    pub executed_units: u64,
    /// Total virtual time of the run.
    pub elapsed_units: u64,
    /// `executed_units / elapsed_units`: the fraction of capacity the
    /// service kept on useful work while shedding the excess.
    pub goodput_ratio: f64,
    /// Did [`ServiceStats::reconciles`] hold at the end of the run?
    pub reconciled: bool,
    /// Did a second run of the same seed reproduce the run, outcome
    /// for outcome?
    pub deterministic: bool,
}

/// One run's comparable residue: final stats plus the terminal
/// outcome kind of every ticket, in completion order.
#[derive(Debug, PartialEq)]
struct SimOutcome {
    stats: ServiceStats,
    terminals: Vec<(u64, &'static str)>,
    executed_units: u64,
    elapsed: u64,
}

pub(crate) fn sample_specs(net: &RoadNetwork, n: usize, seed: u64) -> Vec<QuerySpec> {
    let nodes = net.n_nodes() as u64;
    let mut x = seed ^ 0x0EE2_10AD;
    let mut lcg = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x
    };
    (0..n)
        .map(|_| {
            let s = NodeId((lcg() % nodes) as u32);
            let e = loop {
                let c = NodeId((lcg() % nodes) as u32);
                if c != s {
                    break c;
                }
            };
            let lo = hm(6, 30) + (lcg() % 90) as f64;
            QuerySpec::new(s, e, Interval::of(lo, lo + 20.0), DayCategory::WORKDAY)
        })
        .collect()
}

const QUEUE_CAPACITY: usize = 10;
const OFFERED_RATIO: f64 = 2.0;

fn simulate(seed: u64, submissions: usize, backend: &BackendSpec) -> SimOutcome {
    let net = grid(6, 6, 0.3, RoadClass::LocalOutside).expect("generator is infallible here");
    let specs = sample_specs(&net, 10, seed);
    let engine = backend
        .wrap(Engine::new(&net, EngineConfig::default()))
        .expect("backend builds");
    let engine = engine.as_ref();

    // Calibrate work units (expansions) per spec so arrival pacing and
    // admission estimates are honest.
    let costs: Vec<u64> = specs
        .iter()
        .map(|q| {
            engine
                .all_fastest_paths(q)
                .map(|a| a.stats.expanded_paths.max(1) as u64)
                .unwrap_or(1)
        })
        .collect();
    let mean_cost = (costs.iter().sum::<u64>() / costs.len() as u64).max(1);

    let clock = ManualClock::new();
    let config = ServiceConfig {
        queue_capacity: QUEUE_CAPACITY,
        shed_expired: true,
        default_cost: mean_cost,
        initial_units_per_cost: 1.0,
        ..ServiceConfig::default()
    };
    let svc = QueryService::new(engine, &clock, config);

    // Service capacity is one work unit per clock unit; a mean gap of
    // `mean_cost / OFFERED_RATIO` offers twice that.
    let gap = ((mean_cost as f64 / OFFERED_RATIO) as u64).max(1);
    let schedule = ArrivalSchedule::open_loop(seed ^ 0x0F_F3_4D, submissions, gap);

    let mut executed_units = 0u64;
    let mut next = 0usize;
    loop {
        let now = clock.now();
        if next < schedule.len() && schedule.times()[next] <= now {
            let idx = next % specs.len();
            let sub = Submission::new(specs[idx].clone())
                .with_class(if next % 4 == 3 {
                    Priority::Batch
                } else {
                    Priority::Interactive
                })
                .with_deadline(now + 5 * mean_cost)
                .with_cost_hint(costs[idx]);
            let _ = svc.submit(sub);
            next += 1;
            continue;
        }
        match svc.step() {
            Some(rep) => {
                executed_units += rep.cost;
                clock.advance(rep.cost);
            }
            None => {
                if next >= schedule.len() {
                    break;
                }
                clock.set(schedule.times()[next]);
            }
        }
    }
    svc.begin_drain(DrainMode::Finish);
    while let Some(rep) = svc.step() {
        executed_units += rep.cost;
        clock.advance(rep.cost);
    }

    let terminals = svc
        .take_outcomes()
        .iter()
        .map(|(id, out)| {
            (
                *id,
                match out {
                    ServiceOutcome::Answered(_) => "answered",
                    ServiceOutcome::Degraded(_) => "degraded",
                    ServiceOutcome::Failed(_) => "failed",
                    ServiceOutcome::Cancelled(_) => "cancelled",
                },
            )
        })
        .collect();
    SimOutcome {
        stats: svc.stats(),
        terminals,
        executed_units,
        elapsed: clock.now(),
    }
}

/// Run the seeded overload scenario (twice, to certify determinism)
/// and fold it into an [`OverloadReport`], on the flat backend.
pub fn run(seed: u64, submissions: usize) -> OverloadReport {
    run_with_backend(seed, submissions, BackendKind::Flat)
}

/// [`run`] against an explicit backend: the same virtual-time overload
/// twin replayed over the flat engine or the contraction hierarchy —
/// the service-level promises (bounded queue, typed rejections,
/// deterministic replay) must hold regardless of search strategy.
pub fn run_with_backend(seed: u64, submissions: usize, backend: BackendKind) -> OverloadReport {
    run_with_spec(seed, submissions, &backend.into())
}

/// [`run_with_backend`] with explicit hierarchy build knobs (thread
/// count, overlay compression) — what the CLI's `--threads` and
/// `--overlay-compress` flags reach.
pub fn run_with_spec(seed: u64, submissions: usize, backend: &BackendSpec) -> OverloadReport {
    let a = simulate(seed, submissions, backend);
    let b = simulate(seed, submissions, backend);
    let deterministic = a == b;
    let s = a.stats;
    OverloadReport {
        backend: backend.label(),
        seed,
        submissions,
        queue_capacity: QUEUE_CAPACITY,
        offered_ratio: OFFERED_RATIO,
        admitted: s.admitted,
        rejected: s.rejected,
        answered: s.answered,
        degraded: s.degraded,
        cancelled: s.cancelled,
        shed: s.shed,
        queue_depth_high_water: s.queue_depth_high_water,
        executed_units: a.executed_units,
        elapsed_units: a.elapsed,
        goodput_ratio: if a.elapsed > 0 {
            a.executed_units as f64 / a.elapsed as f64
        } else {
            0.0
        },
        reconciled: s.reconciles(),
        deterministic,
    }
}

/// Render a report as a key/value table for the experiments CLI.
pub fn render(r: &OverloadReport) -> Table {
    let mut t = Table::new(
        format!(
            "Overload twin - seeded {}x open-loop overload in virtual time ({} backend)",
            r.offered_ratio, r.backend
        ),
        &["metric", "value"],
    );
    let rows: [(&str, String); 12] = [
        ("submissions", r.submissions.to_string()),
        ("queue capacity", r.queue_capacity.to_string()),
        ("admitted", r.admitted.to_string()),
        ("rejected", r.rejected.to_string()),
        ("answered", r.answered.to_string()),
        ("degraded", r.degraded.to_string()),
        ("shed", r.shed.to_string()),
        ("queue high water", r.queue_depth_high_water.to_string()),
        ("executed units", r.executed_units.to_string()),
        ("goodput ratio", format!("{:.4}", r.goodput_ratio)),
        ("reconciled", r.reconciled.to_string()),
        ("deterministic replay", r.deterministic.to_string()),
    ];
    for (k, v) in rows {
        t.push_row(vec![k.to_string(), v]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_run_is_reconciled_and_deterministic() {
        let r = run(0x0BAD_10AD, 80);
        assert!(r.reconciled);
        assert!(r.deterministic);
        assert!(r.rejected > 0, "2x overload must reject: {r:?}");
        assert!(r.shed > 0, "tight deadlines must shed: {r:?}");
        assert!(r.queue_depth_high_water <= r.queue_capacity);
        assert!((0.4..=1.0).contains(&r.goodput_ratio), "{r:?}");
        assert_eq!(
            r.admitted + r.rejected,
            r.submissions as u64,
            "every submission accounted for: {r:?}"
        );
    }

    #[test]
    fn overload_holds_on_the_hierarchy_backend() {
        let r = run_with_backend(0x0BAD_10AD, 60, BackendKind::Ch);
        assert_eq!(r.backend, "ch");
        assert!(r.reconciled, "{r:?}");
        assert!(r.deterministic, "{r:?}");
        assert!(r.queue_depth_high_water <= r.queue_capacity, "{r:?}");
        assert_eq!(r.admitted + r.rejected, r.submissions as u64, "{r:?}");
    }
}
