//! A counting global allocator for allocation-gated benchmarks.
//!
//! Every binary, bench and test in this crate runs under
//! [`CountingAlloc`]: a thin wrapper over the system allocator that
//! counts allocation events and requested bytes in relaxed atomics.
//! [`snapshot`] reads the counters; subtracting two snapshots bounds
//! the allocator traffic of the code between them — this is how
//! `engine_hotpath --smoke` proves the pooled PWL kernels run the
//! steady-state expansion loop without touching the heap, and how the
//! report computes `allocs_per_expansion` / `bytes_per_query`.
//!
//! Counting is *events on this thread or any other* — the counters are
//! process-wide. Measured regions in the gates therefore run
//! single-threaded (the width-1 batch driver spawns no threads).
//!
//! Deallocations are deliberately not counted: the gates care about
//! pressure on the allocator's fast path, and every steady-state
//! dealloc has a matching alloc anyway.

// The one place in the workspace that must implement `GlobalAlloc`,
// which is an `unsafe` trait by definition. The implementation adds
// nothing to the system allocator's contract: it forwards every call
// verbatim and only touches two atomics on the side. Each interior
// unsafe operation still needs its own `unsafe {}` block with a
// per-site SAFETY justification — enforced by the deny below.
#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper that tallies allocation events and bytes.
#[derive(Debug)]
pub struct CountingAlloc;

// SAFETY: defers every allocation verbatim to `System`, which upholds
// the `GlobalAlloc` contract; the counter updates have no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: `layout` is the caller's, passed through unmodified,
        // and the caller's `GlobalAlloc::alloc` obligations (non-zero
        // size) are exactly `System::alloc`'s.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was returned by `self` (i.e. by `System` —
        // every alloc path above forwards to it) with this same
        // `layout`, which is precisely `System::dealloc`'s contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: as in `alloc` — the caller's obligations are
        // forwarded verbatim to `System::alloc_zeroed`.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        // SAFETY: `ptr` came from `self`/`System` with `layout`, and
        // `new_size` obligations (non-zero, no overflow when rounded
        // up to `layout.align()`) are the caller's — forwarded
        // verbatim to `System::realloc`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A point-in-time reading of the process-wide allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocation events (alloc + alloc_zeroed + realloc) so far.
    pub allocs: u64,
    /// Bytes requested across those events.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Counter deltas from `earlier` to `self` (saturating, in case the
    /// caller swaps the operands).
    pub fn since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Read the current allocation counters.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOCS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_vec_growth() {
        let before = snapshot();
        let mut v: Vec<u64> = Vec::with_capacity(0);
        for i in 0..1024u64 {
            v.push(i);
        }
        let delta = snapshot().since(&before);
        assert!(delta.allocs >= 1, "vec growth must register: {delta:?}");
        assert!(delta.bytes >= 1024 * 8);
        drop(v);
    }

    #[test]
    fn reused_capacity_is_free() {
        let mut v: Vec<u64> = Vec::with_capacity(4096);
        let before = snapshot();
        for _ in 0..8 {
            v.clear();
            for i in 0..4096u64 {
                v.push(i);
            }
        }
        let delta = snapshot().since(&before);
        assert_eq!(delta.allocs, 0, "no growth, no allocations: {delta:?}");
    }
}
