//! Table 1: the CapeCod pattern schema used by every experiment.

use pwl::time::hm;
use traffic::{DayCategory, PatternSchema, RoadClass};

use crate::report::Table;

/// Render Table 1 by *querying the implementation* (not by quoting
/// constants): for each class and category, the speed at probe
/// instants across the day, converted back to MPH.
pub fn render() -> Table {
    let schema = PatternSchema::table1().expect("schema builds");
    let mut t = Table::new(
        "Table 1 - CapeCod pattern schema (speeds in MPH, probed from the implementation)",
        &[
            "class",
            "non-workday",
            "workday 8am",
            "workday noon",
            "workday 5pm",
        ],
    );
    let probes = [
        (DayCategory::NON_WORKDAY, hm(8, 0)),
        (DayCategory::WORKDAY, hm(8, 0)),
        (DayCategory::WORKDAY, hm(12, 0)),
        (DayCategory::WORKDAY, hm(17, 0)),
    ];
    for class in RoadClass::ALL {
        let mut row = vec![class.to_string()];
        for (cat, instant) in probes {
            let mpm = schema
                .profile(class, cat)
                .expect("profile exists")
                .speed_at(instant);
            row.push(format!("{:.0}", mpm * 60.0));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_paper_verbatim() {
        let t = render();
        let text = t.to_string();
        // inbound highways: 65 / 20 / 65 / 65
        assert!(text.contains("inbound-highway"));
        let row: Vec<&str> = t.rows[0].iter().map(String::as_str).collect();
        assert_eq!(row, vec!["inbound-highway", "65", "20", "65", "65"]);
        let row: Vec<&str> = t.rows[1].iter().map(String::as_str).collect();
        assert_eq!(row, vec!["outbound-highway", "65", "65", "65", "30"]);
        let row: Vec<&str> = t.rows[2].iter().map(String::as_str).collect();
        assert_eq!(row, vec!["local-boston", "40", "20", "40", "20"]);
        let row: Vec<&str> = t.rows[3].iter().map(String::as_str).collect();
        assert_eq!(row, vec!["local-outside", "40", "40", "40", "40"]);
    }
}
