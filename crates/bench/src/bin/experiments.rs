//! CLI regenerating every table and figure of the paper's §6.
//!
//! ```text
//! experiments <subcommand> [--scale small|medium|full|large] [--seed N]
//!             [--queries N] [--csv DIR] [--backend flat|ch]
//!             [--threads N] [--overlay-compress EPS|off] [--deltas N]
//!
//! subcommands:
//!   table1            the CapeCod pattern schema (Table 1)
//!   fig9              expanded nodes vs distance, naiveLB vs bdLB
//!   fig10             Discrete Time vs CapeCod ratios
//!   const-speed       the constant-speed (speed-limit) comparison
//!   overload          the seeded virtual-time overload twin
//!   update-storm      seeded live-update storm: scoped-invalidation
//!                     refresh on metro-medium + goodput under a 2x
//!                     overload with concurrent epoch swaps
//!   cluster           the partition-sharded cluster twins: full chaos
//!                     composition (overload + crash/restart +
//!                     partition storm + deltas) and sustained
//!                     node-loss, both replayed twice for bit-exactness
//!   ablation-grid     bdLB grid granularity sweep (A-1)
//!   ablation-pruning  basic vs dominance-pruned expansion (A-2)
//!   ablation-ccam     CCAM placement vs buffer size (A-3)
//!   all               everything above, in order
//! ```
//!
//! Defaults: medium scale (≈3–4k nodes, full 8-mile extent), seed
//! 0x5EED, 20 queries per cell, flat backend. `--scale full
//! --queries 100` matches the paper's setup (14.5k nodes, 100
//! queries) at several minutes of runtime. `--backend ch` replays
//! fig9, fig10 and the overload twin over the contraction-hierarchy
//! backend (`fp-hierarchy`): same answers, preprocessing-speed query
//! work. `--threads N` parallelizes the contraction preprocessing
//! over N workers (0 = one per core; the overlay is identical at any
//! width) and `--overlay-compress EPS` stores shortcut functions as
//! bounded-error approximations within EPS minutes (`off` stores
//! exact functions); both knobs only matter with `--backend ch`.
//! `--deltas N` sets how many seeded traffic deltas the update storm
//! applies mid-run (default 8); `--seed`/`--queries` also steer it.

use std::process::ExitCode;

use fpbench::{
    ablations, cluster, const_speed, fig10, fig9, live_update, overload, table1, BackendKind,
    BackendSpec, Scale, Scenario, Table,
};
use hierarchy::HierarchyConfig;

struct Options {
    scale: Scale,
    seed: u64,
    queries: usize,
    csv_dir: Option<std::path::PathBuf>,
    backend: BackendKind,
    threads: usize,
    overlay_compress: Option<f64>,
    deltas: usize,
}

impl Options {
    /// Backend spec the runners consume: the chosen kind plus the
    /// hierarchy knobs from `--threads` / `--overlay-compress`.
    fn backend_spec(&self) -> BackendSpec {
        BackendSpec {
            kind: self.backend,
            hierarchy: HierarchyConfig {
                threads: self.threads,
                overlay_compress: self.overlay_compress,
                ..HierarchyConfig::default()
            },
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("usage: experiments <table1|fig9|fig10|const-speed|overload|update-storm|cluster|ablation-grid|ablation-pruning|ablation-ccam|all> [--scale small|medium|full|large] [--seed N] [--queries N] [--csv DIR] [--backend flat|ch] [--threads N] [--overlay-compress EPS|off] [--deltas N]");
        return ExitCode::FAILURE;
    };
    let mut opts = Options {
        scale: Scale::Medium,
        seed: 0x5EED,
        queries: 20,
        csv_dir: None,
        backend: BackendKind::Flat,
        threads: HierarchyConfig::default().threads,
        overlay_compress: HierarchyConfig::default().overlay_compress,
        deltas: 8,
    };
    let rest: Vec<String> = args.collect();
    let mut i = 0;
    while i < rest.len() {
        let flag = rest[i].clone();
        let value = || -> Option<&String> { rest.get(i + 1) };
        match flag.as_str() {
            "--scale" => {
                let Some(v) = value() else {
                    eprintln!("--scale needs a value");
                    return ExitCode::FAILURE;
                };
                match v.parse() {
                    Ok(s) => opts.scale = s,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
                i += 2;
            }
            "--seed" => {
                opts.seed = value().and_then(|v| v.parse().ok()).unwrap_or(opts.seed);
                i += 2;
            }
            "--queries" => {
                opts.queries = value().and_then(|v| v.parse().ok()).unwrap_or(opts.queries);
                i += 2;
            }
            "--csv" => {
                opts.csv_dir = value().map(|v| v.into());
                i += 2;
            }
            "--backend" => {
                let Some(v) = value() else {
                    eprintln!("--backend needs a value");
                    return ExitCode::FAILURE;
                };
                match v.parse() {
                    Ok(b) => opts.backend = b,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
                i += 2;
            }
            "--deltas" => {
                let Some(v) = value().and_then(|v| v.parse().ok()) else {
                    eprintln!("--deltas needs an update count");
                    return ExitCode::FAILURE;
                };
                opts.deltas = v;
                i += 2;
            }
            "--threads" => {
                let Some(v) = value().and_then(|v| v.parse().ok()) else {
                    eprintln!("--threads needs a worker count (0 = one per core)");
                    return ExitCode::FAILURE;
                };
                opts.threads = v;
                i += 2;
            }
            "--overlay-compress" => {
                let Some(v) = value() else {
                    eprintln!("--overlay-compress needs an error band in minutes, or 'off'");
                    return ExitCode::FAILURE;
                };
                if v == "off" || v == "none" {
                    opts.overlay_compress = None;
                } else {
                    match v.parse::<f64>() {
                        Ok(eps) if eps > 0.0 && eps.is_finite() => {
                            opts.overlay_compress = Some(eps);
                        }
                        _ => {
                            eprintln!(
                                "--overlay-compress needs a positive number of minutes, or 'off'"
                            );
                            return ExitCode::FAILURE;
                        }
                    }
                }
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let run_all = cmd == "all";
    let wants = |name: &str| run_all || cmd == name;
    let mut matched = false;

    // Table 1 needs no network.
    if wants("table1") {
        matched = true;
        emit(&opts, "table1", table1::render());
    }

    // The overload twin builds its own small grid (virtual-time
    // calibration needs a fixed substrate, not the scenario network).
    if wants("overload") {
        matched = true;
        let r = overload::run_with_spec(opts.seed, opts.queries.max(80), &opts.backend_spec());
        emit(&opts, "overload", overload::render(&r));
    }

    // The update storm builds its own substrates: the metro-medium
    // refresh network and a small service grid (virtual-time
    // calibration, like the overload twin).
    if wants("update-storm") {
        matched = true;
        let r = live_update::run(opts.seed, opts.queries.max(80), opts.deltas.max(1));
        emit(&opts, "update_storm", live_update::render(&r));
    }

    // The cluster twins build their own sharded substrates; the seed
    // steers the whole run (arrivals, faults, RPC fates).
    if wants("cluster") {
        matched = true;
        let chaos = cluster::run_chaos(opts.seed);
        emit(&opts, "cluster_chaos", cluster::render(&chaos));
        let loss = cluster::run_node_loss(opts.seed);
        emit(&opts, "cluster_node_loss", cluster::render(&loss));
    }

    if [
        "fig9",
        "fig10",
        "const-speed",
        "ablation-grid",
        "ablation-pruning",
        "ablation-ccam",
    ]
    .iter()
    .any(|n| wants(n))
    {
        let scenario = Scenario::new(opts.scale, opts.seed);
        let spec = opts.backend_spec();
        println!("{}", scenario.describe());
        match (opts.backend, opts.overlay_compress) {
            (BackendKind::Ch, Some(eps)) => println!(
                "backend: ch ({} contraction thread(s), overlay eps {eps} min)\n",
                opts.threads
            ),
            (BackendKind::Ch, None) => println!(
                "backend: ch ({} contraction thread(s), exact overlay)\n",
                opts.threads
            ),
            _ => println!("backend: {}\n", opts.backend.label()),
        }

        if wants("fig9") {
            matched = true;
            let rows = fig9::run(
                &scenario.net,
                opts.queries,
                scenario.max_query_miles(),
                8,
                opts.seed,
                &spec,
            );
            emit(&opts, "fig9", fig9::render(&rows));
        }
        if wants("fig10") {
            matched = true;
            // paper: distance 7-8 miles; scale down with the scenario
            let (lo, hi) = match opts.scale {
                Scale::Small => (2.0, 3.0),
                Scale::Medium | Scale::Full => (7.0, 8.0),
            };
            let result = fig10::run(&scenario.net, opts.queries, lo, hi, opts.seed, &spec);
            emit(&opts, "fig10", fig10::render(&result));
        }
        if wants("const-speed") {
            matched = true;
            let rows = const_speed::run(&scenario.net, opts.queries.max(30), opts.seed);
            emit(&opts, "const_speed", const_speed::render(&rows));
        }
        if wants("ablation-grid") {
            matched = true;
            let t = ablations::grid_sweep(
                &scenario.net,
                &[0, 2, 4, 8, 16, 24],
                opts.queries,
                opts.seed,
            );
            emit(&opts, "ablation_grid", t);
        }
        if wants("ablation-pruning") {
            matched = true;
            let t = ablations::pruning(&scenario.net, opts.queries.min(10), opts.seed);
            emit(&opts, "ablation_pruning", t);
        }
        if wants("ablation-ccam") {
            matched = true;
            let t = ablations::ccam_placement(&scenario.net, &[8, 32, 128, 512], opts.seed);
            emit(&opts, "ablation_ccam", t);
        }
    }

    if !matched {
        eprintln!("unknown subcommand '{cmd}'");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn emit(opts: &Options, name: &str, table: Table) {
    println!("{table}");
    if let Some(dir) = &opts.csv_dir {
        std::fs::create_dir_all(dir).expect("csv dir");
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, table.to_csv()).expect("csv write");
        println!("(csv written to {})\n", path.display());
    }
}
