//! Figure 9: effect of the boundary-node estimator on expanded nodes,
//! varying the source–target Euclidean distance.
//!
//! Paper setup (§6.2): 100 queries per distance, query interval = the
//! 3-hour morning rush, distances 1–8 miles, reporting the number of
//! expanded nodes under (a) naiveLB and (b) bdLB, for both singleFP
//! and allFP.
//!
//! We report **three** estimators: `naiveLB`, the distance-based
//! `bdLB` exactly as §5 presents it, and `bdLB-time` — the travel-time
//! extension §5 mentions but omits "due to space limitations"
//! (precomputation over best-case per-edge travel times). The
//! travel-time variant is the one whose pruning matches the paper's
//! reported gap: a distance bound divided by the *global* maximum
//! speed cannot see that local streets are 40 MPH roads, the
//! travel-time bound can.

use allfp::{Engine, EngineConfig, EstimatorKind, QuerySpec};
use pwl::time::hm;
use pwl::Interval;
use roadnet::workload::distance_buckets;
use roadnet::RoadNetwork;
use traffic::DayCategory;

use crate::report::{fnum, Table};
use crate::scenario::BackendSpec;

/// One distance bucket's mean expanded-node counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Row {
    /// Bucket center, miles.
    pub miles: f64,
    /// Queries that completed (unreachable pairs are skipped).
    pub queries: usize,
    /// Mean expanded nodes, singleFP with naiveLB.
    pub single_naive: f64,
    /// Mean expanded nodes, singleFP with distance-based bdLB.
    pub single_bd: f64,
    /// Mean expanded nodes, singleFP with travel-time bdLB.
    pub single_bdt: f64,
    /// Mean expanded nodes, allFP with naiveLB.
    pub all_naive: f64,
    /// Mean expanded nodes, allFP with distance-based bdLB.
    pub all_bd: f64,
    /// Mean expanded nodes, allFP with travel-time bdLB.
    pub all_bdt: f64,
}

/// Run the Figure 9 experiment.
///
/// `per_bucket` queries per whole-mile distance in `1..=max_miles`;
/// `grid` is the bdLB granularity (the paper does not state theirs; 8
/// is the ablation A-1 sweet spot here). `backend` selects the search
/// strategy: with [`BackendKind::Ch`] each estimator configuration is
/// wrapped in a contraction hierarchy (the overlay search uses its own
/// exact scalar bounds, so the three estimator columns converge — the
/// run then measures the hierarchy's insensitivity to the estimator,
/// and the estimator still serves any flat-engine fallbacks).
pub fn run(
    net: &RoadNetwork,
    per_bucket: usize,
    max_miles: usize,
    grid: usize,
    seed: u64,
    backend: &BackendSpec,
) -> Vec<Fig9Row> {
    let interval = Interval::of(hm(7, 0), hm(10, 0)); // the morning rush
    let naive = backend
        .wrap(Engine::for_network(net, EngineConfig::default()).expect("estimator builds"))
        .expect("backend builds");
    let bd = backend
        .wrap(
            Engine::for_network(
                net,
                EngineConfig {
                    estimator: EstimatorKind::Boundary { grid },
                    ..Default::default()
                },
            )
            .expect("precomputation succeeds"),
        )
        .expect("backend builds");
    let bdt = backend
        .wrap(
            Engine::for_network(
                net,
                EngineConfig {
                    estimator: EstimatorKind::BoundaryTime { grid },
                    ..Default::default()
                },
            )
            .expect("precomputation succeeds"),
        )
        .expect("backend builds");

    let buckets =
        distance_buckets(net, per_bucket, max_miles, 0.25, seed).expect("sampling succeeds");
    let mut rows = Vec::with_capacity(buckets.len());
    for (miles, pairs) in buckets {
        let mut sums = [0.0f64; 6];
        let mut done = 0usize;
        for p in &pairs {
            let q = QuerySpec::new(p.source, p.target, interval, DayCategory::WORKDAY);
            let Ok(sn) = naive.single_fastest_path(&q) else {
                continue;
            };
            let Ok(sb) = bd.single_fastest_path(&q) else {
                continue;
            };
            let Ok(st) = bdt.single_fastest_path(&q) else {
                continue;
            };
            let Ok(an) = naive.all_fastest_paths(&q) else {
                continue;
            };
            let Ok(ab) = bd.all_fastest_paths(&q) else {
                continue;
            };
            let Ok(at) = bdt.all_fastest_paths(&q) else {
                continue;
            };
            sums[0] += sn.stats.expanded_nodes as f64;
            sums[1] += sb.stats.expanded_nodes as f64;
            sums[2] += st.stats.expanded_nodes as f64;
            sums[3] += an.stats.expanded_nodes as f64;
            sums[4] += ab.stats.expanded_nodes as f64;
            sums[5] += at.stats.expanded_nodes as f64;
            done += 1;
        }
        let mean = |s: f64| if done == 0 { 0.0 } else { s / done as f64 };
        rows.push(Fig9Row {
            miles,
            queries: done,
            single_naive: mean(sums[0]),
            single_bd: mean(sums[1]),
            single_bdt: mean(sums[2]),
            all_naive: mean(sums[3]),
            all_bd: mean(sums[4]),
            all_bdt: mean(sums[5]),
        });
    }
    rows
}

/// Render the rows as the two panels of Figure 9.
pub fn render(rows: &[Fig9Row]) -> Table {
    let mut t = Table::new(
        "Figure 9 - mean expanded nodes vs Euclidean distance (I = 7:00-10:00 workday)",
        &[
            "miles",
            "queries",
            "sFP naive",
            "sFP bd",
            "sFP bd-time",
            "aFP naive",
            "aFP bd",
            "aFP bd-time",
            "sFP prune x",
            "aFP prune x",
        ],
    );
    for r in rows {
        t.push_row(vec![
            fnum(r.miles, 0),
            r.queries.to_string(),
            fnum(r.single_naive, 1),
            fnum(r.single_bd, 1),
            fnum(r.single_bdt, 1),
            fnum(r.all_naive, 1),
            fnum(r.all_bd, 1),
            fnum(r.all_bdt, 1),
            fnum(
                if r.single_bdt > 0.0 {
                    r.single_naive / r.single_bdt
                } else {
                    0.0
                },
                2,
            ),
            fnum(
                if r.all_bdt > 0.0 {
                    r.all_naive / r.all_bdt
                } else {
                    0.0
                },
                2,
            ),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::BackendKind;
    use crate::scenario::{Scale, Scenario};

    #[test]
    fn bd_never_expands_more_and_counts_grow_with_distance() {
        let s = Scenario::new(Scale::Small, 33);
        let rows = run(&s.net, 4, 3, 6, 5, &BackendKind::Flat.into());
        assert_eq!(rows.len(), 3);
        let mut any_queries = false;
        for r in &rows {
            if r.queries == 0 {
                continue;
            }
            any_queries = true;
            assert!(
                r.single_bd <= r.single_naive + 1e-9,
                "bdLB should not expand more: {r:?}"
            );
            assert!(
                r.single_bdt <= r.single_bd + 1e-9,
                "bdLB-time should not expand more than bdLB: {r:?}"
            );
            assert!(r.all_bd <= r.all_naive + 1e-9, "{r:?}");
            assert!(r.all_bdt <= r.all_bd + 1e-9, "{r:?}");
            // allFP works at least as hard as singleFP
            assert!(r.all_naive + 1e-9 >= r.single_naive, "{r:?}");
        }
        assert!(any_queries);
        let t = render(&rows);
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn ch_backend_runs_the_same_experiment() {
        let s = Scenario::new(Scale::Small, 33);
        let flat = run(&s.net, 2, 2, 6, 5, &BackendKind::Flat.into());
        let ch = run(&s.net, 2, 2, 6, 5, &BackendKind::Ch.into());
        assert_eq!(flat.len(), ch.len());
        for (f, c) in flat.iter().zip(ch.iter()) {
            // Same pairs complete under either backend (answers are
            // equivalent, so reachability classifications match too).
            assert_eq!(f.queries, c.queries, "flat {f:?} vs ch {c:?}");
        }
    }
}
