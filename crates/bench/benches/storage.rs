#![allow(missing_docs)] // criterion_group! expands to undocumented items
//! Storage-layer benchmarks: record fetches through the buffer pool
//! per placement policy, and raw B+-tree lookups.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fpbench::{Scale, Scenario};

use ccam::{BTree, BufferPool, CcamStore, MemStore, PlacementPolicy, DEFAULT_PAGE_SIZE};
use roadnet::NodeId;

fn bench_record_scan(c: &mut Criterion) {
    let scenario = Scenario::new(Scale::Small, 0x5EED);
    let net = &scenario.net;
    let policies = [
        ("ccam", PlacementPolicy::ConnectivityClustered),
        ("hilbert", PlacementPolicy::HilbertPacked),
        ("random", PlacementPolicy::Random { seed: 1 }),
    ];
    let mut group = c.benchmark_group("full scan via 16-frame pool");
    group.sample_size(20);
    for (name, policy) in policies {
        let store = Arc::new(MemStore::new(DEFAULT_PAGE_SIZE));
        let disk = CcamStore::build(net, store, policy, 16).expect("builds");
        group.bench_with_input(BenchmarkId::from_parameter(name), &disk, |b, disk| {
            b.iter(|| {
                for n in net.node_ids() {
                    black_box(disk.node_record(n).unwrap());
                }
            })
        });
    }
    group.finish();
}

fn bench_btree_get(c: &mut Criterion) {
    let pool = Arc::new(BufferPool::new(
        Arc::new(MemStore::new(DEFAULT_PAGE_SIZE)),
        256,
    ));
    let pairs: Vec<(u64, u64)> = (0..100_000u64).map(|i| (i * 2, i)).collect();
    let tree = BTree::bulk_load(Arc::clone(&pool), &pairs).expect("bulk load");
    let mut k = 0u64;
    c.bench_function("btree get (100k keys)", |b| {
        b.iter(|| {
            k = (k + 77_777) % 200_000;
            black_box(tree.get(k).unwrap());
        })
    });
}

fn bench_find_node(c: &mut Criterion) {
    let scenario = Scenario::new(Scale::Small, 0x5EED);
    let net = &scenario.net;
    let store = Arc::new(MemStore::new(DEFAULT_PAGE_SIZE));
    let disk =
        CcamStore::build(net, store, PlacementPolicy::ConnectivityClustered, 256).expect("builds");
    let mut i = 0u32;
    let n = net.n_nodes() as u32;
    c.bench_function("ccam node_record (warm pool)", |b| {
        b.iter(|| {
            i = (i + 131) % n;
            black_box(disk.node_record(NodeId(i)).unwrap());
        })
    });
}

criterion_group!(benches, bench_record_scan, bench_btree_get, bench_find_node);
criterion_main!(benches);
