#![allow(missing_docs)] // criterion_group! expands to undocumented items
//! End-to-end query benchmarks: singleFP and allFP on the metro
//! scenario, under both estimators (the wall-clock companion to the
//! Figure 9 expanded-node counts).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fpbench::{Scale, Scenario};

use allfp::{Engine, EngineConfig, EstimatorKind, QuerySpec};
use pwl::time::hm;
use pwl::Interval;
use roadnet::workload::sample_pairs;
use traffic::DayCategory;

fn bench_queries(c: &mut Criterion) {
    let scenario = Scenario::new(Scale::Small, 0x5EED);
    let net = &scenario.net;
    let pairs = sample_pairs(net, 8, 1.5, 2.5, 7).expect("sampling succeeds");
    let interval = Interval::of(hm(7, 0), hm(10, 0));
    let queries: Vec<QuerySpec> = pairs
        .iter()
        .map(|p| QuerySpec::new(p.source, p.target, interval, DayCategory::WORKDAY))
        .collect();

    let naive = Engine::for_network(net, EngineConfig::default()).expect("builds");
    let bd = Engine::for_network(
        net,
        EngineConfig {
            estimator: EstimatorKind::Boundary { grid: 8 },
            ..Default::default()
        },
    )
    .expect("builds");

    let mut group = c.benchmark_group("metro-small 3h rush");
    group.sample_size(20);
    group.bench_function("singleFP naiveLB x8", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(naive.single_fastest_path(q).ok());
            }
        })
    });
    group.bench_function("singleFP bdLB x8", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(bd.single_fastest_path(q).ok());
            }
        })
    });
    group.bench_function("allFP naiveLB x8", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(naive.all_fastest_paths(q).ok());
            }
        })
    });
    group.bench_function("allFP bdLB x8", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(bd.all_fastest_paths(q).ok());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
