#![allow(missing_docs)] // criterion_group! expands to undocumented items
//! Boundary-estimator benchmarks: precomputation cost per grid size
//! and per-call estimate cost (ablation A-1's timing companion).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fpbench::{Scale, Scenario};

use allfp::{BoundaryLb, LowerBoundEstimator, NaiveLb, WeightMode};
use roadnet::{NetworkSource, NodeId};

fn bench_precompute(c: &mut Criterion) {
    let scenario = Scenario::new(Scale::Small, 0x5EED);
    let net = &scenario.net;
    let mut group = c.benchmark_group("bdLB precompute");
    group.sample_size(10);
    for grid in [2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(grid), &grid, |b, &grid| {
            b.iter(|| {
                black_box(BoundaryLb::build(net, grid, WeightMode::Distance).unwrap());
            })
        });
    }
    group.finish();
}

fn bench_estimate_call(c: &mut Criterion) {
    let scenario = Scenario::new(Scale::Small, 0x5EED);
    let net = &scenario.net;
    let bd = BoundaryLb::build(net, 8, WeightMode::Distance).unwrap();
    let naive = NaiveLb::new(net.max_speed());
    let a = NodeId(3);
    let b_ = NodeId((net.n_nodes() - 5) as u32);
    let pa = net.find_node(a).unwrap();
    let pb = net.find_node(b_).unwrap();

    c.bench_function("estimate: naiveLB", |b| {
        b.iter(|| black_box(naive.travel_lower_bound(a, pa, b_, pb)))
    });
    c.bench_function("estimate: bdLB", |b| {
        b.iter(|| black_box(bd.travel_lower_bound(a, pa, b_, pb)))
    });
}

criterion_group!(benches, bench_precompute, bench_estimate_call);
criterion_main!(benches);
