#![allow(missing_docs)] // criterion_group! expands to undocumented items
//! Hot-path benchmarks for the allFP engine: the travel-function cache
//! (on vs off) and the work-stealing batch driver swept over thread
//! counts, on the Figure 9 workload (3-hour morning rush,
//! distance-sampled source–target pairs on the metro scenario).
//!
//! Besides the Criterion timings, the run emits `BENCH_engine.json` at
//! the repository root with wall-times, expansions/sec, and the
//! 1/2/4/8-thread `run_batch` scaling curve (tagged with the host's
//! core count so the curve is interpretable), so throughput claims are
//! machine-checkable.
//!
//! `--smoke` runs a reduced workload instead of the benchmarks: it
//! verifies the batch driver returns exactly the serial answers at
//! every swept width and fails (non-zero exit) on answer divergence,
//! a gross batch-overhead regression, page-checksum verification
//! costing more than 3% on a cold-cache fault-free disk workload, or
//! an allocation regression — the pooled PWL kernels (compose +
//! envelope merge) must run their steady-state loop with **zero** heap
//! allocations under the crate's counting allocator, and the whole
//! engine must stay under a per-expansion allocation budget — or an
//! overload regression — the seeded 2× virtual-time overload scenario
//! (`fpbench::overload`) must replay deterministically, keep its queue
//! bounded, reconcile its stats, and hold goodput while shedding — or
//! a continental-scale regression — the metro-huge smoke tier
//! (`fpbench::metro_huge`) must bulk-build byte-identically at every
//! thread count with transient scratch bounded under the graph bytes,
//! and serve its workload through the mmap store — all without
//! touching the JSON report. `scripts/check.sh` runs it on every
//! check.

use std::sync::Arc;
use std::time::Instant;

use ccam::{BlockStore, CcamStore, ChecksummedStore, MemStore, PlacementPolicy, DEFAULT_PAGE_SIZE};
use criterion::{black_box, criterion_group, Criterion};
use fpbench::{Scale, Scenario};

use allfp::{BatchStats, Engine, EngineConfig, PathfindBackend, QuerySpec};
use fpbench::alloc::snapshot;
use hierarchy::{HierarchyConfig, HierarchyEngine};
use pwl::time::hm;
use pwl::{compose_travel_into, Envelope, Interval, Pwl, PwlScratch};
use roadnet::generators::ContinentalConfig;
use roadnet::workload::sample_pairs;
use roadnet::RoadNetwork;
use traffic::DayCategory;

/// Thread counts swept by the batch scaling curve.
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// The Figure 9 query workload: `count` pairs 1–3 miles apart, morning
/// rush interval, workday speeds.
fn workload(net: &RoadNetwork, count: usize) -> Vec<QuerySpec> {
    let interval = Interval::of(hm(7, 0), hm(10, 0));
    sample_pairs(net, count, 1.0, 3.0, 0xF19)
        .expect("sampling succeeds")
        .iter()
        .map(|p| QuerySpec::new(p.source, p.target, interval, DayCategory::WORKDAY))
        .collect()
}

fn uncached() -> EngineConfig {
    EngineConfig {
        use_travel_cache: false,
        ..EngineConfig::default()
    }
}

fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn bench_hotpath(c: &mut Criterion) {
    let scenario = Scenario::new(Scale::Small, 0x5EED);
    let net = &scenario.net;
    let queries = workload(net, 8);

    let cached = Engine::new(net, EngineConfig::default());
    let plain = Engine::new(net, uncached());

    let mut group = c.benchmark_group("engine-hotpath allFP x8");
    group.sample_size(10);
    group.bench_function("serial cache-off", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(plain.all_fastest_paths(q).ok());
            }
        })
    });
    group.bench_function("serial cache-on", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(cached.all_fastest_paths(q).ok());
            }
        })
    });
    group.bench_function("run_batch cache-on", |b| {
        b.iter(|| black_box(cached.run_batch(&queries)))
    });
    group.finish();
}

criterion_group!(benches, bench_hotpath);

/// One measured configuration for the JSON report.
struct Measured {
    name: String,
    wall_seconds: f64,
    queries: usize,
    expanded_paths: usize,
    expansions_per_sec: f64,
    queries_per_sec: f64,
}

/// Time `queries` through `run`, counting expansions via the answers.
fn measure(
    name: &str,
    queries: &[QuerySpec],
    run: impl Fn(&[QuerySpec]) -> Vec<allfp::Result<allfp::AllFpAnswer>>,
) -> Measured {
    // Warm-up pass (fills the cache where one is enabled).
    let _ = run(queries);
    let reps = 3;
    let start = Instant::now();
    let mut expanded = 0usize;
    for _ in 0..reps {
        expanded = 0;
        for ans in run(queries).iter().flatten() {
            expanded += ans.stats.expanded_paths;
        }
    }
    let wall = start.elapsed().as_secs_f64() / f64::from(reps);
    Measured {
        name: name.to_string(),
        wall_seconds: wall,
        queries: queries.len(),
        expanded_paths: expanded,
        expansions_per_sec: expanded as f64 / wall,
        queries_per_sec: queries.len() as f64 / wall,
    }
}

/// Cold-cache wall times for the engine workload over a CCAM store
/// with and without the checksum layer.
struct ChecksumOverhead {
    plain_wall_seconds: f64,
    checksummed_wall_seconds: f64,
    /// `checksummed / plain`; 1.0 = free, 1.03 = the budget ceiling.
    overhead_ratio: f64,
}

/// Measure the fault-free cost of page checksumming: the same query
/// workload over `CcamStore → MemStore` vs
/// `CcamStore → ChecksummedStore → MemStore`, with the buffer pool
/// dropped before every rep so each rep faults (and verifies) every
/// page it touches. Best-of-`reps` per stack, interleaved so ambient
/// load hits both alike.
fn measure_checksum_overhead(
    net: &RoadNetwork,
    queries: &[QuerySpec],
    reps: usize,
) -> ChecksumOverhead {
    let frames = 4096; // large enough that eviction never competes with the I/O under test
    let plain = CcamStore::build(
        net,
        Arc::new(MemStore::new(DEFAULT_PAGE_SIZE)),
        PlacementPolicy::ConnectivityClustered,
        frames,
    )
    .expect("plain store builds");
    let summed_inner: Arc<dyn BlockStore> = Arc::new(ChecksummedStore::new(Arc::new(
        MemStore::new(DEFAULT_PAGE_SIZE),
    )));
    let summed = CcamStore::build(
        net,
        summed_inner,
        PlacementPolicy::ConnectivityClustered,
        frames,
    )
    .expect("checksummed store builds");

    let time_stack = |disk: &CcamStore| -> f64 {
        let engine = Engine::new(disk, EngineConfig::default());
        // warm-up rep: fills the engine's travel-function cache so
        // every timed rep of both stacks sees the same cache state
        for q in queries {
            let _ = engine.all_fastest_paths(q);
        }
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            disk.clear_cache().expect("cache clears");
            let start = Instant::now();
            for q in queries {
                let _ = engine.all_fastest_paths(q);
            }
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };
    let wall_plain = time_stack(&plain);
    let wall_summed = time_stack(&summed);
    ChecksumOverhead {
        plain_wall_seconds: wall_plain,
        checksummed_wall_seconds: wall_summed,
        overhead_ratio: wall_summed / wall_plain,
    }
}

/// Allocation profile of the serial engine workload.
struct AllocProfile {
    allocs_per_expansion: f64,
    bytes_per_query: f64,
}

/// Measure allocator traffic of a warm width-1 batch (one persistent
/// session, no helper threads — the counting allocator is
/// process-wide, so the measured region must be single-threaded).
///
/// The warm-up batch fills the shared travel-function cache; the
/// session (and with it the scratch pool and L1) is still private to
/// each batch call, so the measured numbers include the per-batch
/// warm-up of those — an honest end-to-end budget, not a best case.
fn measure_allocs(engine: &Engine<'_, RoadNetwork>, queries: &[QuerySpec]) -> AllocProfile {
    let _ = engine.run_batch_with_threads(queries, 1);
    let before = snapshot();
    let (results, _) = engine.run_batch_with_threads(queries, 1);
    let delta = snapshot().since(&before);
    let expanded: usize = results
        .iter()
        .flatten()
        .map(|a| a.stats.expanded_paths)
        .sum();
    AllocProfile {
        allocs_per_expansion: delta.allocs as f64 / expanded.max(1) as f64,
        bytes_per_query: delta.bytes as f64 / queries.len().max(1) as f64,
    }
}

/// The steady-state kernel loop the zero-allocation gate measures:
/// one §4.4 compound composition plus one lower-border merge, with the
/// composed function recycled back into the pool — exactly the work
/// the engine does per surviving candidate expansion.
fn kernel_step(scratch: &mut PwlScratch, env: &mut Envelope<usize>, t1: &Pwl, t2: &Pwl) {
    let composed = compose_travel_into(scratch, t1, t2).expect("compose succeeds");
    env.merge_min_with(scratch, &composed, 1)
        .expect("merge succeeds");
    scratch.recycle(composed);
}

/// Zero-allocation gate for the pooled PWL kernels: after a short
/// warm-up (pool fills, buffers reach capacity), [`kernel_step`] must
/// not allocate at all. Returns the allocation count the measured loop
/// observed (0 = pass).
fn kernel_steady_state_allocs() -> u64 {
    const WARMUP: usize = 8;
    const ITERS: usize = 100;
    // A path function with rush-hour shape (slopes > −1, FIFO-safe)...
    let t1 = Pwl::from_points(&[
        (hm(7, 0), 10.0),
        (hm(8, 0), 16.0),
        (hm(9, 0), 9.0),
        (hm(10, 0), 12.0),
    ])
    .expect("t1 well formed");
    // ...and an edge function covering every arrival `l + t1(l)`.
    let t2 = Pwl::from_points(&[
        (hm(7, 0), 8.0),
        (hm(8, 20), 12.0),
        (hm(9, 20), 6.0),
        (hm(10, 40), 10.0),
    ])
    .expect("t2 well formed");
    let base = Pwl::constant(Interval::of(hm(7, 0), hm(10, 0)), 14.0).expect("base well formed");

    let mut scratch = PwlScratch::new();
    let mut env = Envelope::new(base, 0usize);
    for _ in 0..WARMUP {
        kernel_step(&mut scratch, &mut env, &t1, &t2);
    }
    let before = snapshot();
    for _ in 0..ITERS {
        kernel_step(&mut scratch, &mut env, &t1, &t2);
    }
    snapshot().since(&before).allocs
}

/// One point on the batch scaling curve.
struct SweepPoint {
    threads: usize,
    wall_seconds: f64,
    speedup_vs_serial: f64,
    steals: u64,
    cache_hit_rate: f64,
    /// `"scheduler_noise"` when the point oversubscribes the host
    /// (threads > cores): its wall time measures contention, not
    /// scaling, and regression gates must not read it as one.
    annotation: &'static str,
}

/// Annotation for a sweep width on this host.
fn sweep_annotation(threads: usize) -> &'static str {
    if threads > host_cpus() {
        "scheduler_noise"
    } else {
        ""
    }
}

/// Preprocessing cost and per-query payoff of the contraction
/// hierarchy (`fp-hierarchy`) versus the flat engine, on the serial
/// singleFP workload. Expansions are the machine-independent metric
/// the speedup gate reads; wall times are reported alongside.
struct HierarchyReport {
    scale: &'static str,
    preprocess_wall_seconds: f64,
    n_nodes: usize,
    n_shortcuts: usize,
    n_disabled: usize,
    overlay_pieces: u64,
    overlay_bytes: u64,
    /// Byte estimate of the baseline layout: exact functions plus the
    /// per-arc materialized two-day extensions earlier revisions
    /// stored.
    overlay_bytes_exact: u64,
    /// `overlay_bytes / overlay_bytes_exact` — the space gate reads
    /// this (≤ 0.5 target).
    overlay_bytes_ratio: f64,
    /// Error band the overlay was stored with (minutes).
    compress_eps: Option<f64>,
    queries: usize,
    flat_expansions: usize,
    ch_expansions: usize,
    /// `flat_expansions / ch_expansions` — work per query saved by
    /// preprocessing.
    expansion_speedup: f64,
    flat_wall_seconds: f64,
    ch_wall_seconds: f64,
    wall_speedup: f64,
}

/// Warm pass + best-of-3 serial singleFP loop over `backend`,
/// returning (best wall, expanded paths per rep).
fn probe_singlefp(backend: &dyn PathfindBackend, queries: &[QuerySpec]) -> (f64, usize) {
    for q in queries {
        let _ = backend.single_fastest_path(q);
    }
    let mut expansions = 0usize;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        expansions = 0;
        let start = Instant::now();
        for q in queries {
            if let Ok(a) = backend.single_fastest_path(q) {
                expansions += a.stats.expanded_paths;
            }
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, expansions)
}

/// Build the hierarchy on a fresh scenario at `scale` and race it
/// against the flat engine on `count` singleFP queries over the
/// scenario's longer trips (upper half of its distance range — the
/// regime preprocessing exists for; 1-mile hops barely leave the
/// source's neighborhood under either strategy).
fn measure_hierarchy(
    scale: Scale,
    scale_name: &'static str,
    count: usize,
    config: &HierarchyConfig,
) -> HierarchyReport {
    let scenario = Scenario::new(scale, 0x5EED);
    let net = &scenario.net;
    let max_miles = scenario.max_query_miles() as f64;
    let interval = Interval::of(hm(7, 0), hm(10, 0));
    let queries: Vec<QuerySpec> = sample_pairs(net, count, max_miles / 2.0, max_miles, 0xF19)
        .expect("sampling succeeds")
        .iter()
        .map(|p| QuerySpec::new(p.source, p.target, interval, DayCategory::WORKDAY))
        .collect();

    let flat = Engine::new(net, EngineConfig::default());
    let ch = HierarchyEngine::build(net, EngineConfig::default(), config.clone())
        .expect("hierarchy builds");
    let build = ch.report().clone();

    let (flat_wall, flat_expansions) = probe_singlefp(&flat, &queries);
    let (ch_wall, ch_expansions) = probe_singlefp(&ch, &queries);
    HierarchyReport {
        scale: scale_name,
        preprocess_wall_seconds: build.build_wall.as_secs_f64(),
        n_nodes: build.n_nodes,
        n_shortcuts: build.n_shortcuts,
        n_disabled: build.n_disabled,
        overlay_pieces: build.overlay_pieces,
        overlay_bytes: build.bytes_estimate,
        overlay_bytes_exact: build.exact_bytes_estimate,
        overlay_bytes_ratio: build.bytes_estimate as f64 / build.exact_bytes_estimate.max(1) as f64,
        compress_eps: build.compress_eps,
        queries: queries.len(),
        flat_expansions,
        ch_expansions,
        expansion_speedup: flat_expansions as f64 / ch_expansions.max(1) as f64,
        flat_wall_seconds: flat_wall,
        ch_wall_seconds: ch_wall,
        wall_speedup: flat_wall / ch_wall.max(1e-12),
    }
}

/// One point on the parallel-contraction scaling curve.
struct ContractionPoint {
    threads: usize,
    preprocess_wall_seconds: f64,
    /// Wall speedup versus the 1-thread build of the same network.
    speedup_vs_serial: f64,
    /// `"scheduler_noise"` when `threads > host_cpus` — the point
    /// measures contention, not scaling.
    annotation: &'static str,
}

/// Thread counts swept by the contraction scaling curve.
const CONTRACTION_SWEEP: [usize; 3] = [1, 2, 4];

/// Build the hierarchy at each swept thread count on a fresh Medium
/// scenario and record preprocessing wall times. Determinism of the
/// produced overlay across widths is pinned by the fp-hierarchy test
/// suite; this measures only the wall-clock payoff.
fn measure_contraction_sweep(scale: Scale) -> Vec<ContractionPoint> {
    let scenario = Scenario::new(scale, 0x5EED);
    let net = &scenario.net;
    let walls: Vec<(usize, f64)> = CONTRACTION_SWEEP
        .iter()
        .map(|&threads| {
            let config = HierarchyConfig {
                threads,
                ..HierarchyConfig::default()
            };
            let start = Instant::now();
            let ch = HierarchyEngine::build(net, EngineConfig::default(), config)
                .expect("hierarchy builds");
            let wall = start.elapsed().as_secs_f64();
            black_box(ch.report().n_shortcuts);
            (threads, wall)
        })
        .collect();
    let serial_wall = walls[0].1;
    walls
        .into_iter()
        .map(|(threads, wall)| ContractionPoint {
            threads,
            preprocess_wall_seconds: wall,
            speedup_vs_serial: serial_wall / wall.max(1e-12),
            annotation: sweep_annotation(threads),
        })
        .collect()
}

/// Minimal JSON rendering (no serde in the workspace).
#[allow(clippy::too_many_arguments)]
fn to_json(
    rows: &[Measured],
    sweep: &[SweepPoint],
    speedup_cache: f64,
    checksum: &ChecksumOverhead,
    alloc: &AllocProfile,
    kernel_allocs: u64,
    overload: &fpbench::overload::OverloadReport,
    live: &fpbench::live_update::LiveUpdateReport,
    cluster: &[fpbench::cluster::ClusterReport],
    hierarchy: &HierarchyReport,
    contraction: &[ContractionPoint],
    huge: &fpbench::metro_huge::MetroHugeReport,
) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"engine_hotpath\",\n");
    out.push_str("  \"workload\": \"fig9 morning rush, metro-medium, allFP\",\n");
    out.push_str(&format!("  \"host_cpus\": {},\n", host_cpus()));
    out.push_str(
        "  \"note\": \"batch speedups are bounded by host_cpus; on a single-core host \
         the sweep measures scheduler overhead, not scaling\",\n",
    );
    out.push_str("  \"configs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"queries\": {}, \"wall_seconds\": {:.6}, \
             \"expanded_paths\": {}, \"expansions_per_sec\": {:.1}, \"queries_per_sec\": {:.2}}}{}\n",
            r.name,
            r.queries,
            r.wall_seconds,
            r.expanded_paths,
            r.expansions_per_sec,
            r.queries_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"batch_sweep\": [\n");
    for (i, p) in sweep.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"wall_seconds\": {:.6}, \"speedup_vs_serial\": {:.2}, \
             \"steals\": {}, \"cache_hit_rate\": {:.4}, \"annotation\": \"{}\"}}{}\n",
            p.threads,
            p.wall_seconds,
            p.speedup_vs_serial,
            p.steals,
            p.cache_hit_rate,
            p.annotation,
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"speedup_cache_on_vs_off\": {speedup_cache:.2},\n"
    ));
    out.push_str(&format!(
        "  \"checksum_overhead\": {{\"plain_wall_seconds\": {:.6}, \
         \"checksummed_wall_seconds\": {:.6}, \"overhead_ratio\": {:.4}, \"budget\": 1.03}},\n",
        checksum.plain_wall_seconds, checksum.checksummed_wall_seconds, checksum.overhead_ratio,
    ));
    out.push_str(&format!(
        "  \"overload\": {{\"seed\": {}, \"submissions\": {}, \"offered_ratio\": {:.1}, \
         \"queue_capacity\": {}, \"queue_depth_high_water\": {}, \"admitted\": {}, \
         \"rejected\": {}, \"answered\": {}, \"degraded\": {}, \"shed\": {}, \
         \"goodput_ratio\": {:.4}, \"reconciled\": {}, \"deterministic\": {}, \
         \"note\": \"seeded 2x open-loop overload in virtual time; goodput is the \
         fraction of capacity kept on useful work while shedding the excess\"}},\n",
        overload.seed,
        overload.submissions,
        overload.offered_ratio,
        overload.queue_capacity,
        overload.queue_depth_high_water,
        overload.admitted,
        overload.rejected,
        overload.answered,
        overload.degraded,
        overload.shed,
        overload.goodput_ratio,
        overload.reconciled,
        overload.deterministic,
    ));
    out.push_str(&format!(
        "  \"live_update\": {{\"seed\": {}, \"scale\": \"{}\", \"n_edges\": {},          \"delta_edges\": {}, \"shortcuts_total\": {}, \"shortcuts_rebuilt\": {},          \"invalidation_fraction\": {:.4}, \"refresh_wall_seconds\": {:.4},          \"build_wall_seconds\": {:.3}, \"submissions\": {}, \"updates_applied\": {},          \"epochs_published\": {}, \"epochs_retired\": {}, \"goodput_ratio\": {:.4},          \"reconciled\": {}, \"deterministic\": {},          \"note\": \"seeded ~1%-of-edges delta on the exact-storage metro-medium          hierarchy (scoped invalidation: rebuilt fraction gated < 0.20) plus a          virtual-time 2x-overload storm with concurrent epoch swaps (goodput gated          >= 0.5)\"}},\n",
        live.seed,
        live.scale,
        live.n_edges,
        live.delta_edges,
        live.shortcuts_total,
        live.shortcuts_rebuilt,
        live.invalidation_fraction,
        live.refresh_wall_seconds,
        live.build_wall_seconds,
        live.submissions,
        live.updates_applied,
        live.epochs_published,
        live.epochs_retired,
        live.goodput_ratio,
        live.reconciled,
        live.deterministic,
    ));
    out.push_str("  \"cluster\": [\n");
    for (i, c) in cluster.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"seed\": {}, \"sim_nodes\": {}, \"shards\": {}, \
             \"submissions\": {}, \"admitted\": {}, \"rejected\": {}, \"answered\": {}, \
             \"degraded\": {}, \"failed\": {}, \"cancelled\": {}, \"unroutable\": {}, \
             \"crashes\": {}, \"restarts\": {}, \"rpc_attempts\": {}, \"rpc_retries\": {}, \
             \"rpc_timeouts\": {}, \"rpc_peer_down\": {}, \"breaker_skips\": {}, \
             \"replica_failovers\": {}, \"routed_failovers\": {}, \
             \"failover_latency_mean\": {:.1}, \"failover_latency_max\": {}, \
             \"goodput\": {:.4}, \"reconciled\": {}, \"deterministic\": {}}}{}\n",
            c.scenario,
            c.seed,
            c.sim_nodes,
            c.shards,
            c.submissions,
            c.admitted,
            c.rejected,
            c.answered,
            c.degraded,
            c.failed,
            c.cancelled,
            c.unroutable,
            c.crashes,
            c.restarts,
            c.rpc.attempts,
            c.rpc.retries,
            c.rpc.timeouts,
            c.rpc.peer_down,
            c.rpc.breaker_skips,
            c.rpc.failovers,
            c.routed_failovers,
            c.failover_latency_mean,
            c.failover_latency_max,
            c.goodput,
            c.reconciled,
            c.deterministic,
            if i + 1 < cluster.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(
        "  \"cluster_note\": \"partition-sharded fleet in deterministic simulation: the \
         chaos twin composes 2x overload with a crash/restart, a partition storm, RPC \
         latency spikes and live deltas; node-loss holds one shard owner down (goodput \
         gated >= 0.5); surviving answers are pinned bit-identical to a single-node \
         oracle by the fp-cluster test suites\",\n",
    );
    out.push_str(&format!(
        "  \"alloc\": {{\"allocs_per_expansion\": {:.2}, \"bytes_per_query\": {:.0}, \
         \"kernel_steady_state_allocs\": {kernel_allocs}, \
         \"note\": \"counting global allocator over a warm width-1 batch; kernel loop \
         (compose + envelope merge on pooled scratch) must stay at 0\"}},\n",
        alloc.allocs_per_expansion, alloc.bytes_per_query,
    ));
    out.push_str(&format!(
        "  \"hierarchy\": {{\"scale\": \"{}\", \"preprocess_wall_seconds\": {:.3}, \
         \"n_nodes\": {}, \"n_shortcuts\": {}, \"n_disabled\": {}, \"overlay_pieces\": {}, \
         \"overlay_bytes\": {}, \"overlay_bytes_exact\": {}, \"overlay_bytes_ratio\": {:.4}, \
         \"compress_eps\": {}, \"queries\": {}, \"singlefp_flat_expansions\": {}, \
         \"singlefp_ch_expansions\": {}, \"expansion_speedup\": {:.1}, \
         \"flat_wall_seconds\": {:.6}, \"ch_wall_seconds\": {:.6}, \"wall_speedup\": {:.2}, \
         \"note\": \"serial singleFP, morning-rush workload; expansion_speedup is the \
         machine-independent gate metric, wall_speedup is gated only on multi-core hosts; \
         overlay_bytes_ratio is the stored footprint vs the baseline layout of exact \
         functions plus materialized two-day extensions (0.5 target)\"}},\n",
        hierarchy.scale,
        hierarchy.preprocess_wall_seconds,
        hierarchy.n_nodes,
        hierarchy.n_shortcuts,
        hierarchy.n_disabled,
        hierarchy.overlay_pieces,
        hierarchy.overlay_bytes,
        hierarchy.overlay_bytes_exact,
        hierarchy.overlay_bytes_ratio,
        hierarchy
            .compress_eps
            .map_or("null".to_string(), |e| format!("{e:.3}")),
        hierarchy.queries,
        hierarchy.flat_expansions,
        hierarchy.ch_expansions,
        hierarchy.expansion_speedup,
        hierarchy.flat_wall_seconds,
        hierarchy.ch_wall_seconds,
        hierarchy.wall_speedup,
    ));
    out.push_str("  \"contraction_sweep\": [\n");
    for (i, p) in contraction.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"preprocess_wall_seconds\": {:.3}, \
             \"speedup_vs_serial\": {:.2}, \"annotation\": \"{}\"}}{}\n",
            p.threads,
            p.preprocess_wall_seconds,
            p.speedup_vs_serial,
            p.annotation,
            if i + 1 < contraction.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"metro_huge\": {{\"tier\": \"{}\", \"n_nodes\": {}, \"data_pages\": {}, \
         \"total_pages\": {}, \"graph_bytes\": {}, \"transient_build_bytes\": {}, \
         \"peak_rss_bytes\": {}, \"deterministic\": {}, \"store\": \"{}\", \
         \"pool_frames\": {}, \"estimator\": {{\"kind\": \"bdLB-part\", \"groups\": {}, \
         \"wall_seconds\": {:.3}}}, \"queries\": {}, \"query_failures\": {}, \
         \"query_wall_seconds\": {:.4}, \"queries_per_sec\": {:.2}, \"expanded_paths\": {}, \
         \"io\": {{\"reads\": {}, \"bytes_read\": {}, \"bytes_written\": {}, \
         \"mmap_faults\": {}}}, \"build_sweep\": [{}], \
         \"note\": \"continental tier bulk-built straight from the lazy generator \
         (builder transient bytes are the analytic peak of its scratch, gated well \
         under the graph bytes; peak_rss is the whole process high water), served \
         through the mmap store with pool frames << graph pages\"}}\n",
        huge.tier,
        huge.n_nodes,
        huge.data_pages,
        huge.total_pages,
        huge.graph_bytes,
        huge.transient_build_bytes,
        huge.peak_rss_bytes,
        huge.deterministic,
        huge.store_kind,
        huge.pool_frames,
        huge.estimator_groups,
        huge.estimator_wall_seconds,
        huge.queries,
        huge.query_failures,
        huge.query_wall_seconds,
        huge.queries_per_sec,
        huge.expanded_paths,
        huge.io_reads,
        huge.io_bytes_read,
        huge.io_bytes_written,
        huge.mmap_faults,
        huge.build_sweep
            .iter()
            .map(|p| format!(
                "{{\"threads\": {}, \"wall_seconds\": {:.3}, \"speedup_vs_serial\": {:.2}, \
                 \"annotation\": \"{}\"}}",
                p.threads,
                p.wall_seconds,
                p.speedup_vs_serial,
                sweep_annotation(p.threads),
            ))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    out.push_str("}\n");
    out
}

/// Time one batch width (warm-up + averaged reps), keeping the stats of
/// the last rep.
fn measure_batch(
    engine: &Engine<'_, RoadNetwork>,
    queries: &[QuerySpec],
    threads: usize,
) -> (f64, BatchStats) {
    let _ = engine.run_batch_with_threads(queries, threads);
    let reps = 3;
    let start = Instant::now();
    let mut stats = BatchStats::default();
    for _ in 0..reps {
        let (_, s) = engine.run_batch_with_threads(queries, threads);
        stats = s;
    }
    (start.elapsed().as_secs_f64() / f64::from(reps), stats)
}

/// Measure the report configurations and write `BENCH_engine.json`.
fn emit_report() {
    // Medium metro (a few thousand nodes): per-config wall time is
    // tens of milliseconds to seconds, far above timer noise, where
    // the Small x8 workload of the first cut sat at single-digit ms.
    let scenario = Scenario::new(Scale::Medium, 0x5EED);
    let net = &scenario.net;
    let queries = workload(net, 24);

    let plain = Engine::new(net, uncached());
    let cached = Engine::new(net, EngineConfig::default());

    let rows = vec![
        measure("serial cache-off", &queries, |qs| {
            qs.iter().map(|q| plain.all_fastest_paths(q)).collect()
        }),
        measure("serial cache-on", &queries, |qs| {
            qs.iter().map(|q| cached.all_fastest_paths(q)).collect()
        }),
    ];
    let serial_wall = rows[1].wall_seconds;
    let sweep: Vec<SweepPoint> = THREAD_SWEEP
        .iter()
        .map(|&threads| {
            let (wall, stats) = measure_batch(&cached, &queries, threads);
            SweepPoint {
                threads,
                wall_seconds: wall,
                speedup_vs_serial: serial_wall / wall,
                steals: stats.steals,
                cache_hit_rate: stats.cache_hit_rate(),
                annotation: sweep_annotation(threads),
            }
        })
        .collect();
    let speedup_cache = rows[0].wall_seconds / rows[1].wall_seconds;
    let checksum = measure_checksum_overhead(net, &queries, 3);
    let alloc = measure_allocs(&cached, &queries);
    let kernel_allocs = kernel_steady_state_allocs();
    let overload = fpbench::overload::run(0x5EED, 100);
    let live = fpbench::live_update::run(0x5EED, 100, 8);
    let cluster = [
        fpbench::cluster::run_chaos(11),
        fpbench::cluster::run_node_loss(5),
    ];
    // The paper-magnitude network ("metro-large"): this is where the
    // ≥10x preprocessing claim is measured and recorded.
    let hierarchy = measure_hierarchy(Scale::Full, "full", 24, &HierarchyConfig::default());
    // The contraction scaling curve builds the Medium hierarchy once
    // per width — cheap enough for the report, and scaling behaviour
    // is width-, not scale-, dependent.
    let contraction = measure_contraction_sweep(Scale::Medium);
    // The million-node continental tier: bulk-built straight from the
    // lazy generator (never materialized), parallel-build sweep with a
    // byte-identity check, then the fig9 workload served through the
    // mmap store under a partitioned-boundary estimator.
    let huge = fpbench::metro_huge::run(
        &ContinentalConfig::metro_huge(0x5EED),
        "metro-huge",
        24,
        128,
    );
    let json = to_json(
        &rows,
        &sweep,
        speedup_cache,
        &checksum,
        &alloc,
        kernel_allocs,
        &overload,
        &live,
        &cluster,
        &hierarchy,
        &contraction,
        &huge,
    );

    // CARGO_MANIFEST_DIR = crates/bench; the report lives at the root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}

/// `--smoke`: fast correctness + gross-regression gate for CI.
///
/// Exits non-zero if any swept batch width diverges from the serial
/// answers, if the batch roll-up loses lookups, or if `run_batch` at
/// a width the host can actually run in parallel costs a gross
/// multiple of the serial loop. Widths that oversubscribe the host
/// (threads > cores) measure scheduler contention, not scaling: their
/// wall times are printed with a `scheduler_noise` annotation and
/// never counted as regressions — on the 1-core bench host every
/// multi-thread point is such a point. When the host actually has
/// ≥ 4 cores, 4 threads must also deliver ≥ 1.5x over serial (the
/// scaling target this machinery exists for). The hierarchy gate
/// (preprocessing must buy ≥ 10x less singleFP expansion work) runs
/// at the end; its wall-clock twin applies only on multi-core hosts.
fn smoke() -> i32 {
    // Generous on a single-core host, where even the 1-thread batch
    // sits atop timer noise on a small workload.
    let max_overhead: f64 = if host_cpus() > 1 { 2.0 } else { 3.0 };
    const TARGET_SPEEDUP: f64 = 1.5;

    let scenario = Scenario::new(Scale::Small, 0x5EED);
    let net = &scenario.net;
    let queries = workload(net, 12);
    let engine = Engine::new(net, EngineConfig::default());

    let serial: Vec<_> = queries
        .iter()
        .map(|q| engine.all_fastest_paths(q))
        .collect();
    // Best-of-3: the gate compares achievable costs, not scheduler luck.
    let serial_wall = (0..3)
        .map(|_| {
            let start = Instant::now();
            for q in &queries {
                let _ = engine.all_fastest_paths(q);
            }
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);

    let mut failures = 0;
    for threads in THREAD_SWEEP {
        let (batch, stats) = engine.run_batch_with_threads(&queries, threads);
        let wall = (0..3)
            .map(|_| {
                let start = Instant::now();
                let _ = engine.run_batch_with_threads(&queries, threads);
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min);

        for (i, (s, b)) in serial.iter().zip(batch.iter()).enumerate() {
            let same = match (s, b) {
                (Ok(s), Ok(b)) => {
                    s.partition.len() == b.partition.len()
                        && s.partition.iter().zip(b.partition.iter()).all(|(x, y)| {
                            x.0.approx_eq(&y.0) && s.paths[x.1].nodes == b.paths[y.1].nodes
                        })
                }
                (Err(_), Err(_)) => true,
                _ => false,
            };
            if !same {
                eprintln!("SMOKE FAIL: query {i} diverges from serial at {threads} threads");
                failures += 1;
            }
        }
        if stats.total_queries() != queries.len() {
            eprintln!(
                "SMOKE FAIL: {} threads processed {} of {} queries",
                threads,
                stats.total_queries(),
                queries.len()
            );
            failures += 1;
        }
        if stats.cache_lookups != stats.cache_hits + stats.cache_misses {
            eprintln!("SMOKE FAIL: batch roll-up lost lookups at {threads} threads");
            failures += 1;
        }
        let ratio = wall / serial_wall;
        let annotation = sweep_annotation(threads);
        println!(
            "smoke: {threads} threads, wall {wall:.4}s, {:.2}x serial, {} steals{}{}",
            1.0 / ratio,
            stats.steals,
            if annotation.is_empty() { "" } else { " " },
            annotation,
        );
        if ratio > max_overhead {
            if annotation.is_empty() {
                eprintln!(
                    "SMOKE FAIL: run_batch at {threads} threads took {ratio:.2}x the serial loop \
                     (limit {max_overhead}x)"
                );
                failures += 1;
            } else {
                // Oversubscribed width on this host: slow is expected,
                // wrong answers (checked above) would not be.
                println!(
                    "smoke: note: {threads} threads on a {}-core host ran {ratio:.2}x serial \
                     ({annotation}, not a regression)",
                    host_cpus()
                );
            }
        }
        if threads == 4 && host_cpus() >= 4 && serial_wall / wall < TARGET_SPEEDUP {
            eprintln!(
                "SMOKE FAIL: {} cores available but 4 threads give only {:.2}x over serial \
                 (target {TARGET_SPEEDUP}x)",
                host_cpus(),
                serial_wall / wall
            );
            failures += 1;
        }
    }
    // Allocation gates. Strict zero for the pooled kernels: the
    // steady-state compose + envelope-merge loop must never touch the
    // heap once the scratch pool is warm. The whole-engine number is a
    // budget, not a zero: per-query setup (visited bitmap, answer
    // materialization, heap/arena growth) legitimately allocates and
    // amortizes over the dozens-to-hundreds of expansions per query —
    // the budget trips when someone reintroduces per-expansion
    // allocations into the inner loop. Measured ~2.9 on this workload
    // with the pooled kernels; the budget leaves ~2x headroom.
    const MAX_ALLOCS_PER_EXPANSION: f64 = 6.0;
    let kernel_allocs = kernel_steady_state_allocs();
    println!("smoke: pooled-kernel steady-state allocations: {kernel_allocs} (must be 0)");
    if kernel_allocs != 0 {
        eprintln!(
            "SMOKE FAIL: pooled PWL kernels allocated {kernel_allocs} time(s) in the warm loop"
        );
        failures += 1;
    }
    let alloc = measure_allocs(&engine, &queries);
    println!(
        "smoke: {:.2} allocs/expansion, {:.0} bytes/query (budget {MAX_ALLOCS_PER_EXPANSION} allocs/expansion)",
        alloc.allocs_per_expansion, alloc.bytes_per_query
    );
    if alloc.allocs_per_expansion > MAX_ALLOCS_PER_EXPANSION {
        eprintln!(
            "SMOKE FAIL: engine allocates {:.2} times per expansion (budget {MAX_ALLOCS_PER_EXPANSION})",
            alloc.allocs_per_expansion
        );
        failures += 1;
    }

    // Checksum budget: verifying a CRC on every buffer-pool fault-in
    // must stay in the noise on a fault-free workload. Cold caches
    // every rep, so the gate actually exercises verification.
    const CHECKSUM_BUDGET: f64 = 1.03;
    let checksum = measure_checksum_overhead(net, &queries, 5);
    println!(
        "smoke: checksum overhead {:.2}% (plain {:.4}s, checksummed {:.4}s, budget {:.0}%)",
        (checksum.overhead_ratio - 1.0) * 100.0,
        checksum.plain_wall_seconds,
        checksum.checksummed_wall_seconds,
        (CHECKSUM_BUDGET - 1.0) * 100.0,
    );
    if checksum.overhead_ratio > CHECKSUM_BUDGET {
        // A few-percent wall-clock delta is within scheduler noise on
        // a single-core host, so only multi-core runs turn it into a
        // failure (the same policy as the sweep and wall gates).
        if host_cpus() > 1 {
            eprintln!(
                "SMOKE FAIL: checksum verification costs {:.2}x the plain stack (budget {CHECKSUM_BUDGET}x)",
                checksum.overhead_ratio
            );
            failures += 1;
        } else {
            println!(
                "smoke: note: checksum overhead {:.2}x over budget on a 1-core host \
                 (scheduler_noise, not a regression)",
                checksum.overhead_ratio
            );
        }
    }

    // Overload gates: the seeded 2x overload scenario must replay
    // deterministically, keep its queue bounded, balance its books,
    // and hold goodput while shedding — the service-level promises the
    // admission/shedding machinery exists for.
    const MIN_GOODPUT: f64 = 0.4;
    let ov = fpbench::overload::run(0x5EED, 100);
    println!(
        "smoke: overload {}/{} admitted, {} rejected, {} shed, goodput {:.2}, hiwater {}/{}",
        ov.admitted,
        ov.submissions,
        ov.rejected,
        ov.shed,
        ov.goodput_ratio,
        ov.queue_depth_high_water,
        ov.queue_capacity
    );
    if !ov.reconciled {
        eprintln!("SMOKE FAIL: overload stats do not reconcile: {ov:?}");
        failures += 1;
    }
    if !ov.deterministic {
        eprintln!("SMOKE FAIL: overload scenario did not replay identically");
        failures += 1;
    }
    if ov.queue_depth_high_water > ov.queue_capacity {
        eprintln!(
            "SMOKE FAIL: overload queue reached {} past its bound {}",
            ov.queue_depth_high_water, ov.queue_capacity
        );
        failures += 1;
    }
    if ov.rejected == 0 || ov.shed == 0 {
        eprintln!("SMOKE FAIL: 2x overload never rejected/shed — the scenario lost its teeth");
        failures += 1;
    }
    if ov.goodput_ratio < MIN_GOODPUT {
        eprintln!(
            "SMOKE FAIL: overload goodput {:.2} under {MIN_GOODPUT}",
            ov.goodput_ratio
        );
        failures += 1;
    }

    // Live-update gates: the update storm must replay deterministically
    // and keep goodput >= 0.5 while epochs swap under it, and a
    // ~1%-of-edges delta must invalidate < 20% of the metro-medium
    // shortcut arcs (the scoped-invalidation promise).
    const MIN_LIVE_GOODPUT: f64 = 0.5;
    const MAX_INVALIDATION: f64 = 0.20;
    let lu = fpbench::live_update::run(0x5EED, 100, 8);
    println!(
        "smoke: live update {} deltas, {}/{} shortcuts rebuilt ({:.1}%), refresh {:.3}s          (full build {:.3}s), goodput {:.2}",
        lu.updates_applied,
        lu.shortcuts_rebuilt,
        lu.shortcuts_total,
        lu.invalidation_fraction * 100.0,
        lu.refresh_wall_seconds,
        lu.build_wall_seconds,
        lu.goodput_ratio
    );
    if !lu.reconciled {
        eprintln!("SMOKE FAIL: live-update stats do not reconcile: {lu:?}");
        failures += 1;
    }
    if !lu.deterministic {
        eprintln!("SMOKE FAIL: update storm did not replay identically");
        failures += 1;
    }
    if lu.invalidation_fraction >= MAX_INVALIDATION {
        eprintln!(
            "SMOKE FAIL: 1% delta invalidated {:.1}% of shortcuts (gate {:.0}%)",
            lu.invalidation_fraction * 100.0,
            MAX_INVALIDATION * 100.0
        );
        failures += 1;
    }
    if lu.goodput_ratio < MIN_LIVE_GOODPUT {
        eprintln!(
            "SMOKE FAIL: goodput under the update storm {:.2} under {MIN_LIVE_GOODPUT}",
            lu.goodput_ratio
        );
        failures += 1;
    }

    // Cluster gates: the sharded-fleet twins must replay bit-exactly,
    // reconcile their books, actually fire their robustness machinery
    // (retries, replica failovers), and hold goodput >= 0.5 with one
    // shard owner down — the promises `fp-cluster` exists for.
    const MIN_CLUSTER_GOODPUT: f64 = 0.5;
    let cc = fpbench::cluster::run_chaos(11);
    println!(
        "smoke: cluster chaos {}/{} admitted over {} nodes/{} shards, {} answered, \
         {} rpc attempts ({} retries, {} failovers), goodput {:.2}",
        cc.admitted,
        cc.submissions,
        cc.sim_nodes,
        cc.shards,
        cc.answered,
        cc.rpc.attempts,
        cc.rpc.retries,
        cc.rpc.failovers,
        cc.goodput,
    );
    if !cc.reconciled {
        eprintln!("SMOKE FAIL: cluster chaos stats do not reconcile: {cc:?}");
        failures += 1;
    }
    if !cc.deterministic {
        eprintln!("SMOKE FAIL: cluster chaos scenario did not replay identically");
        failures += 1;
    }
    if cc.rpc.retries == 0 || cc.rpc.failovers == 0 {
        eprintln!("SMOKE FAIL: cluster chaos never retried/failed over — the storm lost its teeth");
        failures += 1;
    }
    let cl = fpbench::cluster::run_node_loss(5);
    println!(
        "smoke: cluster node-loss {} crash / {} restarts, {} answered, {} unroutable, \
         goodput {:.2} (floor {MIN_CLUSTER_GOODPUT})",
        cl.crashes, cl.restarts, cl.answered, cl.unroutable, cl.goodput,
    );
    if !cl.reconciled || !cl.deterministic {
        eprintln!("SMOKE FAIL: cluster node-loss run not reconciled/deterministic: {cl:?}");
        failures += 1;
    }
    if cl.goodput < MIN_CLUSTER_GOODPUT {
        eprintln!(
            "SMOKE FAIL: cluster goodput {:.2} under {MIN_CLUSTER_GOODPUT} with one node down",
            cl.goodput
        );
        failures += 1;
    }

    // Hierarchy gate: contraction must buy back its preprocessing —
    // the overlay search does ≥ 10x less expansion work per singleFP
    // than flat search on the medium metro. Expansions are machine-
    // independent; the wall-clock twin applies only where timing is
    // trustworthy (multi-core hosts — the 1-core bench box times
    // everything atop scheduler noise).
    const MIN_EXPANSION_SPEEDUP: f64 = 10.0;
    // Measured ~1.9x on medium / ~1.8x on full with the scalar-bound
    // search; gate at 1.25x to absorb host variance without letting a
    // slower-than-flat regression through.
    const MIN_WALL_SPEEDUP: f64 = 1.25;
    let h = measure_hierarchy(Scale::Medium, "medium", 12, &HierarchyConfig::default());
    println!(
        "smoke: hierarchy preprocess {:.2}s ({} shortcuts, {} pieces, ~{} KiB), \
         singleFP expansions flat {} vs ch {} ({:.1}x), wall {:.4}s vs {:.4}s ({:.2}x)",
        h.preprocess_wall_seconds,
        h.n_shortcuts,
        h.overlay_pieces,
        h.overlay_bytes / 1024,
        h.flat_expansions,
        h.ch_expansions,
        h.expansion_speedup,
        h.flat_wall_seconds,
        h.ch_wall_seconds,
        h.wall_speedup,
    );
    if h.expansion_speedup < MIN_EXPANSION_SPEEDUP {
        eprintln!(
            "SMOKE FAIL: hierarchy singleFP saves only {:.1}x expansions \
             (target {MIN_EXPANSION_SPEEDUP}x)",
            h.expansion_speedup
        );
        failures += 1;
    }
    if host_cpus() > 1 && h.wall_speedup < MIN_WALL_SPEEDUP {
        eprintln!(
            "SMOKE FAIL: hierarchy singleFP wall speedup {:.2}x under {MIN_WALL_SPEEDUP}x",
            h.wall_speedup
        );
        failures += 1;
    }

    // Overlay-size gate: the stored overlay (one-day functions,
    // bounded-error reduced under the default config) must hold at
    // most half the bytes of the baseline layout — exact functions
    // plus the per-arc materialized two-day extensions earlier
    // revisions stored. The equivalence suites pin that answers stay
    // bit-identical. Gated here at medium for speed; the ratio is
    // scale-stable and the report records it at metro-full.
    const MAX_OVERLAY_RATIO: f64 = 0.5;
    println!(
        "smoke: overlay storage {} KiB vs {} KiB baseline (ratio {:.3}, eps {:?}, budget {MAX_OVERLAY_RATIO})",
        h.overlay_bytes / 1024,
        h.overlay_bytes_exact / 1024,
        h.overlay_bytes_ratio,
        h.compress_eps,
    );
    if h.overlay_bytes_ratio > MAX_OVERLAY_RATIO {
        eprintln!(
            "SMOKE FAIL: stored overlay holds {:.3}x the baseline-layout bytes (budget {MAX_OVERLAY_RATIO}x)",
            h.overlay_bytes_ratio
        );
        failures += 1;
    }

    // Parallel-contraction gate: with ≥ 4 real cores, a 4-thread build
    // must finish ≥ 1.5x faster than the serial build of the same
    // network. Oversubscribed widths are annotated, never gated — on
    // the 1-core bench box every multi-thread point is noise.
    const MIN_CONTRACTION_SPEEDUP: f64 = 1.5;
    let contraction = measure_contraction_sweep(Scale::Medium);
    for p in &contraction {
        println!(
            "smoke: contraction {} thread(s): {:.3}s, {:.2}x serial{}{}",
            p.threads,
            p.preprocess_wall_seconds,
            p.speedup_vs_serial,
            if p.annotation.is_empty() { "" } else { " " },
            p.annotation,
        );
    }
    if host_cpus() >= 4 {
        if let Some(p4) = contraction.iter().find(|p| p.threads == 4) {
            if p4.speedup_vs_serial < MIN_CONTRACTION_SPEEDUP {
                eprintln!(
                    "SMOKE FAIL: {} cores available but 4-thread contraction gives only {:.2}x \
                     (target {MIN_CONTRACTION_SPEEDUP}x)",
                    host_cpus(),
                    p4.speedup_vs_serial
                );
                failures += 1;
            }
        }
    } else {
        println!(
            "smoke: note: contraction speedup not gated on a {}-core host (scheduler_noise)",
            host_cpus()
        );
    }

    // Metro-huge gates on the smoke continental tier (16 384 nodes):
    // the parallel bulk builder must be byte-deterministic across
    // {1,2,4} threads, its transient scratch must stay well under the
    // graph bytes (the bounded-memory promise, gated on the analytic
    // counter so a 1-core host can't flake it), and the mmap-served
    // fig9 workload must answer every query while actually faulting
    // pages in (unless the store fell back to FileStore, which the
    // equivalence suite pins to the same bytes anyway).
    let hu = fpbench::metro_huge::run(&ContinentalConfig::smoke(0x5EED), "smoke", 8, 32);
    println!(
        "smoke: metro-huge smoke tier {} nodes, {} pages, build x{:?} deterministic={}, \
         transient {} KiB vs graph {} KiB, {} via {} ({} frames), {}/{} queries ok, \
         {} faults, {} reads",
        hu.n_nodes,
        hu.total_pages,
        fpbench::metro_huge::BUILD_SWEEP,
        hu.deterministic,
        hu.transient_build_bytes / 1024,
        hu.graph_bytes / 1024,
        hu.tier,
        hu.store_kind,
        hu.pool_frames,
        hu.queries - hu.query_failures,
        hu.queries,
        hu.mmap_faults,
        hu.io_reads,
    );
    if !hu.deterministic {
        eprintln!(
            "SMOKE FAIL: bulk build diverged across thread counts {:?}",
            { fpbench::metro_huge::BUILD_SWEEP }
        );
        failures += 1;
    }
    if hu.transient_build_bytes as u64 >= hu.graph_bytes {
        eprintln!(
            "SMOKE FAIL: bulk builder scratch peaked at {} bytes, not bounded under the \
             {}-byte graph",
            hu.transient_build_bytes, hu.graph_bytes
        );
        failures += 1;
    }
    if hu.query_failures > 0 || hu.expanded_paths == 0 {
        eprintln!(
            "SMOKE FAIL: disk-served tier answered {}/{} queries ({} expansions)",
            hu.queries - hu.query_failures,
            hu.queries,
            hu.expanded_paths
        );
        failures += 1;
    }
    if hu.store_kind == "mmap" && hu.mmap_faults == 0 {
        eprintln!("SMOKE FAIL: mmap store served the workload without counting a single fault");
        failures += 1;
    }

    if failures == 0 {
        println!("smoke: ok ({} widths verified)", THREAD_SWEEP.len());
        0
    } else {
        eprintln!("smoke: {failures} failure(s)");
        1
    }
}

/// `--spin`: run the warm serial cache-on loop for ~5 seconds and
/// nothing else — a steady target for sampling profilers (the report
/// interleaves six configurations, so profiles of it mostly show the
/// cold-cache storage stacks).
fn spin() {
    let scenario = Scenario::new(Scale::Medium, 0x5EED);
    let net = &scenario.net;
    let queries = workload(net, 24);
    let cached = Engine::new(net, EngineConfig::default());
    let start = Instant::now();
    let mut reps = 0usize;
    while start.elapsed().as_secs_f64() < 5.0 {
        for q in &queries {
            std::hint::black_box(cached.all_fastest_paths(q).ok());
        }
        reps += 1;
    }
    println!(
        "spin: {reps} reps x {} queries in {:.2}s",
        queries.len(),
        start.elapsed().as_secs_f64()
    );
}

/// `--hier`: print the hierarchy-vs-flat race at both report scales
/// and nothing else — a focused probe for tuning the speedup gates.
fn hier_probe() {
    for (scale, name, count) in [(Scale::Medium, "medium", 12), (Scale::Full, "full", 24)] {
        let h = measure_hierarchy(scale, name, count, &HierarchyConfig::default());
        println!(
            "hier[{}]: preprocess {:.2}s, {} nodes, {} shortcuts ({} disabled), {} pieces \
             (~{} KiB stored vs ~{} KiB baseline, ratio {:.3}); {} queries: \
             expansions flat {} vs ch {} ({:.1}x), wall {:.4}s vs {:.4}s ({:.2}x)",
            h.scale,
            h.preprocess_wall_seconds,
            h.n_nodes,
            h.n_shortcuts,
            h.n_disabled,
            h.overlay_pieces,
            h.overlay_bytes / 1024,
            h.overlay_bytes_exact / 1024,
            h.overlay_bytes_ratio,
            h.queries,
            h.flat_expansions,
            h.ch_expansions,
            h.expansion_speedup,
            h.flat_wall_seconds,
            h.ch_wall_seconds,
            h.wall_speedup,
        );
    }
}

/// `--eps-sweep`: how the overlay byte ratio and the query pruning
/// power trade off against the compression band, per scale — the
/// tuning data behind the default `overlay_compress`.
fn eps_sweep() {
    // Each scale sweeps only its viable range: past it, pruning
    // power collapses and the query probes crawl for minutes (the
    // cliff moves left as the network grows — on full, `0.25`
    // already crawls).
    let medium: &[Option<f64>] = &[None, Some(0.1), Some(0.25), Some(0.5)];
    let full: &[Option<f64>] = &[None, Some(0.1)];
    for (scale, name, count, bands) in [
        (Scale::Medium, "medium", 12, medium),
        (Scale::Full, "full", 24, full),
    ] {
        for &eps in bands {
            let cfg = HierarchyConfig {
                overlay_compress: eps,
                ..HierarchyConfig::default()
            };
            let h = measure_hierarchy(scale, name, count, &cfg);
            println!(
                "eps[{name} {eps:?}]: ratio {:.3} ({} KiB vs {} KiB), expansions flat {} \
                 vs ch {} ({:.1}x), preprocess {:.2}s",
                h.overlay_bytes_ratio,
                h.overlay_bytes / 1024,
                h.overlay_bytes_exact / 1024,
                h.flat_expansions,
                h.ch_expansions,
                h.expansion_speedup,
                h.preprocess_wall_seconds,
            );
        }
    }
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        std::process::exit(smoke());
    }
    if std::env::args().any(|a| a == "--hier") {
        hier_probe();
        return;
    }
    if std::env::args().any(|a| a == "--eps-sweep") {
        eps_sweep();
        return;
    }
    if std::env::args().any(|a| a == "--spin") {
        spin();
        return;
    }
    // `--report`: refresh BENCH_engine.json without the Criterion runs.
    if !std::env::args().any(|a| a == "--report") {
        benches();
    }
    emit_report();
}
