#![allow(missing_docs)] // criterion_group! expands to undocumented items
//! Hot-path benchmarks for the allFP engine: the travel-function cache
//! (on vs off) and the batch driver (`run_batch` vs a serial loop),
//! over the Figure 9 workload (3-hour morning rush, distance-sampled
//! source–target pairs on the metro scenario).
//!
//! Besides the Criterion timings, the run emits `BENCH_engine.json` at
//! the repository root with wall-times and expansions/sec for each
//! configuration, so throughput claims are machine-checkable.

use std::time::Instant;

use criterion::{black_box, criterion_group, Criterion};
use fpbench::{Scale, Scenario};

use allfp::{Engine, EngineConfig, QuerySpec};
use pwl::time::hm;
use pwl::Interval;
use roadnet::workload::sample_pairs;
use roadnet::RoadNetwork;
use traffic::DayCategory;

/// The Figure 9 query workload: `count` pairs 1–3 miles apart, morning
/// rush interval, workday speeds.
fn workload(net: &RoadNetwork, count: usize) -> Vec<QuerySpec> {
    let interval = Interval::of(hm(7, 0), hm(10, 0));
    sample_pairs(net, count, 1.0, 3.0, 0xF19)
        .expect("sampling succeeds")
        .iter()
        .map(|p| QuerySpec::new(p.source, p.target, interval, DayCategory::WORKDAY))
        .collect()
}

fn uncached() -> EngineConfig {
    EngineConfig {
        use_travel_cache: false,
        ..EngineConfig::default()
    }
}

fn bench_hotpath(c: &mut Criterion) {
    let scenario = Scenario::new(Scale::Small, 0x5EED);
    let net = &scenario.net;
    let queries = workload(net, 8);

    let cached = Engine::new(net, EngineConfig::default());
    let plain = Engine::new(net, uncached());

    let mut group = c.benchmark_group("engine-hotpath allFP x8");
    group.sample_size(10);
    group.bench_function("serial cache-off", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(plain.all_fastest_paths(q).ok());
            }
        })
    });
    group.bench_function("serial cache-on", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(cached.all_fastest_paths(q).ok());
            }
        })
    });
    group.bench_function("run_batch cache-on", |b| {
        b.iter(|| black_box(cached.run_batch(&queries)))
    });
    group.finish();
}

criterion_group!(benches, bench_hotpath);

/// One measured configuration for the JSON report.
struct Measured {
    name: &'static str,
    wall_seconds: f64,
    queries: usize,
    expanded_paths: usize,
    expansions_per_sec: f64,
    queries_per_sec: f64,
}

/// Time `queries` through `run`, counting expansions via the answers.
fn measure(
    name: &'static str,
    queries: &[QuerySpec],
    run: impl Fn(&[QuerySpec]) -> Vec<allfp::Result<allfp::AllFpAnswer>>,
) -> Measured {
    // Warm-up pass (fills the cache where one is enabled).
    let _ = run(queries);
    let reps = 3;
    let start = Instant::now();
    let mut expanded = 0usize;
    for _ in 0..reps {
        expanded = 0;
        for ans in run(queries).iter().flatten() {
            expanded += ans.stats.expanded_paths;
        }
    }
    let wall = start.elapsed().as_secs_f64() / f64::from(reps);
    Measured {
        name,
        wall_seconds: wall,
        queries: queries.len(),
        expanded_paths: expanded,
        expansions_per_sec: expanded as f64 / wall,
        queries_per_sec: queries.len() as f64 / wall,
    }
}

/// Minimal JSON rendering (no serde in the workspace).
fn to_json(rows: &[Measured], speedup_cache: f64, speedup_batch: f64) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"engine_hotpath\",\n");
    out.push_str("  \"workload\": \"fig9 morning rush, metro-small, allFP\",\n");
    out.push_str("  \"configs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"queries\": {}, \"wall_seconds\": {:.6}, \
             \"expanded_paths\": {}, \"expansions_per_sec\": {:.1}, \"queries_per_sec\": {:.2}}}{}\n",
            r.name,
            r.queries,
            r.wall_seconds,
            r.expanded_paths,
            r.expansions_per_sec,
            r.queries_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"speedup_cache_on_vs_off\": {speedup_cache:.2},\n"
    ));
    out.push_str(&format!(
        "  \"speedup_batch_vs_serial\": {speedup_batch:.2}\n"
    ));
    out.push_str("}\n");
    out
}

/// Measure the report configurations and write `BENCH_engine.json`.
fn emit_report() {
    let scenario = Scenario::new(Scale::Small, 0x5EED);
    let net = &scenario.net;
    let queries = workload(net, 8);

    let plain = Engine::new(net, uncached());
    let cached = Engine::new(net, EngineConfig::default());

    let rows = vec![
        measure("serial cache-off", &queries, |qs| {
            qs.iter().map(|q| plain.all_fastest_paths(q)).collect()
        }),
        measure("serial cache-on", &queries, |qs| {
            qs.iter().map(|q| cached.all_fastest_paths(q)).collect()
        }),
        measure("run_batch cache-on", &queries, |qs| cached.run_batch(qs)),
    ];
    let speedup_cache = rows[0].wall_seconds / rows[1].wall_seconds;
    let speedup_batch = rows[1].wall_seconds / rows[2].wall_seconds;
    let json = to_json(&rows, speedup_cache, speedup_batch);

    // CARGO_MANIFEST_DIR = crates/bench; the report lives at the root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}

fn main() {
    benches();
    emit_report();
}
