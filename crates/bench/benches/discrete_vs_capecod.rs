#![allow(missing_docs)] // criterion_group! expands to undocumented items
//! Figure 10(b) as a Criterion benchmark: one exact interval query vs
//! the Discrete Time model at each discretization step.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fpbench::{Scale, Scenario};

use allfp::baseline::discrete_time;
use allfp::{Engine, EngineConfig, NaiveLb, QuerySpec};
use pwl::time::hm;
use pwl::Interval;
use roadnet::workload::sample_pairs;
use traffic::DayCategory;

fn bench_models(c: &mut Criterion) {
    let scenario = Scenario::new(Scale::Small, 0x5EED);
    let net = &scenario.net;
    let pair = sample_pairs(net, 1, 2.0, 3.0, 13).expect("sampling succeeds")[0];
    let interval = Interval::of(hm(8, 15), hm(10, 10));
    let q = QuerySpec::new(pair.source, pair.target, interval, DayCategory::WORKDAY);
    let engine = Engine::new(net, EngineConfig::default());
    let lb = NaiveLb::new(net.max_speed());

    let mut group = c.benchmark_group("fig10b query time");
    group.sample_size(10);
    group.bench_function("CapeCod exact (singleFP)", |b| {
        b.iter(|| black_box(engine.single_fastest_path(&q).unwrap()))
    });
    for step in [60.0f64, 10.0, 1.0] {
        group.bench_with_input(
            BenchmarkId::new("discrete", format!("{step}m")),
            &step,
            |b, &step| {
                b.iter(|| {
                    black_box(
                        discrete_time(net, q.source, q.target, &q.interval, step, q.category, &lb)
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
