#![allow(missing_docs)] // criterion_group! expands to undocumented items
//! Microbenchmarks of the function algebra: the per-expansion cost of
//! the engine's inner loop (travel-time construction, compound
//! expansion, lower-border maintenance).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pwl::time::hm;
use pwl::{compose_travel, Envelope, Interval, Pwl};
use traffic::travel::travel_time_fn;
use traffic::SpeedProfile;

fn rush_profile() -> SpeedProfile {
    SpeedProfile::with_rush_window(1.0, 1.0 / 3.0, hm(7, 0), hm(10, 0)).expect("valid")
}

fn bench_travel_time_fn(c: &mut Criterion) {
    let profile = rush_profile();
    let leaving = Interval::of(hm(6, 0), hm(11, 0));
    c.bench_function("travel_time_fn 5h window", |b| {
        b.iter(|| travel_time_fn(black_box(&profile), black_box(3.5), black_box(&leaving)))
    });
}

fn bench_compose(c: &mut Criterion) {
    let profile = rush_profile();
    let leaving = Interval::of(hm(6, 0), hm(9, 0));
    let t1 = travel_time_fn(&profile, 2.0, &leaving).unwrap();
    let arrivals = pwl::compose::arrival_interval(&t1).unwrap();
    let t2 = travel_time_fn(&profile, 3.0, &arrivals).unwrap();
    c.bench_function("compose_travel (path expansion)", |b| {
        b.iter(|| compose_travel(black_box(&t1), black_box(&t2)).unwrap())
    });
}

fn bench_envelope_merge(c: &mut Criterion) {
    let domain = Interval::of(0.0, 180.0);
    // 16 crossing piecewise functions
    let fns: Vec<Pwl> = (0..16)
        .map(|i| {
            let phase = i as f64 * 11.0;
            Pwl::from_points(&[
                (0.0, 30.0 + phase % 17.0),
                (60.0 + (phase % 29.0), 20.0 + (phase % 7.0)),
                (120.0 + (phase % 13.0), 35.0 - (phase % 11.0)),
                (180.0, 28.0 + (phase % 5.0)),
            ])
            .expect("valid points")
        })
        .collect();
    c.bench_function("lower border: merge 16 functions", |b| {
        b.iter(|| {
            let mut env = Envelope::new(fns[0].clone(), 0usize);
            for (i, f) in fns.iter().enumerate().skip(1) {
                env.merge_min(f, i).unwrap();
            }
            black_box(env.max_value());
        })
    });
    let mut env = Envelope::new(fns[0].clone(), 0usize);
    for (i, f) in fns.iter().enumerate().skip(1) {
        env.merge_min(f, i).unwrap();
    }
    c.bench_function("lower border: partition read-off", |b| {
        b.iter(|| black_box(env.partition().len()))
    });
    let _ = domain;
}

fn bench_minimum(c: &mut Criterion) {
    let profile = rush_profile();
    let t = travel_time_fn(&profile, 6.0, &Interval::of(hm(5, 0), hm(12, 0))).unwrap();
    c.bench_function("pwl minimum + argmin interval", |b| {
        b.iter(|| black_box(t.minimum()))
    });
}

criterion_group!(
    benches,
    bench_travel_time_fn,
    bench_compose,
    bench_envelope_merge,
    bench_minimum
);
criterion_main!(benches);
