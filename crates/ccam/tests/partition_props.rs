//! Property suite for the connectivity partitioner as a *distributed
//! contract*.
//!
//! PR 10 shards the serving tier by [`ccam::partition_assignment`]:
//! every cluster node derives its shard map independently from the
//! same network, and the boundary estimator derives the interface
//! graph from the same assignment. That only works if the partition
//! is **total** (every node assigned), **disjoint** (assigned exactly
//! once), and **byte-deterministic** — identical output for identical
//! input, no matter how many times or from how many threads it is
//! computed. These were implicit estimator details before; now a
//! divergence would silently route queries to the wrong shard owner,
//! so they are fuzzed here.

use ccam::{partition_assignment, partition_nodes, PlacementPolicy};
use proptest::prelude::*;
use roadnet::generators::grid;
use roadnet::RoadNetwork;
use traffic::RoadClass;

fn make_net(w: usize, h: usize, spacing: f64) -> RoadNetwork {
    grid(w, h, spacing, RoadClass::LocalOutside).expect("grid generator is infallible here")
}

/// Every policy's page list covers each node exactly once.
fn assert_total_and_disjoint(n_nodes: usize, pages: &[Vec<roadnet::NodeId>]) {
    let mut seen = vec![false; n_nodes];
    for page in pages {
        for n in page {
            assert!(!seen[n.index()], "node {n} assigned to two pages");
            seen[n.index()] = true;
        }
    }
    assert!(
        seen.iter().all(|&s| s),
        "partitioner left a node unassigned"
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    /// Totality and disjointness for every placement policy over
    /// random network shapes and page budgets.
    #[test]
    fn partition_is_total_and_disjoint(
        w in 3usize..10,
        h in 3usize..10,
        page_size in 192usize..1024,
        seed in 0u64..1000,
    ) {
        let net = make_net(w, h, 0.25);
        for policy in [
            PlacementPolicy::ConnectivityClustered,
            PlacementPolicy::HilbertPacked,
            PlacementPolicy::Random { seed },
        ] {
            let p = partition_nodes(&net, policy, page_size).unwrap();
            assert_total_and_disjoint(net.n_nodes(), &p.pages);
        }
    }

    /// The assignment vector is total (no `u32::MAX` sentinel
    /// survives), group ids are dense below `n_groups`, and every
    /// group is non-empty.
    #[test]
    fn assignment_is_total_with_dense_group_ids(
        w in 3usize..9,
        h in 3usize..9,
        target in 1usize..24,
    ) {
        let net = make_net(w, h, 0.3);
        let (group_of, n_groups) = partition_assignment(&net, target).unwrap();
        prop_assert_eq!(group_of.len(), net.n_nodes());
        prop_assert!(n_groups >= 1);
        let mut populated = vec![false; n_groups];
        for &g in &group_of {
            prop_assert!((g as usize) < n_groups, "group id {} out of range", g);
            populated[g as usize] = true;
        }
        prop_assert!(populated.iter().all(|&p| p), "an empty group id was emitted");
    }

    /// Byte-determinism across repeated runs and across concurrent
    /// callers: the partition a cluster node computes on thread 7 of
    /// run 300 must equal the one the estimator computed on thread 1
    /// of run 1, byte for byte.
    #[test]
    fn assignment_is_byte_deterministic_across_threads_and_runs(
        w in 3usize..8,
        h in 3usize..8,
        target in 1usize..16,
        threads in 2usize..5,
    ) {
        let net = make_net(w, h, 0.3);
        let reference = partition_assignment(&net, target).unwrap();
        // Repeated sequential runs.
        for _ in 0..2 {
            prop_assert_eq!(&partition_assignment(&net, target).unwrap(), &reference);
        }
        // Concurrent runs from `threads` threads at once.
        let concurrent: Vec<(Vec<u32>, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| scope.spawn(|| partition_assignment(&net, target).unwrap()))
                .collect();
            handles.into_iter().map(|jh| jh.join().unwrap()).collect()
        });
        for got in &concurrent {
            prop_assert_eq!(got, &reference);
        }
        // Byte-level identity, not just logical equality: the shard
        // map serializes this vector verbatim into RPC envelopes.
        let reference_bytes: Vec<u8> = reference.0.iter().flat_map(|g| g.to_le_bytes()).collect();
        for got in &concurrent {
            let bytes: Vec<u8> = got.0.iter().flat_map(|g| g.to_le_bytes()).collect();
            prop_assert_eq!(&bytes, &reference_bytes);
        }
    }

    /// The Hilbert-seeded BFS partitioning itself (not just the
    /// flattened assignment) replays identically.
    #[test]
    fn connectivity_partitioning_replays_identically(
        w in 3usize..9,
        h in 3usize..9,
        page_size in 256usize..2048,
    ) {
        let net = make_net(w, h, 0.25);
        let a = partition_nodes(&net, PlacementPolicy::ConnectivityClustered, page_size).unwrap();
        let b = partition_nodes(&net, PlacementPolicy::ConnectivityClustered, page_size).unwrap();
        prop_assert_eq!(a, b);
    }
}
