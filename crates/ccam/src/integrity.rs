//! Per-page CRC32 checksums: [`ChecksummedStore`] wraps any
//! [`BlockStore`] and guarantees a page that reads back different from
//! what was written is *detected*, never served as data.
//!
//! # Page format (version 1)
//!
//! Every inner page starts with an 8-byte header in front of the
//! caller-visible payload:
//!
//! ```text
//! offset  size  field
//! 0       2     magic  b"CP" (Checksummed Page)
//! 2       2     format version (big-endian, currently 1)
//! 4       4     CRC32 (IEEE) of the payload (big-endian)
//! 8       ...   payload (inner page size - 8 bytes)
//! ```
//!
//! The wrapper therefore *shrinks* the visible page size by
//! [`PAGE_HEADER`] bytes; callers size their records against
//! [`BlockStore::page_size`] as always and never see the header.
//! Verification happens on every `read_page` — in the assembled stack
//! that is every buffer-pool miss, so a hot page is checked once per
//! fault, not once per access. A mismatch surfaces as
//! [`CcamError::Corruption`] (with both CRCs for diagnostics) and bumps
//! the [`corruptions`](crate::IoStats::corruptions) counter; corruption
//! is never retried (contrast transient faults, which the buffer pool
//! absorbs).

use std::sync::Arc;

use crate::store::{BlockStore, IoStats};
use crate::{CcamError, Result};

/// Checksummed-page header size in bytes.
pub const PAGE_HEADER: usize = 8;

/// Checksummed-page magic: `b"CP"`.
const PAGE_MAGIC: u16 = u16::from_be_bytes(*b"CP");

/// Checksummed-page format version.
const PAGE_VERSION: u16 = 1;

/// CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) lookup table,
/// built at compile time — no runtime init, no dependency.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes` — the checksum `zlib`/`gzip` use.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// A [`BlockStore`] wrapper that checksums every page (see the module
/// docs for the on-page format). Stack it *above* whatever can corrupt
/// bytes — the file, the memory, an injected fault — and below the
/// buffer pool, so verification runs on every pool fault.
pub struct ChecksummedStore {
    inner: Arc<dyn BlockStore>,
}

impl ChecksummedStore {
    /// Wrap `inner`. The visible page size shrinks by [`PAGE_HEADER`]
    /// bytes; `inner`'s page size must exceed the header.
    pub fn new(inner: Arc<dyn BlockStore>) -> Self {
        assert!(
            inner.page_size() > PAGE_HEADER,
            "inner pages must be larger than the checksum header"
        );
        ChecksummedStore { inner }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &Arc<dyn BlockStore> {
        &self.inner
    }

    fn encode(&self, payload: &[u8]) -> Vec<u8> {
        let mut full = Vec::with_capacity(self.inner.page_size());
        full.extend_from_slice(&PAGE_MAGIC.to_be_bytes());
        full.extend_from_slice(&PAGE_VERSION.to_be_bytes());
        full.extend_from_slice(&crc32(payload).to_be_bytes());
        full.extend_from_slice(payload);
        full
    }
}

impl BlockStore for ChecksummedStore {
    fn page_size(&self) -> usize {
        self.inner.page_size() - PAGE_HEADER
    }

    fn n_pages(&self) -> u64 {
        self.inner.n_pages()
    }

    fn allocate(&self) -> Result<u64> {
        let id = self.inner.allocate()?;
        // Inner stores hand out zeroed pages; a zero header would fail
        // verification on first read, so stamp a valid empty page now.
        let zero = vec![0u8; self.page_size()];
        self.inner.write_page(id, &self.encode(&zero))?;
        Ok(id)
    }

    fn read_page(&self, id: u64, buf: &mut [u8]) -> Result<()> {
        let mut full = vec![0u8; self.inner.page_size()];
        self.inner.read_page(id, &mut full)?;
        let magic = u16::from_be_bytes([full[0], full[1]]);
        let version = u16::from_be_bytes([full[2], full[3]]);
        if magic != PAGE_MAGIC || version != PAGE_VERSION {
            self.inner.io_stats().bump_corruption();
            return Err(CcamError::Corrupt(format!(
                "page {id}: bad checksum header (magic {magic:#06x}, version {version})"
            )));
        }
        let stored = u32::from_be_bytes([full[4], full[5], full[6], full[7]]);
        let payload = &full[PAGE_HEADER..];
        let computed = crc32(payload);
        if stored != computed {
            self.inner.io_stats().bump_corruption();
            return Err(CcamError::Corruption {
                page: id,
                stored,
                computed,
            });
        }
        buf.copy_from_slice(payload);
        Ok(())
    }

    fn write_page(&self, id: u64, buf: &[u8]) -> Result<()> {
        self.inner.write_page(id, &self.encode(buf))
    }

    fn io_stats(&self) -> &IoStats {
        self.inner.io_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn round_trips_and_shrinks_page_size() {
        let store = ChecksummedStore::new(Arc::new(MemStore::new(256)));
        assert_eq!(store.page_size(), 256 - PAGE_HEADER);
        let id = store.allocate().unwrap();
        let mut buf = vec![0u8; store.page_size()];
        // freshly allocated pages verify and read back zeroed
        store.read_page(id, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        // and written data round-trips
        let data: Vec<u8> = (0..store.page_size()).map(|i| i as u8).collect();
        store.write_page(id, &data).unwrap();
        store.read_page(id, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn detects_a_single_flipped_bit() {
        let raw = Arc::new(MemStore::new(128));
        let store = ChecksummedStore::new(Arc::clone(&raw) as Arc<dyn BlockStore>);
        let id = store.allocate().unwrap();
        let data = vec![0xA5u8; store.page_size()];
        store.write_page(id, &data).unwrap();

        // flip one payload bit underneath the checksum layer
        let mut full = vec![0u8; raw.page_size()];
        raw.read_page(id, &mut full).unwrap();
        full[PAGE_HEADER + 17] ^= 0x04;
        raw.write_page(id, &full).unwrap();

        let mut buf = vec![0u8; store.page_size()];
        let err = store.read_page(id, &mut buf).unwrap_err();
        assert!(
            matches!(err, CcamError::Corruption { page, stored, computed }
                if page == id && stored != computed),
            "got {err:?}"
        );
        assert_eq!(store.io_stats().corruptions(), 1);
        // the error is permanent, not retryable
        assert!(!err.is_transient());
    }

    #[test]
    fn detects_a_damaged_header() {
        let raw = Arc::new(MemStore::new(128));
        let store = ChecksummedStore::new(Arc::clone(&raw) as Arc<dyn BlockStore>);
        let id = store.allocate().unwrap();
        let mut full = vec![0u8; raw.page_size()];
        raw.read_page(id, &mut full).unwrap();
        full[0] = 0xFF; // clobber the magic
        raw.write_page(id, &full).unwrap();
        let mut buf = vec![0u8; store.page_size()];
        assert!(matches!(
            store.read_page(id, &mut buf),
            Err(CcamError::Corrupt(_))
        ));
        assert_eq!(store.io_stats().corruptions(), 1);
    }
}
