//! The block layer: fixed-size pages over memory or a file, with
//! physical I/O counters.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::{CcamError, Result};

/// Physical I/O counters for a [`BlockStore`] (monotonic; snapshot with
/// [`IoStats::snapshot`]).
///
/// # Thread-safety contract
///
/// Counters use `Ordering::Relaxed`: increments are individually exact
/// but carry no ordering with the I/O they describe, so totals are only
/// guaranteed complete after the issuing threads have been joined (or
/// otherwise provably stopped). Experiments always read them quiescent.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
}

impl IoStats {
    /// Pages physically read so far.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Pages physically written so far.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// `(reads, writes)` snapshot.
    pub fn snapshot(&self) -> (u64, u64) {
        (self.reads(), self.writes())
    }

    fn bump_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    fn bump_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }
}

/// A store of fixed-size pages addressed by dense `u64` ids.
pub trait BlockStore: Send + Sync {
    /// Page size in bytes (constant for the life of the store).
    fn page_size(&self) -> usize;

    /// Number of allocated pages.
    fn n_pages(&self) -> u64;

    /// Allocate a zeroed page at the end, returning its id.
    fn allocate(&self) -> Result<u64>;

    /// Read page `id` into `buf` (`buf.len() == page_size`).
    fn read_page(&self, id: u64, buf: &mut [u8]) -> Result<()>;

    /// Write `buf` to page `id`.
    fn write_page(&self, id: u64, buf: &[u8]) -> Result<()>;

    /// Physical I/O counters.
    fn io_stats(&self) -> &IoStats;
}

/// An in-memory block store (tests, benchmarks, and buffer-pool-miss
/// accounting without a filesystem).
pub struct MemStore {
    page_size: usize,
    pages: Mutex<Vec<Box<[u8]>>>,
    stats: IoStats,
}

impl MemStore {
    /// New empty store with the given page size.
    pub fn new(page_size: usize) -> Self {
        MemStore {
            page_size,
            pages: Mutex::new(Vec::new()),
            stats: IoStats::default(),
        }
    }
}

impl BlockStore for MemStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn n_pages(&self) -> u64 {
        self.pages.lock().len() as u64
    }

    fn allocate(&self) -> Result<u64> {
        let mut pages = self.pages.lock();
        pages.push(vec![0u8; self.page_size].into_boxed_slice());
        Ok(pages.len() as u64 - 1)
    }

    fn read_page(&self, id: u64, buf: &mut [u8]) -> Result<()> {
        let pages = self.pages.lock();
        let page = pages.get(id as usize).ok_or(CcamError::BadPage(id))?;
        buf.copy_from_slice(page);
        self.stats.bump_read();
        Ok(())
    }

    fn write_page(&self, id: u64, buf: &[u8]) -> Result<()> {
        let mut pages = self.pages.lock();
        let page = pages.get_mut(id as usize).ok_or(CcamError::BadPage(id))?;
        page.copy_from_slice(buf);
        self.stats.bump_write();
        Ok(())
    }

    fn io_stats(&self) -> &IoStats {
        &self.stats
    }
}

/// A file-backed block store.
pub struct FileStore {
    page_size: usize,
    file: Mutex<File>,
    n_pages: AtomicU64,
    stats: IoStats,
}

impl FileStore {
    /// Create (truncating) a store at `path`.
    pub fn create(path: &Path, page_size: usize) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileStore {
            page_size,
            file: Mutex::new(file),
            n_pages: AtomicU64::new(0),
            stats: IoStats::default(),
        })
    }

    /// Open an existing store at `path`.
    pub fn open(path: &Path, page_size: usize) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % page_size as u64 != 0 {
            return Err(CcamError::Corrupt(format!(
                "file length {len} not a multiple of page size {page_size}"
            )));
        }
        Ok(FileStore {
            page_size,
            file: Mutex::new(file),
            n_pages: AtomicU64::new(len / page_size as u64),
            stats: IoStats::default(),
        })
    }
}

impl BlockStore for FileStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn n_pages(&self) -> u64 {
        self.n_pages.load(Ordering::Relaxed)
    }

    fn allocate(&self) -> Result<u64> {
        let mut file = self.file.lock();
        let id = self.n_pages.fetch_add(1, Ordering::Relaxed);
        file.seek(SeekFrom::Start(id * self.page_size as u64))?;
        file.write_all(&vec![0u8; self.page_size])?;
        Ok(id)
    }

    fn read_page(&self, id: u64, buf: &mut [u8]) -> Result<()> {
        if id >= self.n_pages() {
            return Err(CcamError::BadPage(id));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id * self.page_size as u64))?;
        file.read_exact(buf)?;
        self.stats.bump_read();
        Ok(())
    }

    fn write_page(&self, id: u64, buf: &[u8]) -> Result<()> {
        if id >= self.n_pages() {
            return Err(CcamError::BadPage(id));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id * self.page_size as u64))?;
        file.write_all(buf)?;
        self.stats.bump_write();
        Ok(())
    }

    fn io_stats(&self) -> &IoStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn BlockStore) {
        assert_eq!(store.n_pages(), 0);
        let p0 = store.allocate().unwrap();
        let p1 = store.allocate().unwrap();
        assert_eq!((p0, p1), (0, 1));
        assert_eq!(store.n_pages(), 2);

        let mut buf = vec![0u8; store.page_size()];
        buf[0] = 0xAB;
        buf[store.page_size() - 1] = 0xCD;
        store.write_page(1, &buf).unwrap();

        let mut out = vec![0u8; store.page_size()];
        store.read_page(1, &mut out).unwrap();
        assert_eq!(out, buf);
        store.read_page(0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));

        assert!(matches!(
            store.read_page(7, &mut out),
            Err(CcamError::BadPage(7))
        ));
        assert!(matches!(
            store.write_page(7, &buf),
            Err(CcamError::BadPage(7))
        ));

        let (r, w) = store.io_stats().snapshot();
        assert_eq!((r, w), (2, 1));
    }

    #[test]
    fn mem_store() {
        exercise(&MemStore::new(512));
    }

    #[test]
    fn file_store() {
        let dir = std::env::temp_dir().join(format!("ccam-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.db");
        exercise(&FileStore::create(&path, 512).unwrap());

        // persistence across close/open
        {
            let s = FileStore::create(&path, 512).unwrap();
            s.allocate().unwrap();
            let mut buf = vec![9u8; 512];
            buf[3] = 42;
            s.write_page(0, &buf).unwrap();
        }
        let s = FileStore::open(&path, 512).unwrap();
        assert_eq!(s.n_pages(), 1);
        let mut out = vec![0u8; 512];
        s.read_page(0, &mut out).unwrap();
        assert_eq!(out[3], 42);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_ragged_file() {
        let dir = std::env::temp_dir().join(format!("ccam-test-rag-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ragged.db");
        std::fs::write(&path, [0u8; 100]).unwrap();
        assert!(matches!(
            FileStore::open(&path, 512),
            Err(CcamError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
