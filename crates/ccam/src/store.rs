//! The block layer: fixed-size pages over memory or a file, with
//! physical I/O counters.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::{CcamError, Result};

/// Physical I/O counters for a [`BlockStore`] (monotonic; snapshot with
/// [`IoStats::snapshot`]).
///
/// # Thread-safety contract
///
/// Counters use `Ordering::Relaxed`: increments are individually exact
/// but carry no ordering with the I/O they describe, so totals are only
/// guaranteed complete after the issuing threads have been joined (or
/// otherwise provably stopped). Experiments always read them quiescent.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    mmap_faults: AtomicU64,
    retries: AtomicU64,
    corruptions: AtomicU64,
    exhausted: AtomicU64,
}

impl IoStats {
    /// Pages physically read so far.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Pages physically written so far.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Bytes physically read so far (page-size multiples of
    /// [`IoStats::reads`] for the block stores here; mmap-backed
    /// stores count only copying reads, not zero-copy borrows).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Bytes physically written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Pages of an mmap-backed store touched for the first time (a
    /// proxy for major/minor OS page faults the mapping can incur:
    /// each first touch is where the kernel may have to fault the
    /// backing file in). Zero for copying stores. Same relaxed
    /// contract as every other counter here.
    pub fn mmap_faults(&self) -> u64 {
        self.mmap_faults.load(Ordering::Relaxed)
    }

    /// Transient-fault retries issued by the buffer pool so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Pages that failed their integrity check on read so far.
    pub fn corruptions(&self) -> u64 {
        self.corruptions.load(Ordering::Relaxed)
    }

    /// Transient-fault retry rounds that gave up (all
    /// [`crate::IO_ATTEMPTS`] attempts faulted and the error
    /// surfaced). The health signal a serving layer's circuit
    /// breaker watches: retries absorb blips, exhaustions mean the
    /// store is genuinely sick.
    pub fn exhausted(&self) -> u64 {
        self.exhausted.load(Ordering::Relaxed)
    }

    /// `(reads, writes)` snapshot.
    pub fn snapshot(&self) -> (u64, u64) {
        (self.reads(), self.writes())
    }

    pub(crate) fn bump_read(&self, bytes: usize) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn bump_write(&self, bytes: usize) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn bump_mmap_fault(&self) {
        self.mmap_faults.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_corruption(&self) {
        self.corruptions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_exhausted(&self) {
        self.exhausted.fetch_add(1, Ordering::Relaxed);
    }
}

/// A store of fixed-size pages addressed by dense `u64` ids.
pub trait BlockStore: Send + Sync {
    /// Page size in bytes (constant for the life of the store).
    fn page_size(&self) -> usize;

    /// Number of allocated pages.
    fn n_pages(&self) -> u64;

    /// Allocate a zeroed page at the end, returning its id.
    fn allocate(&self) -> Result<u64>;

    /// Read page `id` into `buf` (`buf.len() == page_size`).
    fn read_page(&self, id: u64, buf: &mut [u8]) -> Result<()>;

    /// Write `buf` to page `id`.
    fn write_page(&self, id: u64, buf: &[u8]) -> Result<()>;

    /// Borrow page `id` zero-copy, if this store can serve borrows.
    ///
    /// `Ok(None)` (the default) means the store only supports copying
    /// reads — callers fall back to [`BlockStore::read_page`].
    /// `Ok(Some(bytes))` is the page's current contents, valid for the
    /// life of the borrow; stores that return it (the mmap store)
    /// guarantee the bytes never change while the store lives, so the
    /// buffer pool can run readers directly over them without taking a
    /// frame. Errors surface exactly as `read_page`'s would (bad page
    /// id, first-touch checksum failure).
    fn page_ref(&self, _id: u64) -> Result<Option<&[u8]>> {
        Ok(None)
    }

    /// Physical I/O counters.
    fn io_stats(&self) -> &IoStats;
}

/// An in-memory block store (tests, benchmarks, and buffer-pool-miss
/// accounting without a filesystem).
pub struct MemStore {
    page_size: usize,
    pages: Mutex<Vec<Box<[u8]>>>,
    stats: IoStats,
}

impl MemStore {
    /// New empty store with the given page size.
    pub fn new(page_size: usize) -> Self {
        MemStore {
            page_size,
            pages: Mutex::new(Vec::new()),
            stats: IoStats::default(),
        }
    }
}

impl BlockStore for MemStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn n_pages(&self) -> u64 {
        self.pages.lock().len() as u64
    }

    fn allocate(&self) -> Result<u64> {
        let mut pages = self.pages.lock();
        pages.push(vec![0u8; self.page_size].into_boxed_slice());
        Ok(pages.len() as u64 - 1)
    }

    fn read_page(&self, id: u64, buf: &mut [u8]) -> Result<()> {
        let pages = self.pages.lock();
        let page = pages.get(id as usize).ok_or(CcamError::BadPage(id))?;
        buf.copy_from_slice(page);
        self.stats.bump_read(buf.len());
        Ok(())
    }

    fn write_page(&self, id: u64, buf: &[u8]) -> Result<()> {
        let mut pages = self.pages.lock();
        let page = pages.get_mut(id as usize).ok_or(CcamError::BadPage(id))?;
        page.copy_from_slice(buf);
        self.stats.bump_write(buf.len());
        Ok(())
    }

    fn io_stats(&self) -> &IoStats {
        &self.stats
    }
}

/// A file-backed block store.
///
/// The file starts with a 16-byte header — magic, format version, and
/// page size — written by [`FileStore::create`] and validated by
/// [`FileStore::open`], so opening a non-store file fails with
/// [`CcamError::Corrupt`] (or, for a store built with a different page
/// size, the typed [`CcamError::PageSizeMismatch`]) instead of
/// silently reading garbage. Pages follow the header back-to-back.
pub struct FileStore {
    page_size: usize,
    file: Mutex<File>,
    n_pages: AtomicU64,
    stats: IoStats,
}

/// File magic: `b"CCFS"` (CCam File Store).
const FILE_MAGIC: u32 = u32::from_be_bytes(*b"CCFS");
/// On-disk format version. v2 introduced the validated file header
/// (v1 files — bare page arrays — are no longer readable).
const FILE_VERSION: u16 = 2;
/// File header size in bytes; pages start at this offset.
pub(crate) const FILE_HEADER: u64 = 16;

fn encode_file_header(page_size: usize) -> [u8; FILE_HEADER as usize] {
    let mut h = [0u8; FILE_HEADER as usize];
    h[0..4].copy_from_slice(&FILE_MAGIC.to_be_bytes());
    h[4..6].copy_from_slice(&FILE_VERSION.to_be_bytes());
    // h[6..8] reserved
    h[8..12].copy_from_slice(&(page_size as u32).to_be_bytes());
    // h[12..16] reserved
    h
}

/// Validate a store file header (magic, version, page size) and the
/// page area (`len` = whole file length) against what the caller
/// expects, returning the page count. Shared by [`FileStore::open`]
/// and [`crate::MmapStore::open`] so both report identical typed
/// errors — including [`CcamError::PageSizeMismatch`] when the header
/// disagrees with the requested page size.
pub(crate) fn validate_file_header(
    header: &[u8; FILE_HEADER as usize],
    len: u64,
    page_size: usize,
) -> Result<u64> {
    let magic = u32::from_be_bytes([header[0], header[1], header[2], header[3]]);
    if magic != FILE_MAGIC {
        return Err(CcamError::Corrupt(format!(
            "bad file magic {magic:#010x}: not a ccam block store"
        )));
    }
    let version = u16::from_be_bytes([header[4], header[5]]);
    if version != FILE_VERSION {
        return Err(CcamError::Corrupt(format!(
            "unsupported store format version {version} (expected {FILE_VERSION})"
        )));
    }
    let stored_page_size = u32::from_be_bytes([header[8], header[9], header[10], header[11]]);
    if stored_page_size as usize != page_size {
        return Err(CcamError::PageSizeMismatch {
            stored: stored_page_size,
            requested: page_size,
        });
    }
    if !(len - FILE_HEADER).is_multiple_of(page_size as u64) {
        return Err(CcamError::Corrupt(format!(
            "page area of {} bytes not a multiple of page size {page_size}",
            len - FILE_HEADER
        )));
    }
    Ok((len - FILE_HEADER) / page_size as u64)
}

impl FileStore {
    /// Create (truncating) a store at `path`.
    pub fn create(path: &Path, page_size: usize) -> Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&encode_file_header(page_size))?;
        Ok(FileStore {
            page_size,
            file: Mutex::new(file),
            n_pages: AtomicU64::new(0),
            stats: IoStats::default(),
        })
    }

    /// Open an existing store at `path`, validating the file header
    /// (magic, format version, page size) against what the caller
    /// expects and the page area against the file length.
    pub fn open(path: &Path, page_size: usize) -> Result<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len < FILE_HEADER {
            return Err(CcamError::Corrupt(format!(
                "file too short ({len} bytes) to hold a store header"
            )));
        }
        let mut header = [0u8; FILE_HEADER as usize];
        file.read_exact(&mut header)?;
        let n_pages = validate_file_header(&header, len, page_size)?;
        Ok(FileStore {
            page_size,
            file: Mutex::new(file),
            n_pages: AtomicU64::new(n_pages),
            stats: IoStats::default(),
        })
    }

    fn offset(&self, id: u64) -> u64 {
        FILE_HEADER + id * self.page_size as u64
    }
}

impl BlockStore for FileStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn n_pages(&self) -> u64 {
        self.n_pages.load(Ordering::Relaxed)
    }

    fn allocate(&self) -> Result<u64> {
        let mut file = self.file.lock();
        let id = self.n_pages.fetch_add(1, Ordering::Relaxed);
        file.seek(SeekFrom::Start(self.offset(id)))?;
        file.write_all(&vec![0u8; self.page_size])?;
        Ok(id)
    }

    fn read_page(&self, id: u64, buf: &mut [u8]) -> Result<()> {
        if id >= self.n_pages() {
            return Err(CcamError::BadPage(id));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(self.offset(id)))?;
        file.read_exact(buf)?;
        self.stats.bump_read(buf.len());
        Ok(())
    }

    fn write_page(&self, id: u64, buf: &[u8]) -> Result<()> {
        if id >= self.n_pages() {
            return Err(CcamError::BadPage(id));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(self.offset(id)))?;
        file.write_all(buf)?;
        self.stats.bump_write(buf.len());
        Ok(())
    }

    fn io_stats(&self) -> &IoStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn BlockStore) {
        assert_eq!(store.n_pages(), 0);
        let p0 = store.allocate().unwrap();
        let p1 = store.allocate().unwrap();
        assert_eq!((p0, p1), (0, 1));
        assert_eq!(store.n_pages(), 2);

        let mut buf = vec![0u8; store.page_size()];
        buf[0] = 0xAB;
        buf[store.page_size() - 1] = 0xCD;
        store.write_page(1, &buf).unwrap();

        let mut out = vec![0u8; store.page_size()];
        store.read_page(1, &mut out).unwrap();
        assert_eq!(out, buf);
        store.read_page(0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));

        assert!(matches!(
            store.read_page(7, &mut out),
            Err(CcamError::BadPage(7))
        ));
        assert!(matches!(
            store.write_page(7, &buf),
            Err(CcamError::BadPage(7))
        ));

        let (r, w) = store.io_stats().snapshot();
        assert_eq!((r, w), (2, 1));
        let page = store.page_size() as u64;
        assert_eq!(store.io_stats().bytes_read(), 2 * page);
        assert_eq!(store.io_stats().bytes_written(), page);
        assert_eq!(store.io_stats().mmap_faults(), 0);
    }

    #[test]
    fn mem_store() {
        exercise(&MemStore::new(512));
    }

    #[test]
    fn file_store() {
        let dir = std::env::temp_dir().join(format!("ccam-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.db");
        exercise(&FileStore::create(&path, 512).unwrap());

        // persistence across close/open
        {
            let s = FileStore::create(&path, 512).unwrap();
            s.allocate().unwrap();
            let mut buf = vec![9u8; 512];
            buf[3] = 42;
            s.write_page(0, &buf).unwrap();
        }
        let s = FileStore::open(&path, 512).unwrap();
        assert_eq!(s.n_pages(), 1);
        let mut out = vec![0u8; 512];
        s.read_page(0, &mut out).unwrap();
        assert_eq!(out[3], 42);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_foreign_or_damaged_files() {
        let dir = std::env::temp_dir().join(format!("ccam-test-rag-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // not a store at all: junk bytes where the magic should be
        let junk = dir.join("junk.db");
        std::fs::write(&junk, [7u8; 100]).unwrap();
        assert!(matches!(
            FileStore::open(&junk, 512),
            Err(CcamError::Corrupt(_))
        ));

        // too short to even hold a header
        let short = dir.join("short.db");
        std::fs::write(&short, [0u8; 4]).unwrap();
        assert!(matches!(
            FileStore::open(&short, 512),
            Err(CcamError::Corrupt(_))
        ));

        // valid header but ragged page area
        let ragged = dir.join("ragged.db");
        let mut bytes = encode_file_header(512).to_vec();
        bytes.extend_from_slice(&[0u8; 100]);
        std::fs::write(&ragged, &bytes).unwrap();
        assert!(matches!(
            FileStore::open(&ragged, 512),
            Err(CcamError::Corrupt(_))
        ));

        // wrong format version
        let vers = dir.join("version.db");
        let mut bytes = encode_file_header(512).to_vec();
        bytes[4..6].copy_from_slice(&9u16.to_be_bytes());
        std::fs::write(&vers, &bytes).unwrap();
        assert!(matches!(
            FileStore::open(&vers, 512),
            Err(CcamError::Corrupt(_))
        ));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_mismatched_page_size() {
        let dir = std::env::temp_dir().join(format!("ccam-test-ps-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.db");
        {
            let s = FileStore::create(&path, 512).unwrap();
            s.allocate().unwrap();
        }
        // opening with the page size the file was built with works ...
        assert!(FileStore::open(&path, 512).is_ok());
        // ... but any other page size is refused up front with the
        // typed mismatch error carrying both sizes
        assert!(matches!(
            FileStore::open(&path, 1024),
            Err(CcamError::PageSizeMismatch {
                stored: 512,
                requested: 1024,
            })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
