//! Hilbert curve ordering.
//!
//! CCAM generates a one-dimensional ordering of nodes from the Hilbert
//! values of their locations (§2.2) and clusters along it. This is the
//! classic integer Hilbert transform on a `2ᵏ × 2ᵏ` grid.

use roadnet::Point;

/// Order of the Hilbert grid used for node ordering (2¹⁶ cells per
/// axis — far below a foot of spatial resolution at county scale).
pub const HILBERT_ORDER: u32 = 16;

/// Map grid coordinates `(x, y)` on a `2^order` grid to the Hilbert
/// distance.
pub fn hilbert_xy2d(order: u32, mut x: u32, mut y: u32) -> u64 {
    let n = 1u32 << order;
    debug_assert!(x < n && y < n);
    let mut rx: u32;
    let mut ry: u32;
    let mut d: u64 = 0;
    let mut s = n / 2;
    while s > 0 {
        rx = u32::from((x & s) > 0);
        ry = u32::from((y & s) > 0);
        d += u64::from(s) * u64::from(s) * u64::from((3 * rx) ^ ry);
        // rotate quadrant (canonical form: reflect within the full grid)
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Inverse of [`hilbert_xy2d`].
pub fn hilbert_d2xy(order: u32, d: u64) -> (u32, u32) {
    let n = 1u64 << order;
    let (mut x, mut y) = (0u64, 0u64);
    let mut t = d;
    let mut s = 1u64;
    while s < n {
        let rx = 1 & (t / 2);
        let ry = 1 & (t ^ rx);
        // rotate quadrant
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    (x as u32, y as u32)
}

/// The bounding-box normalization that maps points onto the Hilbert
/// grid: one frame computed over *all* points, then applied per point.
/// Factored out so the parallel bulk builder can compute keys for
/// disjoint chunks on different threads and still get bit-identical
/// keys to the serial [`hilbert_order`] pass (the frame is the only
/// shared state, and it is immutable once built).
#[derive(Debug, Clone, Copy)]
pub(crate) struct HilbertFrame {
    min_x: f64,
    min_y: f64,
    span_x: f64,
    span_y: f64,
}

impl HilbertFrame {
    /// Frame over the bounding box of `points` (`None` when empty).
    pub(crate) fn of(points: &[Point]) -> Option<Self> {
        if points.is_empty() {
            return None;
        }
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        Some(HilbertFrame {
            min_x,
            min_y,
            span_x: (max_x - min_x).max(1e-9),
            span_y: (max_y - min_y).max(1e-9),
        })
    }

    /// Hilbert key of `p` on the `2^HILBERT_ORDER` grid of this frame.
    pub(crate) fn key(&self, p: Point) -> u64 {
        let cells = f64::from((1u32 << HILBERT_ORDER) - 1);
        let gx = (((p.x - self.min_x) / self.span_x) * cells).round() as u32;
        let gy = (((p.y - self.min_y) / self.span_y) * cells).round() as u32;
        hilbert_xy2d(HILBERT_ORDER, gx, gy)
    }
}

/// Sort indices of `points` by the Hilbert value of each point within
/// the bounding box of all points.
///
/// The order is the lexicographic `(key, index)` order — ties
/// (coincident cells) break by original index — so it is **total and
/// deterministic**: the same point set yields the same permutation on
/// every run, every platform, and at every builder thread count
/// (pinned by the `order_is_deterministic_and_tie_broken_by_index`
/// property test). Downstream page packing inherits byte-identical
/// layouts from this invariant.
pub fn hilbert_order(points: &[Point]) -> Vec<usize> {
    let Some(frame) = HilbertFrame::of(points) else {
        return Vec::new();
    };
    let mut keyed: Vec<(u64, usize)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (frame.key(*p), i))
        .collect();
    // A stable sort on the explicit (key, index) pair: stability plus
    // the index component each independently guarantee the total
    // order, belt and braces, so no future change to either silently
    // reintroduces platform-dependent ties.
    keyed.sort_by_key(|&(key, index)| (key, index));
    keyed.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d2xy_round_trips() {
        for order in [2u32, 4, 8] {
            let n = 1u64 << (2 * order);
            let step = (n / 64).max(1);
            let mut d = 0;
            while d < n {
                let (x, y) = hilbert_d2xy(order, d);
                assert_eq!(hilbert_xy2d(order, x, y), d, "order {order} d {d}");
                d += step;
            }
        }
    }

    #[test]
    fn curve_is_contiguous() {
        // consecutive d values are grid neighbors (the defining
        // property of a Hilbert curve)
        let order = 4;
        for d in 0..(1u64 << (2 * order)) - 1 {
            let (x0, y0) = hilbert_d2xy(order, d);
            let (x1, y1) = hilbert_d2xy(order, d + 1);
            let dist =
                (i64::from(x0) - i64::from(x1)).abs() + (i64::from(y0) - i64::from(y1)).abs();
            assert_eq!(dist, 1, "jump at d={d}");
        }
    }

    #[test]
    fn curve_visits_every_cell_once() {
        let order = 3;
        let n = 1u64 << (2 * order);
        let mut seen = vec![false; n as usize];
        for d in 0..n {
            let (x, y) = hilbert_d2xy(order, d);
            let idx = (u64::from(y) * (1 << order) + u64::from(x)) as usize;
            assert!(!seen[idx]);
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn order_keeps_near_points_near() {
        // a line of points: hilbert order along a line should visit them
        // monotonically (either direction)
        let pts: Vec<Point> = (0..32)
            .map(|i| Point {
                x: i as f64,
                y: 0.0,
            })
            .collect();
        let order = hilbert_order(&pts);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        let increasing = order.windows(2).all(|w| w[1] > w[0]);
        let decreasing = order.windows(2).all(|w| w[1] < w[0]);
        assert!(increasing || decreasing, "{order:?}");
    }

    #[test]
    fn order_handles_degenerate_inputs() {
        assert!(hilbert_order(&[]).is_empty());
        let same = vec![Point { x: 1.0, y: 1.0 }; 5];
        let order = hilbert_order(&same);
        assert_eq!(order, vec![0, 1, 2, 3, 4]); // tie-break by index
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Random point clouds with deliberate duplicates (every point
        /// has a coin-flip chance of being a copy of an earlier one),
        /// so the tie-break path is exercised on most cases.
        fn arb_points() -> impl Strategy<Value = Vec<Point>> {
            prop::collection::vec((0.0f64..100.0, 0.0f64..100.0, 0usize..1000), 1..200).prop_map(
                |raw| {
                    let mut pts: Vec<Point> = Vec::with_capacity(raw.len());
                    for (x, y, dup) in raw {
                        if dup % 2 == 0 && !pts.is_empty() {
                            pts.push(pts[dup % pts.len()]);
                        } else {
                            pts.push(Point { x, y });
                        }
                    }
                    pts
                },
            )
        }

        proptest! {
            /// The pinned tie-breaking contract: `hilbert_order` is a
            /// permutation, sorted by `(key, index)` — equal keys keep
            /// ascending index order — and recomputing it (including
            /// from a reversed copy mapped back) reproduces the exact
            /// same permutation.
            #[test]
            fn order_is_deterministic_and_tie_broken_by_index(pts in arb_points()) {
                let order = hilbert_order(&pts);
                let mut seen = vec![false; pts.len()];
                for &i in &order {
                    prop_assert!(!seen[i], "index {i} visited twice");
                    seen[i] = true;
                }
                prop_assert!(seen.iter().all(|&s| s), "not a permutation");

                let frame = HilbertFrame::of(&pts).unwrap();
                let keys: Vec<u64> = pts.iter().map(|p| frame.key(*p)).collect();
                for w in order.windows(2) {
                    prop_assert!(
                        (keys[w[0]], w[0]) < (keys[w[1]], w[1]),
                        "(key, index) order violated at {} -> {}", w[0], w[1]
                    );
                }

                prop_assert_eq!(&order, &hilbert_order(&pts));
            }
        }
    }
}
