//! An LRU buffer pool over a [`BlockStore`].
//!
//! The paper's experiments count page accesses through a buffer; the
//! ablation `A-3` reproduces the CCAM-vs-random placement gap as
//! buffer miss counts at various pool sizes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::store::BlockStore;
use crate::Result;

/// Hit/miss counters (monotonic).
#[derive(Debug, Default)]
pub struct BufferStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl BufferStats {
    /// Logical reads served from the pool.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Logical reads that had to touch the store.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Frames evicted to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Total logical reads.
    pub fn logical_reads(&self) -> u64 {
        self.hits() + self.misses()
    }
}

struct Frame {
    data: Vec<u8>,
    stamp: u64,
    dirty: bool,
}

struct Inner {
    frames: HashMap<u64, Frame>,
    tick: u64,
}

/// A fixed-capacity LRU page cache.
///
/// Eviction scans for the minimum stamp — O(frames), which is fine for
/// the pool sizes the experiments use (tens to a few thousand frames);
/// the asymptotically-clean alternative (linked LRU) is not worth the
/// unsafe code or the extra indirection here.
pub struct BufferPool {
    store: Arc<dyn BlockStore>,
    capacity: usize,
    inner: Mutex<Inner>,
    stats: BufferStats,
}

impl BufferPool {
    /// Wrap `store` with a pool of `capacity` frames (min 1).
    pub fn new(store: Arc<dyn BlockStore>, capacity: usize) -> Self {
        BufferPool {
            store,
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                frames: HashMap::new(),
                tick: 0,
            }),
            stats: BufferStats::default(),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<dyn BlockStore> {
        &self.store
    }

    /// Pool capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> &BufferStats {
        &self.stats
    }

    /// Run `f` over the contents of page `id`, faulting it in if
    /// needed.
    pub fn with_page<R>(&self, id: u64, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;

        if let Some(frame) = inner.frames.get_mut(&id) {
            frame.stamp = tick;
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(f(&frame.data));
        }

        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let mut data = vec![0u8; self.store.page_size()];
        self.store.read_page(id, &mut data)?;
        self.evict_if_full(&mut inner)?;
        let frame = Frame {
            data,
            stamp: tick,
            dirty: false,
        };
        let r = f(&frame.data);
        inner.frames.insert(id, frame);
        Ok(r)
    }

    /// Write `data` to page `id` through the pool (write-back on
    /// eviction or [`BufferPool::flush`]).
    pub fn write_page(&self, id: u64, data: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(frame) = inner.frames.get_mut(&id) {
            frame.data.copy_from_slice(data);
            frame.stamp = tick;
            frame.dirty = true;
            return Ok(());
        }
        self.evict_if_full(&mut inner)?;
        inner.frames.insert(
            id,
            Frame {
                data: data.to_vec(),
                stamp: tick,
                dirty: true,
            },
        );
        Ok(())
    }

    /// Write all dirty frames back to the store.
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        for (id, frame) in inner.frames.iter_mut() {
            if frame.dirty {
                self.store.write_page(*id, &frame.data)?;
                frame.dirty = false;
            }
        }
        Ok(())
    }

    /// Drop every cached frame (writing dirty ones back) and reset
    /// nothing else; used between experiment runs for cold-cache
    /// measurements.
    pub fn clear(&self) -> Result<()> {
        self.flush()?;
        self.inner.lock().frames.clear();
        Ok(())
    }

    fn evict_if_full(&self, inner: &mut Inner) -> Result<()> {
        while inner.frames.len() >= self.capacity {
            let victim = inner
                .frames
                .iter()
                .min_by_key(|(_, f)| f.stamp)
                .map(|(id, _)| *id)
                .expect("pool is non-empty when full");
            let frame = inner.frames.remove(&victim).expect("victim exists");
            if frame.dirty {
                self.store.write_page(victim, &frame.data)?;
            }
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn store_with_pages(n: usize, page_size: usize) -> Arc<dyn BlockStore> {
        let s = MemStore::new(page_size);
        for i in 0..n {
            let id = s.allocate().unwrap();
            let mut buf = vec![0u8; page_size];
            buf[0] = i as u8;
            s.write_page(id, &buf).unwrap();
        }
        Arc::new(s)
    }

    #[test]
    fn hits_after_first_read() {
        let pool = BufferPool::new(store_with_pages(4, 64), 4);
        for _ in 0..3 {
            let v = pool.with_page(2, |p| p[0]).unwrap();
            assert_eq!(v, 2);
        }
        assert_eq!(pool.stats().misses(), 1);
        assert_eq!(pool.stats().hits(), 2);
    }

    #[test]
    fn lru_evicts_coldest() {
        let store = store_with_pages(3, 64);
        let pool = BufferPool::new(Arc::clone(&store), 2);
        pool.with_page(0, |_| ()).unwrap();
        pool.with_page(1, |_| ()).unwrap();
        pool.with_page(0, |_| ()).unwrap(); // 0 is now hottest
        pool.with_page(2, |_| ()).unwrap(); // evicts 1
        assert_eq!(pool.stats().evictions(), 1);
        let (reads_before, _) = store.io_stats().snapshot();
        pool.with_page(0, |_| ()).unwrap(); // still cached
        let (reads_after, _) = store.io_stats().snapshot();
        assert_eq!(reads_before, reads_after);
        pool.with_page(1, |_| ()).unwrap(); // faulted back in
        assert_eq!(pool.stats().misses(), 4);
    }

    #[test]
    fn write_back_on_flush_and_evict() {
        let store = store_with_pages(3, 64);
        let pool = BufferPool::new(Arc::clone(&store), 1);
        let mut page = vec![0u8; 64];
        page[5] = 99;
        pool.write_page(0, &page).unwrap();
        // writing another page evicts (and persists) page 0
        pool.write_page(1, &page).unwrap();
        let mut out = vec![0u8; 64];
        store.read_page(0, &mut out).unwrap();
        assert_eq!(out[5], 99);
        // flush persists the remaining dirty frame
        pool.flush().unwrap();
        store.read_page(1, &mut out).unwrap();
        assert_eq!(out[5], 99);
    }

    #[test]
    fn clear_resets_cache_not_counters() {
        let pool = BufferPool::new(store_with_pages(2, 64), 2);
        pool.with_page(0, |_| ()).unwrap();
        pool.clear().unwrap();
        pool.with_page(0, |_| ()).unwrap();
        assert_eq!(pool.stats().misses(), 2);
        assert_eq!(pool.stats().hits(), 0);
    }

    #[test]
    fn capacity_minimum_is_one() {
        let pool = BufferPool::new(store_with_pages(2, 64), 0);
        assert_eq!(pool.capacity(), 1);
        pool.with_page(0, |_| ()).unwrap();
        pool.with_page(1, |_| ()).unwrap();
        assert_eq!(pool.stats().evictions(), 1);
    }
}
