//! A sharded LRU buffer pool over a [`BlockStore`].
//!
//! The paper's experiments count page accesses through a buffer; the
//! ablation `A-3` reproduces the CCAM-vs-random placement gap as
//! buffer miss counts at various pool sizes.
//!
//! # Safety
//!
//! This module is 100% safe code — the workspace denies
//! `unsafe_code`, so the claim is compiler-enforced, not an audit
//! note. The only `unsafe` in the workspace lives in two audited
//! leaf modules, each under `#[deny(unsafe_op_in_unsafe_fn)]` with
//! per-site `SAFETY:` justifications: `fp-bench`'s `GlobalAlloc`
//! wrapper and this crate's [`mmap`](crate::MmapStore) syscall shim.
//!
//! # Zero-copy serving
//!
//! A store that can serve borrowed pages
//! ([`BlockStore::page_ref`] — the mmap store) short-circuits the
//! framing machinery: [`BufferPool::with_page`] runs the reader
//! directly over the mapped bytes, holding no frame at all, counted in
//! [`BufferStats::mapped`] (neither a hit nor a miss — the OS page
//! cache is the buffer there). Cached frames still win first, so a
//! page written through the pool is always read back coherently.
//!
//! # Concurrency
//!
//! The pool is split into up to [`MAX_SHARDS`] independent shards, each
//! a `Mutex<HashMap>` with its own LRU clock and its own slice of the
//! frame budget; a page's shard is a hash of its id. Concurrent
//! readers (the batch query driver running over a disk-backed
//! [`NetworkSource`](roadnet::NetworkSource)) therefore serialize only
//! when they touch the same shard at the same moment, not on every
//! page access the way the old single global mutex forced.
//!
//! Sharding only engages when each shard would hold at least
//! [`MIN_FRAMES_PER_SHARD`] frames. Small pools — everything ablation
//! A-3 sweeps — keep the single global LRU and therefore *bit-identical*
//! hit/miss/eviction sequences to the pre-sharding pool; large pools
//! trade exact global LRU order for per-shard LRU (every logical read
//! is still exactly one hit or one miss, so the accounting stays
//! exact — only the eviction victim choice differs).
//!
//! # Readahead
//!
//! [`BufferPool::set_readahead`] arms a readahead hook: a miss on page
//! `p` also faults in the next `k` page ids. CCAM packs data pages in
//! Hilbert order, so successive page ids are spatially adjacent — a
//! query walking a neighborhood pulls its next pages into the pool
//! before it asks for them. Readahead fetches are tallied separately
//! (neither hits nor misses, so A-3's demand-fault accounting is
//! unchanged when the hook is off, the default), never block (a shard
//! that is busy right now is simply skipped), and never displace the
//! demand working set (a prefetch only takes a free frame or recycles
//! an earlier prefetch that was never demanded).
//!
//! # Fault handling
//!
//! Every physical read and write the pool issues goes through bounded
//! retry-with-backoff ([`IO_ATTEMPTS`]): transient faults — injected
//! by a [`FaultInjectingStore`](crate::FaultInjectingStore) or an
//! OS-interrupted syscall — are absorbed invisibly (counted in
//! [`IoStats::retries`](crate::IoStats::retries)), while permanent
//! failures such as a checksum mismatch
//! ([`CcamError::Corruption`](crate::CcamError::Corruption)) propagate
//! immediately. Readahead is the one exception: a speculative read
//! that fails is simply skipped — the demand read that actually needs
//! the page will retry and report.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::store::BlockStore;
use crate::Result;

/// Hard cap on the number of shards.
pub const MAX_SHARDS: usize = 16;

/// Attempts per physical page I/O (one initial try plus retries)
/// before a transient fault is surfaced to the caller. Transient
/// faults ([`CcamError::is_transient`](crate::CcamError::is_transient))
/// are retried with exponential backoff and tallied in
/// [`IoStats::retries`](crate::IoStats::retries); permanent failures —
/// corruption above all — are never retried.
pub const IO_ATTEMPTS: usize = 4;

/// A shard must be worth at least this many frames, or the pool stays
/// coarser-grained. Keeps per-shard LRU faithful to global LRU for the
/// small pools the paper's experiments sweep (8–512 frames).
pub const MIN_FRAMES_PER_SHARD: usize = 64;

/// Hit/miss counters (monotonic).
///
/// # Thread-safety contract
///
/// All counters are `Ordering::Relaxed` atomics: each increment is
/// individually exact, but a reader racing live writers may see, e.g.,
/// a hit that its paired logical read hasn't "completed" elsewhere.
/// Invariants like `hits + misses == logical reads issued` therefore
/// hold only for *quiescent* reads — after the accessing threads have
/// been joined (thread join provides the happens-before) or otherwise
/// provably stopped. Every test and experiment reads them that way.
#[derive(Debug, Default)]
pub struct BufferStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    readaheads: AtomicU64,
    mapped: AtomicU64,
}

impl BufferStats {
    /// Logical reads served from the pool.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Logical reads that had to touch the store.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Frames evicted to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Pages speculatively faulted in by the readahead hook (not
    /// counted as hits or misses; always 0 with readahead off).
    pub fn readaheads(&self) -> u64 {
        self.readaheads.load(Ordering::Relaxed)
    }

    /// Logical reads served zero-copy from a mapped store
    /// ([`crate::BlockStore::page_ref`]), occupying no frame. Counted
    /// separately from hits and misses: `hits + misses` remains the
    /// frame-cache accounting identity, and mapped serves are where
    /// the OS page cache — not this pool — is the buffer.
    pub fn mapped(&self) -> u64 {
        self.mapped.load(Ordering::Relaxed)
    }

    /// Total logical reads through frames (excludes [`mapped`]
    /// zero-copy serves).
    ///
    /// [`mapped`]: BufferStats::mapped
    pub fn logical_reads(&self) -> u64 {
        self.hits() + self.misses()
    }
}

struct Frame {
    data: Vec<u8>,
    stamp: u64,
    dirty: bool,
    /// `false` while the frame only exists because readahead guessed
    /// it would be wanted; flips on the first demand access. Demand
    /// eviction prefers un-demanded frames on stamp ties, and
    /// readahead itself may only recycle un-demanded frames.
    demanded: bool,
}

struct Inner {
    frames: HashMap<u64, Frame>,
    tick: u64,
}

struct Shard {
    inner: Mutex<Inner>,
    capacity: usize,
}

/// A fixed-capacity sharded LRU page cache.
///
/// Eviction scans the shard for the minimum stamp — O(shard frames),
/// which is fine for the pool sizes the experiments use (tens to a few
/// thousand frames); the asymptotically-clean alternative (linked LRU)
/// is not worth the unsafe code or the extra indirection here.
pub struct BufferPool {
    store: Arc<dyn BlockStore>,
    capacity: usize,
    shards: Vec<Shard>,
    /// `shard = hash(id) >> shard_shift`; 64 means "always shard 0".
    shard_shift: u32,
    /// Pages to fault in after each demand miss (0 = off).
    readahead: AtomicUsize,
    /// Counter feeding the seeded retry-backoff jitter stream; its
    /// initial value is the seed ([`BufferPool::set_retry_seed`]).
    retry_noise: AtomicU64,
    stats: BufferStats,
}

impl BufferPool {
    /// Wrap `store` with a pool of `capacity` frames (min 1), sharded
    /// as finely as [`MIN_FRAMES_PER_SHARD`] allows.
    pub fn new(store: Arc<dyn BlockStore>, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut shards = 1usize;
        while shards * 2 <= MAX_SHARDS && capacity / (shards * 2) >= MIN_FRAMES_PER_SHARD {
            shards *= 2;
        }
        Self::with_shards(store, capacity, shards)
    }

    /// Wrap `store` with an explicit shard count (rounded to the next
    /// power of two, capped at [`MAX_SHARDS`] and at `capacity`).
    /// `BufferPool::new` picks this automatically; tests and benchmarks
    /// use the explicit form.
    pub fn with_shards(store: Arc<dyn BlockStore>, capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let n = shards
            .next_power_of_two()
            .clamp(1, MAX_SHARDS)
            .min(capacity.next_power_of_two());
        let shards = (0..n)
            .map(|i| Shard {
                inner: Mutex::new(Inner {
                    frames: HashMap::new(),
                    tick: 0,
                }),
                // Distribute the budget exactly: base share plus one of
                // the remainder frames for the first `capacity % n`.
                capacity: (capacity / n + usize::from(i < capacity % n)).max(1),
            })
            .collect();
        BufferPool {
            store,
            capacity,
            shards,
            shard_shift: 64 - n.trailing_zeros(),
            readahead: AtomicUsize::new(0),
            retry_noise: AtomicU64::new(0),
            stats: BufferStats::default(),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<dyn BlockStore> {
        &self.store
    }

    /// Pool capacity in frames (summed across shards).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of shards the pool was split into.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> &BufferStats {
        &self.stats
    }

    /// Arm (or disarm, with 0) the readahead hook: each demand miss on
    /// page `p` also faults in pages `p+1..=p+k` that exist and aren't
    /// already cached. Off by default so demand-fault accounting stays
    /// exactly comparable across experiments.
    pub fn set_readahead(&self, pages: usize) {
        self.readahead.store(pages, Ordering::Relaxed);
    }

    /// Current readahead window (pages per demand miss; 0 = off).
    pub fn readahead(&self) -> usize {
        self.readahead.load(Ordering::Relaxed)
    }

    fn shard_of(&self, id: u64) -> &Shard {
        if self.shard_shift >= 64 {
            return &self.shards[0];
        }
        let h = id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shard_shift;
        &self.shards[h as usize]
    }

    /// Run one physical I/O, absorbing transient faults with up to
    /// [`IO_ATTEMPTS`]` - 1` retries (exponential backoff, starting at
    /// 20µs, plus seeded jitter of up to half the base delay — see
    /// [`BufferPool::set_retry_seed`]). Each retry bumps the store's
    /// `retries` counter; a transient fault that survives every
    /// attempt bumps `exhausted` (the health signal a serving layer's
    /// circuit breaker watches) before surfacing; permanent errors
    /// (corruption, bad page ids) pass straight through.
    fn io_with_retry(&self, mut op: impl FnMut() -> Result<()>) -> Result<()> {
        let mut attempt = 0usize;
        loop {
            match op() {
                Ok(()) => return Ok(()),
                Err(e) if e.is_transient() && attempt + 1 < IO_ATTEMPTS => {
                    attempt += 1;
                    self.store.io_stats().bump_retry();
                    // Jitter decorrelates concurrent workers: during a
                    // fault storm every pool thread trips its retry
                    // loop at once, and pure `base << attempt` backoff
                    // would march them into the store in lockstep,
                    // re-colliding on every round. The jitter stream
                    // is seeded (SplitMix64 over a shared counter), so
                    // a run's delays are reproducible given the seed
                    // and the retry interleaving.
                    let base = 20u64 << attempt;
                    let n = self.retry_noise.fetch_add(1, Ordering::Relaxed);
                    let jitter = crate::fault::splitmix64(n) % (base / 2 + 1);
                    std::thread::sleep(Duration::from_micros(base + jitter));
                }
                Err(e) => {
                    if e.is_transient() {
                        self.store.io_stats().bump_exhausted();
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Seed the retry-backoff jitter stream. The default seed is 0;
    /// the stream advances by one per retry, pool-wide.
    pub fn set_retry_seed(&self, seed: u64) {
        self.retry_noise.store(seed, Ordering::Relaxed);
    }

    /// Run `f` over the contents of page `id`, faulting it in if
    /// needed.
    pub fn with_page<R>(&self, id: u64, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let shard = self.shard_of(id);
        let r = {
            let mut inner = shard.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;

            if let Some(frame) = inner.frames.get_mut(&id) {
                frame.stamp = tick;
                frame.demanded = true;
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(f(&frame.data));
            }

            // Zero-copy path: a mapped store serves the page as a
            // borrow — no frame, no copy, no readahead (the OS does
            // its own). Checked only after the frame map so a page
            // written through the pool is always read back from its
            // (possibly dirty) frame, never from the mapping.
            if let Some(bytes) = self.store.page_ref(id)? {
                self.stats.mapped.fetch_add(1, Ordering::Relaxed);
                return Ok(f(bytes));
            }

            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            let mut data = vec![0u8; self.store.page_size()];
            self.io_with_retry(|| self.store.read_page(id, &mut data))?;
            self.evict_if_full(shard.capacity, &mut inner)?;
            let frame = Frame {
                data,
                stamp: tick,
                dirty: false,
                demanded: true,
            };
            let r = f(&frame.data);
            inner.frames.insert(id, frame);
            r
        };
        // Readahead runs after the demand shard's lock is released so
        // a pair of concurrent faulting readers can never hold one
        // shard while waiting on another.
        let window = self.readahead();
        if window > 0 {
            self.readahead_after(id, window);
        }
        Ok(r)
    }

    /// Speculatively fault in up to `window` pages following `id`.
    /// Readahead is a hint, never a cost: shards momentarily locked by
    /// another thread are skipped, a page whose read fails (even
    /// permanently) is skipped without retry or error — the demand read
    /// that actually needs it will retry and report — and a prefetch
    /// may only take a free frame or recycle an earlier prefetch that
    /// was never demanded, never displacing the demand working set.
    fn readahead_after(&self, id: u64, window: usize) {
        let n_pages = self.store.n_pages();
        for next in (id + 1)..=(id + window as u64) {
            if next >= n_pages {
                break;
            }
            let shard = self.shard_of(next);
            let Some(mut inner) = shard.inner.try_lock() else {
                continue;
            };
            if inner.frames.contains_key(&next) {
                continue;
            }
            if inner.frames.len() >= shard.capacity {
                // Recycle the stalest never-demanded prefetch, if any.
                let Some(victim) = inner
                    .frames
                    .iter()
                    .filter(|(_, f)| !f.demanded)
                    .min_by_key(|(vid, f)| (f.stamp, **vid))
                    .map(|(vid, _)| *vid)
                else {
                    continue;
                };
                // Never-demanded frames are never written through, so
                // there is nothing to write back.
                inner.frames.remove(&victim);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
            let mut data = vec![0u8; self.store.page_size()];
            if self.store.read_page(next, &mut data).is_err() {
                continue;
            }
            // Does NOT advance the LRU clock: the prefetched frame
            // inherits the triggering miss's recency.
            let stamp = inner.tick;
            inner.frames.insert(
                next,
                Frame {
                    data,
                    stamp,
                    dirty: false,
                    demanded: false,
                },
            );
            self.stats.readaheads.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Write `data` to page `id` through the pool (write-back on
    /// eviction or [`BufferPool::flush`]).
    pub fn write_page(&self, id: u64, data: &[u8]) -> Result<()> {
        let shard = self.shard_of(id);
        let mut inner = shard.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(frame) = inner.frames.get_mut(&id) {
            frame.data.copy_from_slice(data);
            frame.stamp = tick;
            frame.dirty = true;
            frame.demanded = true;
            return Ok(());
        }
        self.evict_if_full(shard.capacity, &mut inner)?;
        inner.frames.insert(
            id,
            Frame {
                data: data.to_vec(),
                stamp: tick,
                dirty: true,
                demanded: true,
            },
        );
        Ok(())
    }

    /// Write all dirty frames back to the store (transient write
    /// faults absorbed by bounded retry).
    pub fn flush(&self) -> Result<()> {
        for shard in &self.shards {
            let mut inner = shard.inner.lock();
            for (id, frame) in inner.frames.iter_mut() {
                if frame.dirty {
                    self.io_with_retry(|| self.store.write_page(*id, &frame.data))?;
                    frame.dirty = false;
                }
            }
        }
        Ok(())
    }

    /// Drop every cached frame (writing dirty ones back) and reset
    /// nothing else; used between experiment runs for cold-cache
    /// measurements.
    pub fn clear(&self) -> Result<()> {
        self.flush()?;
        for shard in &self.shards {
            shard.inner.lock().frames.clear();
        }
        Ok(())
    }

    fn evict_if_full(&self, capacity: usize, inner: &mut Inner) -> Result<()> {
        while inner.frames.len() >= capacity {
            // Deterministic victim: oldest stamp, never-demanded frames
            // before demanded ones on ties (a prefetch shares the stamp
            // of the miss that triggered it), page id as final
            // tie-break. Demand stamps are unique per shard, so with
            // readahead off this is exactly the seed pool's pure-LRU
            // choice.
            let Some(victim) = inner
                .frames
                .iter()
                .min_by_key(|(id, f)| (f.stamp, f.demanded, **id))
                .map(|(id, _)| *id)
            else {
                break; // unreachable: len >= capacity >= 1
            };
            let Some(frame) = inner.frames.remove(&victim) else {
                break;
            };
            if frame.dirty {
                // Keep the frame on write-back failure: the data is
                // still only in memory, so losing it silently is worse
                // than reporting a full pool.
                if let Err(e) = self.io_with_retry(|| self.store.write_page(victim, &frame.data)) {
                    inner.frames.insert(victim, frame);
                    return Err(e);
                }
            }
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn store_with_pages(n: usize, page_size: usize) -> Arc<dyn BlockStore> {
        let s = MemStore::new(page_size);
        for i in 0..n {
            let id = s.allocate().unwrap();
            let mut buf = vec![0u8; page_size];
            buf[0] = i as u8;
            s.write_page(id, &buf).unwrap();
        }
        Arc::new(s)
    }

    #[test]
    fn hits_after_first_read() {
        let pool = BufferPool::new(store_with_pages(4, 64), 4);
        for _ in 0..3 {
            let v = pool.with_page(2, |p| p[0]).unwrap();
            assert_eq!(v, 2);
        }
        assert_eq!(pool.stats().misses(), 1);
        assert_eq!(pool.stats().hits(), 2);
    }

    #[test]
    fn lru_evicts_coldest() {
        let store = store_with_pages(3, 64);
        let pool = BufferPool::new(Arc::clone(&store), 2);
        pool.with_page(0, |_| ()).unwrap();
        pool.with_page(1, |_| ()).unwrap();
        pool.with_page(0, |_| ()).unwrap(); // 0 is now hottest
        pool.with_page(2, |_| ()).unwrap(); // evicts 1
        assert_eq!(pool.stats().evictions(), 1);
        let (reads_before, _) = store.io_stats().snapshot();
        pool.with_page(0, |_| ()).unwrap(); // still cached
        let (reads_after, _) = store.io_stats().snapshot();
        assert_eq!(reads_before, reads_after);
        pool.with_page(1, |_| ()).unwrap(); // faulted back in
        assert_eq!(pool.stats().misses(), 4);
    }

    #[test]
    fn write_back_on_flush_and_evict() {
        let store = store_with_pages(3, 64);
        let pool = BufferPool::new(Arc::clone(&store), 1);
        let mut page = vec![0u8; 64];
        page[5] = 99;
        pool.write_page(0, &page).unwrap();
        // writing another page evicts (and persists) page 0
        pool.write_page(1, &page).unwrap();
        let mut out = vec![0u8; 64];
        store.read_page(0, &mut out).unwrap();
        assert_eq!(out[5], 99);
        // flush persists the remaining dirty frame
        pool.flush().unwrap();
        store.read_page(1, &mut out).unwrap();
        assert_eq!(out[5], 99);
    }

    #[test]
    fn clear_resets_cache_not_counters() {
        let pool = BufferPool::new(store_with_pages(2, 64), 2);
        pool.with_page(0, |_| ()).unwrap();
        pool.clear().unwrap();
        pool.with_page(0, |_| ()).unwrap();
        assert_eq!(pool.stats().misses(), 2);
        assert_eq!(pool.stats().hits(), 0);
    }

    #[test]
    fn capacity_minimum_is_one() {
        let pool = BufferPool::new(store_with_pages(2, 64), 0);
        assert_eq!(pool.capacity(), 1);
        pool.with_page(0, |_| ()).unwrap();
        pool.with_page(1, |_| ()).unwrap();
        assert_eq!(pool.stats().evictions(), 1);
    }

    #[test]
    fn shard_count_scales_with_capacity() {
        let store = store_with_pages(2, 64);
        // below the threshold: single shard, seed-identical behaviour
        assert_eq!(BufferPool::new(Arc::clone(&store), 8).n_shards(), 1);
        assert_eq!(BufferPool::new(Arc::clone(&store), 127).n_shards(), 1);
        assert_eq!(BufferPool::new(Arc::clone(&store), 128).n_shards(), 2);
        assert_eq!(BufferPool::new(Arc::clone(&store), 512).n_shards(), 8);
        assert_eq!(BufferPool::new(Arc::clone(&store), 4096).n_shards(), 16);
        // explicit shard count is honoured (rounded to a power of two)
        let p = BufferPool::with_shards(Arc::clone(&store), 64, 5);
        assert_eq!(p.n_shards(), 8);
        // capacity is exactly preserved across shards
        let p = BufferPool::with_shards(store, 67, 4);
        assert_eq!(p.n_shards(), 4);
        assert_eq!(p.capacity(), 67);
    }

    #[test]
    fn sharded_pool_serves_correct_data_and_exact_accounting() {
        let n = 64;
        let pool = BufferPool::with_shards(store_with_pages(n, 64), 32, 8);
        assert_eq!(pool.n_shards(), 8);
        // two passes over every page: second pass may hit or miss
        // depending on per-shard eviction, but accounting stays exact
        let mut logical = 0u64;
        for _ in 0..2 {
            for id in 0..n as u64 {
                let v = pool.with_page(id, |p| p[0]).unwrap();
                assert_eq!(v, id as u8);
                logical += 1;
            }
        }
        let s = pool.stats();
        assert_eq!(s.hits() + s.misses(), logical);
        assert_eq!(s.logical_reads(), logical);
        assert_eq!(s.readaheads(), 0);
    }

    #[test]
    fn readahead_faults_following_pages() {
        let store = store_with_pages(8, 64);
        let pool = BufferPool::new(Arc::clone(&store), 8);
        pool.set_readahead(2);
        assert_eq!(pool.readahead(), 2);
        pool.with_page(0, |_| ()).unwrap(); // miss, prefetches 1 and 2
        assert_eq!(pool.stats().misses(), 1);
        assert_eq!(pool.stats().readaheads(), 2);
        let (physical, _) = store.io_stats().snapshot();
        // demanding a prefetched page is a hit with no new physical read
        pool.with_page(1, |p| assert_eq!(p[0], 1)).unwrap();
        pool.with_page(2, |p| assert_eq!(p[0], 2)).unwrap();
        assert_eq!(pool.stats().hits(), 2);
        assert_eq!(pool.stats().misses(), 1);
        assert_eq!(store.io_stats().snapshot().0, physical);
        // readahead stops at the end of the store
        pool.set_readahead(100);
        pool.with_page(6, |_| ()).unwrap();
        assert_eq!(pool.stats().readaheads(), 3); // only page 7 exists
    }

    #[test]
    fn concurrent_readers_exact_accounting() {
        // Many threads hammer a sharded pool with interleaved page
        // sets; after joining, every read must have returned the right
        // bytes and hits + misses must equal the logical reads issued.
        let n_pages = 64usize;
        let n_threads = 8usize;
        let reads_per_thread = 500usize;
        let pool = Arc::new(BufferPool::with_shards(
            store_with_pages(n_pages, 64),
            16,
            8,
        ));
        pool.set_readahead(2);
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    // deterministic per-thread LCG walk over the pages
                    let mut x = t as u64 + 1;
                    for _ in 0..reads_per_thread {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let id = x % n_pages as u64;
                        let v = pool.with_page(id, |p| p[0]).unwrap();
                        assert_eq!(v, id as u8);
                    }
                });
            }
        });
        let s = pool.stats();
        assert_eq!(
            s.hits() + s.misses(),
            (n_threads * reads_per_thread) as u64,
            "hits {} + misses {} must equal logical reads",
            s.hits(),
            s.misses()
        );
    }

    #[test]
    fn transient_read_faults_are_absorbed_by_retry() {
        use crate::fault::{FaultInjectingStore, FaultPlan};
        let raw = MemStore::new(64);
        for i in 0..8 {
            let id = raw.allocate().unwrap();
            let mut buf = vec![0u8; 64];
            buf[0] = i as u8;
            raw.write_page(id, &buf).unwrap();
        }
        let store = Arc::new(FaultInjectingStore::new(
            Arc::new(raw),
            FaultPlan::quiet(42).with_transient_reads(3),
        ));
        let pool = BufferPool::new(Arc::clone(&store) as Arc<dyn BlockStore>, 2);
        // small pool => constant demand misses => plenty of scheduled
        // faults, every one absorbed
        for round in 0..10 {
            for id in 0..8u64 {
                let v = pool.with_page(id, |p| p[0]).unwrap();
                assert_eq!(v, id as u8, "round {round}");
            }
        }
        assert!(store.n_faults() > 0, "schedule never fired");
        assert_eq!(
            store.io_stats().retries(),
            store.n_faults() as u64,
            "every injected transient fault cost exactly one retry"
        );
    }

    #[test]
    fn retry_exhaustion_surfaces_the_transient_error() {
        use crate::fault::{FaultInjectingStore, FaultPlan};
        let raw = MemStore::new(64);
        raw.allocate().unwrap();
        let store = Arc::new(FaultInjectingStore::new(
            Arc::new(raw),
            FaultPlan::quiet(1).with_transient_reads(1), // every read faults
        ));
        let pool = BufferPool::new(Arc::clone(&store) as Arc<dyn BlockStore>, 2);
        let err = pool.with_page(0, |_| ()).unwrap_err();
        assert!(err.is_transient(), "{err:?}");
        assert_eq!(store.io_stats().retries(), (IO_ATTEMPTS - 1) as u64);
        assert_eq!(store.n_faults(), IO_ATTEMPTS);
    }

    #[test]
    fn exhausted_counts_surfaced_transients_only() {
        use crate::fault::{FaultInjectingStore, FaultPlan};
        let raw = MemStore::new(64);
        raw.allocate().unwrap();
        // every 3rd read faults: always absorbed, never exhausted
        let absorbed = Arc::new(FaultInjectingStore::new(
            Arc::new(raw),
            FaultPlan::quiet(9).with_transient_reads(3),
        ));
        let pool = BufferPool::new(Arc::clone(&absorbed) as Arc<dyn BlockStore>, 1);
        for _ in 0..20 {
            pool.clear().unwrap(); // force physical reads
            pool.with_page(0, |_| ()).unwrap();
        }
        assert!(absorbed.n_faults() > 0);
        assert_eq!(absorbed.io_stats().exhausted(), 0);

        // every read faults: each attempt round gives up exactly once
        let raw = MemStore::new(64);
        raw.allocate().unwrap();
        let sick = Arc::new(FaultInjectingStore::new(
            Arc::new(raw),
            FaultPlan::quiet(1).with_transient_reads(1),
        ));
        let pool = BufferPool::new(Arc::clone(&sick) as Arc<dyn BlockStore>, 1);
        for _ in 0..3 {
            pool.with_page(0, |_| ()).unwrap_err();
        }
        assert_eq!(sick.io_stats().exhausted(), 3);
    }

    #[test]
    fn retry_jitter_is_seeded_and_bounded() {
        // The jitter stream itself: reproducible from the seed, and
        // never more than half the base delay (contract documented on
        // io_with_retry). Checked directly on the mixer because sleep
        // timings are not observable deterministically.
        for seed in [0u64, 7, 99] {
            for attempt in 1..IO_ATTEMPTS as u64 {
                let base = 20u64 << attempt;
                let a = crate::fault::splitmix64(seed) % (base / 2 + 1);
                let b = crate::fault::splitmix64(seed) % (base / 2 + 1);
                assert_eq!(a, b);
                assert!(a <= base / 2);
            }
        }
    }

    #[test]
    fn corruption_is_never_retried() {
        use crate::integrity::ChecksummedStore;
        let raw = Arc::new(MemStore::new(64));
        let checked = Arc::new(ChecksummedStore::new(
            Arc::clone(&raw) as Arc<dyn BlockStore>
        ));
        let id = checked.allocate().unwrap();
        // corrupt the raw page under the checksum layer
        let mut full = vec![0u8; 64];
        raw.read_page(id, &mut full).unwrap();
        full[20] ^= 0x10;
        raw.write_page(id, &full).unwrap();
        let pool = BufferPool::new(Arc::clone(&checked) as Arc<dyn BlockStore>, 2);
        let err = pool.with_page(id, |_| ()).unwrap_err();
        assert!(
            matches!(err, crate::CcamError::Corruption { .. }),
            "{err:?}"
        );
        assert_eq!(checked.io_stats().retries(), 0, "corruption must not retry");
        assert_eq!(checked.io_stats().corruptions(), 1);
    }

    #[cfg(unix)]
    #[test]
    fn mapped_store_serves_zero_copy_without_frames() {
        use crate::MmapStore;
        let dir = std::env::temp_dir().join(format!("ccam-pool-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.db");
        {
            let s = crate::FileStore::create(&path, 64).unwrap();
            for i in 0..8 {
                let id = s.allocate().unwrap();
                s.write_page(id, &[i as u8; 64]).unwrap();
            }
        }
        let store: Arc<dyn BlockStore> = Arc::new(MmapStore::open(&path, 64).unwrap());
        let pool = BufferPool::new(Arc::clone(&store), 4);
        for _ in 0..3 {
            for id in 0..8u64 {
                let v = pool.with_page(id, |p| p[0]).unwrap();
                assert_eq!(v, id as u8);
            }
        }
        // every read was served from the mapping: no frames, no
        // hits/misses, no evictions — and first touches counted once
        assert_eq!(pool.stats().mapped(), 24);
        assert_eq!(pool.stats().hits(), 0);
        assert_eq!(pool.stats().misses(), 0);
        assert_eq!(pool.stats().evictions(), 0);
        assert_eq!(store.io_stats().mmap_faults(), 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn readahead_pages_evict_before_demanded_pages() {
        let store = store_with_pages(8, 64);
        let pool = BufferPool::with_shards(Arc::clone(&store), 2, 1);
        pool.set_readahead(1);
        pool.with_page(0, |_| ()).unwrap(); // faults 0, prefetches 1
        pool.with_page(3, |_| ()).unwrap(); // pool full: must evict
                                            // page 1 (prefetched, stale stamp) is the victim, not page 0
        let (physical, _) = store.io_stats().snapshot();
        pool.with_page(0, |_| ()).unwrap();
        assert_eq!(
            store.io_stats().snapshot().0,
            physical,
            "page 0 stayed cached"
        );
    }
}
