//! Binary encoding of node records.
//!
//! Per §2.2, the stored information for node `nᵢ` is its location plus
//! its adjacency list, each neighbor with the segment distance and the
//! speed pattern. Layout (little-endian):
//!
//! ```text
//! id: u32 | x: f64 | y: f64 | n_edges: u16
//! per edge: to: u32 | distance: f64 | class: u8 | pattern: u16
//! ```

use bytes::{Buf, BufMut};
use roadnet::{Edge, NodeId, PatternId, Point};
use traffic::RoadClass;

use crate::{CcamError, Result};

/// One adjacency entry of a stored node record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeRecord {
    /// Neighbor node id.
    pub to: NodeId,
    /// Segment length, miles.
    pub distance: f64,
    /// Road class.
    pub class: RoadClass,
    /// Speed pattern id.
    pub pattern: PatternId,
}

impl From<&Edge> for EdgeRecord {
    fn from(e: &Edge) -> Self {
        EdgeRecord {
            to: e.to,
            distance: e.distance,
            class: e.class,
            pattern: e.pattern,
        }
    }
}

impl From<&EdgeRecord> for Edge {
    fn from(r: &EdgeRecord) -> Self {
        Edge {
            to: r.to,
            distance: r.distance,
            class: r.class,
            pattern: r.pattern,
        }
    }
}

/// The stored form of one network node: `infoᵢ` in the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRecord {
    /// The node's id.
    pub id: NodeId,
    /// The node's location.
    pub loc: Point,
    /// Outgoing edges.
    pub edges: Vec<EdgeRecord>,
}

impl NodeRecord {
    /// Encoded size in bytes of a record with `n_edges` adjacency
    /// entries — computable without materializing the record, which is
    /// how the partitioner and the bulk builder budget pages.
    pub fn encoded_len_for(n_edges: usize) -> usize {
        4 + 8 + 8 + 2 + n_edges * (4 + 8 + 1 + 2)
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        Self::encoded_len_for(self.edges.len())
    }

    /// Append the binary encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.reserve(self.encoded_len());
        out.put_u32_le(self.id.0);
        out.put_f64_le(self.loc.x);
        out.put_f64_le(self.loc.y);
        out.put_u16_le(self.edges.len() as u16);
        for e in &self.edges {
            out.put_u32_le(e.to.0);
            out.put_f64_le(e.distance);
            out.put_u8(e.class.index() as u8);
            out.put_u16_le(e.pattern.0);
        }
    }

    /// Decode only the location of a record, skipping its adjacency
    /// list — the fast path behind `find_node`, which the engine calls
    /// once per candidate edge and which needs neither the edges nor
    /// their allocation.
    pub fn decode_loc(buf: &[u8]) -> Result<Point> {
        if buf.len() < 4 + 8 + 8 + 2 {
            return Err(CcamError::Corrupt("truncated node record".into()));
        }
        Ok(Point {
            x: read_f64_at(buf, 4),
            y: read_f64_at(buf, 12),
        })
    }

    /// Decode a record's adjacency list directly into `out` (cleared
    /// first) as network-layer [`Edge`]s, skipping the intermediate
    /// [`EdgeRecord`] vector — the fast path behind `successors_into`,
    /// whose caller reuses `out` across expansions. Validates exactly
    /// what [`decode`](Self::decode) validates.
    pub fn decode_edges_into(mut buf: &[u8], out: &mut Vec<Edge>) -> Result<()> {
        out.clear();
        let need = |n: usize, buf: &[u8]| -> Result<()> {
            if buf.remaining() < n {
                Err(CcamError::Corrupt("truncated node record".into()))
            } else {
                Ok(())
            }
        };
        need(4 + 8 + 8 + 2, buf)?;
        buf.advance(4 + 8 + 8);
        let n = buf.get_u16_le() as usize;
        out.reserve(n);
        for _ in 0..n {
            need(4 + 8 + 1 + 2, buf)?;
            let to = NodeId(buf.get_u32_le());
            let distance = buf.get_f64_le();
            let class_idx = buf.get_u8();
            let class = RoadClass::from_index(usize::from(class_idx))
                .ok_or_else(|| CcamError::Corrupt(format!("bad road class index {class_idx}")))?;
            let pattern = PatternId(buf.get_u16_le());
            out.push(Edge {
                to,
                distance,
                class,
                pattern,
            });
        }
        if buf.has_remaining() {
            return Err(CcamError::Corrupt(format!(
                "{} trailing bytes after node record",
                buf.remaining()
            )));
        }
        Ok(())
    }

    /// Decode a record from `buf` (must consume it exactly).
    pub fn decode(mut buf: &[u8]) -> Result<NodeRecord> {
        let need = |n: usize, buf: &[u8]| -> Result<()> {
            if buf.remaining() < n {
                Err(CcamError::Corrupt("truncated node record".into()))
            } else {
                Ok(())
            }
        };
        need(4 + 8 + 8 + 2, buf)?;
        let id = NodeId(buf.get_u32_le());
        let x = buf.get_f64_le();
        let y = buf.get_f64_le();
        let n = buf.get_u16_le() as usize;
        let mut edges = Vec::with_capacity(n);
        for _ in 0..n {
            need(4 + 8 + 1 + 2, buf)?;
            let to = NodeId(buf.get_u32_le());
            let distance = buf.get_f64_le();
            let class_idx = buf.get_u8();
            let class = RoadClass::from_index(usize::from(class_idx))
                .ok_or_else(|| CcamError::Corrupt(format!("bad road class index {class_idx}")))?;
            let pattern = PatternId(buf.get_u16_le());
            edges.push(EdgeRecord {
                to,
                distance,
                class,
                pattern,
            });
        }
        if buf.has_remaining() {
            return Err(CcamError::Corrupt(format!(
                "{} trailing bytes after node record",
                buf.remaining()
            )));
        }
        Ok(NodeRecord {
            id,
            loc: Point { x, y },
            edges,
        })
    }
}

/// Read a little-endian `f64` at byte offset `at`.
fn read_f64_at(b: &[u8], at: usize) -> f64 {
    let mut w = [0u8; 8];
    w.copy_from_slice(&b[at..at + 8]);
    f64::from_le_bytes(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NodeRecord {
        NodeRecord {
            id: NodeId(42),
            loc: Point { x: -3.25, y: 7.5 },
            edges: vec![
                EdgeRecord {
                    to: NodeId(43),
                    distance: 1.125,
                    class: RoadClass::InboundHighway,
                    pattern: PatternId(0),
                },
                EdgeRecord {
                    to: NodeId(7),
                    distance: 0.4,
                    class: RoadClass::LocalBoston,
                    pattern: PatternId(2),
                },
            ],
        }
    }

    #[test]
    fn round_trip() {
        let r = sample();
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert_eq!(buf.len(), r.encoded_len());
        let d = NodeRecord::decode(&buf).unwrap();
        assert_eq!(d, r);
    }

    #[test]
    fn round_trip_no_edges() {
        let r = NodeRecord {
            id: NodeId(0),
            loc: Point { x: 0.0, y: 0.0 },
            edges: vec![],
        };
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert_eq!(NodeRecord::decode(&buf).unwrap(), r);
    }

    #[test]
    fn decode_rejects_truncation_and_trailing() {
        let r = sample();
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert!(NodeRecord::decode(&buf[..buf.len() - 1]).is_err());
        buf.push(0);
        assert!(NodeRecord::decode(&buf).is_err());
    }

    #[test]
    fn decode_rejects_bad_class() {
        let r = sample();
        let mut buf = Vec::new();
        r.encode(&mut buf);
        // class byte of the first edge sits after header(22) + to(4) + dist(8)
        buf[22 + 12] = 9;
        assert!(matches!(
            NodeRecord::decode(&buf),
            Err(CcamError::Corrupt(_))
        ));
    }

    #[test]
    fn edge_conversions() {
        let e = Edge {
            to: NodeId(5),
            distance: 2.0,
            class: RoadClass::LocalOutside,
            pattern: PatternId(3),
        };
        let r = EdgeRecord::from(&e);
        let back = Edge::from(&r);
        assert_eq!(back, e);
    }
}
