//! The assembled Connectivity-Clustered Access Method.
//!
//! On-disk layout:
//!
//! ```text
//! page 0            superblock
//! pages 1..=P       pattern table (byte stream across pages)
//! pages P+1..       data pages (slotted node records), then B+-tree pages
//! ```
//!
//! The superblock records the B+-tree root so a store can be reopened
//! without the original in-memory network. The pattern table is small
//! (one CapeCod pattern per road class plus any bespoke patterns) and
//! is decoded into memory at open time, exactly as the paper treats
//! speed patterns as schema-level data.

use std::sync::Arc;

use bytes::{Buf, BufMut};
use roadnet::{Edge, NetworkSource, NodeId, PatternId, Point, RoadNetwork};
use traffic::{CapeCodPattern, ProfilePiece, SpeedProfile};

use crate::btree::BTree;
use crate::buffer::BufferPool;
use crate::page::SlottedPage;
use crate::partition::{partition_nodes, PlacementPolicy};
use crate::record::{EdgeRecord, NodeRecord};
use crate::store::BlockStore;
use crate::{CcamError, Result};

const MAGIC: u32 = 0x4343_414D; // "CCAM"
const VERSION: u16 = 1;

/// A snapshot of access statistics: buffer behaviour plus physical
/// store I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Buffer pool hits.
    pub hits: u64,
    /// Buffer pool misses (page faults).
    pub misses: u64,
    /// Frames evicted.
    pub evictions: u64,
    /// Pages speculatively faulted by readahead (0 when disarmed).
    pub readaheads: u64,
    /// Pages physically read from the store.
    pub physical_reads: u64,
    /// Pages physically written to the store.
    pub physical_writes: u64,
}

impl StoreStats {
    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &StoreStats) -> StoreStats {
        StoreStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            readaheads: self.readaheads - earlier.readaheads,
            physical_reads: self.physical_reads - earlier.physical_reads,
            physical_writes: self.physical_writes - earlier.physical_writes,
        }
    }
}

/// A disk-resident CapeCod network behind CCAM, implementing
/// [`NetworkSource`] so queries run unmodified over it.
pub struct CcamStore {
    pool: Arc<BufferPool>,
    btree: BTree,
    patterns: Vec<CapeCodPattern>,
    max_speed: f64,
    n_nodes: usize,
    /// First pattern page and page count (for in-place pattern updates).
    pattern_region: (u64, usize),
    /// Page currently accepting relocated/new records, if any.
    overflow_page: Option<u64>,
}

impl CcamStore {
    /// Build a store from an in-memory network.
    ///
    /// `store` must be empty; `policy` selects the page placement;
    /// `pool_frames` sizes the buffer pool used for subsequent reads.
    pub fn build(
        net: &RoadNetwork,
        store: Arc<dyn BlockStore>,
        policy: PlacementPolicy,
        pool_frames: usize,
    ) -> Result<CcamStore> {
        if store.n_pages() != 0 {
            return Err(CcamError::Corrupt("store not empty".into()));
        }
        let page_size = store.page_size();
        let pool = Arc::new(BufferPool::new(store, pool_frames));

        // page 0: superblock placeholder (rewritten at the end)
        let sb_page = pool.store().allocate()?;
        debug_assert_eq!(sb_page, 0);

        // pattern table
        let pattern_bytes = encode_patterns(net.patterns())?;
        let pattern_start = pool.store().n_pages();
        let n_pattern_pages = pattern_bytes.len().div_ceil(page_size).max(1);
        for chunk_idx in 0..n_pattern_pages {
            let id = pool.store().allocate()?;
            let mut page = vec![0u8; page_size];
            let lo = chunk_idx * page_size;
            let hi = (lo + page_size).min(pattern_bytes.len());
            if lo < pattern_bytes.len() {
                page[..hi - lo].copy_from_slice(&pattern_bytes[lo..hi]);
            }
            pool.write_page(id, &page)?;
        }

        // data pages
        let partitioning = partition_nodes(net, policy, page_size)?;
        let mut addresses: Vec<(u64, u64)> = Vec::with_capacity(net.n_nodes());
        for nodes in &partitioning.pages {
            let page_id = pool.store().allocate()?;
            let mut page = SlottedPage::new(page_size);
            for &n in nodes {
                let rec = NodeRecord {
                    id: n,
                    loc: *net.point(n)?,
                    edges: net.neighbors(n)?.iter().map(EdgeRecord::from).collect(),
                };
                let mut buf = Vec::with_capacity(rec.encoded_len());
                rec.encode(&mut buf);
                let slot = page.insert(&buf)?;
                addresses.push((u64::from(n.0), (page_id << 16) | u64::from(slot)));
            }
            pool.write_page(page_id, page.as_bytes())?;
        }

        // index
        addresses.sort_unstable_by_key(|&(k, _)| k);
        let btree = BTree::bulk_load(Arc::clone(&pool), &addresses)?;

        // superblock
        write_superblock(
            &pool,
            net.n_nodes() as u64,
            btree.root(),
            btree.height(),
            pattern_start,
            n_pattern_pages,
            pattern_bytes.len(),
        )?;
        pool.flush()?;

        Ok(CcamStore {
            pool,
            btree,
            patterns: net.patterns().to_vec(),
            max_speed: net.max_speed(),
            n_nodes: net.n_nodes(),
            pattern_region: (pattern_start, n_pattern_pages),
            overflow_page: None,
        })
    }

    /// Reopen a previously built store.
    pub fn open(store: Arc<dyn BlockStore>, pool_frames: usize) -> Result<CcamStore> {
        let page_size = store.page_size();
        let pool = Arc::new(BufferPool::new(store, pool_frames));

        let (n_nodes, root, height, pattern_start, n_pattern_pages, pattern_len) = pool
            .with_page(0, |page| {
                let mut buf = page;
                if buf.get_u32_le() != MAGIC {
                    return Err(CcamError::Corrupt("bad magic".into()));
                }
                let version = buf.get_u16_le();
                if version != VERSION {
                    return Err(CcamError::Corrupt(format!("unsupported version {version}")));
                }
                let stored_page_size = buf.get_u32_le() as usize;
                if stored_page_size != page_size {
                    return Err(CcamError::Corrupt(format!(
                        "page size mismatch: stored {stored_page_size}, store {page_size}"
                    )));
                }
                let n_nodes = buf.get_u64_le() as usize;
                let root = buf.get_u64_le();
                let height = buf.get_u32_le();
                let pattern_start = buf.get_u64_le();
                let n_pattern_pages = buf.get_u32_le() as usize;
                let pattern_len = buf.get_u32_le() as usize;
                Ok((
                    n_nodes,
                    root,
                    height,
                    pattern_start,
                    n_pattern_pages,
                    pattern_len,
                ))
            })??;

        let mut pattern_bytes = Vec::with_capacity(pattern_len);
        for i in 0..n_pattern_pages {
            pool.with_page(pattern_start + i as u64, |page| {
                pattern_bytes.extend_from_slice(page);
            })?;
        }
        pattern_bytes.truncate(pattern_len);
        let patterns = decode_patterns(&pattern_bytes)?;
        let max_speed = patterns
            .iter()
            .map(CapeCodPattern::max_speed)
            .fold(f64::NEG_INFINITY, f64::max);

        let btree = BTree::open(Arc::clone(&pool), root, height);
        Ok(CcamStore {
            pool,
            btree,
            patterns,
            max_speed,
            n_nodes,
            pattern_region: (pattern_start, n_pattern_pages),
            overflow_page: None,
        })
    }

    /// Full node record (`FindNode` + adjacency, one logical access).
    pub fn node_record(&self, node: NodeId) -> Result<NodeRecord> {
        let (page_id, slot) = self.record_addr(node)?;
        self.pool.with_page(page_id, |bytes| {
            NodeRecord::decode(crate::page::slot_in(bytes, slot)?)
        })?
    }

    /// Location-only lookup: decodes just the record header, skipping
    /// the adjacency list (the engine asks for locations once per
    /// candidate edge to evaluate its lower-bound estimator).
    pub fn node_loc(&self, node: NodeId) -> Result<Point> {
        let (page_id, slot) = self.record_addr(node)?;
        self.pool.with_page(page_id, |bytes| {
            NodeRecord::decode_loc(crate::page::slot_in(bytes, slot)?)
        })?
    }

    /// Decode a node's adjacency list straight into `out` (cleared
    /// first), with no intermediate record allocation.
    pub fn edges_into(&self, node: NodeId, out: &mut Vec<Edge>) -> Result<()> {
        let (page_id, slot) = self.record_addr(node)?;
        self.pool.with_page(page_id, |bytes| {
            NodeRecord::decode_edges_into(crate::page::slot_in(bytes, slot)?, out)
        })?
    }

    /// B-tree lookup of a node's record address as `(page, slot)`.
    fn record_addr(&self, node: NodeId) -> Result<(u64, u16)> {
        let addr = self
            .btree
            .get(u64::from(node.0))?
            .ok_or(CcamError::NotFound(u64::from(node.0)))?;
        Ok((addr >> 16, (addr & 0xFFFF) as u16))
    }

    /// Current access statistics.
    pub fn stats(&self) -> StoreStats {
        let b = self.pool.stats();
        let (r, w) = self.pool.store().io_stats().snapshot();
        StoreStats {
            hits: b.hits(),
            misses: b.misses(),
            evictions: b.evictions(),
            readaheads: b.readaheads(),
            physical_reads: r,
            physical_writes: w,
        }
    }

    /// Drop all cached pages (cold-cache experiments).
    pub fn clear_cache(&self) -> Result<()> {
        self.pool.clear()
    }

    /// Arm the buffer pool's sequential readahead (see
    /// [`BufferPool::set_readahead`]): CCAM packs pages in Hilbert
    /// order, so prefetching successive page ids pulls in spatially
    /// adjacent records.
    pub fn set_readahead(&self, pages: usize) {
        self.pool.set_readahead(pages);
    }

    /// The buffer pool (for capacity introspection in experiments).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }
}

/// Map a storage failure onto the network-layer taxonomy so callers
/// above (the query engine) can route on failure *class*: an index
/// miss stays [`roadnet::NetworkError::UnknownNode`] — the node really
/// isn't there — while I/O and integrity failures become
/// [`roadnet::NetworkError::Storage`] tagged with a
/// [`roadnet::StorageFaultKind`]. The seed code collapsed everything
/// to `UnknownNode`, which made a corrupt page indistinguishable from
/// a bad query.
fn storage_error(e: CcamError, node: NodeId) -> roadnet::NetworkError {
    use roadnet::{NetworkError, StorageFaultKind};
    let kind = match &e {
        CcamError::NotFound(_) => return NetworkError::UnknownNode(node),
        CcamError::Network(inner) => return inner.clone(),
        CcamError::Corruption { .. }
        | CcamError::Corrupt(_)
        | CcamError::BadPage(_)
        | CcamError::PageSizeMismatch { .. } => StorageFaultKind::Corruption,
        CcamError::TransientIo { .. } => StorageFaultKind::Transient,
        CcamError::Io(_) => StorageFaultKind::Io,
        CcamError::RecordTooLarge { .. } => StorageFaultKind::Other,
    };
    NetworkError::Storage {
        kind,
        message: e.to_string(),
    }
}

impl NetworkSource for CcamStore {
    fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    fn find_node(&self, node: NodeId) -> roadnet::Result<Point> {
        self.node_loc(node).map_err(|e| storage_error(e, node))
    }

    fn successors(&self, node: NodeId) -> roadnet::Result<Vec<Edge>> {
        let mut out = Vec::new();
        self.edges_into(node, &mut out)
            .map_err(|e| storage_error(e, node))?;
        Ok(out)
    }

    fn successors_into(&self, node: NodeId, buf: &mut Vec<Edge>) -> roadnet::Result<()> {
        self.edges_into(node, buf)
            .map_err(|e| storage_error(e, node))
    }

    fn pattern(&self, id: PatternId) -> roadnet::Result<&CapeCodPattern> {
        self.patterns
            .get(usize::from(id.0))
            .ok_or(roadnet::NetworkError::UnknownPattern(id))
    }

    fn max_speed(&self) -> f64 {
        self.max_speed
    }
}

/// Network-update operations (§2.2: CCAM supports "the appropriate
/// operations to update the network").
///
/// Records that grow past their slot are *relocated* to an overflow
/// page and the B+-tree entry is repointed; shrinking records are
/// rewritten in place. Stale heap bytes are reclaimed only by a full
/// rebuild (the classic vacuum trade-off).
impl CcamStore {
    /// Replace the stored record for `rec.id` (must already exist).
    pub fn update_node_record(&mut self, rec: &NodeRecord) -> Result<()> {
        let key = u64::from(rec.id.0);
        let addr = self.btree.get(key)?.ok_or(CcamError::NotFound(key))?;
        let (page_id, slot) = (addr >> 16, (addr & 0xFFFF) as u16);
        let mut bytes = Vec::with_capacity(rec.encoded_len());
        rec.encode(&mut bytes);

        // Try in place.
        let mut image = self.pool.with_page(page_id, |p| p.to_vec())?;
        let mut page = SlottedPage::from_bytes(std::mem::take(&mut image))?;
        let existing_len = page.get(slot)?.len();
        if bytes.len() <= existing_len {
            page.overwrite(slot, &bytes)?;
            return self.pool.write_page(page_id, page.as_bytes());
        }

        // Relocate.
        let new_addr = self.append_record(&bytes)?;
        self.btree.update(key, new_addr)?;
        self.persist_meta()
    }

    /// Insert a brand-new node record (id must be unused).
    pub fn insert_node_record(&mut self, rec: &NodeRecord) -> Result<()> {
        let key = u64::from(rec.id.0);
        if self.btree.get(key)?.is_some() {
            return Err(CcamError::Corrupt(format!("node {key} already exists")));
        }
        let mut bytes = Vec::with_capacity(rec.encoded_len());
        rec.encode(&mut bytes);
        let addr = self.append_record(&bytes)?;
        self.btree.insert(key, addr)?;
        self.n_nodes += 1;
        for e in &rec.edges {
            self.note_pattern_speed(e.pattern)?;
        }
        self.persist_meta()
    }

    /// Add a directed edge `from → to` to the stored network.
    pub fn add_edge(&mut self, from: NodeId, edge: EdgeRecord) -> Result<()> {
        let mut rec = self.node_record(from)?;
        if rec.edges.iter().any(|e| e.to == edge.to) {
            return Err(CcamError::Corrupt(format!(
                "edge {from} -> {} already exists",
                edge.to
            )));
        }
        self.note_pattern_speed(edge.pattern)?;
        rec.edges.push(edge);
        self.update_node_record(&rec)
    }

    /// Remove the directed edge `from → to`; returns `true` if it
    /// existed.
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId) -> Result<bool> {
        let mut rec = self.node_record(from)?;
        let before = rec.edges.len();
        rec.edges.retain(|e| e.to != to);
        if rec.edges.len() == before {
            return Ok(false);
        }
        self.update_node_record(&rec)?;
        Ok(true)
    }

    /// Replace a speed pattern (e.g. a re-measured rush-hour profile).
    ///
    /// The new pattern table must fit in the originally allocated
    /// pattern pages; otherwise a fresh region is appended and the
    /// superblock repointed.
    pub fn set_pattern(&mut self, id: PatternId, pattern: CapeCodPattern) -> Result<()> {
        let idx = usize::from(id.0);
        if idx >= self.patterns.len() {
            return Err(CcamError::NotFound(u64::from(id.0)));
        }
        self.max_speed = self.max_speed.max(pattern.max_speed());
        self.patterns[idx] = pattern;
        let bytes = encode_patterns(&self.patterns)?;
        let page_size = self.pool.store().page_size();
        let needed = bytes.len().div_ceil(page_size).max(1);
        let (mut start, capacity) = self.pattern_region;
        if needed > capacity {
            start = self.pool.store().n_pages();
            for _ in 0..needed {
                self.pool.store().allocate()?;
            }
            self.pattern_region = (start, needed);
        }
        for chunk_idx in 0..self.pattern_region.1 {
            let mut page = vec![0u8; page_size];
            let lo = chunk_idx * page_size;
            if lo < bytes.len() {
                let hi = (lo + page_size).min(bytes.len());
                page[..hi - lo].copy_from_slice(&bytes[lo..hi]);
            }
            self.pool.write_page(start + chunk_idx as u64, &page)?;
        }
        self.persist_meta_with_pattern_len(bytes.len())
    }

    /// Append an encoded record to the current overflow page,
    /// allocating one as needed; returns the packed address.
    fn append_record(&mut self, bytes: &[u8]) -> Result<u64> {
        let page_size = self.pool.store().page_size();
        if bytes.len() + 8 > page_size {
            return Err(CcamError::RecordTooLarge {
                need: bytes.len(),
                page: page_size,
            });
        }
        loop {
            let page_id = match self.overflow_page {
                Some(id) => id,
                None => {
                    let id = self.pool.store().allocate()?;
                    self.pool
                        .write_page(id, SlottedPage::new(page_size).as_bytes())?;
                    self.overflow_page = Some(id);
                    id
                }
            };
            let image = self.pool.with_page(page_id, |p| p.to_vec())?;
            let mut page = SlottedPage::from_bytes(image)?;
            if page.fits(bytes.len()) {
                let slot = page.insert(bytes)?;
                self.pool.write_page(page_id, page.as_bytes())?;
                return Ok((page_id << 16) | u64::from(slot));
            }
            self.overflow_page = None; // page full; allocate a fresh one
        }
    }

    /// Track the pattern table's max speed when new edges reference
    /// patterns (keeps the naive estimator's `v_max` sound).
    fn note_pattern_speed(&mut self, id: PatternId) -> Result<()> {
        let pat = self
            .patterns
            .get(usize::from(id.0))
            .ok_or(CcamError::NotFound(u64::from(id.0)))?;
        self.max_speed = self.max_speed.max(pat.max_speed());
        Ok(())
    }

    fn persist_meta(&self) -> Result<()> {
        let bytes_len = encode_patterns(&self.patterns)?.len();
        self.persist_meta_with_pattern_len(bytes_len)
    }

    fn persist_meta_with_pattern_len(&self, pattern_len: usize) -> Result<()> {
        write_superblock(
            &self.pool,
            self.n_nodes as u64,
            self.btree.root(),
            self.btree.height(),
            self.pattern_region.0,
            self.pattern_region.1,
            pattern_len,
        )?;
        self.pool.flush()
    }
}

/// Write the superblock to page 0. Shared with the parallel bulk
/// builder ([`crate::bulk`]), which must produce a byte-identical
/// superblock to [`CcamStore::build`].
pub(crate) fn write_superblock(
    pool: &Arc<BufferPool>,
    n_nodes: u64,
    root: u64,
    height: u32,
    pattern_start: u64,
    n_pattern_pages: usize,
    pattern_len: usize,
) -> Result<()> {
    let page_size = pool.store().page_size();
    let mut sb = Vec::with_capacity(page_size);
    sb.put_u32_le(MAGIC);
    sb.put_u16_le(VERSION);
    sb.put_u32_le(page_size as u32);
    sb.put_u64_le(n_nodes);
    sb.put_u64_le(root);
    sb.put_u32_le(height);
    sb.put_u64_le(pattern_start);
    sb.put_u32_le(n_pattern_pages as u32);
    sb.put_u32_le(pattern_len as u32);
    sb.resize(page_size, 0);
    pool.write_page(0, &sb)
}

/// Serialize the pattern table. Shared with the bulk builder.
pub(crate) fn encode_patterns(patterns: &[CapeCodPattern]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    out.put_u16_le(patterns.len() as u16);
    for pat in patterns {
        let n = pat.n_categories();
        out.put_u8(n as u8);
        for c in 0..n {
            let profile = pat
                .profile(traffic::DayCategory(c as u8))
                .map_err(|e| CcamError::Corrupt(format!("pattern table: {e}")))?;
            out.put_u16_le(profile.pieces().len() as u16);
            for p in profile.pieces() {
                out.put_f64_le(p.start);
                out.put_f64_le(p.speed);
            }
        }
    }
    Ok(out)
}

/// Inverse of [`encode_patterns`].
fn decode_patterns(mut buf: &[u8]) -> Result<Vec<CapeCodPattern>> {
    let corrupt = |msg: &str| CcamError::Corrupt(format!("pattern table: {msg}"));
    if buf.remaining() < 2 {
        return Err(corrupt("truncated count"));
    }
    let n_patterns = buf.get_u16_le() as usize;
    let mut patterns = Vec::with_capacity(n_patterns);
    for _ in 0..n_patterns {
        if buf.remaining() < 1 {
            return Err(corrupt("truncated profile count"));
        }
        let n_profiles = buf.get_u8() as usize;
        let mut profiles = Vec::with_capacity(n_profiles);
        for _ in 0..n_profiles {
            if buf.remaining() < 2 {
                return Err(corrupt("truncated piece count"));
            }
            let n_pieces = buf.get_u16_le() as usize;
            if buf.remaining() < n_pieces * 16 {
                return Err(corrupt("truncated pieces"));
            }
            let mut pieces = Vec::with_capacity(n_pieces);
            for _ in 0..n_pieces {
                let start = buf.get_f64_le();
                let speed = buf.get_f64_le();
                pieces.push(ProfilePiece { start, speed });
            }
            profiles.push(
                SpeedProfile::new(pieces).map_err(|e| corrupt(&format!("bad profile: {e}")))?,
            );
        }
        patterns.push(
            CapeCodPattern::new(profiles).map_err(|e| corrupt(&format!("bad pattern: {e}")))?,
        );
    }
    Ok(patterns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use crate::DEFAULT_PAGE_SIZE;
    use roadnet::generators::grid;
    use traffic::RoadClass;

    fn build_grid_store(policy: PlacementPolicy) -> (RoadNetwork, CcamStore) {
        let net = grid(10, 10, 0.2, RoadClass::LocalBoston).unwrap();
        let store = Arc::new(MemStore::new(DEFAULT_PAGE_SIZE));
        let ccam = CcamStore::build(&net, store, policy, 64).unwrap();
        (net, ccam)
    }

    #[test]
    fn every_node_readable_and_identical() {
        let (net, ccam) = build_grid_store(PlacementPolicy::ConnectivityClustered);
        assert_eq!(NetworkSource::n_nodes(&ccam), net.n_nodes());
        for n in net.node_ids() {
            let rec = ccam.node_record(n).unwrap();
            assert_eq!(rec.id, n);
            assert_eq!(&rec.loc, net.point(n).unwrap());
            let disk_edges: Vec<Edge> = rec.edges.iter().map(Edge::from).collect();
            assert_eq!(disk_edges.as_slice(), net.neighbors(n).unwrap());
        }
    }

    #[test]
    fn implements_network_source() {
        let (net, ccam) = build_grid_store(PlacementPolicy::HilbertPacked);
        let src: &dyn NetworkSource = &ccam;
        assert_eq!(
            src.find_node(NodeId(5)).unwrap(),
            *net.point(NodeId(5)).unwrap()
        );
        assert_eq!(
            src.successors(NodeId(0)).unwrap(),
            net.neighbors(NodeId(0)).unwrap().to_vec()
        );
        assert!((src.max_speed() - net.max_speed()).abs() < 1e-12);
        assert!(src.find_node(NodeId(10_000)).is_err());
        assert!(src.pattern(PatternId(2)).is_ok());
        assert!(src.pattern(PatternId(99)).is_err());
    }

    #[test]
    fn reopen_from_store() {
        let net = grid(6, 6, 0.3, RoadClass::LocalOutside).unwrap();
        let store: Arc<dyn BlockStore> = Arc::new(MemStore::new(DEFAULT_PAGE_SIZE));
        {
            CcamStore::build(
                &net,
                Arc::clone(&store),
                PlacementPolicy::ConnectivityClustered,
                16,
            )
            .unwrap();
        }
        let reopened = CcamStore::open(store, 16).unwrap();
        assert_eq!(NetworkSource::n_nodes(&reopened), 36);
        for n in net.node_ids() {
            assert_eq!(reopened.find_node(n).unwrap(), *net.point(n).unwrap());
        }
        // pattern table round-tripped
        assert!((reopened.max_speed() - net.max_speed()).abs() < 1e-12);
        let p = NetworkSource::pattern(&reopened, PatternId(0)).unwrap();
        assert_eq!(p.n_categories(), 2);
    }

    #[test]
    fn build_rejects_dirty_store() {
        let net = grid(2, 2, 0.5, RoadClass::LocalOutside).unwrap();
        let store: Arc<dyn BlockStore> = Arc::new(MemStore::new(DEFAULT_PAGE_SIZE));
        store.allocate().unwrap();
        assert!(CcamStore::build(&net, store, PlacementPolicy::HilbertPacked, 4).is_err());
    }

    #[test]
    fn open_rejects_garbage() {
        let store: Arc<dyn BlockStore> = Arc::new(MemStore::new(DEFAULT_PAGE_SIZE));
        store.allocate().unwrap();
        assert!(matches!(
            CcamStore::open(store, 4),
            Err(CcamError::Corrupt(_))
        ));
    }

    #[test]
    fn clustering_reduces_misses_on_bfs_scan() {
        // walk the grid row by row (spatial locality): clustered layout
        // should fault fewer pages than random with a small pool
        let miss_count = |policy: PlacementPolicy| {
            let net = grid(16, 16, 0.2, RoadClass::LocalBoston).unwrap();
            let store = Arc::new(MemStore::new(DEFAULT_PAGE_SIZE));
            let ccam = CcamStore::build(&net, store, policy, 4).unwrap();
            ccam.clear_cache().unwrap();
            let before = ccam.stats();
            for n in net.node_ids() {
                ccam.node_record(n).unwrap();
            }
            ccam.stats().since(&before).misses
        };
        let clustered = miss_count(PlacementPolicy::ConnectivityClustered);
        let random = miss_count(PlacementPolicy::Random { seed: 1 });
        assert!(
            clustered < random,
            "clustered misses {clustered} not below random {random}"
        );
    }

    #[test]
    fn readahead_reduces_demand_misses_on_hilbert_scan() {
        // A Hilbert-packed store visits pages roughly in id order on a
        // spatially local scan, so prefetching the next pages converts
        // demand misses into hits.
        let scan = |readahead: usize| {
            let net = grid(16, 16, 0.2, RoadClass::LocalBoston).unwrap();
            let store = Arc::new(MemStore::new(DEFAULT_PAGE_SIZE));
            let ccam = CcamStore::build(&net, store, PlacementPolicy::HilbertPacked, 8).unwrap();
            ccam.clear_cache().unwrap();
            ccam.set_readahead(readahead);
            let before = ccam.stats();
            for n in net.node_ids() {
                ccam.node_record(n).unwrap();
            }
            ccam.stats().since(&before)
        };
        let cold = scan(0);
        let warm = scan(2);
        assert_eq!(cold.readaheads, 0);
        assert!(warm.readaheads > 0);
        assert!(
            warm.misses < cold.misses,
            "readahead misses {} not below demand-only {}",
            warm.misses,
            cold.misses
        );
        // every logical read is still exactly one hit or one miss
        assert_eq!(warm.hits + warm.misses, cold.hits + cold.misses);
    }

    #[test]
    fn update_operations_round_trip() {
        let net = grid(6, 6, 0.3, RoadClass::LocalOutside).unwrap();
        let store: Arc<dyn BlockStore> = Arc::new(MemStore::new(DEFAULT_PAGE_SIZE));
        let mut ccam = CcamStore::build(
            &net,
            Arc::clone(&store),
            PlacementPolicy::ConnectivityClustered,
            32,
        )
        .unwrap();

        // remove an edge: record shrinks in place
        let victim = net.neighbors(NodeId(0)).unwrap()[0].to;
        assert!(ccam.remove_edge(NodeId(0), victim).unwrap());
        assert!(!ccam.remove_edge(NodeId(0), victim).unwrap());
        assert_eq!(
            ccam.node_record(NodeId(0)).unwrap().edges.len(),
            net.neighbors(NodeId(0)).unwrap().len() - 1
        );

        // add edges until the record must relocate
        for k in 10..22u32 {
            ccam.add_edge(
                NodeId(0),
                crate::record::EdgeRecord {
                    to: NodeId(k),
                    distance: 9.0,
                    class: RoadClass::LocalOutside,
                    pattern: roadnet::PatternId(3),
                },
            )
            .unwrap();
        }
        let rec = ccam.node_record(NodeId(0)).unwrap();
        assert_eq!(
            rec.edges.len(),
            net.neighbors(NodeId(0)).unwrap().len() - 1 + 12
        );

        // duplicate edge rejected
        assert!(ccam
            .add_edge(
                NodeId(0),
                crate::record::EdgeRecord {
                    to: NodeId(10),
                    distance: 9.0,
                    class: RoadClass::LocalOutside,
                    pattern: roadnet::PatternId(3),
                },
            )
            .is_err());

        // insert a brand-new node and wire it in
        let new_id = NodeId(net.n_nodes() as u32);
        ccam.insert_node_record(&NodeRecord {
            id: new_id,
            loc: Point { x: 99.0, y: 99.0 },
            edges: vec![],
        })
        .unwrap();
        assert_eq!(NetworkSource::n_nodes(&ccam), net.n_nodes() + 1);
        assert!(ccam
            .insert_node_record(&NodeRecord {
                id: new_id,
                loc: Point { x: 0.0, y: 0.0 },
                edges: vec![],
            })
            .is_err());

        // everything persists across close/reopen
        let reopened = CcamStore::open(store, 32).unwrap();
        assert_eq!(NetworkSource::n_nodes(&reopened), net.n_nodes() + 1);
        assert_eq!(
            reopened.find_node(new_id).unwrap(),
            Point { x: 99.0, y: 99.0 }
        );
        let rec2 = reopened.node_record(NodeId(0)).unwrap();
        assert_eq!(rec2.edges.len(), rec.edges.len());
        // untouched nodes unchanged
        assert_eq!(
            reopened.node_record(NodeId(17)).unwrap().edges.len(),
            net.neighbors(NodeId(17)).unwrap().len()
        );
    }

    #[test]
    fn set_pattern_persists() {
        let net = grid(4, 4, 0.3, RoadClass::LocalBoston).unwrap();
        let store: Arc<dyn BlockStore> = Arc::new(MemStore::new(DEFAULT_PAGE_SIZE));
        let mut ccam =
            CcamStore::build(&net, Arc::clone(&store), PlacementPolicy::HilbertPacked, 32).unwrap();
        let fast = CapeCodPattern::uniform(2.0, 2).unwrap(); // 120 MPH repave
        ccam.set_pattern(roadnet::PatternId(2), fast.clone())
            .unwrap();
        assert!((NetworkSource::max_speed(&ccam) - 2.0).abs() < 1e-12);

        let reopened = CcamStore::open(store, 32).unwrap();
        let p = NetworkSource::pattern(&reopened, roadnet::PatternId(2)).unwrap();
        assert_eq!(p, &fast);
        assert!((NetworkSource::max_speed(&reopened) - 2.0).abs() < 1e-12);
        // other patterns untouched
        let q = NetworkSource::pattern(&reopened, roadnet::PatternId(0)).unwrap();
        assert_eq!(q.n_categories(), 2);
    }

    #[test]
    fn pattern_codec_round_trips() {
        let pats = vec![
            CapeCodPattern::paper_example(),
            CapeCodPattern::uniform(0.75, 3).unwrap(),
        ];
        let bytes = encode_patterns(&pats).unwrap();
        let back = decode_patterns(&bytes).unwrap();
        assert_eq!(back, pats);
        assert!(decode_patterns(&bytes[..bytes.len() - 3]).is_err());
        assert!(decode_patterns(&[]).is_err());
    }
}
