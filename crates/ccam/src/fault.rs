//! Deterministic fault injection: [`FaultInjectingStore`] wraps any
//! [`BlockStore`] and fails (or corrupts) operations on a seeded,
//! fully reproducible schedule, so the retry and corruption-detection
//! paths above it can be exercised under test.
//!
//! # Schedule model
//!
//! Faults are keyed off *operation counters*, not wall-clock or a
//! stateful PRNG: the store counts reads and writes, and a fault of a
//! given kind fires on every `k`-th operation, phase-shifted by a hash
//! of the plan's seed. Two consequences the tests rely on:
//!
//! * **Determinism** — the same plan over the same operation sequence
//!   produces the same [`FaultEvent`] log, byte for byte; replaying a
//!   workload replays its faults.
//! * **Bounded runs** — with `every >= 2`, two consecutive attempts at
//!   the same operation can never both fault, so the buffer pool's
//!   bounded retry always absorbs transient faults. `every == 1`
//!   (every operation faults) deliberately tests retry exhaustion.
//!
//! Kinds ([`FaultKind`]):
//!
//! * `TransientRead` / `TransientWrite` — the operation fails with
//!   [`CcamError::TransientIo`] without touching the inner store; a
//!   retry succeeds.
//! * `TornWrite` — only the first half of the buffer reaches the inner
//!   store, then the operation reports a transient failure. A retry
//!   rewrites the full page; an *unretried* torn write leaves a page
//!   that a [`ChecksummedStore`](crate::ChecksummedStore) stacked above
//!   will reject as corrupt.
//! * `BitFlip` — the read succeeds but one seeded-pseudorandom bit of
//!   the returned buffer is flipped, modelling media corruption below
//!   the checksum layer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::store::{BlockStore, IoStats};
use crate::{CcamError, IoOp, Result};

/// What a scheduled fault does to its operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `read_page` fails with [`CcamError::TransientIo`]; retry works.
    TransientRead,
    /// `write_page` fails with [`CcamError::TransientIo`]; retry works.
    TransientWrite,
    /// Half the page is written, then the write reports failure.
    TornWrite,
    /// The read succeeds but one bit of the buffer comes back flipped.
    BitFlip,
}

/// A deterministic fault schedule: per-kind periods (`0` = kind off)
/// plus a seed that phase-shifts each kind and picks bit positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for phases and bit choices.
    pub seed: u64,
    /// Fail every `k`-th read transiently (0 = off).
    pub transient_read_every: u64,
    /// Fail every `k`-th write transiently (0 = off).
    pub transient_write_every: u64,
    /// Tear every `k`-th write (0 = off).
    pub torn_write_every: u64,
    /// Flip a bit in every `k`-th read (0 = off).
    pub bit_flip_every: u64,
}

impl FaultPlan {
    /// A plan with every fault kind disabled.
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_read_every: 0,
            transient_write_every: 0,
            torn_write_every: 0,
            bit_flip_every: 0,
        }
    }

    /// Fail every `k`-th read transiently.
    pub fn with_transient_reads(mut self, every: u64) -> Self {
        self.transient_read_every = every;
        self
    }

    /// Fail every `k`-th write transiently.
    pub fn with_transient_writes(mut self, every: u64) -> Self {
        self.transient_write_every = every;
        self
    }

    /// Tear every `k`-th write.
    pub fn with_torn_writes(mut self, every: u64) -> Self {
        self.torn_write_every = every;
        self
    }

    /// Flip one bit in every `k`-th read.
    pub fn with_bit_flips(mut self, every: u64) -> Self {
        self.bit_flip_every = every;
        self
    }
}

/// One injected fault, recorded in schedule order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// What was injected.
    pub kind: FaultKind,
    /// The page the faulted operation targeted.
    pub page: u64,
    /// 1-based index of the operation (reads and writes counted
    /// separately) the fault hit.
    pub op_index: u64,
}

/// SplitMix64 — a tiny, high-quality 64-bit mixer; used to derive
/// per-kind phases and bit positions from the plan seed (and, in the
/// buffer pool, per-retry backoff jitter).
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Does op `n` (1-based) fire a fault with period `every` and phase
/// derived from `salt`?
fn fires(n: u64, every: u64, salt: u64) -> bool {
    every != 0 && n % every == splitmix64(salt) % every
}

/// A [`BlockStore`] wrapper injecting faults per a [`FaultPlan`]; see
/// the module docs for the schedule model. Allocation never faults
/// (builds stay deterministic; faults target steady-state I/O).
pub struct FaultInjectingStore {
    inner: Arc<dyn BlockStore>,
    plan: Mutex<FaultPlan>,
    reads: AtomicU64,
    writes: AtomicU64,
    log: Mutex<Vec<FaultEvent>>,
}

impl FaultInjectingStore {
    /// Wrap `inner` with the given schedule.
    pub fn new(inner: Arc<dyn BlockStore>, plan: FaultPlan) -> Self {
        FaultInjectingStore {
            inner,
            plan: Mutex::new(plan),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
        }
    }

    /// The active schedule.
    pub fn plan(&self) -> FaultPlan {
        *self.plan.lock()
    }

    /// Replace the schedule mid-run. Operation counters and the event
    /// log are untouched, so a scripted harness can switch between
    /// quiet windows and fault storms at deterministic points (e.g.
    /// virtual-time boundaries) and the combined run still replays
    /// exactly from the seed.
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.plan.lock() = plan;
    }

    /// The wrapped store.
    pub fn inner(&self) -> &Arc<dyn BlockStore> {
        &self.inner
    }

    /// Every fault injected so far, in injection order.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.log.lock().clone()
    }

    /// Number of faults injected so far.
    pub fn n_faults(&self) -> usize {
        self.log.lock().len()
    }

    fn record(&self, kind: FaultKind, page: u64, op_index: u64) {
        self.log.lock().push(FaultEvent {
            kind,
            page,
            op_index,
        });
    }
}

impl BlockStore for FaultInjectingStore {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn n_pages(&self) -> u64 {
        self.inner.n_pages()
    }

    fn allocate(&self) -> Result<u64> {
        self.inner.allocate()
    }

    fn read_page(&self, id: u64, buf: &mut [u8]) -> Result<()> {
        let plan = self.plan();
        let n = self.reads.fetch_add(1, Ordering::Relaxed) + 1;
        if fires(n, plan.transient_read_every, plan.seed ^ 0x7EAD) {
            self.record(FaultKind::TransientRead, id, n);
            return Err(CcamError::TransientIo {
                page: id,
                op: IoOp::Read,
            });
        }
        self.inner.read_page(id, buf)?;
        if fires(n, plan.bit_flip_every, plan.seed ^ 0xF11B) {
            let bit = splitmix64(plan.seed ^ n) % (buf.len() as u64 * 8);
            buf[(bit / 8) as usize] ^= 1 << (bit % 8);
            self.record(FaultKind::BitFlip, id, n);
        }
        Ok(())
    }

    fn write_page(&self, id: u64, buf: &[u8]) -> Result<()> {
        let plan = self.plan();
        let n = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        if fires(n, plan.transient_write_every, plan.seed ^ 0x3717) {
            self.record(FaultKind::TransientWrite, id, n);
            return Err(CcamError::TransientIo {
                page: id,
                op: IoOp::Write,
            });
        }
        if fires(n, plan.torn_write_every, plan.seed ^ 0x70A1) {
            // Land only the first half of the buffer, keeping whatever
            // the page held beyond it, then report a transient failure
            // so a retry rewrites the page whole.
            let half = buf.len() / 2;
            let mut cur = vec![0u8; buf.len()];
            self.inner.read_page(id, &mut cur)?;
            cur[..half].copy_from_slice(&buf[..half]);
            self.inner.write_page(id, &cur)?;
            self.record(FaultKind::TornWrite, id, n);
            return Err(CcamError::TransientIo {
                page: id,
                op: IoOp::Write,
            });
        }
        self.inner.write_page(id, buf)
    }

    fn io_stats(&self) -> &IoStats {
        self.inner.io_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use crate::ChecksummedStore;

    fn faulty(plan: FaultPlan) -> FaultInjectingStore {
        let inner = Arc::new(MemStore::new(64));
        let store = FaultInjectingStore::new(inner, plan);
        store.allocate().unwrap();
        store
    }

    #[test]
    fn quiet_plan_is_a_passthrough() {
        let store = faulty(FaultPlan::quiet(1));
        let mut buf = vec![0u8; 64];
        for _ in 0..100 {
            store.read_page(0, &mut buf).unwrap();
            store.write_page(0, &buf).unwrap();
        }
        assert_eq!(store.n_faults(), 0);
    }

    #[test]
    fn transient_reads_fire_on_schedule_and_retry_succeeds() {
        let store = faulty(FaultPlan::quiet(7).with_transient_reads(3));
        let mut buf = vec![0u8; 64];
        let mut failures = 0usize;
        for _ in 0..30 {
            match store.read_page(0, &mut buf) {
                Ok(()) => {}
                Err(e) => {
                    assert!(e.is_transient(), "{e:?}");
                    failures += 1;
                    // the immediate retry must succeed (every = 3 >= 2)
                    store.read_page(0, &mut buf).unwrap();
                }
            }
        }
        // every 3rd op faults, and retries themselves advance the op
        // counter: roughly a third of ~45 total ops
        assert!((10..=20).contains(&failures), "saw {failures} faults");
        assert!(store
            .events()
            .iter()
            .all(|e| e.kind == FaultKind::TransientRead && e.page == 0));
    }

    #[test]
    fn same_seed_same_schedule_different_seed_different_phase() {
        let run = |seed: u64| {
            let store = faulty(FaultPlan::quiet(seed).with_transient_reads(4));
            let mut buf = vec![0u8; 64];
            for _ in 0..40 {
                let _ = store.read_page(0, &mut buf);
            }
            store.events()
        };
        assert_eq!(run(5), run(5), "same seed must replay identically");
        let a: Vec<u64> = run(5).iter().map(|e| e.op_index).collect();
        let b: Vec<u64> = run(6).iter().map(|e| e.op_index).collect();
        assert_ne!(a, b, "different seeds should phase-shift the schedule");
    }

    #[test]
    fn torn_write_is_caught_by_checksums_unless_retried() {
        let raw: Arc<dyn BlockStore> = Arc::new(MemStore::new(128));
        // allocate through a fault-free stack so setup can't tear
        let quiet = ChecksummedStore::new(Arc::clone(&raw));
        let id = quiet.allocate().unwrap();
        let data = vec![0x5Au8; quiet.page_size()];

        let plan = FaultPlan::quiet(11).with_torn_writes(1); // tear everything
        let injected = Arc::new(FaultInjectingStore::new(Arc::clone(&raw), plan));
        let store = ChecksummedStore::new(Arc::clone(&injected) as Arc<dyn BlockStore>);
        // the write tears and reports transiently
        let err = store.write_page(id, &data).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(injected.events()[0].kind, FaultKind::TornWrite);
        // the torn page is detected, never served
        let mut buf = vec![0u8; quiet.page_size()];
        assert!(matches!(
            quiet.read_page(id, &mut buf),
            Err(CcamError::Corruption { .. })
        ));
        // a retry with no tear scheduled lands the page whole
        quiet.write_page(id, &data).unwrap();
        quiet.read_page(id, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn bit_flips_change_exactly_one_bit() {
        let store = faulty(FaultPlan::quiet(3).with_bit_flips(1));
        let mut buf = vec![0u8; 64];
        for _ in 0..10 {
            // the stored page is all zeros, so the returned buffer's
            // population count is exactly the number of flipped bits
            store.read_page(0, &mut buf).unwrap();
            let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
            assert_eq!(ones, 1, "exactly one bit per scheduled flip");
        }
        assert_eq!(store.n_faults(), 10);
    }
}
