//! Slotted data pages.
//!
//! Layout (all little-endian):
//!
//! ```text
//! [0..2)   n_slots: u16
//! [2..4)   free_offset: u16      (start of unused space)
//! [4..)    record heap, growing up
//! ...      free space
//! [end)    slot directory, growing down: per slot (offset: u16, len: u16)
//! ```

use crate::{CcamError, Result};

/// Byte overhead per page (header).
const HEADER: usize = 4;
/// Byte overhead per slot directory entry.
const SLOT: usize = 4;

/// A slotted page view over an owned buffer.
#[derive(Debug, Clone)]
pub struct SlottedPage {
    buf: Vec<u8>,
}

impl SlottedPage {
    /// A fresh empty page of `page_size` bytes.
    pub fn new(page_size: usize) -> Self {
        let mut buf = vec![0u8; page_size];
        write_u16(&mut buf, 0, 0); // n_slots
        write_u16(&mut buf, 2, HEADER as u16); // free_offset
        SlottedPage { buf }
    }

    /// Wrap an existing page image (validates the header).
    pub fn from_bytes(buf: Vec<u8>) -> Result<Self> {
        if buf.len() < HEADER {
            return Err(CcamError::Corrupt("page smaller than header".into()));
        }
        let page = SlottedPage { buf };
        let n = page.n_slots();
        let free = page.free_offset();
        if free > page.buf.len() || HEADER + n * SLOT > page.buf.len() {
            return Err(CcamError::Corrupt(format!(
                "bad page header: n_slots={n} free={free}"
            )));
        }
        Ok(page)
    }

    /// The raw page image.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume into the raw page image.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of records on the page.
    pub fn n_slots(&self) -> usize {
        read_u16(&self.buf, 0) as usize
    }

    fn free_offset(&self) -> usize {
        read_u16(&self.buf, 2) as usize
    }

    /// Free bytes remaining (accounting for the new slot entry an
    /// insert would need).
    pub fn free_space(&self) -> usize {
        let dir_start = self.buf.len() - self.n_slots() * SLOT;
        dir_start
            .saturating_sub(self.free_offset())
            .saturating_sub(SLOT)
    }

    /// `true` if a record of `len` bytes fits.
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len
    }

    /// Append a record, returning its slot number.
    pub fn insert(&mut self, record: &[u8]) -> Result<u16> {
        if !self.fits(record.len()) {
            return Err(CcamError::RecordTooLarge {
                need: record.len(),
                page: self.free_space(),
            });
        }
        let n = self.n_slots();
        let off = self.free_offset();
        self.buf[off..off + record.len()].copy_from_slice(record);
        // slot directory entry
        let dir = self.buf.len() - (n + 1) * SLOT;
        write_u16(&mut self.buf, dir, off as u16);
        write_u16(&mut self.buf, dir + 2, record.len() as u16);
        write_u16(&mut self.buf, 0, (n + 1) as u16);
        write_u16(&mut self.buf, 2, (off + record.len()) as u16);
        Ok(n as u16)
    }

    /// Overwrite the record in `slot` with `record`, which must be no
    /// longer than the existing record (the slot's length shrinks to
    /// match; freed bytes inside the heap are not reclaimed until a
    /// page rebuild).
    pub fn overwrite(&mut self, slot: u16, record: &[u8]) -> Result<()> {
        let n = self.n_slots();
        if usize::from(slot) >= n {
            return Err(CcamError::Corrupt(format!("slot {slot} beyond {n} slots")));
        }
        let dir = self.buf.len() - (usize::from(slot) + 1) * SLOT;
        let off = read_u16(&self.buf, dir) as usize;
        let len = read_u16(&self.buf, dir + 2) as usize;
        if record.len() > len {
            return Err(CcamError::RecordTooLarge {
                need: record.len(),
                page: len,
            });
        }
        self.buf[off..off + record.len()].copy_from_slice(record);
        write_u16(&mut self.buf, dir + 2, record.len() as u16);
        Ok(())
    }

    /// Read the record in `slot`.
    pub fn get(&self, slot: u16) -> Result<&[u8]> {
        let n = self.n_slots();
        if usize::from(slot) >= n {
            return Err(CcamError::Corrupt(format!("slot {slot} beyond {n} slots")));
        }
        let dir = self.buf.len() - (usize::from(slot) + 1) * SLOT;
        let off = read_u16(&self.buf, dir) as usize;
        let len = read_u16(&self.buf, dir + 2) as usize;
        if off + len > self.buf.len() {
            return Err(CcamError::Corrupt(format!(
                "slot {slot} points outside the page ({off}+{len})"
            )));
        }
        Ok(&self.buf[off..off + len])
    }

    /// Iterate all records in slot order.
    pub fn records(&self) -> impl Iterator<Item = Result<&[u8]>> + '_ {
        (0..self.n_slots() as u16).map(move |s| self.get(s))
    }
}

/// Read the record in `slot` straight from a borrowed page image —
/// the hot read path of `CcamStore::node_record`, which would
/// otherwise copy the whole page into an owned [`SlottedPage`] per
/// lookup. Performs the same bounds checks as
/// [`SlottedPage::from_bytes`] followed by [`SlottedPage::get`].
pub fn slot_in(page: &[u8], slot: u16) -> Result<&[u8]> {
    if page.len() < HEADER {
        return Err(CcamError::Corrupt("page smaller than header".into()));
    }
    let n = read_u16(page, 0) as usize;
    if HEADER + n * SLOT > page.len() {
        return Err(CcamError::Corrupt(format!("bad page header: n_slots={n}")));
    }
    if usize::from(slot) >= n {
        return Err(CcamError::Corrupt(format!("slot {slot} beyond {n} slots")));
    }
    let dir = page.len() - (usize::from(slot) + 1) * SLOT;
    let off = read_u16(page, dir) as usize;
    let len = read_u16(page, dir + 2) as usize;
    if off + len > page.len() {
        return Err(CcamError::Corrupt(format!(
            "slot {slot} points outside the page ({off}+{len})"
        )));
    }
    Ok(&page[off..off + len])
}

fn write_u16(buf: &mut [u8], at: usize, v: u16) {
    buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

fn read_u16(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([buf[at], buf[at + 1]])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut p = SlottedPage::new(128);
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(p.get(0).unwrap(), b"hello");
        assert_eq!(p.get(1).unwrap(), b"world!");
        assert_eq!(p.n_slots(), 2);
        assert!(p.get(2).is_err());
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut p = SlottedPage::new(64);
        let rec = [7u8; 10];
        let mut inserted = 0;
        while p.fits(rec.len()) {
            p.insert(&rec).unwrap();
            inserted += 1;
        }
        // 64 - 4 header = 60; each record costs 10 + 4 slot = 14 → 4 fit
        assert_eq!(inserted, 4);
        assert!(matches!(
            p.insert(&rec),
            Err(CcamError::RecordTooLarge { .. })
        ));
        // everything still readable
        for r in p.records() {
            assert_eq!(r.unwrap(), &rec);
        }
    }

    #[test]
    fn round_trip_through_bytes() {
        let mut p = SlottedPage::new(256);
        p.insert(b"alpha").unwrap();
        p.insert(b"beta").unwrap();
        let bytes = p.into_bytes();
        let q = SlottedPage::from_bytes(bytes).unwrap();
        assert_eq!(q.n_slots(), 2);
        assert_eq!(q.get(1).unwrap(), b"beta");
    }

    #[test]
    fn from_bytes_validates() {
        assert!(SlottedPage::from_bytes(vec![0u8; 2]).is_err());
        let mut bad = vec![0u8; 64];
        bad[0] = 200; // n_slots = 200 → directory overflows the page
        assert!(SlottedPage::from_bytes(bad).is_err());
    }

    #[test]
    fn overwrite_shrinks_in_place() {
        let mut p = SlottedPage::new(128);
        p.insert(b"original-record").unwrap();
        p.insert(b"second").unwrap();
        p.overwrite(0, b"short").unwrap();
        assert_eq!(p.get(0).unwrap(), b"short");
        assert_eq!(p.get(1).unwrap(), b"second");
        // growing is rejected
        assert!(matches!(
            p.overwrite(0, b"something far longer than before"),
            Err(CcamError::RecordTooLarge { .. })
        ));
        // bad slot is rejected
        assert!(p.overwrite(5, b"x").is_err());
        // survives a round trip
        let q = SlottedPage::from_bytes(p.into_bytes()).unwrap();
        assert_eq!(q.get(0).unwrap(), b"short");
    }

    #[test]
    fn empty_record_ok() {
        let mut p = SlottedPage::new(64);
        let s = p.insert(b"").unwrap();
        assert_eq!(p.get(s).unwrap(), b"");
    }
}
