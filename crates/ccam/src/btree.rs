//! A disk-resident B+-tree mapping `u64` keys to `u64` values.
//!
//! CCAM keeps a B+-tree over node ids (the ids themselves are assigned
//! in Hilbert order) so any node's record address can be found in
//! `O(log n)` page reads (§2.2). The tree here is **bulk-loaded
//! bottom-up** from sorted pairs — the natural fit for CCAM's
//! build-once workload — and searched page-by-page through the buffer
//! pool, so index I/O shows up in the experiment counters.
//!
//! Page layouts (little-endian):
//!
//! ```text
//! leaf:     kind=1: u8 | n: u16 | next_leaf: u64 | n × (key: u64, value: u64)
//! internal: kind=2: u8 | n: u16 | n × key: u64 | (n+1) × child: u64
//! ```
//!
//! In an internal node, `key[i]` is the smallest key in the subtree of
//! `child[i+1]`; descent takes `child[partition_point(key ≤ k)]`.

use std::sync::Arc;

use bytes::{Buf, BufMut};

use crate::buffer::BufferPool;
use crate::{CcamError, Result};

const KIND_LEAF: u8 = 1;
const KIND_INTERNAL: u8 = 2;
const LEAF_HEADER: usize = 1 + 2 + 8;
const INTERNAL_HEADER: usize = 1 + 2;
/// Sentinel "no next leaf".
const NO_LEAF: u64 = u64::MAX;

/// A read-mostly disk B+-tree over a buffer pool.
pub struct BTree {
    pool: Arc<BufferPool>,
    root: u64,
    height: u32,
}

impl BTree {
    /// Max entries per leaf for the pool's page size.
    fn leaf_cap(page_size: usize) -> usize {
        (page_size - LEAF_HEADER) / 16
    }

    /// Max keys per internal node for the pool's page size.
    fn internal_cap(page_size: usize) -> usize {
        (page_size - INTERNAL_HEADER - 8) / 16
    }

    /// Bulk-load a tree from `pairs`, which must be sorted by key with
    /// no duplicates. Returns the tree; its root page id and height can
    /// be persisted and the tree reopened with [`BTree::open`].
    ///
    /// This is a thin wrapper over the streaming [`BTree::bulk_load_from`];
    /// both produce byte-identical trees from the same key sequence.
    pub fn bulk_load(pool: Arc<BufferPool>, pairs: &[(u64, u64)]) -> Result<BTree> {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "bulk_load requires strictly sorted keys"
        );
        Self::bulk_load_from(pool, pairs.iter().copied())
    }

    /// Bulk-load a tree from a *stream* of `(key, value)` pairs in
    /// strictly ascending key order — the bounded-memory entry point
    /// for the parallel bulk builder, which feeds this from external
    /// sorted runs without ever materializing the full pair list.
    ///
    /// Only one leaf of entries plus one `(first_key, page_id)` pair
    /// per leaf is held in memory (the per-leaf index entries are what
    /// the internal levels are built from — 16 bytes per ~127 keys at
    /// the default page size, negligible at any realistic scale).
    ///
    /// Page allocation order — every leaf before any internal node,
    /// leaves in key order — matches the one-shot [`BTree::bulk_load`]
    /// exactly, so the two construct **byte-identical** stores from
    /// the same sequence (pinned by the bulk-load property tests).
    ///
    /// Out-of-order keys are rejected with [`CcamError::Corrupt`].
    pub fn bulk_load_from<I>(pool: Arc<BufferPool>, pairs: I) -> Result<BTree>
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        let page_size = pool.store().page_size();
        let leaf_cap = Self::leaf_cap(page_size).max(1);
        let internal_cap = Self::internal_cap(page_size).max(1);

        // --- leaves, streamed ---
        // The leaf holding the entries not yet written: we can only
        // serialize a leaf once its successor's page id is known (the
        // `next` pointer), i.e. when the first entry *past* it arrives
        // or the stream ends.
        let mut level: Vec<(u64, u64)> = Vec::new(); // (first_key, page_id)
        let mut pending: Option<(u64, Vec<(u64, u64)>)> = None;
        let mut last_key: Option<u64> = None;
        let mut buf = Vec::with_capacity(page_size);
        for (k, v) in pairs {
            if let Some(prev) = last_key {
                if prev >= k {
                    return Err(CcamError::Corrupt(format!(
                        "bulk load stream out of order: key {k} after {prev}"
                    )));
                }
            }
            last_key = Some(k);
            match pending.as_mut() {
                Some((id, entries)) if entries.len() == leaf_cap => {
                    // Full leaf and another entry arrived: its successor
                    // now exists, so allocate it, link, write, move on.
                    let next_id = pool.store().allocate()?;
                    buf.clear();
                    write_leaf(&mut buf, entries, next_id, page_size);
                    pool.write_page(*id, &buf)?;
                    level.push((k, next_id));
                    entries.clear();
                    entries.push((k, v));
                    *id = next_id;
                }
                Some((_, entries)) => entries.push((k, v)),
                None => {
                    let id = pool.store().allocate()?;
                    level.push((k, id));
                    let mut entries = Vec::with_capacity(leaf_cap);
                    entries.push((k, v));
                    pending = Some((id, entries));
                }
            }
        }
        // Final (or sole, or empty-stream) leaf: no successor.
        let (id, entries) = match pending {
            Some(p) => p,
            None => {
                // one empty leaf keeps lookups trivially correct
                let id = pool.store().allocate()?;
                level.push((0, id));
                (id, Vec::new())
            }
        };
        buf.clear();
        write_leaf(&mut buf, &entries, NO_LEAF, page_size);
        pool.write_page(id, &buf)?;

        // --- internal levels ---
        let mut height = 1u32;
        while level.len() > 1 {
            let mut next_level = Vec::with_capacity(level.len() / internal_cap + 1);
            for group in level.chunks(internal_cap + 1) {
                let id = pool.store().allocate()?;
                buf.clear();
                buf.put_u8(KIND_INTERNAL);
                buf.put_u16_le((group.len() - 1) as u16);
                for (k, _) in &group[1..] {
                    buf.put_u64_le(*k);
                }
                for (_, child) in group {
                    buf.put_u64_le(*child);
                }
                buf.resize(page_size, 0);
                pool.write_page(id, &buf)?;
                next_level.push((group[0].0, id));
            }
            level = next_level;
            height += 1;
        }
        pool.flush()?;

        Ok(BTree {
            pool,
            root: level[0].1,
            height,
        })
    }

    /// Reopen a tree whose root/height were persisted elsewhere.
    pub fn open(pool: Arc<BufferPool>, root: u64, height: u32) -> BTree {
        BTree { pool, root, height }
    }

    /// Root page id.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Number of levels (1 = a single leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Look up `key`.
    pub fn get(&self, key: u64) -> Result<Option<u64>> {
        let leaf = self.descend_to_leaf(key)?;
        self.pool.with_page(leaf, |page| {
            // Binary-search the fixed-width entry array in place; the
            // full `parse_leaf` materialization is reserved for
            // structural edits and range scans. This is the hot read
            // path — one call per `node_record`.
            let n = check_leaf(page)?;
            let entries = &page[LEAF_HDR..LEAF_HDR + n * LEAF_ENTRY];
            let (mut lo, mut hi) = (0usize, n);
            while lo < hi {
                let mid = usize::midpoint(lo, hi);
                if read_u64_at(entries, mid * LEAF_ENTRY) < key {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            if lo < n && read_u64_at(entries, lo * LEAF_ENTRY) == key {
                return Ok(Some(read_u64_at(entries, lo * LEAF_ENTRY + 8)));
            }
            Ok(None)
        })?
    }

    /// All pairs with `lo ≤ key ≤ hi`, in key order (walks the leaf
    /// chain).
    pub fn range(&self, lo: u64, hi: u64) -> Result<Vec<(u64, u64)>> {
        let mut out = Vec::new();
        if lo > hi {
            return Ok(out);
        }
        let mut leaf = self.descend_to_leaf(lo)?;
        loop {
            let (done, next) = self.pool.with_page(leaf, |page| {
                let (entries, next) = parse_leaf(page)?;
                for &(k, v) in &entries {
                    if k > hi {
                        return Ok((true, next));
                    }
                    if k >= lo {
                        out.push((k, v));
                    }
                }
                Ok::<(bool, u64), CcamError>((false, next))
            })??;
            if done || next == NO_LEAF {
                break;
            }
            leaf = next;
        }
        Ok(out)
    }

    /// Overwrite the value of an existing `key` in place (no
    /// structural change). Errors with [`CcamError::NotFound`] if the
    /// key is absent.
    pub fn update(&self, key: u64, value: u64) -> Result<()> {
        let leaf = self.descend_to_leaf(key)?;
        let page_size = self.pool.store().page_size();
        let mut image = self.pool.with_page(leaf, |page| page.to_vec())?;
        let (mut entries, next) = parse_leaf(&image)?;
        let idx = entries
            .binary_search_by_key(&key, |&(k, _)| k)
            .map_err(|_| CcamError::NotFound(key))?;
        entries[idx].1 = value;
        image.clear();
        write_leaf(&mut image, &entries, next, page_size);
        self.pool.write_page(leaf, &image)
    }

    /// Insert `key → value`; replaces the value if the key exists.
    ///
    /// Splits full leaves and internal nodes bottom-up, growing a new
    /// root when needed (so `root()`/`height()` can change — persist
    /// them again after inserting).
    pub fn insert(&mut self, key: u64, value: u64) -> Result<()> {
        let page_size = self.pool.store().page_size();
        let leaf_cap = Self::leaf_cap(page_size).max(2);
        let internal_cap = Self::internal_cap(page_size).max(2);

        // Descend, recording the path of (page, child-index) pairs.
        let mut path: Vec<(u64, usize)> = Vec::with_capacity(self.height as usize);
        let mut page_id = self.root;
        for _ in 1..self.height {
            let (keys, children) = self.read_internal(page_id)?;
            let idx = keys.partition_point(|&k| k <= key);
            path.push((page_id, idx));
            page_id = children[idx];
        }

        // Leaf insert.
        let mut image = self.pool.with_page(page_id, |page| page.to_vec())?;
        let (mut entries, next) = parse_leaf(&image)?;
        match entries.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => {
                entries[i].1 = value;
                image.clear();
                write_leaf(&mut image, &entries, next, page_size);
                return self.pool.write_page(page_id, &image);
            }
            Err(i) => entries.insert(i, (key, value)),
        }

        if entries.len() <= leaf_cap {
            image.clear();
            write_leaf(&mut image, &entries, next, page_size);
            return self.pool.write_page(page_id, &image);
        }

        // Split the leaf.
        let mid = entries.len() / 2;
        let right_entries = entries.split_off(mid);
        let right_id = self.pool.store().allocate()?;
        let mut right_image = Vec::with_capacity(page_size);
        write_leaf(&mut right_image, &right_entries, next, page_size);
        self.pool.write_page(right_id, &right_image)?;
        image.clear();
        write_leaf(&mut image, &entries, right_id, page_size);
        self.pool.write_page(page_id, &image)?;

        // Propagate the separator up.
        let mut sep_key = right_entries[0].0;
        let mut sep_child = right_id;
        while let Some((parent, idx)) = path.pop() {
            let (mut keys, mut children) = self.read_internal(parent)?;
            keys.insert(idx, sep_key);
            children.insert(idx + 1, sep_child);
            if keys.len() <= internal_cap {
                self.write_internal_page(parent, &keys, &children)?;
                return Ok(());
            }
            // Split the internal node; the middle key moves up.
            let mid = keys.len() / 2;
            let up_key = keys[mid];
            let right_keys: Vec<u64> = keys[mid + 1..].to_vec();
            let right_children: Vec<u64> = children[mid + 1..].to_vec();
            keys.truncate(mid);
            children.truncate(mid + 1);
            let right_id = self.pool.store().allocate()?;
            self.write_internal_page(parent, &keys, &children)?;
            self.write_internal_page(right_id, &right_keys, &right_children)?;
            sep_key = up_key;
            sep_child = right_id;
        }

        // Root split: grow the tree.
        let new_root = self.pool.store().allocate()?;
        self.write_internal_page(new_root, &[sep_key], &[self.root, sep_child])?;
        self.root = new_root;
        self.height += 1;
        Ok(())
    }

    /// Remove `key`, returning its value if present.
    ///
    /// Deletion is *lazy*: entries are removed from their leaf but
    /// underfull pages are not rebalanced (the classic
    /// vacuum-compacts-later design); lookups and scans remain correct.
    pub fn delete(&self, key: u64) -> Result<Option<u64>> {
        let leaf = self.descend_to_leaf(key)?;
        let page_size = self.pool.store().page_size();
        let mut image = self.pool.with_page(leaf, |page| page.to_vec())?;
        let (mut entries, next) = parse_leaf(&image)?;
        let Ok(idx) = entries.binary_search_by_key(&key, |&(k, _)| k) else {
            return Ok(None);
        };
        let (_, value) = entries.remove(idx);
        image.clear();
        write_leaf(&mut image, &entries, next, page_size);
        self.pool.write_page(leaf, &image)?;
        Ok(Some(value))
    }

    /// Read an internal node's keys and children.
    fn read_internal(&self, page_id: u64) -> Result<(Vec<u64>, Vec<u64>)> {
        self.pool.with_page(page_id, |page| {
            let mut buf = page;
            let kind = buf.get_u8();
            if kind != KIND_INTERNAL {
                return Err(CcamError::Corrupt(format!(
                    "expected internal node, found kind {kind}"
                )));
            }
            let n = buf.get_u16_le() as usize;
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                keys.push(buf.get_u64_le());
            }
            let mut children = Vec::with_capacity(n + 1);
            for _ in 0..=n {
                children.push(buf.get_u64_le());
            }
            Ok((keys, children))
        })?
    }

    /// Write an internal node page.
    fn write_internal_page(&self, page_id: u64, keys: &[u64], children: &[u64]) -> Result<()> {
        let page_size = self.pool.store().page_size();
        let mut buf = Vec::with_capacity(page_size);
        buf.put_u8(KIND_INTERNAL);
        buf.put_u16_le(keys.len() as u16);
        for k in keys {
            buf.put_u64_le(*k);
        }
        for c in children {
            buf.put_u64_le(*c);
        }
        buf.resize(page_size, 0);
        self.pool.write_page(page_id, &buf)
    }

    fn descend_to_leaf(&self, key: u64) -> Result<u64> {
        let mut page_id = self.root;
        for _ in 1..self.height {
            page_id = self.pool.with_page(page_id, |page| {
                // In-place binary search over the key array (children
                // follow right after it) — no materialized key Vec on
                // the read path.
                if page.len() < INTERNAL_HDR || page[0] != KIND_INTERNAL {
                    return Err(CcamError::Corrupt(format!(
                        "expected internal node, found kind {}",
                        page.first().copied().unwrap_or(0)
                    )));
                }
                let n = u16::from_le_bytes([page[1], page[2]]) as usize;
                if INTERNAL_HDR + n * 8 + (n + 1) * 8 > page.len() {
                    return Err(CcamError::Corrupt(format!(
                        "internal node claims {n} keys beyond the page"
                    )));
                }
                let keys = &page[INTERNAL_HDR..INTERNAL_HDR + n * 8];
                // partition_point(|k| k <= key) over the raw key array.
                let (mut lo, mut hi) = (0usize, n);
                while lo < hi {
                    let mid = usize::midpoint(lo, hi);
                    if read_u64_at(keys, mid * 8) <= key {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                Ok(read_u64_at(page, INTERNAL_HDR + n * 8 + lo * 8))
            })??;
        }
        Ok(page_id)
    }
}

/// Serialize a leaf page image into `buf` (cleared by the caller).
fn write_leaf(buf: &mut Vec<u8>, entries: &[(u64, u64)], next: u64, page_size: usize) {
    buf.reserve(page_size);
    buf.put_u8(KIND_LEAF);
    buf.put_u16_le(entries.len() as u16);
    buf.put_u64_le(next);
    for (k, v) in entries {
        buf.put_u64_le(*k);
        buf.put_u64_le(*v);
    }
    buf.resize(page_size, 0);
}

/// Leaf header bytes: kind (1) + entry count (2) + next pointer (8).
const LEAF_HDR: usize = 11;
/// Bytes per leaf entry: key (8) + value (8).
const LEAF_ENTRY: usize = 16;
/// Internal-node header bytes: kind (1) + key count (2).
const INTERNAL_HDR: usize = 3;

/// Validate a leaf header and return its entry count.
fn check_leaf(page: &[u8]) -> Result<usize> {
    if page.len() < LEAF_HDR || page[0] != KIND_LEAF {
        return Err(CcamError::Corrupt(format!(
            "expected leaf, found kind {}",
            page.first().copied().unwrap_or(0)
        )));
    }
    let n = u16::from_le_bytes([page[1], page[2]]) as usize;
    if LEAF_HDR + n * LEAF_ENTRY > page.len() {
        return Err(CcamError::Corrupt(format!(
            "leaf claims {n} entries beyond the page"
        )));
    }
    Ok(n)
}

/// Read a little-endian `u64` at byte offset `at`.
fn read_u64_at(b: &[u8], at: usize) -> u64 {
    let mut w = [0u8; 8];
    w.copy_from_slice(&b[at..at + 8]);
    u64::from_le_bytes(w)
}

/// Parse a leaf page into its entries and next pointer.
fn parse_leaf(page: &[u8]) -> Result<(Vec<(u64, u64)>, u64)> {
    let mut buf = page;
    let kind = buf.get_u8();
    if kind != KIND_LEAF {
        return Err(CcamError::Corrupt(format!(
            "expected leaf, found kind {kind}"
        )));
    }
    let n = buf.get_u16_le() as usize;
    let next = buf.get_u64_le();
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let k = buf.get_u64_le();
        let v = buf.get_u64_le();
        entries.push((k, v));
    }
    Ok((entries, next))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn pool(page_size: usize, frames: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Arc::new(MemStore::new(page_size)), frames))
    }

    #[test]
    fn empty_tree() {
        let t = BTree::bulk_load(pool(256, 8), &[]).unwrap();
        assert_eq!(t.height(), 1);
        assert_eq!(t.get(0).unwrap(), None);
        assert!(t.range(0, 100).unwrap().is_empty());
    }

    #[test]
    fn single_leaf() {
        let pairs: Vec<(u64, u64)> = (0..10).map(|i| (i * 2, i * 100)).collect();
        let t = BTree::bulk_load(pool(2048, 8), &pairs).unwrap();
        assert_eq!(t.height(), 1);
        for (k, v) in &pairs {
            assert_eq!(t.get(*k).unwrap(), Some(*v));
        }
        assert_eq!(t.get(1).unwrap(), None);
        assert_eq!(t.get(999).unwrap(), None);
    }

    #[test]
    fn multi_level_lookup() {
        // page 256 → leaf cap 15, internal cap 15 → 10k keys = 4 levels
        let pairs: Vec<(u64, u64)> = (0..10_000).map(|i| (i * 3 + 1, i)).collect();
        let t = BTree::bulk_load(pool(256, 64), &pairs).unwrap();
        assert!(t.height() >= 3, "height {}", t.height());
        for probe in [0usize, 1, 2, 17, 4999, 9998, 9999] {
            let (k, v) = pairs[probe];
            assert_eq!(t.get(k).unwrap(), Some(v), "key {k}");
        }
        // misses on either side and between keys
        assert_eq!(t.get(0).unwrap(), None);
        assert_eq!(t.get(2).unwrap(), None);
        assert_eq!(t.get(pairs.last().unwrap().0 + 1).unwrap(), None);
    }

    #[test]
    fn range_scans_leaf_chain() {
        let pairs: Vec<(u64, u64)> = (0..1000).map(|i| (i * 2, i)).collect();
        let t = BTree::bulk_load(pool(256, 64), &pairs).unwrap();
        let got = t.range(100, 121).unwrap();
        let want: Vec<(u64, u64)> = pairs
            .iter()
            .copied()
            .filter(|&(k, _)| (100..=121).contains(&k))
            .collect();
        assert_eq!(got, want);
        // full scan
        assert_eq!(t.range(0, u64::MAX - 1).unwrap(), pairs);
        // empty and inverted ranges
        assert!(t.range(1999, 1999).unwrap().is_empty());
        assert!(t.range(50, 10).unwrap().is_empty());
    }

    #[test]
    fn reopen_from_root() {
        let p = pool(256, 64);
        let pairs: Vec<(u64, u64)> = (0..500).map(|i| (i, i + 7)).collect();
        let t = BTree::bulk_load(Arc::clone(&p), &pairs).unwrap();
        let (root, height) = (t.root(), t.height());
        drop(t);
        let t2 = BTree::open(p, root, height);
        assert_eq!(t2.get(300).unwrap(), Some(307));
    }

    #[test]
    fn lookups_touch_few_pages() {
        let p = pool(256, 4096);
        let pairs: Vec<(u64, u64)> = (0..10_000).map(|i| (i, i)).collect();
        let t = BTree::bulk_load(Arc::clone(&p), &pairs).unwrap();
        p.clear().unwrap();
        let before = p.stats().logical_reads();
        t.get(7777).unwrap();
        let after = p.stats().logical_reads();
        assert_eq!(after - before, u64::from(t.height()));
    }

    #[test]
    fn insert_grows_from_empty() {
        let p = pool(128, 64); // leaf cap 7, internal cap 7 → quick splits
        let mut t = BTree::bulk_load(Arc::clone(&p), &[]).unwrap();
        // deterministic pseudo-shuffle of 0..500
        let keys: Vec<u64> = (0..500u64).map(|i| (i * 311) % 500).collect();
        for &k in &keys {
            t.insert(k, k * 10).unwrap();
        }
        assert!(t.height() >= 3, "height {}", t.height());
        for k in 0..500u64 {
            assert_eq!(t.get(k).unwrap(), Some(k * 10), "key {k}");
        }
        assert_eq!(t.get(500).unwrap(), None);
        // leaf chain survives the splits
        let all = t.range(0, 499).unwrap();
        assert_eq!(all.len(), 500);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn insert_replaces_existing() {
        let p = pool(256, 16);
        let mut t = BTree::bulk_load(Arc::clone(&p), &[(5, 50), (9, 90)]).unwrap();
        t.insert(5, 55).unwrap();
        assert_eq!(t.get(5).unwrap(), Some(55));
        assert_eq!(t.get(9).unwrap(), Some(90));
    }

    #[test]
    fn insert_into_bulk_loaded_tree() {
        let p = pool(256, 64);
        let pairs: Vec<(u64, u64)> = (0..300).map(|i| (i * 2, i)).collect();
        let mut t = BTree::bulk_load(Arc::clone(&p), &pairs).unwrap();
        for i in 0..300u64 {
            t.insert(i * 2 + 1, i + 1000).unwrap(); // fill the odd keys
        }
        for i in 0..300u64 {
            assert_eq!(t.get(i * 2).unwrap(), Some(i));
            assert_eq!(t.get(i * 2 + 1).unwrap(), Some(i + 1000));
        }
        assert_eq!(t.range(0, 10_000).unwrap().len(), 600);
    }

    #[test]
    fn update_in_place() {
        let p = pool(256, 16);
        let pairs: Vec<(u64, u64)> = (0..100).map(|i| (i, i)).collect();
        let t = BTree::bulk_load(Arc::clone(&p), &pairs).unwrap();
        t.update(42, 777).unwrap();
        assert_eq!(t.get(42).unwrap(), Some(777));
        assert!(matches!(t.update(1000, 1), Err(CcamError::NotFound(1000))));
        // structure untouched
        assert_eq!(t.range(0, 99).unwrap().len(), 100);
    }

    #[test]
    fn delete_is_lazy_but_correct() {
        let p = pool(256, 64);
        let pairs: Vec<(u64, u64)> = (0..200).map(|i| (i, i)).collect();
        let t = BTree::bulk_load(Arc::clone(&p), &pairs).unwrap();
        assert_eq!(t.delete(50).unwrap(), Some(50));
        assert_eq!(t.delete(50).unwrap(), None);
        assert_eq!(t.get(50).unwrap(), None);
        assert_eq!(t.get(49).unwrap(), Some(49));
        assert_eq!(t.range(0, 199).unwrap().len(), 199);
        // delete everything; scans stay consistent
        for k in 0..200u64 {
            t.delete(k).unwrap();
        }
        assert!(t.range(0, 199).unwrap().is_empty());
    }

    #[test]
    fn mixed_insert_delete_roundtrip() {
        let p = pool(128, 64);
        let mut t = BTree::bulk_load(Arc::clone(&p), &[]).unwrap();
        for k in 0..200u64 {
            t.insert(k, k).unwrap();
        }
        for k in (0..200u64).step_by(2) {
            t.delete(k).unwrap();
        }
        for k in (0..200u64).step_by(2) {
            t.insert(k, k + 1).unwrap(); // reinsert with new values
        }
        for k in 0..200u64 {
            let want = if k % 2 == 0 { k + 1 } else { k };
            assert_eq!(t.get(k).unwrap(), Some(want), "key {k}");
        }
    }

    #[test]
    fn store_pages_match_tree_size() {
        let p = pool(256, 8);
        let pairs: Vec<(u64, u64)> = (0..100).map(|i| (i, i)).collect();
        let t = BTree::bulk_load(Arc::clone(&p), &pairs).unwrap();
        // leaves: ceil(100/15) = 7; internal: 1 → 8 pages
        assert_eq!(p.store().n_pages(), 8);
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn bulk_load_from_rejects_unsorted_stream() {
        let out_of_order = vec![(5u64, 0u64), (3, 0)];
        assert!(matches!(
            BTree::bulk_load_from(pool(256, 8), out_of_order),
            Err(CcamError::Corrupt(_))
        ));
        let duplicate = vec![(5u64, 0u64), (5, 1)];
        assert!(matches!(
            BTree::bulk_load_from(pool(256, 8), duplicate),
            Err(CcamError::Corrupt(_))
        ));
    }

    /// All page images of a store, for byte-identity comparisons.
    fn page_images(p: &BufferPool) -> Vec<Vec<u8>> {
        let store = p.store();
        let mut out = Vec::new();
        for id in 0..store.n_pages() {
            let mut buf = vec![0u8; store.page_size()];
            store.read_page(id, &mut buf).unwrap();
            out.push(buf);
        }
        out
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Sorted, deduplicated key/value sets from a few hundred up
        /// to several thousand pairs — large enough for 3–4 level
        /// trees at page size 256 — plus sparse and adversarially
        /// dense key spacings.
        fn arb_pairs() -> impl Strategy<Value = Vec<(u64, u64)>> {
            (1usize..4000, 1u64..1000, 0u64..u64::MAX).prop_map(|(n, stride_hint, salt)| {
                let stride = stride_hint.max(1);
                (0..n as u64)
                    .map(|i| (i * stride + (salt % stride.clamp(1, 7)), i ^ salt))
                    .collect()
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig {
                cases: 32,
                ..ProptestConfig::default()
            })]

            /// A full range scan of a bulk-loaded tree reproduces the
            /// sorted input exactly, and point lookups hit every key.
            #[test]
            fn range_scan_equals_sorted_input(pairs in arb_pairs()) {
                let p = pool(256, 512);
                let t = BTree::bulk_load(Arc::clone(&p), &pairs).unwrap();
                prop_assert_eq!(t.range(0, u64::MAX - 1).unwrap(), pairs.clone());
                // spot-check point lookups across the key space
                let step = (pairs.len() / 17).max(1);
                for (k, v) in pairs.iter().step_by(step) {
                    prop_assert_eq!(t.get(*k).unwrap(), Some(*v));
                }
                prop_assert_eq!(t.get(pairs.last().unwrap().0 + 1).unwrap(), None);
            }

            /// Feeding the pairs as chained external sorted chunks
            /// through the streaming `bulk_load_from` yields the same
            /// root/height and **byte-identical pages** as the
            /// one-shot slice load — the invariant the parallel bulk
            /// builder's external-run merge relies on.
            #[test]
            fn chunked_stream_build_is_byte_identical(
                pairs in arb_pairs(),
                chunk in 1usize..257,
            ) {
                let p1 = pool(256, 512);
                let t1 = BTree::bulk_load(Arc::clone(&p1), &pairs).unwrap();
                let p2 = pool(256, 512);
                let chunks: Vec<Vec<(u64, u64)>> =
                    pairs.chunks(chunk).map(<[_]>::to_vec).collect();
                let t2 = BTree::bulk_load_from(
                    Arc::clone(&p2),
                    chunks.into_iter().flatten(),
                )
                .unwrap();
                prop_assert_eq!(t1.root(), t2.root());
                prop_assert_eq!(t1.height(), t2.height());
                prop_assert_eq!(page_images(&p1), page_images(&p2));
            }
        }
    }
}
