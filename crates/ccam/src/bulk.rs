//! Parallel, bounded-memory CCAM bulk builder.
//!
//! [`CcamStore::build`] materializes a full [`roadnet::RoadNetwork`]
//! first — per-node adjacency `Vec`s dominate memory and the build is
//! single-threaded. At the continental tier (10⁶ nodes, §6.1 scaled
//! up) that is the limiting factor, so this module rebuilds the same
//! store as a streaming pipeline over any [`NetworkSource`]:
//!
//! 1. **Locations & degrees** (parallel): one pass over the source
//!    collecting node locations and out-degrees — the only per-node
//!    state the builder ever holds (tens of bytes per node; edges are
//!    re-derived from the source exactly when a page is encoded).
//! 2. **Hilbert keys** (parallel) + one serial sort: identical keys to
//!    [`crate::hilbert::hilbert_order`] because the bounding-box frame
//!    is the only shared state and min/max reduction is
//!    order-independent.
//! 3. **Page packing** (serial scan, parallel encode): the page-break
//!    scan replays [`PlacementPolicy::HilbertPacked`]'s byte-budget
//!    rule over precomputed record costs, then workers encode and
//!    write disjoint page ranges directly to the (thread-safe) block
//!    store.
//! 4. **Index** : each worker's `(node id → record address)` run is
//!    sorted locally and the runs are k-way merged into the streaming
//!    [`BTree::bulk_load_from`] — the tree never sees a full
//!    materialized pair list.
//!
//! The result is **byte-identical** to
//! `CcamStore::build(net, store, PlacementPolicy::HilbertPacked, ..)`
//! over the materialized network, at every thread count — pinned by
//! this module's tests and the cross-store golden suite. Determinism
//! falls out of the design rather than of luck: every parallel phase
//! writes to disjoint, position-addressed slots, and every ordering
//! decision (key sort, page breaks, index order) happens on a single
//! thread over data whose values are thread-count-invariant.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use roadnet::{Edge, NetworkSource, NodeId, Point};
use traffic::CapeCodPattern;

use crate::btree::BTree;
use crate::buffer::BufferPool;
use crate::ccam::{encode_patterns, write_superblock, CcamStore};
use crate::hilbert::HilbertFrame;
use crate::page::SlottedPage;
use crate::record::{EdgeRecord, NodeRecord};
use crate::store::BlockStore;
use crate::{CcamError, Result};

/// Knobs for [`build_bulk`].
#[derive(Debug, Clone, Copy)]
pub struct BulkBuildConfig {
    /// Worker threads for the parallel phases (clamped to ≥ 1). The
    /// output is byte-identical at every value.
    pub threads: usize,
    /// Buffer-pool frames for the returned [`CcamStore`].
    pub pool_frames: usize,
}

impl Default for BulkBuildConfig {
    fn default() -> Self {
        BulkBuildConfig {
            threads: 1,
            pool_frames: 256,
        }
    }
}

/// What a bulk build did, for capacity planning and the bench report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BulkBuildStats {
    /// Nodes written.
    pub n_nodes: usize,
    /// Slotted data pages written.
    pub data_pages: u64,
    /// Total pages in the store (superblock + patterns + data + index).
    pub total_pages: u64,
    /// Peak bytes of tracked transient builder state (locations,
    /// degrees, sorted keys, address runs) — the working set that
    /// *replaces* a materialized network. Excludes per-worker page
    /// scratch (one page image per thread).
    pub transient_bytes: usize,
}

/// Build a CCAM store from any [`NetworkSource`] without materializing
/// it, using `cfg.threads` workers; returns the opened store and build
/// stats. `patterns` is the pattern table to persist (a lazy source
/// has no owned pattern slice; pass the schema's patterns).
///
/// `store` must be empty. Layout and bytes match
/// [`CcamStore::build`] with [`PlacementPolicy::HilbertPacked`].
///
/// [`PlacementPolicy::HilbertPacked`]: crate::PlacementPolicy::HilbertPacked
pub fn build_bulk<S>(
    src: &S,
    patterns: &[CapeCodPattern],
    store: Arc<dyn BlockStore>,
    cfg: &BulkBuildConfig,
) -> Result<(CcamStore, BulkBuildStats)>
where
    S: NetworkSource + Sync + ?Sized,
{
    if store.n_pages() != 0 {
        return Err(CcamError::Corrupt("store not empty".into()));
    }
    let page_size = store.page_size();
    let threads = cfg.threads.max(1);
    let n = src.n_nodes();

    // page 0: superblock placeholder (rewritten at the end)
    let sb_page = store.allocate()?;
    debug_assert_eq!(sb_page, 0);

    // pattern table
    let pattern_bytes = encode_patterns(patterns)?;
    let pattern_start = store.n_pages();
    let n_pattern_pages = pattern_bytes.len().div_ceil(page_size).max(1);
    for chunk_idx in 0..n_pattern_pages {
        let id = store.allocate()?;
        let mut page = vec![0u8; page_size];
        let lo = chunk_idx * page_size;
        let hi = (lo + page_size).min(pattern_bytes.len());
        if lo < pattern_bytes.len() {
            page[..hi - lo].copy_from_slice(&pattern_bytes[lo..hi]);
        }
        store.write_page(id, &page)?;
    }

    // --- phase 1: locations and out-degrees, in parallel ---
    let mut pts: Vec<Point> = vec![Point { x: 0.0, y: 0.0 }; n];
    let mut degrees: Vec<u16> = vec![0; n];
    run_chunked(threads, pts.len(), &mut pts, &mut degrees, |lo, p, d| {
        let mut edges: Vec<Edge> = Vec::new();
        for (off, (pt, deg)) in p.iter_mut().zip(d.iter_mut()).enumerate() {
            let node = NodeId((lo + off) as u32);
            *pt = src.find_node(node).map_err(CcamError::Network)?;
            src.successors_into(node, &mut edges)
                .map_err(CcamError::Network)?;
            *deg = edges.len() as u16;
        }
        Ok(())
    })?;

    // --- phase 2: Hilbert keys (parallel) + one serial sort ---
    // The sort key is the same `(hilbert key, node id)` pair
    // `hilbert_order` sorts by, so the permutation is identical.
    let frame = HilbertFrame::of(&pts);
    let mut keyed: Vec<(u64, u32)> = vec![(0, 0); n];
    if let Some(frame) = frame {
        let mut unit: Vec<()> = vec![(); n];
        run_chunked(threads, n, &mut keyed, &mut unit, |lo, k, _| {
            for (off, slot) in k.iter_mut().enumerate() {
                *slot = (frame.key(pts[lo + off]), (lo + off) as u32);
            }
            Ok(())
        })?;
    }
    keyed.sort_unstable();

    // --- phase 3a: serial page-break scan (HilbertPacked byte rule) ---
    let budget = page_size.saturating_sub(4); // page header
    let mut page_starts: Vec<u32> = Vec::new(); // index into `keyed`
    let mut used = 0usize;
    for (pos, &(_, id)) in keyed.iter().enumerate() {
        let cost = NodeRecord::encoded_len_for(usize::from(degrees[id as usize])) + 4;
        if (used + cost > budget && used > 0) || pos == 0 {
            page_starts.push(pos as u32);
            used = 0;
        }
        used += cost;
    }
    let first_data_page = store.n_pages();
    for _ in 0..page_starts.len() {
        store.allocate()?;
    }
    let data_pages = page_starts.len() as u64;

    // --- phase 3b: encode and write pages, in parallel ---
    // Worker w owns pages w, w+threads, … — disjoint page ids, so the
    // only synchronization is the store's own write path. Each worker
    // also accumulates its `(node id, packed address)` run.
    let next_page = AtomicUsize::new(0);
    let mut runs: Vec<Vec<(u64, u64)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| -> Result<()> {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (keyed, page_starts, pts, next_page, store) =
                (&keyed, &page_starts, &pts, &next_page, &store);
            handles.push(scope.spawn(move || -> Result<Vec<(u64, u64)>> {
                let mut run: Vec<(u64, u64)> = Vec::new();
                let mut edges: Vec<Edge> = Vec::new();
                let mut rec_buf: Vec<u8> = Vec::new();
                loop {
                    let p = next_page.fetch_add(1, Ordering::Relaxed);
                    if p >= page_starts.len() {
                        break;
                    }
                    let lo = page_starts[p] as usize;
                    let hi = page_starts.get(p + 1).map_or(keyed.len(), |&s| s as usize);
                    let page_id = first_data_page + p as u64;
                    let mut page = SlottedPage::new(page_size);
                    for &(_, id) in &keyed[lo..hi] {
                        let node = NodeId(id);
                        src.successors_into(node, &mut edges)
                            .map_err(CcamError::Network)?;
                        let rec = NodeRecord {
                            id: node,
                            loc: pts[id as usize],
                            edges: edges.iter().map(EdgeRecord::from).collect(),
                        };
                        rec_buf.clear();
                        rec.encode(&mut rec_buf);
                        let slot = page.insert(&rec_buf)?;
                        run.push((u64::from(id), (page_id << 16) | u64::from(slot)));
                    }
                    store.write_page(page_id, page.as_bytes())?;
                }
                run.sort_unstable();
                Ok(run)
            }));
        }
        for h in handles {
            match h.join() {
                Ok(run) => runs.push(run?),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        Ok(())
    })?;

    // Transient working set peaks here: every phase-1/2 array plus the
    // address runs are alive at once.
    let transient_bytes = pts.len() * std::mem::size_of::<Point>()
        + degrees.len() * 2
        + keyed.len() * std::mem::size_of::<(u64, u32)>()
        + runs.iter().map(Vec::len).sum::<usize>() * 16;
    drop(pts);
    drop(degrees);
    drop(keyed);

    // --- phase 4: k-way merge the runs into the streaming B+-tree ---
    let pool = Arc::new(BufferPool::new(Arc::clone(&store), cfg.pool_frames));
    let btree = BTree::bulk_load_from(Arc::clone(&pool), MergeRuns::new(runs))?;

    write_superblock(
        &pool,
        n as u64,
        btree.root(),
        btree.height(),
        pattern_start,
        n_pattern_pages,
        pattern_bytes.len(),
    )?;
    pool.flush()?;
    drop(btree);
    drop(pool);

    let total_pages = store.n_pages();
    let ccam = CcamStore::open(store, cfg.pool_frames)?;
    Ok((
        ccam,
        BulkBuildStats {
            n_nodes: n,
            data_pages,
            total_pages,
            transient_bytes,
        },
    ))
}

/// Run `work` over `threads` disjoint contiguous chunks of two
/// equal-length slices (`a`, `b`), passing each worker its chunk start.
/// Position-addressed writes only — no ordering decisions — so results
/// are thread-count-invariant.
fn run_chunked<A: Send, B: Send>(
    threads: usize,
    len: usize,
    a: &mut [A],
    b: &mut [B],
    work: impl Fn(usize, &mut [A], &mut [B]) -> Result<()> + Sync,
) -> Result<()> {
    debug_assert_eq!(a.len(), len);
    debug_assert_eq!(b.len(), len);
    if len == 0 {
        return Ok(());
    }
    let chunk = len.div_ceil(threads.max(1));
    std::thread::scope(|scope| -> Result<()> {
        let mut handles = Vec::new();
        for (idx, (ca, cb)) in a.chunks_mut(chunk).zip(b.chunks_mut(chunk)).enumerate() {
            let work = &work;
            handles.push(scope.spawn(move || work(idx * chunk, ca, cb)));
        }
        for h in handles {
            match h.join() {
                Ok(r) => r?,
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        Ok(())
    })
}

/// K-way merge of locally sorted `(key, value)` runs, consumed lazily
/// by [`BTree::bulk_load_from`]. Keys across runs are globally unique
/// (each node id lands in exactly one page, hence one run), so the
/// merged stream is strictly ascending.
struct MergeRuns {
    /// Min-heap of `(next key, next value, run index)` via `Reverse`.
    heap: BinaryHeap<std::cmp::Reverse<(u64, u64, usize)>>,
    /// Cursor per run.
    cursors: Vec<(Vec<(u64, u64)>, usize)>,
}

impl MergeRuns {
    fn new(runs: Vec<Vec<(u64, u64)>>) -> Self {
        let mut heap = BinaryHeap::with_capacity(runs.len());
        let mut cursors = Vec::with_capacity(runs.len());
        for (i, run) in runs.into_iter().enumerate() {
            if let Some(&(k, v)) = run.first() {
                heap.push(std::cmp::Reverse((k, v, i)));
            }
            cursors.push((run, 1));
        }
        MergeRuns { heap, cursors }
    }
}

impl Iterator for MergeRuns {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        let std::cmp::Reverse((k, v, i)) = self.heap.pop()?;
        let (run, cursor) = &mut self.cursors[i];
        if let Some(&(nk, nv)) = run.get(*cursor) {
            *cursor += 1;
            self.heap.push(std::cmp::Reverse((nk, nv, i)));
        }
        Some((k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use crate::{PlacementPolicy, DEFAULT_PAGE_SIZE};
    use roadnet::generators::grid;
    use roadnet::RoadNetwork;
    use traffic::RoadClass;

    fn page_images(store: &dyn BlockStore) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for id in 0..store.n_pages() {
            let mut buf = vec![0u8; store.page_size()];
            store.read_page(id, &mut buf).unwrap();
            out.push(buf);
        }
        out
    }

    fn reference_store(net: &RoadNetwork) -> Arc<MemStore> {
        let store = Arc::new(MemStore::new(DEFAULT_PAGE_SIZE));
        CcamStore::build(
            net,
            Arc::<MemStore>::clone(&store) as Arc<dyn BlockStore>,
            PlacementPolicy::HilbertPacked,
            64,
        )
        .unwrap();
        store
    }

    #[test]
    fn bulk_build_matches_reference_bytes_at_every_thread_count() {
        let net = grid(17, 13, 0.2, RoadClass::LocalBoston).unwrap();
        let reference = page_images(&*reference_store(&net));
        for threads in [1usize, 2, 4] {
            let store = Arc::new(MemStore::new(DEFAULT_PAGE_SIZE));
            let cfg = BulkBuildConfig {
                threads,
                pool_frames: 64,
            };
            let (ccam, stats) = build_bulk(
                &net,
                net.patterns(),
                Arc::<MemStore>::clone(&store) as Arc<dyn BlockStore>,
                &cfg,
            )
            .unwrap();
            assert_eq!(stats.n_nodes, net.n_nodes());
            assert_eq!(stats.total_pages, reference.len() as u64);
            assert_eq!(
                page_images(&*store),
                reference,
                "bulk build with {threads} threads diverged from CcamStore::build"
            );
            // and the returned handle serves the network
            for node in net.node_ids().step_by(37) {
                let rec = ccam.node_record(node).unwrap();
                assert_eq!(&rec.loc, net.point(node).unwrap());
                assert_eq!(rec.edges.len(), net.neighbors(node).unwrap().len());
            }
        }
    }

    #[test]
    fn bulk_build_empty_network() {
        let net = RoadNetwork::empty();
        let store = Arc::new(MemStore::new(DEFAULT_PAGE_SIZE));
        let (ccam, stats) = build_bulk(
            &net,
            net.patterns(),
            store as Arc<dyn BlockStore>,
            &BulkBuildConfig::default(),
        )
        .unwrap();
        assert_eq!(stats.n_nodes, 0);
        assert_eq!(stats.data_pages, 0);
        assert_eq!(roadnet::NetworkSource::n_nodes(&ccam), 0);
    }

    #[test]
    fn bulk_build_rejects_dirty_store() {
        let net = grid(3, 3, 0.5, RoadClass::LocalOutside).unwrap();
        let store = Arc::new(MemStore::new(DEFAULT_PAGE_SIZE));
        store.allocate().unwrap();
        assert!(build_bulk(
            &net,
            net.patterns(),
            store as Arc<dyn BlockStore>,
            &BulkBuildConfig::default(),
        )
        .is_err());
    }

    #[test]
    fn merge_runs_interleaves() {
        let runs = vec![vec![(1, 10), (4, 40)], vec![(2, 20)], vec![], vec![(3, 30)]];
        let merged: Vec<(u64, u64)> = MergeRuns::new(runs).collect();
        assert_eq!(merged, vec![(1, 10), (2, 20), (3, 30), (4, 40)]);
    }
}
