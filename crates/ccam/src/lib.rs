//! CCAM — the Connectivity-Clustered Access Method storage substrate.
//!
//! The paper stores the road network on disk using CCAM (Shekhar &
//! Liu, TKDE 1997; §2.2 of the ICDE 2006 paper): node records —
//! location plus adjacency list with per-edge distance and speed
//! pattern — are packed into disk pages so that *connected nodes tend
//! to share a page*, and a B+-tree over node ids (ordered by the
//! Hilbert values of node locations) locates any record.
//!
//! This crate is a small but real storage engine:
//!
//! * [`store`] — the block layer: fixed-size pages over a file or
//!   memory, with physical I/O counters;
//! * [`MmapStore`] — a read-only memory-mapped block store serving
//!   zero-copy page borrows (checksum-verified on first touch), so
//!   graphs larger than RAM query through the OS page cache;
//! * [`page`] — slotted 2048-byte data pages;
//! * [`record`] — binary encoding of node records
//!   (`bytes`-based, round-trip tested);
//! * [`hilbert`] — Hilbert curve ordering of node locations (the
//!   one-dimensional ordering CCAM clusters by);
//! * [`partition`] — page-packing policies: connectivity-clustered
//!   (CCAM proper), plain Hilbert packing, and random packing (the
//!   ablation baseline);
//! * [`btree`] — a disk-resident B+-tree mapping node id → record
//!   address, bulk-loaded bottom-up (one-shot or streamed from
//!   external sorted runs) and searchable page-by-page;
//! * [`build_bulk`] — a parallel, bounded-memory bulk builder that
//!   streams any [`roadnet::NetworkSource`] straight to pages,
//!   byte-identical to [`CcamStore::build`] at every thread count,
//!   without ever materializing the full network;
//! * [`buffer`] — an LRU buffer pool with pin counts and hit/miss
//!   statistics;
//! * [`CcamStore`] — the assembled access method implementing
//!   [`roadnet::NetworkSource`] (`FindNode` / `GetSuccessor`), so the
//!   query engine runs unchanged over disk-resident networks;
//! * [`integrity`] — per-page CRC32 checksums ([`ChecksummedStore`])
//!   so a bit-flipped page is detected on read, never served as data;
//! * [`fault`] — a deterministic seeded fault injector
//!   ([`FaultInjectingStore`]) for exercising the retry and
//!   corruption-detection paths under test.

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod btree;
mod buffer;
mod bulk;
mod ccam;
mod hilbert;
mod mmap;
mod page;
mod partition;
mod record;
mod store;

pub mod fault;
pub mod integrity;

pub use btree::BTree;
pub use buffer::{BufferPool, BufferStats};
pub use bulk::{build_bulk, BulkBuildConfig, BulkBuildStats};
pub use ccam::{CcamStore, StoreStats};
pub use fault::{FaultEvent, FaultInjectingStore, FaultKind, FaultPlan};
pub use hilbert::{hilbert_d2xy, hilbert_order, hilbert_xy2d};
pub use integrity::{crc32, ChecksummedStore};
pub use mmap::MmapStore;
pub use page::SlottedPage;
pub use partition::{partition_assignment, partition_nodes, Partitioning, PlacementPolicy};
pub use record::{EdgeRecord, NodeRecord};
pub use store::{BlockStore, FileStore, IoStats, MemStore};

/// Default page size, matching the paper's experiments ("we set the
/// page size to 2048 bytes", §6.1).
pub const DEFAULT_PAGE_SIZE: usize = 2048;

/// Errors from the storage layer.
#[derive(Debug)]
pub enum CcamError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A page id beyond the end of the store.
    BadPage(u64),
    /// A record failed to decode (corruption or version mismatch).
    Corrupt(String),
    /// A record was too large for a page.
    RecordTooLarge {
        /// Encoded record size in bytes.
        need: usize,
        /// Page capacity in bytes.
        page: usize,
    },
    /// Key not found in the index.
    NotFound(u64),
    /// A store file's header records a different page size than the
    /// caller asked to open it with. Typed (rather than a generic
    /// header failure) so callers can retry with the recorded size.
    PageSizeMismatch {
        /// Page size recorded in the file header.
        stored: u32,
        /// Page size the caller asked for.
        requested: usize,
    },
    /// Propagated network-layer error.
    Network(roadnet::NetworkError),
    /// A page failed its CRC32 integrity check on read. The stored
    /// bytes are wrong; this is never retryable (contrast
    /// [`CcamError::TransientIo`]).
    Corruption {
        /// Page whose checksum failed.
        page: u64,
        /// CRC32 recorded in the page header.
        stored: u32,
        /// CRC32 recomputed over the payload read back.
        computed: u32,
    },
    /// A transient I/O fault (injected or environmental) that may
    /// succeed if retried; the buffer pool absorbs these with bounded
    /// retry-with-backoff.
    TransientIo {
        /// Page whose access faulted.
        page: u64,
        /// Which operation faulted.
        op: IoOp,
    },
}

/// Which half of the block interface an I/O fault hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// `read_page`.
    Read,
    /// `write_page`.
    Write,
}

impl CcamError {
    /// Whether this failure is worth retrying: transient faults clear
    /// on their own, and an OS-interrupted syscall may succeed if
    /// reissued. Corruption and every other class are permanent.
    pub fn is_transient(&self) -> bool {
        match self {
            CcamError::TransientIo { .. } => true,
            CcamError::Io(e) => e.kind() == std::io::ErrorKind::Interrupted,
            _ => false,
        }
    }
}

impl std::fmt::Display for CcamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CcamError::Io(e) => write!(f, "io error: {e}"),
            CcamError::BadPage(p) => write!(f, "bad page id {p}"),
            CcamError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            CcamError::RecordTooLarge { need, page } => {
                write!(f, "record of {need} bytes exceeds page capacity {page}")
            }
            CcamError::NotFound(k) => write!(f, "key {k} not found"),
            CcamError::PageSizeMismatch { stored, requested } => {
                write!(
                    f,
                    "store was built with page size {stored}, not {requested}"
                )
            }
            CcamError::Network(e) => write!(f, "network error: {e}"),
            CcamError::Corruption {
                page,
                stored,
                computed,
            } => write!(
                f,
                "page {page} failed integrity check: stored crc {stored:#010x}, computed {computed:#010x}"
            ),
            CcamError::TransientIo { page, op } => {
                write!(f, "transient {op:?} fault on page {page}")
            }
        }
    }
}

impl std::error::Error for CcamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CcamError::Io(e) => Some(e),
            CcamError::Network(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CcamError {
    fn from(e: std::io::Error) -> Self {
        CcamError::Io(e)
    }
}

impl From<roadnet::NetworkError> for CcamError {
    fn from(e: roadnet::NetworkError) -> Self {
        CcamError::Network(e)
    }
}

/// Convenient `Result` alias for this crate.
pub type Result<T> = std::result::Result<T, CcamError>;
