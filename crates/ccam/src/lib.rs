//! CCAM — the Connectivity-Clustered Access Method storage substrate.
//!
//! The paper stores the road network on disk using CCAM (Shekhar &
//! Liu, TKDE 1997; §2.2 of the ICDE 2006 paper): node records —
//! location plus adjacency list with per-edge distance and speed
//! pattern — are packed into disk pages so that *connected nodes tend
//! to share a page*, and a B+-tree over node ids (ordered by the
//! Hilbert values of node locations) locates any record.
//!
//! This crate is a small but real storage engine:
//!
//! * [`store`] — the block layer: fixed-size pages over a file or
//!   memory, with physical I/O counters;
//! * [`page`] — slotted 2048-byte data pages;
//! * [`record`] — binary encoding of node records
//!   (`bytes`-based, round-trip tested);
//! * [`hilbert`] — Hilbert curve ordering of node locations (the
//!   one-dimensional ordering CCAM clusters by);
//! * [`partition`] — page-packing policies: connectivity-clustered
//!   (CCAM proper), plain Hilbert packing, and random packing (the
//!   ablation baseline);
//! * [`btree`] — a disk-resident B+-tree mapping node id → record
//!   address, bulk-loaded bottom-up and searchable page-by-page;
//! * [`buffer`] — an LRU buffer pool with pin counts and hit/miss
//!   statistics;
//! * [`CcamStore`] — the assembled access method implementing
//!   [`roadnet::NetworkSource`] (`FindNode` / `GetSuccessor`), so the
//!   query engine runs unchanged over disk-resident networks.

mod btree;
mod buffer;
mod ccam;
mod hilbert;
mod page;
mod partition;
mod record;
mod store;

pub use btree::BTree;
pub use buffer::{BufferPool, BufferStats};
pub use ccam::{CcamStore, StoreStats};
pub use hilbert::{hilbert_d2xy, hilbert_order, hilbert_xy2d};
pub use page::SlottedPage;
pub use partition::{partition_nodes, Partitioning, PlacementPolicy};
pub use record::{EdgeRecord, NodeRecord};
pub use store::{BlockStore, FileStore, IoStats, MemStore};

/// Default page size, matching the paper's experiments ("we set the
/// page size to 2048 bytes", §6.1).
pub const DEFAULT_PAGE_SIZE: usize = 2048;

/// Errors from the storage layer.
#[derive(Debug)]
pub enum CcamError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A page id beyond the end of the store.
    BadPage(u64),
    /// A record failed to decode (corruption or version mismatch).
    Corrupt(String),
    /// A record was too large for a page.
    RecordTooLarge {
        /// Encoded record size in bytes.
        need: usize,
        /// Page capacity in bytes.
        page: usize,
    },
    /// Key not found in the index.
    NotFound(u64),
    /// Propagated network-layer error.
    Network(roadnet::NetworkError),
}

impl std::fmt::Display for CcamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CcamError::Io(e) => write!(f, "io error: {e}"),
            CcamError::BadPage(p) => write!(f, "bad page id {p}"),
            CcamError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            CcamError::RecordTooLarge { need, page } => {
                write!(f, "record of {need} bytes exceeds page capacity {page}")
            }
            CcamError::NotFound(k) => write!(f, "key {k} not found"),
            CcamError::Network(e) => write!(f, "network error: {e}"),
        }
    }
}

impl std::error::Error for CcamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CcamError::Io(e) => Some(e),
            CcamError::Network(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CcamError {
    fn from(e: std::io::Error) -> Self {
        CcamError::Io(e)
    }
}

impl From<roadnet::NetworkError> for CcamError {
    fn from(e: roadnet::NetworkError) -> Self {
        CcamError::Network(e)
    }
}

/// Convenient `Result` alias for this crate.
pub type Result<T> = std::result::Result<T, CcamError>;
