//! Page-packing policies.
//!
//! CCAM's defining idea is to "preserve the connectivity relationship
//! by heuristically partitioning the graph" so that a node and its
//! neighbors tend to live on the same disk page (§2.2). We implement
//! three placements:
//!
//! * [`PlacementPolicy::ConnectivityClustered`] — CCAM proper: walk
//!   nodes in Hilbert order, grow each page by BFS over unassigned
//!   neighbors until the page is byte-full;
//! * [`PlacementPolicy::HilbertPacked`] — pack nodes in plain Hilbert
//!   order (spatial, but connectivity-blind);
//! * [`PlacementPolicy::Random`] — shuffled packing, the ablation
//!   baseline showing what clustering buys.

use std::collections::VecDeque;

use roadnet::{Edge, NetworkSource, NodeId, RoadNetwork};

use crate::hilbert::hilbert_order;
use crate::record::NodeRecord;
use crate::Result;

/// How node records are assigned to data pages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlacementPolicy {
    /// CCAM: Hilbert-seeded BFS clustering (default).
    ConnectivityClustered,
    /// Plain Hilbert-order packing.
    HilbertPacked,
    /// Seeded random packing (ablation baseline).
    Random {
        /// Shuffle seed.
        seed: u64,
    },
}

/// The result of partitioning: for each data page, the node ids stored
/// on it, in insertion order.
#[derive(Debug, Clone, PartialEq)]
pub struct Partitioning {
    /// Node ids per page.
    pub pages: Vec<Vec<NodeId>>,
}

impl Partitioning {
    /// Flatten the page list into a per-node group assignment:
    /// `assignment()[node] == page index holding that node`.
    ///
    /// This is the shape the boundary-estimator and cluster-sharding
    /// layers consume ([`partition_assignment`] wraps the whole
    /// pipeline). [`partition_nodes`] assigns every node id below
    /// `n_nodes` exactly once, so the result is total by construction;
    /// a debug assertion guards that contract.
    pub fn assignment(&self, n_nodes: usize) -> Vec<u32> {
        let mut group_of = vec![u32::MAX; n_nodes];
        for (g, nodes) in self.pages.iter().enumerate() {
            for n in nodes {
                group_of[n.index()] = g as u32;
            }
        }
        debug_assert!(
            group_of.iter().all(|&g| g != u32::MAX),
            "partition_nodes left a node unassigned"
        );
        group_of
    }

    /// Fraction of directed edges whose endpoints share a page — the
    /// clustering quality CCAM optimizes (higher is better).
    pub fn connectivity_ratio(&self, net: &RoadNetwork) -> f64 {
        let mut page_of = vec![u32::MAX; net.n_nodes()];
        for (p, nodes) in self.pages.iter().enumerate() {
            for n in nodes {
                page_of[n.index()] = p as u32;
            }
        }
        let mut total = 0usize;
        let mut same = 0usize;
        for u in net.node_ids() {
            // node ids straight from the network are always valid
            let Ok(edges) = net.neighbors(u) else {
                continue;
            };
            for e in edges {
                total += 1;
                if page_of[u.index()] == page_of[e.to.index()] {
                    same += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            same as f64 / total as f64
        }
    }
}

/// Encoded record size of `node` (header + slot-directory entry);
/// `edges` is a reused scratch buffer.
fn record_cost<S: NetworkSource + ?Sized>(
    net: &S,
    node: NodeId,
    edges: &mut Vec<Edge>,
) -> Result<usize> {
    net.successors_into(node, edges)?;
    Ok(NodeRecord::encoded_len_for(edges.len()) + 4) // slot entry
}

/// Partition all nodes of `net` into pages of `page_size` bytes under
/// `policy`.
///
/// Generic over [`NetworkSource`] so a lazily generated network (the
/// continental tier) or a disk-resident one can be partitioned without
/// materializing a [`RoadNetwork`]; node ids are `0..n_nodes()` by the
/// source contract.
pub fn partition_nodes<S: NetworkSource + ?Sized>(
    net: &S,
    policy: PlacementPolicy,
    page_size: usize,
) -> Result<Partitioning> {
    let budget = page_size.saturating_sub(4); // page header
    let mut scratch: Vec<Edge> = Vec::new();
    let order: Vec<usize> = match policy {
        PlacementPolicy::ConnectivityClustered | PlacementPolicy::HilbertPacked => {
            let mut pts = Vec::with_capacity(net.n_nodes());
            for i in 0..net.n_nodes() {
                pts.push(net.find_node(NodeId(i as u32))?);
            }
            hilbert_order(&pts)
        }
        PlacementPolicy::Random { seed } => {
            // deterministic xorshift shuffle (no rand dependency here)
            let mut idx: Vec<usize> = (0..net.n_nodes()).collect();
            let mut state = seed | 1;
            for i in (1..idx.len()).rev() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                idx.swap(i, (state % (i as u64 + 1)) as usize);
            }
            idx
        }
    };

    if !matches!(policy, PlacementPolicy::ConnectivityClustered) {
        // Sequential packing in the chosen order.
        let mut pages: Vec<Vec<NodeId>> = Vec::new();
        let mut page: Vec<NodeId> = Vec::new();
        let mut used = 0usize;
        for &i in &order {
            let n = NodeId(i as u32);
            let cost = record_cost(net, n, &mut scratch)?;
            if used + cost > budget && !page.is_empty() {
                pages.push(std::mem::take(&mut page));
                used = 0;
            }
            page.push(n);
            used += cost;
        }
        if !page.is_empty() {
            pages.push(page);
        }
        return Ok(Partitioning { pages });
    }

    // CCAM: Hilbert-seeded BFS growth.
    let mut assigned = vec![false; net.n_nodes()];
    let mut pages: Vec<Vec<NodeId>> = Vec::new();
    let mut cursor = 0usize;

    while cursor < order.len() {
        // next unassigned seed in order
        while cursor < order.len() && assigned[order[cursor]] {
            cursor += 1;
        }
        if cursor == order.len() {
            break;
        }
        let seed_node = NodeId(order[cursor] as u32);

        let mut page: Vec<NodeId> = Vec::new();
        let mut used = 0usize;
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        queue.push_back(seed_node);

        while let Some(cand) = queue.pop_front() {
            if assigned[cand.index()] {
                continue;
            }
            let cost = record_cost(net, cand, &mut scratch)?;
            if used + cost > budget {
                if page.is_empty() {
                    // a single record larger than a page: give it its own
                    // page (oversized records are rejected later at
                    // insert; this keeps the partitioner total)
                    assigned[cand.index()] = true;
                    pages.push(vec![cand]);
                }
                // doesn't fit here; a later seed will claim it
                continue;
            }
            assigned[cand.index()] = true;
            used += cost;
            page.push(cand);
            // `scratch` still holds `cand`'s successors from the cost
            // computation above.
            for e in &scratch {
                if !assigned[e.to.index()] {
                    queue.push_back(e.to);
                }
            }
        }
        if !page.is_empty() {
            pages.push(page);
        }
    }

    Ok(Partitioning { pages })
}

/// Connectivity-clustered partition assignment with the byte budget
/// sized so roughly `target_groups` groups come out: the continental
/// boundary estimator and the cluster sharding layer both derive
/// their node-to-group maps here, so "the partition" is one artifact,
/// not two near-copies.
///
/// Returns `(group_of_node, n_groups)` with `group_of_node.len() ==
/// src.n_nodes()` and every group id `< n_groups`. The result is a
/// pure function of the network: [`partition_nodes`] walks nodes in
/// Hilbert order with deterministic BFS growth, so repeated calls —
/// from any number of threads — produce byte-identical assignments
/// (the distributed-contract property `tests/partition_props.rs`
/// pins).
pub fn partition_assignment<S: NetworkSource + ?Sized>(
    src: &S,
    target_groups: usize,
) -> Result<(Vec<u32>, usize)> {
    let n = src.n_nodes();
    let target = target_groups.clamp(1, n.max(1));
    let mut scratch = Vec::new();
    let mut total = 0usize;
    let mut max_cost = 0usize;
    for i in 0..n {
        let cost = record_cost(src, NodeId(i as u32), &mut scratch)?;
        total += cost;
        max_cost = max_cost.max(cost);
    }
    let budget = total.div_ceil(target).max(max_cost);
    // partition_nodes reserves 4 header bytes off the page size.
    let parts = partition_nodes(src, PlacementPolicy::ConnectivityClustered, budget + 4)?;
    let n_groups = parts.pages.len();
    Ok((parts.assignment(n), n_groups))
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::generators::grid;
    use traffic::RoadClass;

    fn all_assigned_once(net: &RoadNetwork, p: &Partitioning) {
        let mut seen = vec![false; net.n_nodes()];
        for page in &p.pages {
            for n in page {
                assert!(!seen[n.index()], "node {n} assigned twice");
                seen[n.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some node unassigned");
    }

    #[test]
    fn every_policy_covers_all_nodes() {
        let net = grid(12, 12, 0.2, RoadClass::LocalOutside).unwrap();
        for policy in [
            PlacementPolicy::ConnectivityClustered,
            PlacementPolicy::HilbertPacked,
            PlacementPolicy::Random { seed: 3 },
        ] {
            let p = partition_nodes(&net, policy, 512).unwrap();
            all_assigned_once(&net, &p);
            assert!(p.pages.len() > 1);
        }
    }

    #[test]
    fn pages_respect_byte_budget() {
        let net = grid(10, 10, 0.2, RoadClass::LocalOutside).unwrap();
        let page_size = 512;
        let p = partition_nodes(&net, PlacementPolicy::ConnectivityClustered, page_size).unwrap();
        let mut scratch = Vec::new();
        for page in &p.pages {
            let used: usize = page
                .iter()
                .map(|&n| record_cost(&net, n, &mut scratch).unwrap())
                .sum();
            assert!(used <= page_size - 4, "page overflows: {used}");
        }
    }

    #[test]
    fn clustering_beats_random() {
        let net = grid(20, 20, 0.2, RoadClass::LocalOutside).unwrap();
        let ccam = partition_nodes(&net, PlacementPolicy::ConnectivityClustered, 2048)
            .unwrap()
            .connectivity_ratio(&net);
        let hilbert = partition_nodes(&net, PlacementPolicy::HilbertPacked, 2048)
            .unwrap()
            .connectivity_ratio(&net);
        let random = partition_nodes(&net, PlacementPolicy::Random { seed: 5 }, 2048)
            .unwrap()
            .connectivity_ratio(&net);
        assert!(ccam > random, "ccam {ccam} vs random {random}");
        assert!(hilbert > random, "hilbert {hilbert} vs random {random}");
        assert!(ccam > 0.5, "ccam ratio unexpectedly low: {ccam}");
    }

    #[test]
    fn deterministic() {
        let net = grid(8, 8, 0.3, RoadClass::LocalOutside).unwrap();
        let a = partition_nodes(&net, PlacementPolicy::Random { seed: 9 }, 512).unwrap();
        let b = partition_nodes(&net, PlacementPolicy::Random { seed: 9 }, 512).unwrap();
        assert_eq!(a, b);
    }
}
