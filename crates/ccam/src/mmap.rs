//! A read-only, memory-mapped [`BlockStore`]: the OS page cache *is*
//! the buffer, so graphs far larger than RAM serve queries without the
//! store copying a byte.
//!
//! [`MmapStore`] opens the same on-disk format [`FileStore`] writes
//! (validated by the shared header check, including the typed
//! [`CcamError::PageSizeMismatch`]) and exposes every page as a
//! borrowed slice of the mapping via [`BlockStore::page_ref`] — the
//! zero-copy path the buffer pool serves reads through, straight into
//! the [`crate::SlottedPage`] readers. Mutation (`allocate`,
//! `write_page`) is refused: a mapped store is a serving artifact, not
//! a build target.
//!
//! # Checksums on first touch
//!
//! [`MmapStore::open_checksummed`] reads files whose pages carry the
//! [`crate::integrity`] header (written through a
//! [`crate::ChecksummedStore`] over a [`FileStore`]). Each page's
//! CRC32 is verified the *first* time the page is touched — tracked in
//! an atomic bitset, so a hot page costs one verification per process,
//! not one per access — and the borrowed slice skips the header, so
//! readers see exactly the payload bytes the builder wrote. First
//! touches are tallied in [`IoStats::mmap_faults`] (the store-level
//! proxy for the OS page faults the mapping incurs).
//!
//! # Fallback
//!
//! [`MmapStore::open_preferred`] degrades gracefully: where mmap is
//! unavailable (unsupported platform, exotic filesystem), it falls
//! back to the copying [`FileStore`] stack with identical validation
//! and identical served bytes — only the counters and the copies
//! differ.
//!
//! # Safety
//!
//! This module is the only unsafe code in `fp-ccam` (the crate
//! otherwise inherits the workspace `unsafe_code = "deny"`): the raw
//! `mmap`/`munmap` calls and the lifetime argument for borrowing the
//! mapping are isolated in [`sys`], with per-site SAFETY comments
//! under `#[deny(unsafe_op_in_unsafe_fn)]` — the same discipline as
//! `fp-bench`'s `GlobalAlloc` wrapper.

// The lint override is scoped to this module; every unsafe operation
// below still needs its own block + SAFETY justification.
#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::fs::File;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::integrity::{self, PAGE_HEADER};
use crate::store::{validate_file_header, BlockStore, FileStore, IoStats, FILE_HEADER};
use crate::{CcamError, ChecksummedStore, Result};

#[cfg(unix)]
mod sys {
    //! The raw mapping: all `unsafe` in the crate lives here.

    use std::fs::File;
    use std::io;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 1;
    const MAP_SHARED: c_int = 0x01;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }

    /// A read-only shared mapping of a whole file, unmapped on drop.
    pub struct Mapping {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ and never written through; the
    // pointer is only dereferenced via `as_slice`, which shares
    // immutable bytes — safe to send to and reference from any thread.
    unsafe impl Send for Mapping {}
    // SAFETY: as above — concurrent readers of immutable bytes.
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Map `len` bytes of `file` read-only and shared (the OS page
        /// cache backs the bytes; nothing is read up front).
        pub fn map_readonly(file: &File, len: usize) -> io::Result<Mapping> {
            if len == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "cannot map an empty file",
                ));
            }
            // SAFETY: a fresh anonymous-address PROT_READ|MAP_SHARED
            // mapping of a file descriptor we own, with an in-range
            // length — the portable mmap contract. The result is
            // checked against MAP_FAILED before use.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as usize == usize::MAX {
                return Err(io::Error::last_os_error());
            }
            Ok(Mapping {
                ptr: ptr.cast_const().cast::<u8>(),
                len,
            })
        }

        /// The mapped bytes. Lifetime is tied to the mapping (unmapped
        /// only in `Drop`), and the memory is never written after
        /// `map_readonly`, so the usual slice aliasing rules hold —
        /// with the standard mmap caveat that truncating the backing
        /// file *while mapped* is undefined (the same external-actor
        /// trust `FileStore` places in its file).
        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly
            // `len` bytes (established in `map_readonly`, released
            // only in `drop`), properly aligned for `u8`.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: unmapping exactly the region `map_readonly`
            // mapped, once, with no outstanding borrows (`&mut self`
            // proves exclusive access at drop time).
            unsafe {
                munmap(self.ptr.cast_mut().cast(), self.len);
            }
        }
    }
}

#[cfg(not(unix))]
mod sys {
    //! Stub for platforms without mmap: every open fails with
    //! `Unsupported`, which [`super::MmapStore::open_preferred`] turns
    //! into the `FileStore` fallback.

    use std::fs::File;
    use std::io;

    /// Unsupported-platform placeholder (never constructed).
    pub struct Mapping {}

    impl Mapping {
        pub fn map_readonly(_file: &File, _len: usize) -> io::Result<Mapping> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "mmap is not available on this platform",
            ))
        }

        pub fn as_slice(&self) -> &[u8] {
            &[]
        }
    }
}

/// A read-only [`BlockStore`] over a memory-mapped [`FileStore`] file
/// (see the module docs). Serves zero-copy page borrows through
/// [`BlockStore::page_ref`]; refuses mutation.
pub struct MmapStore {
    map: sys::Mapping,
    /// Caller-visible page size ([`BlockStore::page_size`]).
    page_size: usize,
    /// On-disk page stride (`page_size`, plus the checksum header in
    /// checksummed mode).
    raw_page: usize,
    /// Whether pages carry the [`crate::integrity`] header, verified
    /// on first touch.
    checksummed: bool,
    n_pages: u64,
    /// One bit per page: set once the page has been touched (and, in
    /// checksummed mode, verified). Relaxed atomics — the worst race
    /// is two threads verifying the same immutable page once each.
    touched: Vec<AtomicU64>,
    stats: IoStats,
}

impl MmapStore {
    /// Map the store at `path` read-only, validating the file header
    /// exactly as [`FileStore::open`] does — including the typed
    /// [`CcamError::PageSizeMismatch`] when `page_size` disagrees with
    /// what the file was built with.
    pub fn open(path: &Path, page_size: usize) -> Result<Self> {
        Self::open_inner(path, page_size, false)
    }

    /// Map a store whose pages were written through a
    /// [`ChecksummedStore`] over a [`FileStore`] created with
    /// `raw_page_size` (so the visible page size is `raw_page_size -`
    /// [`PAGE_HEADER`]). Every page's CRC32 is verified on its first
    /// touch; corrupt pages surface as [`CcamError::Corruption`] and
    /// are never served.
    pub fn open_checksummed(path: &Path, raw_page_size: usize) -> Result<Self> {
        Self::open_inner(path, raw_page_size, true)
    }

    fn open_inner(path: &Path, raw_page_size: usize, checksummed: bool) -> Result<Self> {
        if checksummed && raw_page_size <= PAGE_HEADER {
            return Err(CcamError::Corrupt(format!(
                "page size {raw_page_size} cannot hold a checksum header"
            )));
        }
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len < FILE_HEADER {
            return Err(CcamError::Corrupt(format!(
                "file too short ({len} bytes) to hold a store header"
            )));
        }
        let map = sys::Mapping::map_readonly(&file, len as usize)?;
        let mut header = [0u8; FILE_HEADER as usize];
        header.copy_from_slice(&map.as_slice()[..FILE_HEADER as usize]);
        let n_pages = validate_file_header(&header, len, raw_page_size)?;
        let words = (n_pages as usize).div_ceil(64);
        Ok(MmapStore {
            map,
            page_size: if checksummed {
                raw_page_size - PAGE_HEADER
            } else {
                raw_page_size
            },
            raw_page: raw_page_size,
            checksummed,
            n_pages,
            touched: (0..words).map(|_| AtomicU64::new(0)).collect(),
            stats: IoStats::default(),
        })
    }

    /// Open `path` as an [`MmapStore`] if the platform supports it,
    /// else fall back to the copying [`FileStore`] stack (wrapped in a
    /// [`ChecksummedStore`] when `checksummed`) — same validation,
    /// same served bytes, different counters.
    pub fn open_preferred(
        path: &Path,
        raw_page_size: usize,
        checksummed: bool,
    ) -> Result<Arc<dyn BlockStore>> {
        Self::open_preferred_inner(path, raw_page_size, checksummed, false)
    }

    /// Test seam: [`MmapStore::open_preferred`] with the platform
    /// mapping forced to fail, exercising the `FileStore` fallback on
    /// platforms where mmap would otherwise succeed. The fallback must
    /// serve bit-identical bytes with `mmap_faults == 0`.
    #[doc(hidden)]
    pub fn open_preferred_forced_fallback(
        path: &Path,
        raw_page_size: usize,
        checksummed: bool,
    ) -> Result<Arc<dyn BlockStore>> {
        Self::open_preferred_inner(path, raw_page_size, checksummed, true)
    }

    fn open_preferred_inner(
        path: &Path,
        raw_page_size: usize,
        checksummed: bool,
        force_map_fail: bool,
    ) -> Result<Arc<dyn BlockStore>> {
        let mmap_err = if force_map_fail {
            // Simulate the environmental failure the fallback exists
            // for (unsupported platform, exotic filesystem).
            CcamError::Io(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "mapping failure injected by open_preferred_forced_fallback",
            ))
        } else {
            match Self::open_inner(path, raw_page_size, checksummed) {
                Ok(store) => return Ok(Arc::new(store)),
                Err(e) => e,
            }
        };
        // Only environmental failures fall back: a malformed header
        // would fail identically through FileStore, so surface it.
        if !matches!(mmap_err, CcamError::Io(_)) {
            return Err(mmap_err);
        }
        let file = Arc::new(FileStore::open(path, raw_page_size)?);
        if checksummed {
            Ok(Arc::new(ChecksummedStore::new(file)))
        } else {
            Ok(file)
        }
    }

    /// Whether this store verifies per-page checksums on first touch.
    pub fn is_checksummed(&self) -> bool {
        self.checksummed
    }

    /// The raw on-disk bytes of page `id` (header included in
    /// checksummed mode).
    fn raw_page_bytes(&self, id: u64) -> Result<&[u8]> {
        if id >= self.n_pages {
            return Err(CcamError::BadPage(id));
        }
        let start = FILE_HEADER as usize + id as usize * self.raw_page;
        Ok(&self.map.as_slice()[start..start + self.raw_page])
    }

    /// First-touch bookkeeping: verify the page (checksummed mode) and
    /// count the touch, exactly once per page. Returns the payload.
    fn touch<'a>(&'a self, id: u64, raw: &'a [u8]) -> Result<&'a [u8]> {
        let (word, bit) = (id as usize / 64, 1u64 << (id % 64));
        if self.touched[word].load(Ordering::Relaxed) & bit == 0 {
            if self.checksummed {
                verify_page(id, raw, &self.stats)?;
            }
            // Two racing first-touchers both verify (harmless: the
            // bytes are immutable) but only one counts the fault.
            if self.touched[word].fetch_or(bit, Ordering::Relaxed) & bit == 0 {
                self.stats.bump_mmap_fault();
            }
        }
        Ok(if self.checksummed {
            &raw[PAGE_HEADER..]
        } else {
            raw
        })
    }
}

/// Verify one checksummed page ([`crate::integrity`] format), bumping
/// the corruption counter on failure.
fn verify_page(id: u64, raw: &[u8], stats: &IoStats) -> Result<()> {
    let magic = u16::from_be_bytes([raw[0], raw[1]]);
    let version = u16::from_be_bytes([raw[2], raw[3]]);
    if magic != u16::from_be_bytes(*b"CP") || version != 1 {
        stats.bump_corruption();
        return Err(CcamError::Corrupt(format!(
            "page {id}: bad checksum header (magic {magic:#06x}, version {version})"
        )));
    }
    let stored = u32::from_be_bytes([raw[4], raw[5], raw[6], raw[7]]);
    let computed = integrity::crc32(&raw[PAGE_HEADER..]);
    if stored != computed {
        stats.bump_corruption();
        return Err(CcamError::Corruption {
            page: id,
            stored,
            computed,
        });
    }
    Ok(())
}

impl BlockStore for MmapStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn n_pages(&self) -> u64 {
        self.n_pages
    }

    fn allocate(&self) -> Result<u64> {
        Err(CcamError::Io(std::io::Error::new(
            std::io::ErrorKind::PermissionDenied,
            "mmap store is read-only: allocate refused",
        )))
    }

    fn read_page(&self, id: u64, buf: &mut [u8]) -> Result<()> {
        let raw = self.raw_page_bytes(id)?;
        let payload = self.touch(id, raw)?;
        buf.copy_from_slice(payload);
        self.stats.bump_read(buf.len());
        Ok(())
    }

    fn write_page(&self, id: u64, _buf: &[u8]) -> Result<()> {
        let _ = id;
        Err(CcamError::Io(std::io::Error::new(
            std::io::ErrorKind::PermissionDenied,
            "mmap store is read-only: write refused",
        )))
    }

    fn page_ref(&self, id: u64) -> Result<Option<&[u8]>> {
        let raw = self.raw_page_bytes(id)?;
        Ok(Some(self.touch(id, raw)?))
    }

    fn io_stats(&self) -> &IoStats {
        &self.stats
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ccam-mmap-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Write `n` plain pages (page `i` filled with byte `i`) through a
    /// FileStore and return the path.
    fn plain_fixture(dir: &Path, page_size: usize, n: usize) -> std::path::PathBuf {
        let path = dir.join("plain.db");
        let s = FileStore::create(&path, page_size).unwrap();
        for i in 0..n {
            let id = s.allocate().unwrap();
            s.write_page(id, &vec![i as u8; page_size]).unwrap();
        }
        path
    }

    #[test]
    fn serves_filestore_bytes_verbatim() {
        let dir = tmp_dir("plain");
        let path = plain_fixture(&dir, 256, 5);
        let m = MmapStore::open(&path, 256).unwrap();
        assert_eq!(m.page_size(), 256);
        assert_eq!(m.n_pages(), 5);
        let mut buf = vec![0u8; 256];
        for id in 0..5u64 {
            m.read_page(id, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == id as u8));
            let slice = m.page_ref(id).unwrap().unwrap();
            assert_eq!(slice, &buf[..]);
        }
        assert!(matches!(
            m.read_page(5, &mut buf),
            Err(CcamError::BadPage(5))
        ));
        // read-only: no mutation
        assert!(m.allocate().is_err());
        assert!(m.write_page(0, &buf).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn first_touch_is_counted_once_per_page() {
        let dir = tmp_dir("touch");
        let path = plain_fixture(&dir, 128, 3);
        let m = MmapStore::open(&path, 128).unwrap();
        for _ in 0..4 {
            for id in 0..3u64 {
                m.page_ref(id).unwrap().unwrap();
            }
        }
        assert_eq!(m.io_stats().mmap_faults(), 3);
        // borrows are zero-copy: no read/byte counters move
        assert_eq!(m.io_stats().reads(), 0);
        assert_eq!(m.io_stats().bytes_read(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_validates_header_with_typed_page_size_error() {
        let dir = tmp_dir("hdr");
        let path = plain_fixture(&dir, 512, 1);
        assert!(MmapStore::open(&path, 512).is_ok());
        assert!(matches!(
            MmapStore::open(&path, 1024),
            Err(CcamError::PageSizeMismatch {
                stored: 512,
                requested: 1024,
            })
        ));
        let junk = dir.join("junk.db");
        std::fs::write(&junk, [7u8; 100]).unwrap();
        assert!(matches!(
            MmapStore::open(&junk, 512),
            Err(CcamError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checksummed_pages_verify_on_first_touch() {
        let dir = tmp_dir("crc");
        let path = dir.join("summed.db");
        let visible = 256 - PAGE_HEADER;
        {
            let file = Arc::new(FileStore::create(&path, 256).unwrap());
            let summed = ChecksummedStore::new(Arc::clone(&file) as Arc<dyn BlockStore>);
            for i in 0..4 {
                let id = summed.allocate().unwrap();
                summed.write_page(id, &vec![i as u8 + 1; visible]).unwrap();
            }
        }
        let m = MmapStore::open_checksummed(&path, 256).unwrap();
        assert_eq!(m.page_size(), visible);
        let mut buf = vec![0u8; visible];
        for id in 0..4u64 {
            // payload excludes the checksum header, bit for bit
            m.read_page(id, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == id as u8 + 1));
        }
        assert_eq!(m.io_stats().mmap_faults(), 4);
        assert_eq!(m.io_stats().corruptions(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checksummed_corruption_is_detected_not_served() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("summed.db");
        let visible = 128 - PAGE_HEADER;
        {
            let file = Arc::new(FileStore::create(&path, 128).unwrap());
            let summed = ChecksummedStore::new(Arc::clone(&file) as Arc<dyn BlockStore>);
            let id = summed.allocate().unwrap();
            summed.write_page(id, &vec![0xA5; visible]).unwrap();
        }
        // flip a payload bit behind the checksum
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(FILE_HEADER + PAGE_HEADER as u64 + 9))
                .unwrap();
            f.write_all(&[0xA4]).unwrap();
        }
        let m = MmapStore::open_checksummed(&path, 128).unwrap();
        let err = m.page_ref(0).unwrap_err();
        assert!(
            matches!(err, CcamError::Corruption { page: 0, .. }),
            "{err:?}"
        );
        assert_eq!(m.io_stats().corruptions(), 1);
        // a corrupt page is never marked verified, so every touch fails
        assert!(m.page_ref(0).is_err());
        assert_eq!(m.io_stats().mmap_faults(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn forced_fallback_is_bit_identical_with_zero_mmap_faults() {
        let dir = tmp_dir("forced");
        // Plain store: every page served by the fallback must match
        // the mapped store byte for byte, via both read paths.
        let path = plain_fixture(&dir, 128, 4);
        let mapped = MmapStore::open_preferred(&path, 128, false).unwrap();
        let fallback = MmapStore::open_preferred_forced_fallback(&path, 128, false).unwrap();
        assert_eq!(fallback.page_size(), mapped.page_size());
        assert_eq!(fallback.n_pages(), mapped.n_pages());
        let (mut a, mut b) = (vec![0u8; 128], vec![0u8; 128]);
        for id in 0..4u64 {
            mapped.read_page(id, &mut a).unwrap();
            fallback.read_page(id, &mut b).unwrap();
            assert_eq!(a, b, "page {id} diverged between mmap and fallback");
            // The fallback has no mapping to borrow from; `page_ref`
            // declines and the caller copies instead.
            assert_eq!(mapped.page_ref(id).unwrap().unwrap(), &b[..]);
            assert!(fallback.page_ref(id).unwrap().is_none());
        }
        assert!(mapped.io_stats().mmap_faults() > 0);
        assert_eq!(
            fallback.io_stats().mmap_faults(),
            0,
            "a FileStore fallback must never report mmap faults"
        );

        // Checksummed store: same bit-identity through the
        // ChecksummedStore wrapper, with verification intact.
        let summed_path = dir.join("summed.db");
        let visible = 128 - PAGE_HEADER;
        {
            let file = Arc::new(FileStore::create(&summed_path, 128).unwrap());
            let summed = ChecksummedStore::new(Arc::clone(&file) as Arc<dyn BlockStore>);
            for i in 0..3 {
                let id = summed.allocate().unwrap();
                summed.write_page(id, &vec![i as u8 + 9; visible]).unwrap();
            }
        }
        let mapped = MmapStore::open_preferred(&summed_path, 128, true).unwrap();
        let fallback = MmapStore::open_preferred_forced_fallback(&summed_path, 128, true).unwrap();
        let (mut a, mut b) = (vec![0u8; visible], vec![0u8; visible]);
        for id in 0..3u64 {
            mapped.read_page(id, &mut a).unwrap();
            fallback.read_page(id, &mut b).unwrap();
            assert_eq!(a, b, "checksummed page {id} diverged");
        }
        assert!(mapped.io_stats().mmap_faults() > 0);
        assert_eq!(fallback.io_stats().mmap_faults(), 0);

        // The fallback validates like the mapped path: a page-size
        // mismatch is the same typed error, not a silent open.
        assert!(matches!(
            MmapStore::open_preferred_forced_fallback(&path, 256, false),
            Err(CcamError::PageSizeMismatch {
                stored: 128,
                requested: 256,
            })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_preferred_serves_the_same_bytes() {
        let dir = tmp_dir("pref");
        let path = plain_fixture(&dir, 128, 2);
        let store = MmapStore::open_preferred(&path, 128, false).unwrap();
        let mut got = vec![0u8; 128];
        store.read_page(1, &mut got).unwrap();
        let mem = MemStore::new(128);
        mem.allocate().unwrap();
        mem.write_page(0, &[1u8; 128]).unwrap();
        let mut want = vec![0u8; 128];
        mem.read_page(0, &mut want).unwrap();
        assert_eq!(got, want);
        std::fs::remove_dir_all(&dir).ok();
    }
}
