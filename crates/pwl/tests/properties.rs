//! Property-based tests for the piecewise-linear algebra.
//!
//! Random continuous functions are generated from sorted breakpoints
//! with bounded values; every algebraic operation is checked against
//! its pointwise definition on a dense sample grid.

use std::cell::RefCell;

use proptest::prelude::*;
use pwl::{
    approx_eq, approx_le, compose_travel, compose_travel_into, compose_travel_simplified, Envelope,
    Interval, MonotonePwl, Pwl, PwlScratch,
};

/// Generate a continuous piecewise-linear function on a random domain:
/// 2..=8 points, x-gaps in [0.5, 10], values in [0, 50].
fn arb_pwl() -> impl Strategy<Value = Pwl> {
    (
        0.0f64..100.0,
        prop::collection::vec((0.5f64..10.0, 0.0f64..50.0), 1..8),
        0.0f64..50.0,
    )
        .prop_map(|(x0, steps, y0)| {
            let mut pts = vec![(x0, y0)];
            let mut x = x0;
            for (dx, y) in steps {
                x += dx;
                pts.push((x, y));
            }
            Pwl::from_points(&pts).expect("generated points are valid")
        })
}

/// Generate a FIFO-safe travel-time function (arrival slope > 0):
/// build a strictly increasing arrival function, subtract the identity.
fn arb_travel(x0: f64) -> impl Strategy<Value = Pwl> {
    prop::collection::vec((0.5f64..10.0, 0.05f64..3.0), 1..8).prop_map(move |steps| {
        // arrival pieces with slope = dy/dx in (0.005, 6): strictly increasing
        let mut pts = vec![(x0, x0 + 5.0)];
        let (mut x, mut y) = pts[0];
        for (dx, slope) in steps {
            x += dx;
            y += dx * slope;
            pts.push((x, y));
        }
        Pwl::from_points(&pts)
            .expect("valid arrival")
            .sub_identity()
    })
}

fn sample_grid(domain: &Interval, n: usize) -> Vec<f64> {
    (0..=n)
        .map(|k| domain.lo() + domain.len() * (k as f64) / (n as f64))
        .collect()
}

proptest! {
    #[test]
    fn eval_within_min_max(f in arb_pwl()) {
        let min = f.minimum().value;
        let max = f.maximum();
        for x in sample_grid(&f.domain(), 64) {
            let v = f.eval(x);
            prop_assert!(approx_le(min, v) && approx_le(v, max));
        }
    }

    #[test]
    fn min_result_is_attained_and_tight(f in arb_pwl()) {
        let m = f.minimum();
        // the reported argmin interval actually achieves the minimum
        prop_assert!(approx_eq(f.eval(m.at.lo()), m.value));
        prop_assert!(approx_eq(f.eval(m.at.hi()), m.value));
        prop_assert!(approx_eq(f.eval(m.at.mid()), m.value));
        // no sampled point goes below it
        for x in sample_grid(&f.domain(), 128) {
            prop_assert!(approx_le(m.value, f.eval(x)));
        }
    }

    #[test]
    fn simplify_preserves_values(f in arb_pwl()) {
        let s = f.simplify();
        prop_assert!(s.n_pieces() <= f.n_pieces());
        for x in sample_grid(&f.domain(), 64) {
            prop_assert!(approx_eq(s.eval(x), f.eval(x)));
        }
        // idempotent
        prop_assert_eq!(s.simplify().n_pieces(), s.n_pieces());
    }

    #[test]
    fn restrict_preserves_values(f in arb_pwl(), t in 0.1f64..0.9, w in 0.05f64..0.8) {
        let d = f.domain();
        let lo = d.lo() + t * (1.0 - w) * d.len();
        let hi = lo + w * d.len();
        let r = f.restrict(&Interval::of(lo, hi)).unwrap();
        prop_assert!(r.domain().approx_eq(&Interval::of(lo, hi)));
        for x in sample_grid(&r.domain(), 32) {
            prop_assert!(approx_eq(r.eval(x), f.eval(x)));
        }
    }

    #[test]
    fn add_is_pointwise(f in arb_pwl(), g in arb_pwl()) {
        let Some(common) = f.domain().intersect(&g.domain()) else {
            return Ok(());
        };
        if common.is_degenerate() || common.len() < 0.1 {
            return Ok(());
        }
        let s = f.add(&g).unwrap();
        for x in sample_grid(&s.domain(), 64) {
            prop_assert!(approx_eq(s.eval(x), f.eval(x) + g.eval(x)));
        }
    }

    #[test]
    fn monotone_inverse_roundtrip(t in arb_travel(0.0)) {
        let a = MonotonePwl::arrival_from_travel(&t).unwrap();
        let inv = a.inverse();
        for x in sample_grid(&a.domain(), 32) {
            let y = a.eval(x);
            prop_assert!(approx_eq(inv.eval(y), x), "x={x} y={y} inv={}", inv.eval(y));
            prop_assert!(approx_eq(a.inverse_at(y).unwrap(), x));
        }
    }

    #[test]
    fn compose_travel_matches_pointwise(t1 in arb_travel(0.0)) {
        // Build a t2 wide enough to cover all arrivals.
        let arrivals = pwl::compose::arrival_interval(&t1).unwrap();
        let t2_domain = Interval::of(arrivals.lo() - 1.0, arrivals.hi() + 1.0);
        let t2 = Pwl::from_points(&[
            (t2_domain.lo(), 7.0),
            (t2_domain.lo() + t2_domain.len() * 0.4, 2.0),
            (t2_domain.lo() + t2_domain.len() * 0.6, 2.0),
            (t2_domain.hi(), 9.0),
        ]).unwrap();
        // clamp t2's FIFO: slopes are bounded by 5/(0.4*len); if the
        // domain is tiny the slope may violate FIFO, which is fine for a
        // pure composition check (t2 FIFO is not required by compose).
        let t = compose_travel(&t1, &t2).unwrap();
        prop_assert!(t.is_continuous());
        for l in sample_grid(&t1.domain(), 96) {
            let direct = t1.eval(l) + t2.eval_clamped(l + t1.eval(l));
            prop_assert!(approx_eq(t.eval(l), direct), "l={l}: {} vs {direct}", t.eval(l));
        }
    }

    #[test]
    fn envelope_is_pointwise_min(fs in prop::collection::vec(arb_pwl(), 2..6)) {
        // Re-root all functions on a common domain.
        let domain = Interval::of(0.0, 20.0);
        let rebased: Vec<Pwl> = fs
            .iter()
            .map(|f| {
                let d = f.domain();
                let scaled = f.shift_x(-d.lo());
                // stretch domain to at least 20 by restricting sample
                if scaled.domain().hi() >= 20.0 {
                    scaled.restrict(&domain).unwrap()
                } else {
                    // extend with a flat tail to reach x=20
                    let end = scaled.domain().hi();
                    let v = scaled.eval(end);
                    let mut pts = scaled.points();
                    pts.push((20.0, v));
                    Pwl::from_points(&pts).unwrap()
                }
            })
            .collect();

        let mut env = Envelope::new(rebased[0].clone(), 0usize);
        for (i, f) in rebased.iter().enumerate().skip(1) {
            env.merge_min(f, i).unwrap();
        }
        for x in sample_grid(&domain, 128) {
            let want = rebased.iter().map(|f| f.eval(x)).fold(f64::INFINITY, f64::min);
            prop_assert!(approx_eq(env.eval(x), want), "x={x}: {} vs {want}", env.eval(x));
        }
        // each piece's tag points at a function achieving the envelope
        for p in env.pieces() {
            let mid = p.interval.mid();
            prop_assert!(approx_eq(rebased[*p.tag].eval(mid), env.eval(mid)));
        }
        // partition covers the domain with no gaps
        let parts = env.partition();
        prop_assert!(approx_eq(parts[0].0.lo(), domain.lo()));
        prop_assert!(approx_eq(parts[parts.len() - 1].0.hi(), domain.hi()));
        for w in parts.windows(2) {
            prop_assert!(approx_eq(w[0].0.hi(), w[1].0.lo()));
            prop_assert!(w[0].1 != w[1].1, "adjacent partitions share a tag");
        }
    }

    #[test]
    fn pooled_compose_is_bit_identical(t1 in arb_travel(0.0)) {
        // The scratch-reuse contract: a scratch carries no state between
        // calls, so a dirty pool (shared here across *all* generated
        // cases) must produce the same bits as a cold one.
        thread_local! {
            static DIRTY: RefCell<PwlScratch> = RefCell::new(PwlScratch::new());
        }
        let arrivals = pwl::compose::arrival_interval(&t1).unwrap();
        let t2_domain = Interval::of(arrivals.lo() - 1.0, arrivals.hi() + 1.0);
        let t2 = Pwl::from_points(&[
            (t2_domain.lo(), 7.0),
            (t2_domain.lo() + t2_domain.len() * 0.4, 2.0),
            (t2_domain.lo() + t2_domain.len() * 0.6, 2.0),
            (t2_domain.hi(), 9.0),
        ]).unwrap();
        let cold = compose_travel_simplified(&t1, &t2).unwrap();
        let pooled = DIRTY.with(|s| {
            let mut s = s.borrow_mut();
            let out = compose_travel_into(&mut s, &t1, &t2).unwrap();
            // recycle a clone's buffers so later cases see a warm,
            // genuinely dirty pool
            s.recycle(out.clone());
            out
        });
        // exact equality, not approx: same breakpoints, same coefficients
        prop_assert_eq!(pooled.breakpoints(), cold.breakpoints());
        prop_assert_eq!(pooled.linears(), cold.linears());
        // and both match the two-pass compose + simplify bit for bit
        let two_pass = compose_travel(&t1, &t2).unwrap().simplify();
        prop_assert_eq!(pooled.breakpoints(), two_pass.breakpoints());
        prop_assert_eq!(pooled.linears(), two_pass.linears());
    }

    #[test]
    fn dominated_by_agrees_with_sampling(f in arb_pwl(), g in arb_pwl()) {
        let Some(common) = f.domain().intersect(&g.domain()) else {
            return Ok(());
        };
        if common.is_degenerate() || common.len() < 0.1 {
            return Ok(());
        }
        let fr = f.restrict(&common).unwrap();
        let gr = g.restrict(&common).unwrap();
        if fr.dominated_by(&gr) {
            for x in sample_grid(&common, 64) {
                prop_assert!(approx_le(gr.eval(x), fr.eval(x)));
            }
        }
    }
}
