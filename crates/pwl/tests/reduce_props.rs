//! Property-based tests for the bounded-error piece reduction.
//!
//! The overlay search's admissibility rests on three invariants of
//! [`pwl::reduce_lower_with`] (see the satellite checklist of PR 7):
//! the reduced function never rises above the true function, the
//! measured gap bounds the true gap everywhere (and stays within the
//! declared `ε`), and every reduced slope respects the FIFO floor so
//! reduced functions remain composable. Random FIFO-safe travel
//! functions exercise all three on dense sample grids.

use proptest::prelude::*;
use pwl::{approx_le, reduce_lower_with, Interval, Pwl, PwlScratch, EPS};

/// A FIFO-safe travel-time function: strictly increasing arrival
/// function minus the identity (same construction as the composition
/// property tests).
fn arb_travel() -> impl Strategy<Value = Pwl> {
    (
        0.0f64..50.0,
        prop::collection::vec((0.5f64..10.0, 0.05f64..3.0), 1..24),
    )
        .prop_map(|(x0, steps)| {
            let mut pts = vec![(x0, x0 + 5.0)];
            let (mut x, mut y) = pts[0];
            for (dx, slope) in steps {
                x += dx;
                y += dx * slope;
                pts.push((x, y));
            }
            Pwl::from_points(&pts)
                .expect("valid arrival")
                .sub_identity()
        })
}

fn sample_grid(domain: &Interval, n: usize) -> Vec<f64> {
    (0..=n)
        .map(|k| domain.lo() + domain.len() * (k as f64) / (n as f64))
        .collect()
}

proptest! {
    /// Admissibility: the reduction is one-sided (`g ≤ f` everywhere)
    /// and the *measured* gap both covers the true gap and respects
    /// the declared error band.
    #[test]
    fn reduction_is_one_sided_and_within_band(
        f in arb_travel(),
        eps in 0.0f64..2.0,
    ) {
        let mut scratch = PwlScratch::new();
        let (g, gap) = reduce_lower_with(&mut scratch, &f, eps).unwrap();
        prop_assert!(gap >= 0.0);
        prop_assert!(gap <= eps + 1e-9, "measured gap {gap} exceeds eps {eps}");
        prop_assert_eq!(g.domain(), f.domain());
        for x in sample_grid(&f.domain(), 256) {
            let (fv, gv) = (f.eval(x), g.eval(x));
            prop_assert!(approx_le(gv, fv), "reduced above true at {x}: {gv} > {fv}");
            prop_assert!(
                approx_le(fv - gv, gap),
                "true gap at {x} ({}) exceeds measured {gap}", fv - gv
            );
        }
    }

    /// Domain endpoints are pinned to the exact values (up to one
    /// coefficient-representation rounding), so periodic extension of
    /// a reduced function seams where the exact one did: identical
    /// breakpoint coordinates, values within far less than `EPS`.
    #[test]
    fn reduction_pins_endpoints(f in arb_travel(), eps in 0.0f64..2.0) {
        let mut scratch = PwlScratch::new();
        let (g, _) = reduce_lower_with(&mut scratch, &f, eps).unwrap();
        let d = f.domain();
        prop_assert_eq!(g.domain().lo().to_bits(), d.lo().to_bits());
        prop_assert_eq!(g.domain().hi().to_bits(), d.hi().to_bits());
        for x in [d.lo(), d.hi()] {
            let (fv, gv) = (f.eval(x), g.eval(x));
            prop_assert!(
                (fv - gv).abs() <= 1e-9 * (1.0 + fv.abs()),
                "endpoint drift at {x}: {fv} vs {gv}"
            );
        }
    }

    /// FIFO preservation: reduced slopes clear the composition
    /// kernel's floor, so reduced functions stay composable.
    #[test]
    fn reduction_preserves_fifo(f in arb_travel(), eps in 0.0f64..4.0) {
        let mut scratch = PwlScratch::new();
        let (g, _) = reduce_lower_with(&mut scratch, &f, eps).unwrap();
        for l in g.linears() {
            prop_assert!(l.a + 1.0 > EPS, "slope {} breaks the FIFO floor", l.a);
        }
        // ... which is exactly what arrival_interval validates.
        prop_assert!(pwl::compose::arrival_interval(&g).is_ok());
    }

    /// Determinism: same input, same output, bit for bit — snapshot
    /// restore re-reduces recomposed functions and must agree with the
    /// original build.
    #[test]
    fn reduction_is_deterministic(f in arb_travel(), eps in 0.0f64..2.0) {
        let mut s1 = PwlScratch::new();
        let mut s2 = PwlScratch::new();
        let (g1, e1) = reduce_lower_with(&mut s1, &f, eps).unwrap();
        let (g2, e2) = reduce_lower_with(&mut s2, &f, eps).unwrap();
        prop_assert_eq!(&g1, &g2);
        prop_assert_eq!(e1.to_bits(), e2.to_bits());
        prop_assert_eq!(g1.breakpoints().len(), g2.breakpoints().len());
    }

    /// Monotone piece budget: a wider band never produces a *worse*
    /// function than the exact one (piece count is bounded by the
    /// input's).
    #[test]
    fn reduction_never_grows(f in arb_travel(), eps in 0.0f64..2.0) {
        let mut scratch = PwlScratch::new();
        let (g, _) = reduce_lower_with(&mut scratch, &f, eps).unwrap();
        prop_assert!(g.n_pieces() <= f.n_pieces());
    }
}
