//! Continuous, strictly increasing piecewise-linear functions.
//!
//! Two functions in this workspace are monotone by construction:
//!
//! * the **cumulative distance** `D(t) = ∫₀ᵗ v(τ) dτ` of a road
//!   segment with positive piecewise-constant speed `v`, and
//! * the **arrival function** `A(l) = l + T(l)` of a path, whose slope
//!   is positive exactly because the Flow Speed Model preserves the
//!   FIFO property (Sung et al., 2000).
//!
//! Strict monotonicity is what makes the paper's "135° line"
//! construction (§4.4) well defined: the leaving time at `s` whose
//! arrival at the intermediate node hits a breakpoint `t` of the next
//! edge's function is the unique `A⁻¹(t)`.

use crate::{Interval, Linear, Pwl, PwlError, Result, EPS};

/// A continuous, strictly increasing [`Pwl`] with an exact inverse.
#[derive(Debug, Clone, PartialEq)]
pub struct MonotonePwl {
    inner: Pwl,
}

impl MonotonePwl {
    /// Wrap a [`Pwl`], verifying continuity and strictly positive piece
    /// slopes.
    pub fn new(pwl: Pwl) -> Result<Self> {
        pwl.check_continuous()?;
        for (iv, f) in pwl.pieces() {
            if f.a <= EPS {
                return Err(PwlError::NotIncreasing { at: iv.lo() });
            }
        }
        Ok(MonotonePwl { inner: pwl })
    }

    /// The identity on `domain`.
    pub fn identity(domain: Interval) -> Result<Self> {
        Self::new(Pwl::identity(domain)?)
    }

    /// Build the arrival function `A(l) = l + T(l)` from a travel-time
    /// function; fails if FIFO is violated (some slope of `A` ≤ 0,
    /// i.e. some slope of `T` ≤ −1).
    pub fn arrival_from_travel(travel: &Pwl) -> Result<Self> {
        Self::new(travel.add_identity())
    }

    /// Borrow the underlying [`Pwl`].
    #[inline]
    pub fn as_pwl(&self) -> &Pwl {
        &self.inner
    }

    /// Unwrap into the underlying [`Pwl`].
    #[inline]
    pub fn into_pwl(self) -> Pwl {
        self.inner
    }

    /// Domain of the function.
    #[inline]
    pub fn domain(&self) -> Interval {
        self.inner.domain()
    }

    /// Range `[f(lo), f(hi)]` — an interval because the function is
    /// increasing and continuous.
    pub fn range(&self) -> Interval {
        let d = self.inner.domain();
        Interval::of(self.inner.eval(d.lo()), self.inner.eval(d.hi()))
    }

    /// Evaluate at `x` (panics outside the domain, like
    /// [`Pwl::eval`]).
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.inner.eval(x)
    }

    /// Evaluate the inverse at `y`; `None` if `y` is outside the range.
    /// Allocation-free: a binary search over the piece table, no
    /// intermediate point list.
    ///
    /// This is the paper's 135°-line construction: for an arrival
    /// function `A` and a breakpoint `t` of the next edge's travel-time
    /// function, `inverse_at(t)` is the leaving time at the source that
    /// reaches the intermediate node exactly at `t`.
    pub fn inverse_at(&self, y: f64) -> Option<f64> {
        if !self.range().contains_approx(y) {
            return None;
        }
        // Binary search on breakpoint values (strictly increasing, since
        // the function is continuous with positive slopes): find the
        // first breakpoint whose value exceeds `y` — the same partition
        // point `points().partition_point(|(_, v)| v <= y)` used to
        // compute via a materialized point list.
        let n = self.inner.breakpoints().len();
        let value = |i: usize| {
            if i == 0 {
                self.inner.right_value(0)
            } else {
                self.inner.left_value(i)
            }
        };
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if value(mid) <= y {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let piece = lo.saturating_sub(1).min(self.inner.n_pieces() - 1);
        let f = &self.inner.linears()[piece];
        let x = (y - f.b) / f.a;
        Some(self.domain().clamp(x))
    }

    /// The full inverse function, as a [`MonotonePwl`] on the range.
    pub fn inverse(&self) -> MonotonePwl {
        let pts = self.inner.points();
        let mut xs = Vec::with_capacity(pts.len());
        let mut fs = Vec::with_capacity(pts.len() - 1);
        for (i, f) in self.inner.linears().iter().enumerate() {
            xs.push(pts[i].1);
            fs.push(Linear {
                a: 1.0 / f.a,
                b: -f.b / f.a,
            });
        }
        xs.push(pts[pts.len() - 1].1);
        // Slopes 1/a are positive and the graph mirrors a continuous
        // function, so the invariant holds by construction.
        MonotonePwl {
            inner: Pwl::new(xs, fs).expect("inverse of monotone pwl is well formed"),
        }
    }

    /// Composition `self ∘ inner`, i.e. `x ↦ self(inner(x))`.
    ///
    /// `inner`'s range must be covered by `self`'s domain (within
    /// [`EPS`]).
    pub fn compose(&self, inner: &MonotonePwl) -> Result<MonotonePwl> {
        let irange = inner.range();
        if !self.domain().covers(&irange) {
            return Err(PwlError::DomainMismatch {
                left: self.domain(),
                right: irange,
            });
        }
        // Breakpoints: inner's, plus preimages of self's interior
        // breakpoints under inner.
        let mut xs: Vec<f64> = inner.inner.breakpoints().to_vec();
        for &bx in self.inner.breakpoints() {
            if let Some(px) = inner.inverse_at(bx) {
                if crate::definitely_lt(inner.domain().lo(), px)
                    && crate::definitely_lt(px, inner.domain().hi())
                {
                    xs.push(px);
                }
            }
        }
        crate::pwl::sort_dedupe(&mut xs);
        let composed = crate::pwl::build_from_breakpoints(xs, |mid| {
            let g = inner.inner.linears()[inner
                .inner
                .piece_index_at(mid)
                .expect("mid in inner domain")];
            let y = g.eval(mid);
            let f = self.inner.linears()[self
                .inner
                .piece_index_at(self.domain().clamp(y))
                .expect("clamped into domain")];
            f.compose(&g)
        })?;
        MonotonePwl::new(composed)
    }

    /// Pointwise `self + c` (still monotone).
    pub fn add_scalar(&self, c: f64) -> MonotonePwl {
        MonotonePwl {
            inner: self.inner.add_scalar(c),
        }
    }

    /// Restrict to `to ∩ domain`.
    pub fn restrict(&self, to: &Interval) -> Result<MonotonePwl> {
        Ok(MonotonePwl {
            inner: self.inner.restrict(to)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn ramp() -> MonotonePwl {
        // slope 1 on [0,10], slope 3 on [10,20]
        MonotonePwl::new(Pwl::from_points(&[(0.0, 0.0), (10.0, 10.0), (20.0, 40.0)]).unwrap())
            .unwrap()
    }

    #[test]
    fn rejects_flat_and_decreasing() {
        let flat = Pwl::constant(Interval::of(0.0, 1.0), 2.0).unwrap();
        assert!(matches!(
            MonotonePwl::new(flat),
            Err(PwlError::NotIncreasing { .. })
        ));
        let dec = Pwl::from_points(&[(0.0, 5.0), (1.0, 4.0)]).unwrap();
        assert!(MonotonePwl::new(dec).is_err());
        let jump = Pwl::new(
            vec![0.0, 1.0, 2.0],
            vec![Linear::identity(), Linear { a: 1.0, b: 10.0 }],
        )
        .unwrap();
        assert!(matches!(
            MonotonePwl::new(jump),
            Err(PwlError::Discontinuous { .. })
        ));
    }

    #[test]
    fn range_and_inverse_at() {
        let f = ramp();
        assert!(f.range().approx_eq(&Interval::of(0.0, 40.0)));
        assert!(approx_eq(f.inverse_at(5.0).unwrap(), 5.0));
        assert!(approx_eq(f.inverse_at(10.0).unwrap(), 10.0));
        assert!(approx_eq(f.inverse_at(25.0).unwrap(), 15.0));
        assert!(approx_eq(f.inverse_at(40.0).unwrap(), 20.0));
        assert_eq!(f.inverse_at(41.0), None);
        assert_eq!(f.inverse_at(-1.0), None);
    }

    #[test]
    fn inverse_roundtrips() {
        let f = ramp();
        let inv = f.inverse();
        assert!(inv.domain().approx_eq(&Interval::of(0.0, 40.0)));
        for x in [0.0, 3.7, 10.0, 14.2, 20.0] {
            assert!(approx_eq(inv.eval(f.eval(x)), x));
        }
        for y in [0.0, 9.0, 10.0, 33.0, 40.0] {
            assert!(approx_eq(f.eval(inv.eval(y)), y));
        }
    }

    #[test]
    fn arrival_from_travel_enforces_fifo() {
        // FIFO-safe: slope −2/3 > −1 (the paper's s→n function shape)
        let t = Pwl::from_points(&[(0.0, 6.0), (6.0, 2.0), (10.0, 2.0)]).unwrap();
        let a = MonotonePwl::arrival_from_travel(&t).unwrap();
        assert!(approx_eq(a.eval(0.0), 6.0));
        assert!(approx_eq(a.eval(10.0), 12.0));
        // FIFO-violating: slope −2 < −1
        let bad = Pwl::from_points(&[(0.0, 10.0), (5.0, 0.0)]).unwrap();
        assert!(MonotonePwl::arrival_from_travel(&bad).is_err());
    }

    #[test]
    fn compose_matches_pointwise() {
        let g = ramp(); // [0,20] -> [0,40]
        let f = MonotonePwl::new(
            Pwl::from_points(&[(0.0, 100.0), (25.0, 150.0), (40.0, 240.0)]).unwrap(),
        )
        .unwrap();
        let h = f.compose(&g).unwrap();
        assert!(h.domain().approx_eq(&Interval::of(0.0, 20.0)));
        for x in [0.0, 2.0, 9.99, 10.0, 12.5, 15.0, 17.3, 20.0] {
            assert!(
                approx_eq(h.eval(x), f.eval(g.eval(x))),
                "mismatch at {x}: {} vs {}",
                h.eval(x),
                f.eval(g.eval(x))
            );
        }
        // the interior breakpoint of f at y=25 shows up at x = g⁻¹(25) = 15
        assert!(h.as_pwl().breakpoints().iter().any(|&b| approx_eq(b, 15.0)));
    }

    #[test]
    fn compose_requires_domain_cover() {
        let g = ramp(); // range [0, 40]
        let f = MonotonePwl::identity(Interval::of(0.0, 30.0)).unwrap();
        assert!(f.compose(&g).is_err());
    }

    #[test]
    fn restrict_keeps_monotone() {
        let f = ramp().restrict(&Interval::of(5.0, 15.0)).unwrap();
        assert!(f.domain().approx_eq(&Interval::of(5.0, 15.0)));
        assert!(approx_eq(f.eval(15.0), 25.0));
    }
}
