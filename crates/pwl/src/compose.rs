//! The *compound* operation of §4.4: expanding a path by one edge.
//!
//! Given the travel-time function `T₁(l)` of a path `s ⇒ n` (defined on
//! the query interval `I`) and the travel-time function `T₂(l′)` of the
//! next edge `n → n_j` (defined on leaving times `l′` at `n`, which must
//! cover the arrival interval `A₁(I)`), the expanded path's travel-time
//! function is
//!
//! ```text
//! T(l) = T₁(l) + T₂(l + T₁(l))      for l ∈ I.
//! ```
//!
//! The breakpoints of `T` are (paper §4.4):
//!
//! 1. the breakpoints of `T₁` (the "simple case"), and
//! 2. the preimages `A₁⁻¹(t)` of each breakpoint `t` of `T₂`
//!    (the "trickier case" — found in the paper by intersecting
//!    `T₁` with a 135° line through `(t, 0)`; the exact inverse of the
//!    monotone arrival function computes the same instant).

use crate::scratch::PwlScratch;
use crate::{Interval, MonotonePwl, Pwl, PwlError, Result};

/// Compute the leaving-time interval at the head of an edge (the
/// arrival interval at the intermediate node), `A₁(I) = [lo + T₁(lo),
/// hi + T₁(hi)]` — paper §4.4, Figure 4.
pub fn arrival_interval(t1: &Pwl) -> Result<Interval> {
    // Same validations and endpoint arithmetic as
    // `MonotonePwl::arrival_from_travel(t1)?.range()`, without
    // materializing the arrival function (this runs once per expanded
    // path in the engine).
    t1.check_continuous()?;
    let (x1, f1) = (t1.breakpoints(), t1.linears());
    for (i, f) in f1.iter().enumerate() {
        if f.a + 1.0 <= crate::EPS {
            return Err(PwlError::NotIncreasing { at: x1[i] });
        }
    }
    let arr = |i: usize| crate::Linear {
        a: f1[i].a + 1.0,
        b: f1[i].b,
    };
    let lo = x1[0];
    let hi = x1[x1.len() - 1];
    Ok(Interval::of(arr(0).eval(lo), arr(f1.len() - 1).eval(hi)))
}

/// The compound `T(l) = T₁(l) + T₂(l + T₁(l))`.
///
/// `t2`'s domain must cover the arrival interval `A₁(domain(t1))`
/// within [`crate::EPS`]; otherwise a [`PwlError::DomainMismatch`] is
/// returned. Fails with [`PwlError::NotIncreasing`] if `t1` violates
/// FIFO (slope ≤ −1).
pub fn compose_travel(t1: &Pwl, t2: &Pwl) -> Result<Pwl> {
    let a1 = MonotonePwl::arrival_from_travel(t1)?;
    let arrivals = a1.range();
    if !t2.domain().covers(&arrivals) {
        return Err(PwlError::DomainMismatch {
            left: t2.domain(),
            right: arrivals,
        });
    }
    let domain = t1.domain();

    // Breakpoint set: T₁'s own, plus A₁⁻¹ of T₂'s interior breakpoints
    // that land strictly inside the domain.
    let mut xs: Vec<f64> = t1.breakpoints().to_vec();
    for &t in t2.breakpoints() {
        if let Some(l) = a1.inverse_at(t) {
            if crate::definitely_lt(domain.lo(), l) && crate::definitely_lt(l, domain.hi()) {
                xs.push(l);
            }
        }
    }
    crate::pwl::sort_dedupe(&mut xs);

    let t2dom = t2.domain();
    crate::pwl::build_from_breakpoints(xs, |mid| {
        let p1 = t1.linears()[t1.piece_index_at(mid).expect("mid in t1 domain")];
        let arrive = t2dom.clamp(a1.eval(mid));
        let p2 = t2.linears()[t2.piece_index_at(arrive).expect("arrival in t2 domain")];
        p1.compound(&p2)
    })
}

/// [`compose_travel`] fused with [`Pwl::simplify`]: identical output
/// function, one building pass.
///
/// Convenience wrapper over [`compose_travel_into`] with a throwaway
/// cold scratch — same result bit for bit, but each call pays its own
/// buffer allocations. The engine's hot loop uses
/// [`compose_travel_into`] with a per-worker [`PwlScratch`] instead.
pub fn compose_travel_simplified(t1: &Pwl, t2: &Pwl) -> Result<Pwl> {
    let mut scratch = PwlScratch::new();
    compose_travel_into(&mut scratch, t1, t2)
}

/// The compound `T(l) = T₁(l) + T₂(l + T₁(l))`, fused with
/// [`Pwl::simplify`] and built out of pooled buffers.
///
/// The engine composes once per expanded edge and always simplifies the
/// result, so this kernel avoids the per-call overheads of the two-pass
/// form:
///
/// * no intermediate unsimplified function — collinear pieces are
///   dropped while building;
/// * no materialized arrival function — `A₁` shares `T₁`'s breakpoints
///   with each slope shifted by one, so evals and inverses read `T₁`'s
///   piece table directly (preimages come from a cursor sweep; the
///   equivalent [`MonotonePwl::inverse_at`] calls would each binary
///   search, though neither allocates);
/// * no per-piece binary searches — the subdivision midpoints and
///   their images under the increasing `A₁` are both nondecreasing, as
///   are `T₂`'s breakpoints, so advancing cursors find every piece;
/// * no steady-state allocations — the breakpoint workspaces live in
///   `scratch` and the output buffers come from its pool, so once the
///   pool is warm (see the scratch-reuse contract on [`PwlScratch`])
///   composing is allocation-free.
pub fn compose_travel_into(scratch: &mut PwlScratch, t1: &Pwl, t2: &Pwl) -> Result<Pwl> {
    let (x1, f1) = (t1.breakpoints(), t1.linears());
    let n1 = f1.len();
    // Arrival piece over x1[i]..x1[i+1]: same arithmetic as
    // `add_identity` (slope + 1, intercept unchanged), so every value
    // below matches the two-pass path bit for bit.
    let arr = |i: usize| crate::Linear {
        a: f1[i].a + 1.0,
        b: f1[i].b,
    };

    // The `MonotonePwl::arrival_from_travel` validations, on the
    // shared breakpoint grid: continuity, then FIFO (arrival slopes
    // must be strictly positive).
    t1.check_continuous()?;
    for (i, f) in f1.iter().enumerate() {
        if f.a + 1.0 <= crate::EPS {
            return Err(PwlError::NotIncreasing { at: x1[i] });
        }
    }

    let domain = t1.domain();
    let arrivals = Interval::of(arr(0).eval(x1[0]), arr(n1 - 1).eval(x1[n1]));
    if !t2.domain().covers(&arrivals) {
        return Err(PwlError::DomainMismatch {
            left: t2.domain(),
            right: arrivals,
        });
    }

    // Breakpoint set: T₁'s own, plus A₁⁻¹ of T₂'s interior breakpoints
    // that land strictly inside the domain. T₂'s breakpoints ascend and
    // A₁ is increasing, so one cursor sweep finds each preimage's piece,
    // and the preimages form a nondecreasing run. Stably merging that
    // run with the (sorted) `x1` — ties taken from `x1` first — yields
    // exactly what the stable `sort_dedupe` of `[x1…, preimages…]` in
    // the two-pass form produces.
    scratch.aux.clear();
    let mut p = 0usize;
    for &t in t2.breakpoints() {
        if !arrivals.contains_approx(t) {
            continue;
        }
        while p + 1 < n1 && arr(p).eval(x1[p + 1]) <= t {
            p += 1;
        }
        let piece = arr(p);
        let l = domain.clamp((t - piece.b) / piece.a);
        if crate::definitely_lt(domain.lo(), l) && crate::definitely_lt(l, domain.hi()) {
            scratch.aux.push(l);
        }
    }
    {
        let (knots, aux) = (&mut scratch.knots, &scratch.aux);
        knots.clear();
        let (mut i, mut j) = (0usize, 0usize);
        while i < x1.len() && j < aux.len() {
            if x1[i] <= aux[j] {
                knots.push(x1[i]);
                i += 1;
            } else {
                knots.push(aux[j]);
                j += 1;
            }
        }
        knots.extend_from_slice(&x1[i..]);
        knots.extend_from_slice(&aux[j..]);
        crate::pwl::dedupe_eps(knots);
    }
    if scratch.knots.len() < 2 {
        return Err(PwlError::BadBreakpoints(
            "empty elementary subdivision".into(),
        ));
    }

    let (x2, f2) = (t2.breakpoints(), t2.linears());
    let t2dom = t2.domain();

    let (mut out_xs, mut out_fs) = scratch.take_buffers();
    let xs = &scratch.knots;
    out_xs.push(xs[0]);
    let (mut i1, mut i2) = (0usize, 0usize);
    for w in xs.windows(2) {
        let mid = 0.5 * (w[0] + w[1]);
        while i1 + 1 < n1 && x1[i1 + 1] <= mid {
            i1 += 1;
        }
        let arrive = t2dom.clamp(arr(i1).eval(mid));
        while i2 + 1 < f2.len() && x2[i2 + 1] <= arrive {
            i2 += 1;
        }
        let g = f1[i1].compound(&f2[i2]);
        if let Some(last) = out_fs.last() {
            // Same rule as `Pwl::simplify`: collinear over the new
            // piece's span extends the previous piece.
            if last.approx_same_over(&g, &Interval::of(w[0], w[1])) {
                continue;
            }
            out_xs.push(w[0]);
        }
        out_fs.push(g);
    }
    out_xs.push(xs[xs.len() - 1]);
    // Breakpoints are a strictly-increasing subset of the deduped knot
    // set; skip the re-validation passes (debug builds still check).
    Ok(Pwl::from_sorted_parts(out_xs, out_fs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::hm;
    use crate::{approx_eq, Linear};

    /// T₁ of the paper's running example (path s → n, §4.3):
    /// 6 on [6:50, 6:54), (2/3)(7:00 − l) + 2 on [6:54, 7:00), 2 after.
    fn paper_t1() -> Pwl {
        Pwl::from_points(&[
            (hm(6, 50), 6.0),
            (hm(6, 54), 6.0),
            (hm(7, 0), 2.0),
            (hm(7, 5), 2.0),
        ])
        .unwrap()
    }

    /// T₂ of the running example (edge n → e on the arrival interval
    /// [6:56, 7:07]): 3 until 7:05, then 10 − (7/3)(7:08 − l).
    fn paper_t2() -> Pwl {
        let ramp_end = 10.0 - (7.0 / 3.0) * (hm(7, 8) - hm(7, 7));
        Pwl::from_points(&[(hm(6, 56), 3.0), (hm(7, 5), 3.0), (hm(7, 7), ramp_end)]).unwrap()
    }

    #[test]
    fn arrival_interval_matches_figure_4() {
        // Paper: leaving interval for n→e is [6:56, 7:07].
        let iv = arrival_interval(&paper_t1()).unwrap();
        assert!(approx_eq(iv.lo(), hm(6, 56)));
        assert!(approx_eq(iv.hi(), hm(7, 7)));
    }

    #[test]
    fn compound_reproduces_figure_5() {
        // Paper §4.4: the combined T(l, s ⇒ n → e) has breakpoints at
        // 6:50, 6:54, 7:00 and 7:03, with pieces 9, (2/3)(7:00−l)+5, 5,
        // and 12 − (7/3)(7:06 − l).
        let t = compose_travel(&paper_t1(), &paper_t2()).unwrap().simplify();
        let bps = t.breakpoints();
        assert_eq!(bps.len(), 5, "breakpoints {bps:?}");
        assert!(approx_eq(bps[0], hm(6, 50)));
        assert!(approx_eq(bps[1], hm(6, 54)));
        assert!(approx_eq(bps[2], hm(7, 0)));
        assert!(approx_eq(bps[3], hm(7, 3)));
        assert!(approx_eq(bps[4], hm(7, 5)));

        assert!(approx_eq(t.eval(hm(6, 50)), 9.0));
        assert!(approx_eq(t.eval(hm(6, 52)), 9.0));
        // middle ramp: (2/3)(7:00 − l) + 5
        assert!(approx_eq(t.eval(hm(6, 57)), (2.0 / 3.0) * 3.0 + 5.0));
        assert!(approx_eq(t.eval(hm(7, 0)), 5.0));
        assert!(approx_eq(t.eval(hm(7, 2)), 5.0));
        assert!(approx_eq(t.eval(hm(7, 3)), 5.0));
        // final ramp: 12 − (7/3)(7:06 − l)
        assert!(approx_eq(t.eval(hm(7, 4)), 12.0 - (7.0 / 3.0) * 2.0));
        assert!(approx_eq(t.eval(hm(7, 5)), 12.0 - (7.0 / 3.0) * 1.0));
    }

    #[test]
    fn compound_equals_pointwise_definition() {
        let t1 = paper_t1();
        let t2 = paper_t2();
        let t = compose_travel(&t1, &t2).unwrap();
        let d = t1.domain();
        let steps = 200;
        for k in 0..=steps {
            let l = d.lo() + d.len() * (k as f64) / (steps as f64);
            let direct = t1.eval(l) + t2.eval(l + t1.eval(l));
            assert!(
                approx_eq(t.eval(l), direct),
                "mismatch at l={l}: {} vs {direct}",
                t.eval(l)
            );
        }
        assert!(t.is_continuous());
    }

    #[test]
    fn compound_requires_t2_to_cover_arrivals() {
        let t1 = paper_t1();
        let short = Pwl::constant(Interval::of(hm(6, 56), hm(7, 0)), 3.0).unwrap();
        assert!(matches!(
            compose_travel(&t1, &short),
            Err(PwlError::DomainMismatch { .. })
        ));
    }

    #[test]
    fn compound_rejects_fifo_violation() {
        let bad = Pwl::linear(Interval::of(0.0, 10.0), Linear { a: -2.0, b: 30.0 }).unwrap();
        let t2 = Pwl::constant(Interval::of(0.0, 100.0), 1.0).unwrap();
        assert!(matches!(
            compose_travel(&bad, &t2),
            Err(PwlError::NotIncreasing { .. })
        ));
    }

    #[test]
    fn fused_variant_matches_compose_then_simplify() {
        let t1 = paper_t1();
        let t2 = paper_t2();
        let fused = compose_travel_simplified(&t1, &t2).unwrap();
        let two_pass = compose_travel(&t1, &t2).unwrap().simplify();
        assert_eq!(fused.breakpoints(), two_pass.breakpoints());
        let d = t1.domain();
        for k in 0..=200 {
            let l = d.lo() + d.len() * (f64::from(k)) / 200.0;
            assert!(
                approx_eq(fused.eval(l), two_pass.eval(l)),
                "mismatch at l={l}"
            );
        }

        // Constant edge: collapses to t1's simplified piece count.
        let flat = Pwl::constant(Interval::of(hm(6, 0), hm(9, 0)), 4.0).unwrap();
        let fused = compose_travel_simplified(&t1, &flat).unwrap();
        assert_eq!(fused.n_pieces(), t1.simplify().n_pieces());

        // Same error surface as the two-pass form.
        let short = Pwl::constant(Interval::of(hm(6, 56), hm(7, 0)), 3.0).unwrap();
        assert!(matches!(
            compose_travel_simplified(&t1, &short),
            Err(PwlError::DomainMismatch { .. })
        ));
    }

    #[test]
    fn compound_with_constant_edge_adds_constant() {
        let t1 = paper_t1();
        let t2 = Pwl::constant(Interval::of(hm(6, 0), hm(9, 0)), 4.0).unwrap();
        let t = compose_travel(&t1, &t2).unwrap().simplify();
        for l in [hm(6, 50), hm(6, 57), hm(7, 5)] {
            assert!(approx_eq(t.eval(l), t1.eval(l) + 4.0));
        }
        assert_eq!(t.n_pieces(), t1.simplify().n_pieces());
    }
}
