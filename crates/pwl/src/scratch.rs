//! Reusable buffers and shared ownership for the PWL hot path.
//!
//! The allFP inner loop composes, restricts, and merges piecewise-linear
//! functions millions of times per workload. [`PwlScratch`] keeps the
//! intermediate knot workspaces and a pool of retired `(xs, fs)` buffer
//! pairs so a warm loop never touches the allocator; [`PwlRef`] lets the
//! engine share a finished function by reference count instead of deep
//! copy.

use std::ops::Deref;
use std::sync::Arc;

use crate::{Linear, Pwl};

/// Retired buffer pairs kept beyond this count are dropped instead of
/// pooled, bounding a scratch's idle footprint.
///
/// Sized to the *query* working set, not the per-expansion one: the
/// engine keeps every stored path's function buffers checked out until
/// the query finishes, so a pool smaller than the surviving-path count
/// forces one fresh allocation per stored path on the next query. A
/// few thousand pairs cover the Fig. 9 workloads; at a typical piece
/// count the idle footprint stays within a few megabytes per worker.
const POOL_CAP: usize = 4096;

/// Reusable workspace for the pooled PWL kernels
/// ([`compose_travel_into`](crate::compose_travel_into),
/// [`Pwl::restrict_with`], [`Pwl::dominated_by_with`],
/// [`Envelope::merge_min_with`](crate::Envelope::merge_min_with)).
///
/// # Scratch-reuse contract
///
/// - A `PwlScratch` is a plain buffer pool: it carries **no state**
///   between calls. Every kernel clears the workspace it uses before
///   writing, so a dirty or freshly-created scratch produces
///   bit-identical results — only the allocation count differs.
/// - Kernels *take* output buffers from the pool and return them inside
///   the produced [`Pwl`]. To close the loop, hand finished functions
///   back with [`recycle`](Self::recycle) (or
///   [`recycle_ref`](Self::recycle_ref)) once they are no longer
///   needed; after a few iterations of similarly-sized work the pool is
///   warm and the kernels stop allocating entirely.
/// - A scratch is single-threaded state: give each worker its own
///   (`CacheSession` in `fp-allfp` owns one per batch worker). Sharing
///   one across threads is prevented by `&mut` receivers.
#[derive(Debug, Default)]
pub struct PwlScratch {
    /// Merged-breakpoint workspace (the elementary subdivision).
    pub(crate) knots: Vec<f64>,
    /// Secondary workspace: interior breakpoints / compose preimages.
    pub(crate) aux: Vec<f64>,
    /// Retired `(xs, fs)` buffer pairs, cleared but with capacity kept.
    pool: Vec<(Vec<f64>, Vec<Linear>)>,
}

impl PwlScratch {
    /// A new, cold scratch; the first few kernel calls will allocate
    /// while the pool warms up.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a cleared `(xs, fs)` buffer pair, reusing pooled capacity
    /// when available.
    pub(crate) fn take_buffers(&mut self) -> (Vec<f64>, Vec<Linear>) {
        self.pool.pop().unwrap_or_default()
    }

    /// Return a finished function's buffers to the pool so the next
    /// kernel call can reuse their capacity.
    pub fn recycle(&mut self, f: Pwl) {
        let (xs, fs) = f.into_parts();
        self.recycle_buffers(xs, fs);
    }

    /// [`recycle`](Self::recycle) for a [`PwlRef`]: an owned function's
    /// buffers are pooled, a shared one just drops its reference.
    pub fn recycle_ref(&mut self, f: PwlRef) {
        if let PwlRef::Owned(p) = f {
            self.recycle(p);
        }
    }

    /// Pool a raw buffer pair (cleared here; capacity kept).
    pub fn recycle_buffers(&mut self, mut xs: Vec<f64>, mut fs: Vec<Linear>) {
        if self.pool.len() < POOL_CAP {
            xs.clear();
            fs.clear();
            self.pool.push((xs, fs));
        }
    }

    /// Number of pooled buffer pairs currently held (for tests).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

/// A travel function that is either uniquely owned or shared behind an
/// [`Arc`] — copy-on-write in the cheap direction only.
///
/// The path arena builds each function once ([`Owned`](PwlRef::Owned)),
/// and the first consumer that needs to keep it alive past the arena
/// (answer path, border member) promotes it to
/// [`Shared`](PwlRef::Shared) via [`share`](PwlRef::share); every
/// further "copy" is a refcount bump. Functions are immutable once
/// built, so sharing cannot change any observable value.
#[derive(Debug, Clone)]
pub enum PwlRef {
    /// Uniquely owned; its buffers can still be recycled into a pool.
    Owned(Pwl),
    /// Shared; cloning bumps the reference count.
    Shared(Arc<Pwl>),
}

impl PwlRef {
    /// Borrow the underlying function.
    #[inline]
    pub fn as_pwl(&self) -> &Pwl {
        match self {
            PwlRef::Owned(p) => p,
            PwlRef::Shared(a) => a,
        }
    }

    /// Promote to shared storage (idempotent) and hand out a reference.
    pub fn share(&mut self) -> Arc<Pwl> {
        if let PwlRef::Owned(_) = self {
            let PwlRef::Owned(p) = std::mem::replace(self, PwlRef::Owned(Pwl::shell())) else {
                unreachable!("just matched Owned");
            };
            *self = PwlRef::Shared(Arc::new(p));
        }
        match self {
            PwlRef::Shared(a) => Arc::clone(a),
            PwlRef::Owned(_) => unreachable!("promoted to Shared above"),
        }
    }
}

impl Deref for PwlRef {
    type Target = Pwl;

    #[inline]
    fn deref(&self) -> &Pwl {
        self.as_pwl()
    }
}

impl From<Pwl> for PwlRef {
    fn from(p: Pwl) -> Self {
        PwlRef::Owned(p)
    }
}

impl From<Arc<Pwl>> for PwlRef {
    fn from(a: Arc<Pwl>) -> Self {
        PwlRef::Shared(a)
    }
}

impl PartialEq for PwlRef {
    /// Compares the underlying functions; `Owned` vs `Shared` storage
    /// of the same function are equal.
    fn eq(&self, other: &Self) -> bool {
        self.as_pwl() == other.as_pwl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interval;

    fn sample() -> Pwl {
        Pwl::from_points(&[(0.0, 1.0), (5.0, 3.0), (10.0, 2.0)]).unwrap()
    }

    #[test]
    fn share_is_idempotent_and_preserves_value() {
        let mut r = PwlRef::from(sample());
        assert_eq!(r.as_pwl(), &sample());
        let a1 = r.share();
        let a2 = r.share();
        assert!(Arc::ptr_eq(&a1, &a2));
        assert_eq!(&*a1, &sample());
        assert_eq!(r.as_pwl(), &sample());
        // deref passthrough
        assert_eq!(r.n_pieces(), 2);
    }

    #[test]
    fn owned_and_shared_compare_equal() {
        let owned = PwlRef::from(sample());
        let shared = PwlRef::from(Arc::new(sample()));
        assert_eq!(owned, shared);
        let other = PwlRef::from(Pwl::constant(Interval::of(0.0, 1.0), 4.0).unwrap());
        assert_ne!(owned, other);
    }

    #[test]
    fn pool_recycles_and_caps() {
        let mut s = PwlScratch::new();
        assert_eq!(s.pooled(), 0);
        s.recycle(sample());
        assert_eq!(s.pooled(), 1);
        let (xs, fs) = s.take_buffers();
        assert_eq!(s.pooled(), 0);
        assert!(xs.is_empty() && fs.is_empty());
        assert!(xs.capacity() >= 3 && fs.capacity() >= 2);
        // shared refs are dropped, not pooled
        let mut r = PwlRef::from(sample());
        r.share();
        s.recycle_ref(r);
        assert_eq!(s.pooled(), 0);
        s.recycle_ref(PwlRef::from(sample()));
        assert_eq!(s.pooled(), 1);
    }
}
