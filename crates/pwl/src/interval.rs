//! Closed intervals `[lo, hi]` on the real line.

use crate::{approx_eq, PwlError, Result, EPS};

/// A closed interval `[lo, hi]` with `lo ≤ hi` and finite endpoints.
///
/// Used both for time-of-day query intervals ("leaving between 7:00 and
/// 9:00") and for the sub-intervals of an allFP answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Create `[lo, hi]`; fails if `lo > hi` or either endpoint is not
    /// finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(PwlError::BadInterval { lo, hi });
        }
        Ok(Interval { lo, hi })
    }

    /// Create `[lo, hi]`, panicking on invalid input.
    ///
    /// Convenient in tests and for literals known to be valid.
    #[track_caller]
    pub fn of(lo: f64, hi: f64) -> Self {
        Self::new(lo, hi).expect("invalid interval literal")
    }

    /// A degenerate single-point interval `[x, x]`.
    pub fn point(x: f64) -> Result<Self> {
        Self::new(x, x)
    }

    /// Lower endpoint.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint.
    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Length `hi − lo`.
    #[inline]
    pub fn len(&self) -> f64 {
        self.hi - self.lo
    }

    /// `true` if the interval is a single point (within [`EPS`]).
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.len() <= EPS * (1.0 + self.lo.abs().max(self.hi.abs()))
    }

    /// Midpoint `(lo + hi) / 2`.
    #[inline]
    pub fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// `true` if `x ∈ [lo, hi]` exactly.
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// `true` if `x ∈ [lo, hi]` within [`EPS`] slack at both ends.
    #[inline]
    pub fn contains_approx(&self, x: f64) -> bool {
        crate::approx_le(self.lo, x) && crate::approx_le(x, self.hi)
    }

    /// `true` if `other ⊆ self` within [`EPS`] slack.
    pub fn covers(&self, other: &Interval) -> bool {
        crate::approx_le(self.lo, other.lo) && crate::approx_le(other.hi, self.hi)
    }

    /// Intersection with `other`, or `None` if disjoint.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// Smallest interval containing both `self` and `other`.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Shift both endpoints by `dx`.
    pub fn shift(&self, dx: f64) -> Interval {
        Interval {
            lo: self.lo + dx,
            hi: self.hi + dx,
        }
    }

    /// Clamp `x` into the interval.
    #[inline]
    pub fn clamp(&self, x: f64) -> f64 {
        x.clamp(self.lo, self.hi)
    }

    /// `true` if the two intervals are equal within [`EPS`].
    pub fn approx_eq(&self, other: &Interval) -> bool {
        approx_eq(self.lo, other.lo) && approx_eq(self.hi, other.hi)
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Interval::new(1.0, 0.0).is_err());
        assert!(Interval::new(f64::NAN, 1.0).is_err());
        assert!(Interval::new(0.0, f64::INFINITY).is_err());
        assert!(Interval::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn basic_queries() {
        let i = Interval::of(2.0, 6.0);
        assert_eq!(i.len(), 4.0);
        assert_eq!(i.mid(), 4.0);
        assert!(i.contains(2.0));
        assert!(i.contains(6.0));
        assert!(!i.contains(6.0001));
        assert!(!i.is_degenerate());
        assert!(Interval::point(3.0).unwrap().is_degenerate());
    }

    #[test]
    fn intersect_and_hull() {
        let a = Interval::of(0.0, 5.0);
        let b = Interval::of(3.0, 8.0);
        assert_eq!(a.intersect(&b), Some(Interval::of(3.0, 5.0)));
        assert_eq!(a.hull(&b), Interval::of(0.0, 8.0));
        let c = Interval::of(6.0, 7.0);
        assert_eq!(a.intersect(&c), None);
        // touching intervals intersect in a point
        let d = Interval::of(5.0, 9.0);
        assert_eq!(a.intersect(&d), Some(Interval::of(5.0, 5.0)));
    }

    #[test]
    fn covers_and_shift() {
        let a = Interval::of(0.0, 10.0);
        assert!(a.covers(&Interval::of(2.0, 3.0)));
        assert!(a.covers(&Interval::of(0.0, 10.0)));
        assert!(!a.covers(&Interval::of(-1.0, 3.0)));
        assert_eq!(a.shift(5.0), Interval::of(5.0, 15.0));
    }

    #[test]
    fn clamp_works() {
        let a = Interval::of(1.0, 2.0);
        assert_eq!(a.clamp(0.0), 1.0);
        assert_eq!(a.clamp(1.5), 1.5);
        assert_eq!(a.clamp(9.0), 2.0);
    }
}
