//! Tagged lower envelopes — the paper's *lower border function* (§4.6).
//!
//! As `IntAllFastestPaths` identifies paths that reach the end node, it
//! folds each path's travel-time function into a running lower
//! envelope. Every envelope piece remembers *which* path produced it,
//! so the allFP answer — a partitioning of the query interval into
//! sub-intervals, each with its fastest path — is read off the envelope
//! directly.

use crate::scratch::{PwlRef, PwlScratch};
use crate::{approx_le, definitely_lt, Interval, Linear, Pwl, PwlError, Result};

/// One piece of an [`Envelope`]: a sub-interval, the linear function on
/// it, and the tag (path) that owns it.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvelopePiece<T> {
    /// Sub-interval of the envelope domain.
    pub interval: Interval,
    /// The linear function on this sub-interval.
    pub linear: Linear,
    /// Tag of the function contributing this piece.
    pub tag: T,
}

/// The lower envelope of a set of piecewise-linear functions over a
/// common domain, with per-piece provenance tags.
///
/// Ties are broken in favour of the **earlier-inserted** function,
/// matching the paper's semantics where the first identified path keeps
/// its sub-interval unless a strictly faster path appears.
///
/// The envelope function is held as a [`PwlRef`], so an envelope can be
/// seeded from a shared `Arc<Pwl>` without deep-copying it; merging
/// always produces an owned function. Retired buffers are kept as
/// internal spares, making repeated [`merge_min_with`](Self::merge_min_with)
/// calls allocation-free once warm.
#[derive(Debug)]
pub struct Envelope<T> {
    pwl: PwlRef,
    tags: Vec<T>, // one per piece of `pwl`
    spare: Spare<T>,
}

/// Retired buffers from the previous merge, reused by the next one.
/// Never observable: always empty outside [`Envelope::merge_min_with`].
#[derive(Debug)]
struct Spare<T> {
    xs: Vec<f64>,
    fs: Vec<Linear>,
    tags: Vec<T>,
}

impl<T> Default for Spare<T> {
    fn default() -> Self {
        Spare {
            xs: Vec::new(),
            fs: Vec::new(),
            tags: Vec::new(),
        }
    }
}

impl<T: Clone> Clone for Envelope<T> {
    /// Clones function and tags; spare buffer capacity is not carried
    /// over.
    fn clone(&self) -> Self {
        Envelope {
            pwl: self.pwl.clone(),
            tags: self.tags.clone(),
            spare: Spare::default(),
        }
    }
}

impl<T: PartialEq> PartialEq for Envelope<T> {
    /// Compares the envelope function (by value, regardless of owned vs
    /// shared storage) and the tags; spare buffers are ignored.
    fn eq(&self, other: &Self) -> bool {
        self.pwl == other.pwl && self.tags == other.tags
    }
}

impl<T: Clone + PartialEq> Envelope<T> {
    /// Start an envelope from a single function — owned or shared
    /// (`Pwl`, `Arc<Pwl>`, or `PwlRef`).
    pub fn new(f: impl Into<PwlRef>, tag: T) -> Self {
        let pwl = f.into();
        let n = pwl.n_pieces();
        Envelope {
            pwl,
            tags: vec![tag; n],
            spare: Spare::default(),
        }
    }

    /// The envelope as a plain [`Pwl`].
    #[inline]
    pub fn as_pwl(&self) -> &Pwl {
        self.pwl.as_pwl()
    }

    /// Domain of the envelope.
    #[inline]
    pub fn domain(&self) -> Interval {
        self.pwl.domain()
    }

    /// Envelope value at `x`.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.pwl.eval(x)
    }

    /// Maximum value of the envelope over its domain — the paper's
    /// termination threshold: expansion stops when the smallest
    /// priority-queue minimum reaches this.
    pub fn max_value(&self) -> f64 {
        self.pwl.maximum()
    }

    /// Minimum value of the envelope over its domain.
    pub fn min_value(&self) -> f64 {
        self.pwl.minimum().value
    }

    /// Tag owning the envelope at `x`.
    pub fn tag_at(&self, x: f64) -> Result<&T> {
        Ok(&self.tags[self.pwl.piece_index_at(x)?])
    }

    /// Iterate the envelope pieces in order.
    pub fn pieces(&self) -> impl Iterator<Item = EnvelopePiece<&T>> + '_ {
        self.pwl
            .pieces()
            .zip(self.tags.iter())
            .map(|((interval, linear), tag)| EnvelopePiece {
                interval,
                linear: *linear,
                tag,
            })
    }

    /// The partitioning of the domain into maximal runs of equal tag —
    /// the shape of an allFP answer: consecutive sub-intervals, each
    /// owned by one function, adjacent sub-intervals owned by different
    /// functions.
    pub fn partition(&self) -> Vec<(Interval, T)> {
        let mut out: Vec<(Interval, T)> = Vec::new();
        for p in self.pieces() {
            match out.last_mut() {
                Some((iv, tag)) if tag == p.tag => *iv = iv.hull(&p.interval),
                _ => out.push((p.interval, p.tag.clone())),
            }
        }
        out
    }

    /// Fold another function into the envelope, keeping the pointwise
    /// minimum. `f` must cover the envelope's domain.
    ///
    /// Convenience wrapper over [`merge_min_with`](Self::merge_min_with)
    /// with a throwaway cold scratch — identical result, per-call
    /// workspace allocations.
    pub fn merge_min(&mut self, f: &Pwl, tag: T) -> Result<()> {
        let mut scratch = PwlScratch::new();
        self.merge_min_with(&mut scratch, f, tag)
    }

    /// [`merge_min`](Self::merge_min) with pooled buffers: the
    /// elementary subdivision lives in `scratch` and the rebuilt
    /// envelope double-buffers against the previous merge's retired
    /// arrays, so steady-state merging is allocation-free.
    ///
    /// Equivalent to the fold-then-coalesce formulation bit for bit:
    /// pieces are coalesced while being appended, and at the moment a
    /// piece is appended the last kept breakpoint equals that piece's
    /// raw span start, so each collinearity test sees exactly the span
    /// a post-hoc coalesce pass would use.
    pub fn merge_min_with(&mut self, scratch: &mut PwlScratch, f: &Pwl, tag: T) -> Result<()> {
        let domain = self.domain();
        if !f.domain().covers(&domain) {
            return Err(PwlError::DomainMismatch {
                left: f.domain(),
                right: domain,
            });
        }

        // Elementary subdivision: both current envelope and `f` are
        // single lines on each cell; a cell splits at most once where
        // the two lines cross.
        crate::pwl::merged_breakpoints_into(scratch, &[self.pwl.as_pwl(), f], &domain);
        let mut new_xs = std::mem::take(&mut self.spare.xs);
        let mut new_fs = std::mem::take(&mut self.spare.fs);
        let mut new_tags = std::mem::take(&mut self.spare.tags);
        new_xs.clear();
        new_fs.clear();
        new_tags.clear();
        new_xs.push(domain.lo());

        // Append a piece ending at `hi`, extending the previous piece
        // instead when it has the same tag and the same line over the
        // new piece's raw span (the inline coalesce).
        let push = |hi: f64,
                    lin: Linear,
                    t: T,
                    new_xs: &mut Vec<f64>,
                    new_fs: &mut Vec<Linear>,
                    new_tags: &mut Vec<T>| {
            if let (Some(pf), Some(pt)) = (new_fs.last(), new_tags.last()) {
                let span = Interval::of(new_xs[new_xs.len() - 1], hi);
                if *pt == t && pf.approx_same_over(&lin, &span) {
                    let last = new_xs.len() - 1;
                    new_xs[last] = hi;
                    return;
                }
            }
            new_xs.push(hi);
            new_fs.push(lin);
            new_tags.push(t);
        };

        // Cell midpoints ascend, so locate the covering piece of each
        // function with an advancing cursor instead of a binary search
        // per cell (same indices `piece_index_at` would return).
        let e_pwl = self.pwl.as_pwl();
        let (e_xs, e_lins) = (e_pwl.breakpoints(), e_pwl.linears());
        let (f_xs, f_lins) = (f.breakpoints(), f.linears());
        let (mut ei, mut fi) = (0usize, 0usize);
        for w in scratch.knots.windows(2) {
            let cell = Interval::of(w[0], w[1]);
            let mid = cell.mid();
            while ei + 1 < e_lins.len() && e_xs[ei + 1] <= mid {
                ei += 1;
            }
            let (e_lin, e_tag) = (e_lins[ei], self.tags[ei].clone());
            while fi + 1 < f_lins.len() && f_xs[fi + 1] <= mid {
                fi += 1;
            }
            let f_lin = f_lins[fi];

            match e_lin.intersection_within(&f_lin, &cell) {
                Some(x) => {
                    // Lines cross strictly inside the cell: the lower one
                    // flips at x.
                    let e_lower_left = definitely_lt(e_lin.eval(cell.lo()), f_lin.eval(cell.lo()))
                        || approx_le(e_lin.eval(cell.lo()), f_lin.eval(cell.lo()));
                    if e_lower_left {
                        push(
                            x,
                            e_lin,
                            e_tag.clone(),
                            &mut new_xs,
                            &mut new_fs,
                            &mut new_tags,
                        );
                        push(
                            cell.hi(),
                            f_lin,
                            tag.clone(),
                            &mut new_xs,
                            &mut new_fs,
                            &mut new_tags,
                        );
                    } else {
                        push(
                            x,
                            f_lin,
                            tag.clone(),
                            &mut new_xs,
                            &mut new_fs,
                            &mut new_tags,
                        );
                        push(
                            cell.hi(),
                            e_lin,
                            e_tag,
                            &mut new_xs,
                            &mut new_fs,
                            &mut new_tags,
                        );
                    }
                }
                None => {
                    // No interior crossing: one line is ≤ the other on the
                    // whole cell (compare at the midpoint). Ties keep the
                    // existing envelope piece.
                    if approx_le(e_lin.eval(mid), f_lin.eval(mid)) {
                        push(
                            cell.hi(),
                            e_lin,
                            e_tag,
                            &mut new_xs,
                            &mut new_fs,
                            &mut new_tags,
                        );
                    } else {
                        push(
                            cell.hi(),
                            f_lin,
                            tag.clone(),
                            &mut new_xs,
                            &mut new_fs,
                            &mut new_tags,
                        );
                    }
                }
            }
        }

        // The coalescing append keeps breakpoints strictly increasing;
        // skip the re-validation passes (debug builds still check).
        let new_pwl = Pwl::from_sorted_parts(new_xs, new_fs);
        // Retire the previous envelope's buffers as the next merge's
        // spares (a shared function just drops its reference).
        let old = std::mem::replace(&mut self.pwl, PwlRef::Owned(new_pwl));
        if let PwlRef::Owned(p) = old {
            let (xs, fs) = p.into_parts();
            self.spare.xs = xs;
            self.spare.fs = fs;
            self.spare.xs.clear();
            self.spare.fs.clear();
        }
        self.spare.tags = std::mem::replace(&mut self.tags, new_tags);
        self.spare.tags.clear();
        Ok(())
    }

    /// Retire this envelope's buffers into `scratch` so a later query
    /// on the same worker can reuse their capacity.
    pub fn recycle_into(self, scratch: &mut PwlScratch) {
        scratch.recycle_ref(self.pwl);
        scratch.recycle_buffers(self.spare.xs, self.spare.fs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::time::{hm, hms};

    #[test]
    fn single_function_envelope() {
        let f = Pwl::constant(Interval::of(0.0, 10.0), 5.0).unwrap();
        let env = Envelope::new(f, "a");
        assert!(approx_eq(env.max_value(), 5.0));
        assert!(approx_eq(env.min_value(), 5.0));
        assert_eq!(env.tag_at(3.0).unwrap(), &"a");
        assert_eq!(env.partition(), vec![(Interval::of(0.0, 10.0), "a")]);
    }

    #[test]
    fn merge_constant_below_takes_over() {
        let f = Pwl::constant(Interval::of(0.0, 10.0), 5.0).unwrap();
        let mut env = Envelope::new(f, "a");
        let g = Pwl::constant(Interval::of(0.0, 10.0), 3.0).unwrap();
        env.merge_min(&g, "b").unwrap();
        assert!(approx_eq(env.max_value(), 3.0));
        assert_eq!(env.partition(), vec![(Interval::of(0.0, 10.0), "b")]);
    }

    #[test]
    fn merge_ties_keep_existing() {
        let f = Pwl::constant(Interval::of(0.0, 10.0), 5.0).unwrap();
        let mut env = Envelope::new(f.clone(), "a");
        env.merge_min(&f, "b").unwrap();
        assert_eq!(env.partition(), vec![(Interval::of(0.0, 10.0), "a")]);
    }

    #[test]
    fn merge_crossing_splits_cell() {
        // envelope: x on [0,10]; merge 10 − x → crossing at 5
        let f = Pwl::identity(Interval::of(0.0, 10.0)).unwrap();
        let mut env = Envelope::new(f, "up");
        let g = Pwl::from_points(&[(0.0, 10.0), (10.0, 0.0)]).unwrap();
        env.merge_min(&g, "down").unwrap();
        let parts = env.partition();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].1, "up");
        assert!(parts[0].0.approx_eq(&Interval::of(0.0, 5.0)));
        assert_eq!(parts[1].1, "down");
        assert!(parts[1].0.approx_eq(&Interval::of(5.0, 10.0)));
        assert!(approx_eq(env.eval(0.0), 0.0));
        assert!(approx_eq(env.eval(5.0), 5.0));
        assert!(approx_eq(env.eval(10.0), 0.0));
        assert!(approx_eq(env.max_value(), 5.0));
    }

    #[test]
    fn merge_requires_domain_cover() {
        let f = Pwl::constant(Interval::of(0.0, 10.0), 5.0).unwrap();
        let mut env = Envelope::new(f, 0u32);
        let g = Pwl::constant(Interval::of(2.0, 8.0), 1.0).unwrap();
        assert!(env.merge_min(&g, 1).is_err());
        // wider is fine
        let h = Pwl::constant(Interval::of(-5.0, 15.0), 1.0).unwrap();
        env.merge_min(&h, 2).unwrap();
        assert!(env.domain().approx_eq(&Interval::of(0.0, 10.0)));
    }

    #[test]
    fn reproduces_paper_figure_7() {
        // Envelope of T(s ⇒ n → e) (Figure 5's 4-piece function) and
        // T(s → e) = 6, over I = [6:50, 7:05]. The paper's allFP answer:
        //   s → e       on [6:50, 6:58:30)
        //   s → n → e   on [6:58:30, 7:03:26)
        //   s → e       on [7:03:26, 7:05]
        let via_n = Pwl::from_points(&[
            (hm(6, 50), 9.0),
            (hm(6, 54), 9.0),
            (hm(7, 0), 5.0),
            (hm(7, 3), 5.0),
            (hm(7, 5), 12.0 - (7.0 / 3.0) * 1.0),
        ])
        .unwrap();
        let direct = Pwl::constant(Interval::of(hm(6, 50), hm(7, 5)), 6.0).unwrap();

        // Identification order as in the paper: s ⇒ n → e first.
        let mut env = Envelope::new(via_n, "s->n->e");
        env.merge_min(&direct, "s->e").unwrap();

        let parts = env.partition();
        assert_eq!(parts.len(), 3, "{parts:?}");
        assert_eq!(parts[0].1, "s->e");
        assert_eq!(parts[1].1, "s->n->e");
        assert_eq!(parts[2].1, "s->e");
        assert!(approx_eq(parts[0].0.lo(), hm(6, 50)));
        assert!(approx_eq(parts[0].0.hi(), hms(6, 58, 30)));
        assert!(approx_eq(parts[1].0.hi(), hm(7, 6) - 18.0 / 7.0)); // 7:03:25.7
        assert!(approx_eq(parts[2].0.hi(), hm(7, 5)));
        // termination threshold after both paths identified
        assert!(approx_eq(env.max_value(), 6.0));
    }
}
