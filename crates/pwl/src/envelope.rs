//! Tagged lower envelopes — the paper's *lower border function* (§4.6).
//!
//! As `IntAllFastestPaths` identifies paths that reach the end node, it
//! folds each path's travel-time function into a running lower
//! envelope. Every envelope piece remembers *which* path produced it,
//! so the allFP answer — a partitioning of the query interval into
//! sub-intervals, each with its fastest path — is read off the envelope
//! directly.

use crate::{approx_le, definitely_lt, Interval, Linear, Pwl, PwlError, Result};

/// One piece of an [`Envelope`]: a sub-interval, the linear function on
/// it, and the tag (path) that owns it.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvelopePiece<T> {
    /// Sub-interval of the envelope domain.
    pub interval: Interval,
    /// The linear function on this sub-interval.
    pub linear: Linear,
    /// Tag of the function contributing this piece.
    pub tag: T,
}

/// The lower envelope of a set of piecewise-linear functions over a
/// common domain, with per-piece provenance tags.
///
/// Ties are broken in favour of the **earlier-inserted** function,
/// matching the paper's semantics where the first identified path keeps
/// its sub-interval unless a strictly faster path appears.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<T> {
    pwl: Pwl,
    tags: Vec<T>, // one per piece of `pwl`
}

impl<T: Clone + PartialEq> Envelope<T> {
    /// Start an envelope from a single function.
    pub fn new(f: Pwl, tag: T) -> Self {
        let n = f.n_pieces();
        Envelope {
            pwl: f,
            tags: vec![tag; n],
        }
    }

    /// The envelope as a plain [`Pwl`].
    #[inline]
    pub fn as_pwl(&self) -> &Pwl {
        &self.pwl
    }

    /// Domain of the envelope.
    #[inline]
    pub fn domain(&self) -> Interval {
        self.pwl.domain()
    }

    /// Envelope value at `x`.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.pwl.eval(x)
    }

    /// Maximum value of the envelope over its domain — the paper's
    /// termination threshold: expansion stops when the smallest
    /// priority-queue minimum reaches this.
    pub fn max_value(&self) -> f64 {
        self.pwl.maximum()
    }

    /// Minimum value of the envelope over its domain.
    pub fn min_value(&self) -> f64 {
        self.pwl.minimum().value
    }

    /// Tag owning the envelope at `x`.
    pub fn tag_at(&self, x: f64) -> Result<&T> {
        Ok(&self.tags[self.pwl.piece_index_at(x)?])
    }

    /// Iterate the envelope pieces in order.
    pub fn pieces(&self) -> impl Iterator<Item = EnvelopePiece<&T>> + '_ {
        self.pwl
            .pieces()
            .zip(self.tags.iter())
            .map(|((interval, linear), tag)| EnvelopePiece {
                interval,
                linear: *linear,
                tag,
            })
    }

    /// The partitioning of the domain into maximal runs of equal tag —
    /// the shape of an allFP answer: consecutive sub-intervals, each
    /// owned by one function, adjacent sub-intervals owned by different
    /// functions.
    pub fn partition(&self) -> Vec<(Interval, T)> {
        let mut out: Vec<(Interval, T)> = Vec::new();
        for p in self.pieces() {
            match out.last_mut() {
                Some((iv, tag)) if tag == p.tag => *iv = iv.hull(&p.interval),
                _ => out.push((p.interval, p.tag.clone())),
            }
        }
        out
    }

    /// Fold another function into the envelope, keeping the pointwise
    /// minimum. `f` must cover the envelope's domain.
    pub fn merge_min(&mut self, f: &Pwl, tag: T) -> Result<()> {
        let domain = self.domain();
        if !f.domain().covers(&domain) {
            return Err(PwlError::DomainMismatch {
                left: f.domain(),
                right: domain,
            });
        }

        // Elementary subdivision: both current envelope and `f` are
        // single lines on each cell; a cell splits at most once where
        // the two lines cross.
        let xs = crate::pwl::merged_breakpoints(&[&self.pwl, f], &domain);
        let mut new_xs: Vec<f64> = Vec::with_capacity(xs.len() * 2);
        let mut new_fs: Vec<Linear> = Vec::with_capacity(xs.len() * 2);
        let mut new_tags: Vec<T> = Vec::with_capacity(xs.len() * 2);
        new_xs.push(domain.lo());

        let push = |hi: f64,
                    lin: Linear,
                    t: T,
                    new_xs: &mut Vec<f64>,
                    new_fs: &mut Vec<Linear>,
                    new_tags: &mut Vec<T>| {
            new_xs.push(hi);
            new_fs.push(lin);
            new_tags.push(t);
        };

        for w in xs.windows(2) {
            let cell = Interval::of(w[0], w[1]);
            let mid = cell.mid();
            let ei = self
                .pwl
                .piece_index_at(mid)
                .expect("mid in envelope domain");
            let (e_lin, e_tag) = (self.pwl.linears()[ei], self.tags[ei].clone());
            let f_lin = f.linears()[f.piece_index_at(mid).expect("mid in f domain")];

            match e_lin.intersection_within(&f_lin, &cell) {
                Some(x) => {
                    // Lines cross strictly inside the cell: the lower one
                    // flips at x.
                    let e_lower_left = definitely_lt(e_lin.eval(cell.lo()), f_lin.eval(cell.lo()))
                        || approx_le(e_lin.eval(cell.lo()), f_lin.eval(cell.lo()));
                    if e_lower_left {
                        push(
                            x,
                            e_lin,
                            e_tag.clone(),
                            &mut new_xs,
                            &mut new_fs,
                            &mut new_tags,
                        );
                        push(
                            cell.hi(),
                            f_lin,
                            tag.clone(),
                            &mut new_xs,
                            &mut new_fs,
                            &mut new_tags,
                        );
                    } else {
                        push(
                            x,
                            f_lin,
                            tag.clone(),
                            &mut new_xs,
                            &mut new_fs,
                            &mut new_tags,
                        );
                        push(
                            cell.hi(),
                            e_lin,
                            e_tag,
                            &mut new_xs,
                            &mut new_fs,
                            &mut new_tags,
                        );
                    }
                }
                None => {
                    // No interior crossing: one line is ≤ the other on the
                    // whole cell (compare at the midpoint). Ties keep the
                    // existing envelope piece.
                    if approx_le(e_lin.eval(mid), f_lin.eval(mid)) {
                        push(
                            cell.hi(),
                            e_lin,
                            e_tag,
                            &mut new_xs,
                            &mut new_fs,
                            &mut new_tags,
                        );
                    } else {
                        push(
                            cell.hi(),
                            f_lin,
                            tag.clone(),
                            &mut new_xs,
                            &mut new_fs,
                            &mut new_tags,
                        );
                    }
                }
            }
        }

        // Coalesce adjacent pieces with the same tag and the same line.
        let (xs, fs, tags) = coalesce(new_xs, new_fs, new_tags);
        self.pwl = Pwl::new(xs, fs)?;
        self.tags = tags;
        Ok(())
    }
}

/// Merge adjacent pieces that share both tag and (approximately) line.
fn coalesce<T: Clone + PartialEq>(
    xs: Vec<f64>,
    fs: Vec<Linear>,
    tags: Vec<T>,
) -> (Vec<f64>, Vec<Linear>, Vec<T>) {
    debug_assert_eq!(xs.len(), fs.len() + 1);
    debug_assert_eq!(fs.len(), tags.len());
    let mut out_xs = vec![xs[0]];
    let mut out_fs: Vec<Linear> = Vec::with_capacity(fs.len());
    let mut out_tags: Vec<T> = Vec::with_capacity(tags.len());
    for i in 0..fs.len() {
        let span = Interval::of(xs[i], xs[i + 1]);
        let mergeable = match (out_fs.last(), out_tags.last()) {
            (Some(pf), Some(pt)) => *pt == tags[i] && pf.approx_same_over(&fs[i], &span),
            _ => false,
        };
        if mergeable {
            continue;
        }
        if !out_fs.is_empty() {
            out_xs.push(xs[i]);
        }
        out_fs.push(fs[i]);
        out_tags.push(tags[i].clone());
    }
    out_xs.push(xs[xs.len() - 1]);
    (out_xs, out_fs, out_tags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::time::{hm, hms};

    #[test]
    fn single_function_envelope() {
        let f = Pwl::constant(Interval::of(0.0, 10.0), 5.0).unwrap();
        let env = Envelope::new(f, "a");
        assert!(approx_eq(env.max_value(), 5.0));
        assert!(approx_eq(env.min_value(), 5.0));
        assert_eq!(env.tag_at(3.0).unwrap(), &"a");
        assert_eq!(env.partition(), vec![(Interval::of(0.0, 10.0), "a")]);
    }

    #[test]
    fn merge_constant_below_takes_over() {
        let f = Pwl::constant(Interval::of(0.0, 10.0), 5.0).unwrap();
        let mut env = Envelope::new(f, "a");
        let g = Pwl::constant(Interval::of(0.0, 10.0), 3.0).unwrap();
        env.merge_min(&g, "b").unwrap();
        assert!(approx_eq(env.max_value(), 3.0));
        assert_eq!(env.partition(), vec![(Interval::of(0.0, 10.0), "b")]);
    }

    #[test]
    fn merge_ties_keep_existing() {
        let f = Pwl::constant(Interval::of(0.0, 10.0), 5.0).unwrap();
        let mut env = Envelope::new(f.clone(), "a");
        env.merge_min(&f, "b").unwrap();
        assert_eq!(env.partition(), vec![(Interval::of(0.0, 10.0), "a")]);
    }

    #[test]
    fn merge_crossing_splits_cell() {
        // envelope: x on [0,10]; merge 10 − x → crossing at 5
        let f = Pwl::identity(Interval::of(0.0, 10.0)).unwrap();
        let mut env = Envelope::new(f, "up");
        let g = Pwl::from_points(&[(0.0, 10.0), (10.0, 0.0)]).unwrap();
        env.merge_min(&g, "down").unwrap();
        let parts = env.partition();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].1, "up");
        assert!(parts[0].0.approx_eq(&Interval::of(0.0, 5.0)));
        assert_eq!(parts[1].1, "down");
        assert!(parts[1].0.approx_eq(&Interval::of(5.0, 10.0)));
        assert!(approx_eq(env.eval(0.0), 0.0));
        assert!(approx_eq(env.eval(5.0), 5.0));
        assert!(approx_eq(env.eval(10.0), 0.0));
        assert!(approx_eq(env.max_value(), 5.0));
    }

    #[test]
    fn merge_requires_domain_cover() {
        let f = Pwl::constant(Interval::of(0.0, 10.0), 5.0).unwrap();
        let mut env = Envelope::new(f, 0u32);
        let g = Pwl::constant(Interval::of(2.0, 8.0), 1.0).unwrap();
        assert!(env.merge_min(&g, 1).is_err());
        // wider is fine
        let h = Pwl::constant(Interval::of(-5.0, 15.0), 1.0).unwrap();
        env.merge_min(&h, 2).unwrap();
        assert!(env.domain().approx_eq(&Interval::of(0.0, 10.0)));
    }

    #[test]
    fn reproduces_paper_figure_7() {
        // Envelope of T(s ⇒ n → e) (Figure 5's 4-piece function) and
        // T(s → e) = 6, over I = [6:50, 7:05]. The paper's allFP answer:
        //   s → e       on [6:50, 6:58:30)
        //   s → n → e   on [6:58:30, 7:03:26)
        //   s → e       on [7:03:26, 7:05]
        let via_n = Pwl::from_points(&[
            (hm(6, 50), 9.0),
            (hm(6, 54), 9.0),
            (hm(7, 0), 5.0),
            (hm(7, 3), 5.0),
            (hm(7, 5), 12.0 - (7.0 / 3.0) * 1.0),
        ])
        .unwrap();
        let direct = Pwl::constant(Interval::of(hm(6, 50), hm(7, 5)), 6.0).unwrap();

        // Identification order as in the paper: s ⇒ n → e first.
        let mut env = Envelope::new(via_n, "s->n->e");
        env.merge_min(&direct, "s->e").unwrap();

        let parts = env.partition();
        assert_eq!(parts.len(), 3, "{parts:?}");
        assert_eq!(parts[0].1, "s->e");
        assert_eq!(parts[1].1, "s->n->e");
        assert_eq!(parts[2].1, "s->e");
        assert!(approx_eq(parts[0].0.lo(), hm(6, 50)));
        assert!(approx_eq(parts[0].0.hi(), hms(6, 58, 30)));
        assert!(approx_eq(parts[1].0.hi(), hm(7, 6) - 18.0 / 7.0)); // 7:03:25.7
        assert!(approx_eq(parts[2].0.hi(), hm(7, 5)));
        // termination threshold after both paths identified
        assert!(approx_eq(env.max_value(), 6.0));
    }
}
