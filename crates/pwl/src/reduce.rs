//! Bounded-error piece reduction (Imai–Iri style) for travel functions.
//!
//! The contraction-hierarchy overlay stores a travel-time function per
//! shortcut arc. Composed shortcut functions carry tens of pieces, most
//! of which change the value by far less than a scheduling decision
//! ever could. [`reduce_lower_with`] replaces such a function with a
//! piecewise-linear **lower approximation** using (usually far) fewer
//! pieces, subject to three guarantees the overlay search relies on:
//!
//! 1. **One-sided**: `g(x) ≤ f(x)` everywhere — `g` stays an
//!    *admissible* stand-in wherever `f` was used as a lower bound.
//! 2. **Bounded error**: `f(x) − g(x) ≤ ε` everywhere; the *actual*
//!    maximum gap is measured and returned, so callers can rebuild a
//!    pointwise upper bound as `g + gap` wherever one is needed.
//! 3. **FIFO-preserving**: every slope of `g` stays strictly above
//!    `−1 + EPS`, the same bound [`crate::compose::arrival_interval`]
//!    validates — reduced functions remain composable.
//!
//! Both domain endpoints are pinned to the exact values of `f`, so
//! periodic extension (`concat` at the day seam) of a reduced function
//! stays continuous exactly where the exact function's extension was.
//!
//! The sweep is a greedy anchored slope-window scan: from the current
//! anchor it keeps the interval of slopes that pass below every
//! breakpoint of `f` seen so far while staying above `f − ε`, and emits
//! a new breakpoint (at the previous x, with the steepest feasible
//! slope — hugging `f` from below) when the window empties. Greedy
//! slope-window scans are within one piece of the optimal one-sided
//! approximation and run in a single pass, which is what a
//! preprocessing loop over hundreds of thousands of shortcuts needs.

use crate::scratch::PwlScratch;
use crate::{Linear, Pwl, Result, EPS};

/// Smallest slope a reduced piece may take: the strict FIFO bound the
/// composition kernel validates (`a + 1 > EPS`).
const FIFO_FLOOR: f64 = EPS - 1.0;

/// Reduce `f` to a one-sided lower approximation with at most `eps`
/// pointwise error (see the module docs for the three guarantees).
///
/// Returns the reduced function together with the **measured** maximum
/// gap `max(f − g) ∈ [0, eps]`. With `eps ≤ 0`, or when `f` is not
/// continuous (reduction is only defined for travel functions, which
/// are), the exact function is returned unchanged with gap `0`.
///
/// Output buffers come from `scratch`'s pool, like the other pooled
/// kernels. The result is deterministic in `(f, eps)` — snapshot
/// restore re-reduces recomposed functions and must reproduce the
/// build's functions bit for bit.
pub fn reduce_lower_with(scratch: &mut PwlScratch, f: &Pwl, eps: f64) -> Result<(Pwl, f64)> {
    if eps <= 0.0 || f.n_pieces() <= 1 || f.check_continuous().is_err() {
        return Ok((f.clone(), 0.0));
    }
    let pts = f.points();

    // Selected output points; values are computed (band-feasible), the
    // two endpoints exact.
    let mut sel: Vec<(f64, f64)> = Vec::with_capacity(8);
    sel.push(pts[0]);

    let (mut ax, mut ay) = pts[0];
    // Feasible slope window from the current anchor, clamped to FIFO.
    let mut lo = FIFO_FLOOR;
    let mut hi = f64::INFINITY;
    // Window as of the *previous* point — where we emit on failure.
    let (mut prev_hi, mut prev_x) = (f64::INFINITY, pts[0].0);

    let mut i = 1;
    while i < pts.len() {
        let (x, y) = pts[i];
        let dx = x - ax;
        let up = (y - ay) / dx;
        let dn = ((y - eps) - ay) / dx;
        let (nlo, nhi) = (lo.max(dn), hi.min(up));
        let last = i == pts.len() - 1;
        if nlo > nhi {
            if prev_x > ax {
                // Window emptied: emit at the previous point with the
                // steepest slope that was still feasible there, then
                // restart the window from that new anchor (point i is
                // not consumed yet).
                let ny = ay + prev_hi * (prev_x - ax);
                sel.push((prev_x, ny));
                (ax, ay) = (prev_x, ny);
            } else {
                // First point after an anchor (a single linear piece
                // of `f`) can only fail the window when `f` itself
                // violates the FIFO floor; keep that point exactly.
                sel.push((x, y));
                (ax, ay) = (x, y);
                prev_x = x;
                i += 1;
            }
            lo = FIFO_FLOOR;
            hi = f64::INFINITY;
            prev_hi = f64::INFINITY;
            continue;
        }
        if last {
            // Pin the final endpoint to the exact value. Feasible iff
            // the exact chord fits the window; otherwise cut at the
            // second-to-last point first (always feasible from there:
            // one linear piece of `f` remains).
            let s_end = (y - ay) / dx;
            if s_end >= nlo && s_end <= nhi {
                sel.push((x, y));
                break;
            }
            if prev_x > ax {
                let ny = ay + prev_hi.min(up) * (prev_x - ax);
                sel.push((prev_x, ny));
            }
            sel.push((x, y));
            break;
        }
        (lo, hi) = (nlo, nhi);
        (prev_hi, prev_x) = (hi, x);
        i += 1;
    }

    if sel.len() >= pts.len() {
        return Ok((f.clone(), 0.0));
    }

    // Materialize from pooled buffers.
    let (mut xs, mut fs) = scratch.take_buffers();
    xs.reserve(sel.len());
    fs.reserve(sel.len() - 1);
    for w in sel.windows(2) {
        xs.push(w[0].0);
        fs.push(Linear::through(w[0].0, w[0].1, w[1].0, w[1].1)?);
    }
    xs.push(sel[sel.len() - 1].0);
    let g = Pwl::from_sorted_parts(xs, fs);

    // Measure the actual gap: both functions are linear between
    // adjacent breakpoints of `f` (g's breakpoints are a subset of the
    // same x-grid), so the maximum of `f − g` sits on a breakpoint.
    let mut gap = 0.0f64;
    let mut cursor = 0usize;
    let gl = g.linears();
    let gx = g.breakpoints();
    for &(x, y) in &pts {
        while cursor + 1 < gl.len() && gx[cursor + 1] <= x {
            cursor += 1;
        }
        gap = gap.max(y - gl[cursor].eval(x));
    }
    Ok((g, gap.max(0.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_le;

    fn wiggle(n: usize, amp: f64) -> Pwl {
        let pts: Vec<(f64, f64)> = (0..=n)
            .map(|i| {
                let x = i as f64;
                (x, 10.0 + amp * ((i * 7 % 5) as f64 - 2.0))
            })
            .collect();
        Pwl::from_points(&pts).unwrap()
    }

    fn check_invariants(f: &Pwl, eps: f64) {
        let mut s = PwlScratch::new();
        let (g, gap) = reduce_lower_with(&mut s, f, eps).unwrap();
        assert_eq!(g.domain(), f.domain());
        assert!(gap <= eps + 1e-12, "gap {gap} over eps {eps}");
        // Endpoints exact.
        assert_eq!(g.eval(f.domain().lo()), f.eval(f.domain().lo()));
        assert_eq!(g.eval(f.domain().hi()), f.eval(f.domain().hi()));
        // One-sided within band, on a fine grid.
        let d = f.domain();
        for k in 0..=400 {
            let x = d.lo() + (d.hi() - d.lo()) * k as f64 / 400.0;
            let (fv, gv) = (f.eval(x), g.eval(x));
            assert!(approx_le(gv, fv), "g above f at {x}: {gv} > {fv}");
            assert!(
                approx_le(fv - gv, gap),
                "gap claim violated at {x}: {} > {gap}",
                fv - gv
            );
        }
        // FIFO preserved — guaranteed only when the input satisfies it.
        if f.linears().iter().all(|l| l.a + 1.0 > EPS) {
            for l in g.linears() {
                assert!(l.a + 1.0 > EPS, "slope {} breaks FIFO", l.a);
            }
        }
    }

    #[test]
    fn reduces_small_wiggles() {
        let f = wiggle(40, 0.01);
        let mut s = PwlScratch::new();
        let (g, _) = reduce_lower_with(&mut s, &f, 0.5).unwrap();
        assert!(g.n_pieces() < f.n_pieces() / 2);
        check_invariants(&f, 0.5);
    }

    #[test]
    fn large_wiggles_survive() {
        check_invariants(&wiggle(40, 2.0), 0.5);
        check_invariants(&wiggle(7, 5.0), 0.25);
    }

    #[test]
    fn zero_eps_is_identity() {
        let f = wiggle(10, 1.0);
        let mut s = PwlScratch::new();
        let (g, gap) = reduce_lower_with(&mut s, &f, 0.0).unwrap();
        assert_eq!(g, f);
        assert_eq!(gap, 0.0);
    }

    #[test]
    fn single_piece_untouched() {
        let f = Pwl::from_points(&[(0.0, 1.0), (10.0, 4.0)]).unwrap();
        let mut s = PwlScratch::new();
        let (g, gap) = reduce_lower_with(&mut s, &f, 1.0).unwrap();
        assert_eq!(g, f);
        assert_eq!(gap, 0.0);
    }

    #[test]
    fn steep_descents_keep_fifo() {
        // Slopes near the FIFO floor: descent at -0.95.
        let f = Pwl::from_points(&[
            (0.0, 20.0),
            (10.0, 10.5),
            (11.0, 10.6),
            (21.0, 1.1),
            (30.0, 5.0),
        ])
        .unwrap();
        check_invariants(&f, 0.3);
    }

    #[test]
    fn deterministic() {
        let f = wiggle(60, 0.7);
        let mut s = PwlScratch::new();
        let (g1, e1) = reduce_lower_with(&mut s, &f, 0.4).unwrap();
        let (g2, e2) = reduce_lower_with(&mut s, &f, 0.4).unwrap();
        assert_eq!(g1, g2);
        assert_eq!(e1.to_bits(), e2.to_bits());
    }
}
