//! Piecewise-linear function algebra for time-dependent fastest paths.
//!
//! This crate is the mathematical substrate of the ICDE 2006 paper
//! *Finding Fastest Paths on A Road Network with Speed Patterns*
//! (Kanoulas, Du, Xia, Zhang). Everything the paper does with
//! travel-time functions lives here:
//!
//! * [`Linear`] — a single linear piece `y = a·x + b`.
//! * [`Pwl`] — a piecewise-linear function over a closed interval,
//!   with evaluation, restriction, addition, minima/maxima and argmin
//!   intervals.
//! * [`MonotonePwl`] — a continuous, strictly-increasing
//!   piecewise-linear function with an **exact inverse**. Arrival
//!   functions `A(l) = l + T(l)` and cumulative-distance functions
//!   `D(t) = ∫ v` are monotone; the paper's "135° line" trick for
//!   finding expansion breakpoints is precisely `A⁻¹` evaluated at a
//!   breakpoint of the next edge's travel-time function.
//! * [`compose_travel`] — the *compound* operation of §4.4:
//!   given the travel-time function `T₁` of a path `s ⇒ n` and the
//!   travel-time function `T₂` of an edge `n → n_j`, produce
//!   `T(l) = T₁(l) + T₂(l + T₁(l))`, the travel-time function of the
//!   expanded path `s ⇒ n → n_j`.
//! * [`Envelope`] — a *tagged lower envelope*; the paper's
//!   **lower border function** (§4.6) is an `Envelope<PathId>`, and the
//!   allFP answer — the partitioning of the query interval into
//!   sub-intervals each owning a fastest path — falls out of it by a
//!   linear scan.
//!
//! # Conventions
//!
//! The crate is unit-agnostic, but the rest of the workspace uses
//! **minutes since local midnight** on the x-axis and **minutes of
//! travel** (or miles, for distance functions) on the y-axis.
//! Domains are closed intervals `[lo, hi]`; pieces are half-open
//! `[xᵢ, xᵢ₊₁)` except the last, which is closed.
//!
//! # Numerical model
//!
//! All arithmetic is `f64`. Comparisons use the crate-wide tolerance
//! [`EPS`] through [`approx_eq`] / [`approx_le`]; quantities in this
//! workspace are minutes-of-day (≤ 10⁴), where `f64` leaves ~10⁻¹⁰
//! of slack, so `EPS = 1e-7` is conservative and stable.
//!
//! # Hot-path variants
//!
//! The kernels the allFP engine runs per edge expansion have pooled
//! twins that produce bit-identical results without steady-state
//! allocations: [`compose_travel_into`], [`Pwl::restrict_with`],
//! [`Pwl::dominated_by_with`] and [`Envelope::merge_min_with`], all fed
//! from a per-worker [`PwlScratch`]. [`PwlRef`] shares finished
//! functions by reference count instead of deep copy.

#![warn(clippy::redundant_clone)]

mod envelope;
mod interval;
mod linear;
mod monotone;
mod pwl;
mod scratch;

pub mod compose;
pub mod reduce;
pub mod time;

pub use envelope::{Envelope, EnvelopePiece};
pub use interval::Interval;
pub use linear::Linear;
pub use monotone::MonotonePwl;
pub use pwl::{MinResult, Pwl};
pub use scratch::{PwlRef, PwlScratch};

pub use compose::{compose_travel, compose_travel_into, compose_travel_simplified};
pub use reduce::reduce_lower_with;

/// Crate-wide absolute tolerance for breakpoint and value comparisons.
///
/// Chosen for x-values the size of minutes-of-day (≤ ~10⁴) where `f64`
/// carries ~16 significant digits.
pub const EPS: f64 = 1e-7;

/// `true` if `a` and `b` are equal within [`EPS`] (scaled by magnitude).
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS * (1.0 + a.abs().max(b.abs()))
}

/// `true` if `a ≤ b` within [`EPS`] (scaled by magnitude).
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + EPS * (1.0 + a.abs().max(b.abs()))
}

/// `true` if `a < b` by clearly more than [`EPS`] (scaled by magnitude).
#[inline]
pub fn definitely_lt(a: f64, b: f64) -> bool {
    a + EPS * (1.0 + a.abs().max(b.abs())) < b
}

/// Errors produced when constructing or combining piecewise-linear
/// functions.
#[derive(Debug, Clone, PartialEq)]
pub enum PwlError {
    /// Breakpoints were empty, unordered, or too close together.
    BadBreakpoints(String),
    /// Number of pieces did not match number of breakpoints.
    PieceCountMismatch {
        /// Number of breakpoints supplied.
        breakpoints: usize,
        /// Number of linear pieces supplied.
        pieces: usize,
    },
    /// A coefficient or value was NaN or infinite.
    NonFinite(String),
    /// An operation needed overlapping domains but got disjoint ones.
    DomainMismatch {
        /// Domain of the left operand.
        left: Interval,
        /// Domain of the right operand.
        right: Interval,
    },
    /// A point lay outside the function's domain.
    OutOfDomain {
        /// The offending point.
        x: f64,
        /// The function's domain.
        domain: Interval,
    },
    /// The function was expected to be continuous but is not.
    Discontinuous {
        /// Breakpoint where the jump occurs.
        at: f64,
        /// Value approached from the left.
        left: f64,
        /// Value approached from the right.
        right: f64,
    },
    /// The function was expected to be strictly increasing but is not.
    NotIncreasing {
        /// Breakpoint where monotonicity fails.
        at: f64,
    },
    /// An interval had `lo > hi` or non-finite endpoints.
    BadInterval {
        /// Lower endpoint.
        lo: f64,
        /// Upper endpoint.
        hi: f64,
    },
}

impl std::fmt::Display for PwlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PwlError::BadBreakpoints(msg) => write!(f, "bad breakpoints: {msg}"),
            PwlError::PieceCountMismatch {
                breakpoints,
                pieces,
            } => write!(
                f,
                "piece count mismatch: {breakpoints} breakpoints need {} pieces, got {pieces}",
                breakpoints.saturating_sub(1)
            ),
            PwlError::NonFinite(msg) => write!(f, "non-finite value: {msg}"),
            PwlError::DomainMismatch { left, right } => {
                write!(f, "domain mismatch: {left} vs {right}")
            }
            PwlError::OutOfDomain { x, domain } => {
                write!(f, "point {x} outside domain {domain}")
            }
            PwlError::Discontinuous { at, left, right } => {
                write!(f, "discontinuity at {at}: {left} vs {right}")
            }
            PwlError::NotIncreasing { at } => {
                write!(f, "function not strictly increasing at {at}")
            }
            PwlError::BadInterval { lo, hi } => write!(f, "bad interval [{lo}, {hi}]"),
        }
    }
}

impl std::error::Error for PwlError {}

/// Convenient `Result` alias for this crate.
pub type Result<T> = std::result::Result<T, PwlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_helpers_behave() {
        assert!(approx_eq(1.0, 1.0 + 1e-9));
        assert!(!approx_eq(1.0, 1.001));
        assert!(approx_le(1.0, 1.0));
        assert!(approx_le(1.0, 2.0));
        assert!(!approx_le(2.0, 1.0));
        assert!(definitely_lt(1.0, 2.0));
        assert!(!definitely_lt(1.0, 1.0 + 1e-9));
    }

    #[test]
    fn errors_display() {
        let e = PwlError::OutOfDomain {
            x: 5.0,
            domain: Interval::new(0.0, 1.0).unwrap(),
        };
        assert!(e.to_string().contains("outside domain"));
        let e = PwlError::PieceCountMismatch {
            breakpoints: 3,
            pieces: 1,
        };
        assert!(e.to_string().contains("2 pieces"));
    }
}
