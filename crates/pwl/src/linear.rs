//! Single linear pieces `y = a·x + b`.

use crate::{approx_eq, Interval, PwlError, Result};

/// A linear function `y = a·x + b` in absolute coordinates.
///
/// Pieces of a [`crate::Pwl`] store their coefficients in absolute `x`
/// (not relative to the piece start), so evaluation never needs the
/// breakpoint that introduced the piece.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Linear {
    /// Slope `a`.
    pub a: f64,
    /// Intercept `b` (value at `x = 0`).
    pub b: f64,
}

impl Linear {
    /// Create `y = a·x + b`; fails on non-finite coefficients.
    pub fn new(a: f64, b: f64) -> Result<Self> {
        if !a.is_finite() || !b.is_finite() {
            return Err(PwlError::NonFinite(format!("linear a={a} b={b}")));
        }
        Ok(Linear { a, b })
    }

    /// The constant function `y = c`.
    pub fn constant(c: f64) -> Result<Self> {
        Self::new(0.0, c)
    }

    /// The identity function `y = x`.
    pub fn identity() -> Self {
        Linear { a: 1.0, b: 0.0 }
    }

    /// The line through `(x0, y0)` and `(x1, y1)`; fails if `x0 == x1`
    /// or any coordinate is non-finite.
    pub fn through(x0: f64, y0: f64, x1: f64, y1: f64) -> Result<Self> {
        if approx_eq(x0, x1) {
            return Err(PwlError::BadBreakpoints(format!(
                "cannot interpolate through x0={x0} x1={x1}"
            )));
        }
        let a = (y1 - y0) / (x1 - x0);
        Self::new(a, y0 - a * x0)
    }

    /// Evaluate at `x`.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.a * x + self.b
    }

    /// Pointwise sum.
    #[inline]
    pub fn add(&self, other: &Linear) -> Linear {
        Linear {
            a: self.a + other.a,
            b: self.b + other.b,
        }
    }

    /// Add a constant.
    #[inline]
    pub fn add_scalar(&self, c: f64) -> Linear {
        Linear {
            a: self.a,
            b: self.b + c,
        }
    }

    /// Compose with the inner function: `self ∘ inner`, i.e.
    /// `x ↦ self(inner(x))`.
    #[inline]
    pub fn compose(&self, inner: &Linear) -> Linear {
        Linear {
            a: self.a * inner.a,
            b: self.a * inner.b + self.b,
        }
    }

    /// The *compound* of two travel-time pieces (paper §4.4).
    ///
    /// If `self = T₁`-piece `α·l + β` (travel time of the prefix path)
    /// and `next = T₂`-piece `γ·l' + δ` (travel time of the next edge,
    /// as a function of the leaving time `l' = l + T₁(l)` at the
    /// intermediate node), the combined travel time of the expanded
    /// path is
    ///
    /// ```text
    /// (α·l + β) + (γ·(l + α·l + β) + δ)
    ///   = (α + γ + α·γ)·l + (β + β·γ + δ)
    /// ```
    #[inline]
    pub fn compound(&self, next: &Linear) -> Linear {
        let (alpha, beta) = (self.a, self.b);
        let (gamma, delta) = (next.a, next.b);
        Linear {
            a: alpha + gamma + alpha * gamma,
            b: beta + beta * gamma + delta,
        }
    }

    /// Intersection with `other` strictly inside the open interval
    /// `(within.lo, within.hi)`, if the lines cross there.
    ///
    /// Parallel (or numerically parallel) lines yield `None`.
    pub fn intersection_within(&self, other: &Linear, within: &Interval) -> Option<f64> {
        let da = self.a - other.a;
        if da.abs() <= crate::EPS {
            return None;
        }
        let x = (other.b - self.b) / da;
        // Strictly inside, with EPS guard so we never emit a breakpoint
        // indistinguishable from an endpoint.
        if crate::definitely_lt(within.lo(), x) && crate::definitely_lt(x, within.hi()) {
            Some(x)
        } else {
            None
        }
    }

    /// `true` if the two lines are the same within [`crate::EPS`]
    /// when compared over the interval `within` (endpoint values).
    pub fn approx_same_over(&self, other: &Linear, within: &Interval) -> bool {
        approx_eq(self.eval(within.lo()), other.eval(within.lo()))
            && approx_eq(self.eval(within.hi()), other.eval(within.hi()))
    }
}

impl std::fmt::Display for Linear {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.a == 0.0 {
            write!(f, "{}", self.b)
        } else {
            write!(f, "{}*x + {}", self.a, self.b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_eval() {
        let l = Linear::new(2.0, 1.0).unwrap();
        assert_eq!(l.eval(3.0), 7.0);
        assert!(Linear::new(f64::NAN, 0.0).is_err());
        assert_eq!(Linear::constant(5.0).unwrap().eval(100.0), 5.0);
        assert_eq!(Linear::identity().eval(42.0), 42.0);
    }

    #[test]
    fn through_two_points() {
        let l = Linear::through(1.0, 2.0, 3.0, 6.0).unwrap();
        assert!(approx_eq(l.a, 2.0));
        assert!(approx_eq(l.eval(1.0), 2.0));
        assert!(approx_eq(l.eval(3.0), 6.0));
        assert!(Linear::through(1.0, 0.0, 1.0, 5.0).is_err());
    }

    #[test]
    fn algebra() {
        let f = Linear::new(2.0, 1.0).unwrap();
        let g = Linear::new(-1.0, 3.0).unwrap();
        assert_eq!(f.add(&g), Linear::new(1.0, 4.0).unwrap());
        assert_eq!(f.add_scalar(10.0), Linear::new(2.0, 11.0).unwrap());
        // f(g(x)) = 2(-x+3)+1 = -2x + 7
        assert_eq!(f.compose(&g), Linear::new(-2.0, 7.0).unwrap());
    }

    #[test]
    fn compound_matches_paper_formula() {
        // Paper §4.4 worked step: T1 = (2/3)(7:00 − l) + 2 around
        // l = 6:54 (minutes: -2/3·l + 282 with l in minutes-of-day),
        // T2 = constant 3. Compound should be T1 + 3.
        let t1 = Linear::new(-2.0 / 3.0, 2.0 + (2.0 / 3.0) * 420.0).unwrap();
        let t2 = Linear::constant(3.0).unwrap();
        let c = t1.compound(&t2);
        assert!(approx_eq(c.a, t1.a));
        assert!(approx_eq(c.b, t1.b + 3.0));

        // Generic algebraic identity: compound(l) == T1(l) + T2(l + T1(l)).
        let t1 = Linear::new(0.25, -3.0).unwrap();
        let t2 = Linear::new(-0.5, 40.0).unwrap();
        let c = t1.compound(&t2);
        for l in [0.0, 10.0, 123.456] {
            let direct = t1.eval(l) + t2.eval(l + t1.eval(l));
            assert!(approx_eq(c.eval(l), direct));
        }
    }

    #[test]
    fn intersection_within_interval() {
        let f = Linear::new(1.0, 0.0).unwrap();
        let g = Linear::new(-1.0, 10.0).unwrap();
        let i = Interval::of(0.0, 10.0);
        assert!(approx_eq(f.intersection_within(&g, &i).unwrap(), 5.0));
        // crossing outside
        let j = Interval::of(6.0, 10.0);
        assert_eq!(f.intersection_within(&g, &j), None);
        // parallel
        let h = Linear::new(1.0, 1.0).unwrap();
        assert_eq!(f.intersection_within(&h, &i), None);
        // crossing exactly at an endpoint is suppressed
        let k = Interval::of(5.0, 10.0);
        assert_eq!(f.intersection_within(&g, &k), None);
    }

    #[test]
    fn approx_same_over() {
        let f = Linear::new(1.0, 0.0).unwrap();
        let g = Linear::new(1.0 + 1e-12, -1e-12).unwrap();
        assert!(f.approx_same_over(&g, &Interval::of(0.0, 100.0)));
        let h = Linear::new(1.0, 0.1).unwrap();
        assert!(!f.approx_same_over(&h, &Interval::of(0.0, 100.0)));
    }
}
