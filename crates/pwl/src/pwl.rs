//! Piecewise-linear functions over a closed interval.

use crate::scratch::PwlScratch;
use crate::{approx_eq, approx_le, definitely_lt, Interval, Linear, PwlError, Result, EPS};

/// A piecewise-linear function defined on a closed interval.
///
/// Stored as `n + 1` strictly increasing breakpoints `x₀ < … < xₙ` and
/// `n` linear pieces; piece `i` applies on `[xᵢ, xᵢ₊₁)` (the last piece
/// also covers `xₙ`). Pieces are in absolute coordinates, so the type
/// can represent discontinuous functions (e.g. step functions); the
/// operations that require continuity ([`MonotonePwl`](crate::MonotonePwl),
/// composition) check for it explicitly.
///
/// Travel-time functions in the paper are continuous piecewise-linear
/// functions of the leaving time (§4.1); this type is how every
/// priority-queue entry of `IntAllFastestPaths` carries its
/// `T(l) + T_est` function.
#[derive(Debug, Clone, PartialEq)]
pub struct Pwl {
    xs: Vec<f64>,
    fs: Vec<Linear>,
}

/// The minimum of a [`Pwl`] over an interval, together with the first
/// maximal sub-interval on which it is attained.
///
/// For the singleFP query the paper reports "any time instant in
/// \[7:00–7:03\] is an optimal leaving time" — that interval is `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinResult {
    /// The minimum value.
    pub value: f64,
    /// First maximal interval on which the minimum is attained.
    pub at: Interval,
}

impl Pwl {
    /// Build from breakpoints and pieces.
    ///
    /// Requires `xs.len() == fs.len() + 1 ≥ 2`, strictly increasing
    /// finite breakpoints, and finite coefficients.
    pub fn new(xs: Vec<f64>, fs: Vec<Linear>) -> Result<Self> {
        if xs.len() < 2 {
            return Err(PwlError::BadBreakpoints(format!(
                "need at least 2 breakpoints, got {}",
                xs.len()
            )));
        }
        if xs.len() != fs.len() + 1 {
            return Err(PwlError::PieceCountMismatch {
                breakpoints: xs.len(),
                pieces: fs.len(),
            });
        }
        for &x in &xs {
            if !x.is_finite() {
                return Err(PwlError::NonFinite(format!("breakpoint {x}")));
            }
        }
        for w in xs.windows(2) {
            if w[1] <= w[0] {
                return Err(PwlError::BadBreakpoints(format!(
                    "breakpoints not strictly increasing: {} then {}",
                    w[0], w[1]
                )));
            }
        }
        for f in &fs {
            if !f.a.is_finite() || !f.b.is_finite() {
                return Err(PwlError::NonFinite(format!("piece {f}")));
            }
        }
        Ok(Pwl { xs, fs })
    }

    /// The constant function `y = c` on `domain`.
    pub fn constant(domain: Interval, c: f64) -> Result<Self> {
        Self::linear(domain, Linear::constant(c)?)
    }

    /// A single linear piece on `domain`.
    pub fn linear(domain: Interval, lin: Linear) -> Result<Self> {
        if domain.is_degenerate() {
            return Err(PwlError::BadInterval {
                lo: domain.lo(),
                hi: domain.hi(),
            });
        }
        Self::new(vec![domain.lo(), domain.hi()], vec![lin])
    }

    /// Continuous interpolation through the given points
    /// (`xs` strictly increasing, at least two points).
    pub fn from_points(points: &[(f64, f64)]) -> Result<Self> {
        if points.len() < 2 {
            return Err(PwlError::BadBreakpoints(format!(
                "need at least 2 points, got {}",
                points.len()
            )));
        }
        let mut xs = Vec::with_capacity(points.len());
        let mut fs = Vec::with_capacity(points.len() - 1);
        for w in points.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            fs.push(Linear::through(x0, y0, x1, y1)?);
            xs.push(x0);
        }
        xs.push(points[points.len() - 1].0);
        Self::new(xs, fs)
    }

    /// The identity function `y = x` on `domain`.
    pub fn identity(domain: Interval) -> Result<Self> {
        Self::linear(domain, Linear::identity())
    }

    /// Domain `[x₀, xₙ]`.
    #[inline]
    pub fn domain(&self) -> Interval {
        Interval::of(self.xs[0], self.xs[self.xs.len() - 1])
    }

    /// Number of linear pieces.
    #[inline]
    pub fn n_pieces(&self) -> usize {
        self.fs.len()
    }

    /// The breakpoints `x₀ … xₙ`.
    #[inline]
    pub fn breakpoints(&self) -> &[f64] {
        &self.xs
    }

    /// The linear pieces, in order.
    #[inline]
    pub fn linears(&self) -> &[Linear] {
        &self.fs
    }

    /// Iterate `(sub-interval, piece)` pairs in order.
    pub fn pieces(&self) -> impl Iterator<Item = (Interval, &Linear)> + '_ {
        self.fs
            .iter()
            .enumerate()
            .map(|(i, f)| (Interval::of(self.xs[i], self.xs[i + 1]), f))
    }

    /// Index of the piece covering `x`; `x` must lie in the domain.
    ///
    /// `x == xₙ` maps to the last piece.
    pub fn piece_index_at(&self, x: f64) -> Result<usize> {
        if !self.domain().contains_approx(x) {
            return Err(PwlError::OutOfDomain {
                x,
                domain: self.domain(),
            });
        }
        // First breakpoint strictly greater than x, minus one.
        let idx = self.xs.partition_point(|&bx| bx <= x);
        Ok(idx.saturating_sub(1).min(self.fs.len() - 1))
    }

    /// Evaluate at `x`; returns `None` outside the domain (with [`EPS`]
    /// slack at the endpoints, where the value is clamped).
    pub fn try_eval(&self, x: f64) -> Option<f64> {
        let idx = self.piece_index_at(x).ok()?;
        Some(self.fs[idx].eval(x))
    }

    /// Evaluate at `x`.
    ///
    /// # Panics
    /// Panics if `x` lies outside the domain (beyond [`EPS`] slack).
    #[track_caller]
    pub fn eval(&self, x: f64) -> f64 {
        match self.try_eval(x) {
            Some(v) => v,
            None => panic!("pwl eval at {x} outside domain {}", self.domain()),
        }
    }

    /// Evaluate at `x` clamped into the domain.
    pub fn eval_clamped(&self, x: f64) -> f64 {
        self.eval(self.domain().clamp(x))
    }

    /// Value just left of breakpoint `i` (using piece `i − 1`);
    /// for `i == 0` this is the right value.
    pub fn left_value(&self, i: usize) -> f64 {
        let p = if i == 0 { 0 } else { i - 1 };
        self.fs[p].eval(self.xs[i])
    }

    /// Value just right of breakpoint `i` (using piece `i`);
    /// for `i == n` this is the left value.
    pub fn right_value(&self, i: usize) -> f64 {
        let p = i.min(self.fs.len() - 1);
        self.fs[p].eval(self.xs[i])
    }

    /// `true` if the function is continuous (left and right values agree
    /// within [`EPS`] at every interior breakpoint).
    pub fn is_continuous(&self) -> bool {
        self.check_continuous().is_ok()
    }

    /// Verify continuity; returns the first offending breakpoint on
    /// failure.
    pub fn check_continuous(&self) -> Result<()> {
        for i in 1..self.xs.len() - 1 {
            let l = self.left_value(i);
            let r = self.right_value(i);
            if !approx_eq(l, r) {
                return Err(PwlError::Discontinuous {
                    at: self.xs[i],
                    left: l,
                    right: r,
                });
            }
        }
        Ok(())
    }

    /// The graph of a continuous function as breakpoint/value pairs.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let mut pts = Vec::with_capacity(self.xs.len());
        pts.push((self.xs[0], self.right_value(0)));
        for i in 1..self.xs.len() {
            pts.push((self.xs[i], self.left_value(i)));
        }
        pts
    }

    /// Minimum and first argmin interval over the whole domain.
    pub fn minimum(&self) -> MinResult {
        self.min_over(&self.domain())
            .expect("domain is always valid")
    }

    /// Minimum value over the whole domain, without locating the argmin
    /// interval.
    ///
    /// Same fold as the first pass of [`min_over`](Self::min_over) —
    /// bit-identical to `minimum().value` — but a single sweep of the
    /// piece table with no interval intersections. The engine calls
    /// this once per composed candidate path (the priority-queue key),
    /// where the argmin is not needed.
    pub fn min_value(&self) -> f64 {
        let mut min = f64::INFINITY;
        for (i, f) in self.fs.iter().enumerate() {
            min = min.min(f.eval(self.xs[i])).min(f.eval(self.xs[i + 1]));
        }
        min
    }

    /// Maximum value over the whole domain.
    pub fn maximum(&self) -> f64 {
        self.max_over(&self.domain())
            .expect("domain is always valid")
    }

    /// Minimum and first argmin interval over `over ∩ domain`.
    pub fn min_over(&self, over: &Interval) -> Result<MinResult> {
        let within = self
            .domain()
            .intersect(over)
            .ok_or(PwlError::DomainMismatch {
                left: self.domain(),
                right: *over,
            })?;

        // Pass 1: minimum value.
        let mut min = f64::INFINITY;
        for (iv, f) in self.pieces() {
            let Some(c) = iv.intersect(&within) else {
                continue;
            };
            min = min.min(f.eval(c.lo())).min(f.eval(c.hi()));
        }

        // Pass 2: first maximal run of x with f(x) ≈ min.
        let mut run: Option<Interval> = None;
        for (iv, f) in self.pieces() {
            let Some(c) = iv.intersect(&within) else {
                continue;
            };
            // Sub-interval of c on which f ≤ min (within tolerance).
            let lo_ok = approx_le(f.eval(c.lo()), min);
            let hi_ok = approx_le(f.eval(c.hi()), min);
            let seg = match (lo_ok, hi_ok) {
                (true, true) => Some(c),
                (true, false) => Some(Interval::of(c.lo(), c.lo())),
                (false, true) => Some(Interval::of(c.hi(), c.hi())),
                (false, false) => None,
            };
            match (run.as_mut(), seg) {
                (None, Some(s)) => run = Some(s),
                (Some(r), Some(s)) if approx_eq(r.hi(), s.lo()) => {
                    *r = Interval::of(r.lo(), s.hi());
                }
                (Some(_), Some(_)) | (Some(_), None) => break, // first run complete
                (None, None) => {}
            }
        }
        Ok(MinResult {
            value: min,
            at: run.expect("minimum is attained"),
        })
    }

    /// Maximum value over `over ∩ domain`.
    pub fn max_over(&self, over: &Interval) -> Result<f64> {
        let within = self
            .domain()
            .intersect(over)
            .ok_or(PwlError::DomainMismatch {
                left: self.domain(),
                right: *over,
            })?;
        let mut max = f64::NEG_INFINITY;
        for (iv, f) in self.pieces() {
            let Some(c) = iv.intersect(&within) else {
                continue;
            };
            max = max.max(f.eval(c.lo())).max(f.eval(c.hi()));
        }
        Ok(max)
    }

    /// Pointwise `self + c`.
    pub fn add_scalar(&self, c: f64) -> Pwl {
        Pwl {
            xs: self.xs.clone(),
            fs: self.fs.iter().map(|f| f.add_scalar(c)).collect(),
        }
    }

    /// Pointwise `self += c` in place — breakpoints untouched, buffers
    /// reused. The overlay search raises a freshly composed upper
    /// approximation by an arc's measured gap on the hot path, where a
    /// reallocating [`add_scalar`](Self::add_scalar) would churn the
    /// scratch pool.
    pub fn add_scalar_in_place(&mut self, c: f64) {
        for f in &mut self.fs {
            *f = f.add_scalar(c);
        }
    }

    /// Pointwise `self + lin` (a full linear function, e.g. the
    /// identity to turn a travel-time function into an arrival
    /// function).
    pub fn add_linear(&self, lin: &Linear) -> Pwl {
        Pwl {
            xs: self.xs.clone(),
            fs: self.fs.iter().map(|f| f.add(lin)).collect(),
        }
    }

    /// Arrival function `A(l) = l + T(l)` of a travel-time function.
    pub fn add_identity(&self) -> Pwl {
        self.add_linear(&Linear::identity())
    }

    /// `T(l) = A(l) − l`: recover a travel-time function from an
    /// arrival function.
    pub fn sub_identity(&self) -> Pwl {
        self.add_linear(&Linear { a: -1.0, b: 0.0 })
    }

    /// Pointwise sum over the intersection of the two domains.
    pub fn add(&self, other: &Pwl) -> Result<Pwl> {
        let domain = self
            .domain()
            .intersect(&other.domain())
            .filter(|d| !d.is_degenerate())
            .ok_or(PwlError::DomainMismatch {
                left: self.domain(),
                right: other.domain(),
            })?;
        let xs = merged_breakpoints(&[self, other], &domain);
        build_from_breakpoints(xs, |mid| {
            let i = self.piece_index_at(mid).expect("mid in domain");
            let j = other.piece_index_at(mid).expect("mid in domain");
            self.fs[i].add(&other.fs[j])
        })
    }

    /// Restriction to `to ∩ domain` (must be non-degenerate).
    pub fn restrict(&self, to: &Interval) -> Result<Pwl> {
        let domain = self
            .domain()
            .intersect(to)
            .filter(|d| !d.is_degenerate())
            .ok_or(PwlError::DomainMismatch {
                left: self.domain(),
                right: *to,
            })?;
        let xs = merged_breakpoints(&[self], &domain);
        build_from_breakpoints(xs, |mid| {
            let i = self.piece_index_at(mid).expect("mid in domain");
            self.fs[i]
        })
    }

    /// Pooled [`restrict`](Self::restrict): bit-identical result, but
    /// the output buffers come from `scratch`'s pool and the breakpoint
    /// workspace is reused, so a warm scratch makes this allocation-free.
    pub fn restrict_with(&self, scratch: &mut PwlScratch, to: &Interval) -> Result<Pwl> {
        let domain = self
            .domain()
            .intersect(to)
            .filter(|d| !d.is_degenerate())
            .ok_or(PwlError::DomainMismatch {
                left: self.domain(),
                right: *to,
            })?;
        merged_breakpoints_into(scratch, &[self], &domain);
        if scratch.knots.len() < 2 {
            return Err(PwlError::BadBreakpoints(
                "empty elementary subdivision".into(),
            ));
        }
        let (mut xs, mut fs) = scratch.take_buffers();
        xs.extend_from_slice(&scratch.knots);
        // Window midpoints ascend, so an advancing cursor finds the
        // same piece indices `piece_index_at` would.
        let mut i = 0usize;
        for w in scratch.knots.windows(2) {
            let mid = 0.5 * (w[0] + w[1]);
            while i + 1 < self.fs.len() && self.xs[i + 1] <= mid {
                i += 1;
            }
            fs.push(self.fs[i]);
        }
        // The knots are already deduped and strictly increasing; skip
        // the re-validation passes (debug builds still check).
        Ok(Pwl::from_sorted_parts(xs, fs))
    }

    /// Concatenate with `next`, whose domain must begin (within
    /// [`EPS`]) where this one ends. The result covers both domains;
    /// at the seam the left function's endpoint wins the breakpoint
    /// coordinate. Values are *not* required to agree at the seam
    /// (the type supports discontinuities), but callers gluing
    /// continuous functions — e.g. the periodic travel-function cache
    /// splicing a day boundary — get a continuous result whenever the
    /// inputs agree there.
    pub fn concat(&self, next: &Pwl) -> Result<Pwl> {
        let seam_l = self.domain().hi();
        let seam_r = next.domain().lo();
        if !approx_eq(seam_l, seam_r) {
            return Err(PwlError::DomainMismatch {
                left: self.domain(),
                right: next.domain(),
            });
        }
        let mut xs = Vec::with_capacity(self.xs.len() + next.xs.len() - 1);
        xs.extend_from_slice(&self.xs);
        // re-anchor next's breakpoints after the seam; skip its first
        xs.extend(next.xs.iter().skip(1).copied());
        // guard against a sub-EPS overlap producing a non-increasing pair
        if xs[self.xs.len()] <= seam_l {
            return Err(PwlError::BadBreakpoints(format!(
                "concat seam not increasing: {} then {}",
                seam_l,
                xs[self.xs.len()]
            )));
        }
        let mut fs = Vec::with_capacity(self.fs.len() + next.fs.len());
        fs.extend_from_slice(&self.fs);
        fs.extend_from_slice(&next.fs);
        Pwl::new(xs, fs)
    }

    /// Merge adjacent pieces that represent the same line (within
    /// [`EPS`]) and are continuous at the joint. Idempotent.
    pub fn simplify(&self) -> Pwl {
        let mut xs = Vec::with_capacity(self.xs.len());
        let mut fs: Vec<Linear> = Vec::with_capacity(self.fs.len());
        xs.push(self.xs[0]);
        for (i, f) in self.fs.iter().enumerate() {
            let span = Interval::of(self.xs[i], self.xs[i + 1]);
            if let Some(last) = fs.last() {
                if last.approx_same_over(f, &span) {
                    continue; // extend previous piece: skip breakpoint
                }
                xs.push(self.xs[i]);
            }
            fs.push(*f);
        }
        xs.push(self.xs[self.xs.len() - 1]);
        Pwl { xs, fs }
    }

    /// Reflect the graph around the vertical line `x = c/2`, i.e.
    /// produce `g(x) = f(c − x)`.
    ///
    /// Used by the arrival-interval query reduction: running time
    /// "backwards" mirrors every function around a fixed instant.
    pub fn reflect_x(&self, c: f64) -> Pwl {
        let n = self.fs.len();
        let mut xs = Vec::with_capacity(self.xs.len());
        let mut fs = Vec::with_capacity(n);
        for x in self.xs.iter().rev() {
            xs.push(c - x);
        }
        for f in self.fs.iter().rev() {
            // g(x) = f(c - x) = -a·x + (a·c + b)
            fs.push(Linear {
                a: -f.a,
                b: f.a * c + f.b,
            });
        }
        Pwl { xs, fs }
    }

    /// Shift the whole graph right by `dx` (i.e. `x ↦ f(x − dx)`).
    pub fn shift_x(&self, dx: f64) -> Pwl {
        Pwl {
            xs: self.xs.iter().map(|x| x + dx).collect(),
            fs: self
                .fs
                .iter()
                .map(|f| Linear {
                    a: f.a,
                    b: f.b - f.a * dx,
                })
                .collect(),
        }
    }

    /// In-place [`shift_x`](Self::shift_x): same arithmetic
    /// (`x + dx`, `b − a·dx`) without allocating new buffers.
    pub fn shift_x_in_place(&mut self, dx: f64) {
        if dx == 0.0 {
            return;
        }
        for x in &mut self.xs {
            *x += dx;
        }
        for f in &mut self.fs {
            f.b -= f.a * dx;
        }
    }

    /// `true` if `self(x) ≥ other(x) − EPS` for all `x` in the
    /// intersection of the domains (i.e. `self` is dominated by
    /// `other`: it can never offer a smaller value).
    pub fn dominated_by(&self, other: &Pwl) -> bool {
        let Some(domain) = self.domain().intersect(&other.domain()) else {
            return false;
        };
        if domain.is_degenerate() {
            let x = domain.lo();
            return approx_le(other.eval_clamped(x), self.eval_clamped(x));
        }
        let xs = merged_breakpoints(&[self, other], &domain);
        // On each elementary interval both functions are linear, so the
        // comparison only needs the endpoints.
        for &x in &xs {
            let a = self.eval_clamped(x);
            let b = other.eval_clamped(x);
            if definitely_lt(a, b) {
                return false;
            }
        }
        true
    }

    /// Pooled [`dominated_by`](Self::dominated_by): identical verdict,
    /// with the merged-breakpoint workspace borrowed from `scratch`
    /// instead of allocated per call, and the per-knot evaluations done
    /// by advancing piece cursors instead of one binary search per knot
    /// (the knots ascend, so the cursors find the same piece indices).
    pub fn dominated_by_with(&self, scratch: &mut PwlScratch, other: &Pwl) -> bool {
        let Some(domain) = self.domain().intersect(&other.domain()) else {
            return false;
        };
        if domain.is_degenerate() {
            let x = domain.lo();
            return approx_le(other.eval_clamped(x), self.eval_clamped(x));
        }
        merged_breakpoints_into(scratch, &[self, other], &domain);
        let (sdom, odom) = (self.domain(), other.domain());
        let (mut i, mut j) = (0usize, 0usize);
        for &x in &scratch.knots {
            let sx = sdom.clamp(x);
            while i + 1 < self.fs.len() && self.xs[i + 1] <= sx {
                i += 1;
            }
            let ox = odom.clamp(x);
            while j + 1 < other.fs.len() && other.xs[j + 1] <= ox {
                j += 1;
            }
            if definitely_lt(self.fs[i].eval(sx), other.fs[j].eval(ox)) {
                return false;
            }
        }
        true
    }

    /// An empty placeholder `Pwl` used only as a transient value while
    /// moving a function out of a [`PwlRef`](crate::PwlRef); it violates
    /// the ≥ 2 breakpoints invariant and must never be observed.
    pub(crate) fn shell() -> Pwl {
        Pwl {
            xs: Vec::new(),
            fs: Vec::new(),
        }
    }

    /// Decompose into the raw breakpoint and piece buffers so their
    /// capacity can be recycled through a [`PwlScratch`] pool.
    pub(crate) fn into_parts(self) -> (Vec<f64>, Vec<Linear>) {
        (self.xs, self.fs)
    }

    /// Construct from buffers the pooled kernels built themselves:
    /// breakpoints already strictly increasing (they come out of
    /// [`dedupe_eps`] or a coalescing append) and coefficients finite
    /// by construction. Skips the [`Pwl::new`] validation passes in
    /// release builds; debug builds (and thus the test suite) still
    /// verify every invariant.
    pub(crate) fn from_sorted_parts(xs: Vec<f64>, fs: Vec<Linear>) -> Pwl {
        debug_assert!(xs.len() >= 2, "need at least 2 breakpoints");
        debug_assert_eq!(xs.len(), fs.len() + 1, "piece count mismatch");
        debug_assert!(
            xs.windows(2).all(|w| w[0] < w[1]),
            "breakpoints not strictly increasing"
        );
        debug_assert!(
            xs.iter().all(|x| x.is_finite())
                && fs.iter().all(|f| f.a.is_finite() && f.b.is_finite()),
            "non-finite breakpoint or coefficient"
        );
        Pwl { xs, fs }
    }
}

/// Collect, sort and dedupe ([`EPS`]-aware) the breakpoints of several
/// functions clipped to `domain`, always including the domain
/// endpoints.
pub(crate) fn merged_breakpoints(fns: &[&Pwl], domain: &Interval) -> Vec<f64> {
    let mut xs = Vec::with_capacity(fns.iter().map(|f| f.xs.len()).sum::<usize>() + 2);
    xs.push(domain.lo());
    xs.push(domain.hi());
    for f in fns {
        for &x in &f.xs {
            if definitely_lt(domain.lo(), x) && definitely_lt(x, domain.hi()) {
                xs.push(x);
            }
        }
    }
    sort_dedupe(&mut xs);
    xs
}

/// Sort and remove near-duplicate breakpoints in place.
pub(crate) fn sort_dedupe(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
    dedupe_eps(xs);
}

/// Remove near-duplicate breakpoints from a sorted list in place,
/// keeping the earlier (smaller) of each [`EPS`]-close pair. This is
/// the dedupe half of [`sort_dedupe`], shared with the pooled kernels
/// that produce their knots already sorted.
pub(crate) fn dedupe_eps(xs: &mut Vec<f64>) {
    xs.dedup_by(|a, b| {
        // `a` is removed when true; keep the earlier (smaller) value.
        (*a - *b).abs() <= EPS * (1.0 + a.abs().max(b.abs()))
    });
}

/// Pooled [`merged_breakpoints`]: fill `scratch.knots` with the same
/// sorted, deduped elementary breakpoints without allocating once the
/// scratch buffers are warm. Supports at most two functions.
///
/// Equivalence to the sorting version: each function's qualifying
/// breakpoints already form an ascending run (`f.xs` is strictly
/// increasing), `domain.lo()` is strictly below and `domain.hi()`
/// strictly above every qualifying point (`definitely_lt` filter), and
/// a stable two-run merge that prefers the first run on exact ties
/// produces exactly the permutation a stable sort of
/// `[lo, hi, run₀…, run₁…]` would. The dedupe pass is shared.
pub(crate) fn merged_breakpoints_into(scratch: &mut PwlScratch, fns: &[&Pwl], domain: &Interval) {
    debug_assert!(fns.len() <= 2, "pooled merge supports at most two fns");
    scratch.aux.clear();
    let mut split = 0;
    for (k, f) in fns.iter().enumerate() {
        // Candidates outside (lo, hi) can never pass the filter
        // (`definitely_lt(lo, x)` needs `x > lo`, and symmetrically at
        // `hi`), so binary-search the candidate window first instead of
        // running the two epsilon comparisons on every breakpoint —
        // restriction of a full-period function to a narrow leaving
        // window skips almost the whole table this way.
        let i0 = f.xs.partition_point(|&x| x <= domain.lo());
        let i1 = f.xs.partition_point(|&x| x < domain.hi());
        for &x in &f.xs[i0..i1] {
            if definitely_lt(domain.lo(), x) && definitely_lt(x, domain.hi()) {
                scratch.aux.push(x);
            }
        }
        if k == 0 {
            split = scratch.aux.len();
        }
    }
    let (a, b) = scratch.aux.split_at(split);
    let knots = &mut scratch.knots;
    knots.clear();
    knots.push(domain.lo());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            knots.push(a[i]);
            i += 1;
        } else {
            knots.push(b[j]);
            j += 1;
        }
    }
    knots.extend_from_slice(&a[i..]);
    knots.extend_from_slice(&b[j..]);
    knots.push(domain.hi());
    dedupe_eps(knots);
}

/// Build a [`Pwl`] from elementary breakpoints by asking `pick` for the
/// linear piece at each sub-interval midpoint.
pub(crate) fn build_from_breakpoints(
    xs: Vec<f64>,
    mut pick: impl FnMut(f64) -> Linear,
) -> Result<Pwl> {
    if xs.len() < 2 {
        return Err(PwlError::BadBreakpoints(
            "empty elementary subdivision".into(),
        ));
    }
    let mut fs = Vec::with_capacity(xs.len() - 1);
    for w in xs.windows(2) {
        fs.push(pick(0.5 * (w[0] + w[1])));
    }
    Pwl::new(xs, fs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vee() -> Pwl {
        // V shape: 10 - x on [0,10], x - 10 on [10, 20]
        Pwl::from_points(&[(0.0, 10.0), (10.0, 0.0), (20.0, 10.0)]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Pwl::new(vec![0.0], vec![]).is_err());
        assert!(Pwl::new(vec![0.0, 1.0], vec![]).is_err());
        assert!(Pwl::new(vec![1.0, 0.0], vec![Linear::identity()]).is_err());
        assert!(Pwl::new(vec![0.0, 0.0], vec![Linear::identity()]).is_err());
        assert!(Pwl::new(vec![0.0, 1.0], vec![Linear::identity()]).is_ok());
    }

    #[test]
    fn eval_and_piece_lookup() {
        let f = vee();
        assert_eq!(f.n_pieces(), 2);
        assert!(approx_eq(f.eval(0.0), 10.0));
        assert!(approx_eq(f.eval(5.0), 5.0));
        assert!(approx_eq(f.eval(10.0), 0.0));
        assert!(approx_eq(f.eval(20.0), 10.0)); // right endpoint uses last piece
        assert_eq!(f.try_eval(20.1), None);
        assert_eq!(f.try_eval(-0.1), None);
        // EPS slack at the endpoints
        assert!(f.try_eval(20.0 + 1e-9).is_some());
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn eval_panics_outside() {
        vee().eval(25.0);
    }

    #[test]
    fn from_points_roundtrip() {
        let f = vee();
        assert_eq!(f.points(), vec![(0.0, 10.0), (10.0, 0.0), (20.0, 10.0)]);
        assert!(f.is_continuous());
    }

    #[test]
    fn minimum_at_kink() {
        let f = vee();
        let m = f.minimum();
        assert!(approx_eq(m.value, 0.0));
        assert!(m.at.approx_eq(&Interval::of(10.0, 10.0)));
        assert!(approx_eq(f.maximum(), 10.0));
    }

    #[test]
    fn minimum_on_flat_region() {
        // plateau at 5 on [2, 6]
        let f = Pwl::from_points(&[(0.0, 7.0), (2.0, 5.0), (6.0, 5.0), (8.0, 9.0)]).unwrap();
        let m = f.minimum();
        assert!(approx_eq(m.value, 5.0));
        assert!(m.at.approx_eq(&Interval::of(2.0, 6.0)));
    }

    #[test]
    fn minimum_first_of_two_runs() {
        // two separate plateaus at the same minimum; the first is reported
        let f = Pwl::from_points(&[
            (0.0, 1.0),
            (1.0, 0.0),
            (2.0, 0.0),
            (3.0, 1.0),
            (4.0, 0.0),
            (5.0, 0.0),
            (6.0, 1.0),
        ])
        .unwrap();
        let m = f.minimum();
        assert!(approx_eq(m.value, 0.0));
        assert!(m.at.approx_eq(&Interval::of(1.0, 2.0)));
    }

    #[test]
    fn min_over_subinterval() {
        let f = vee();
        let m = f.min_over(&Interval::of(0.0, 4.0)).unwrap();
        assert!(approx_eq(m.value, 6.0));
        assert!(m.at.approx_eq(&Interval::of(4.0, 4.0)));
        let m = f.min_over(&Interval::of(12.0, 30.0)).unwrap();
        assert!(approx_eq(m.value, 2.0));
        assert!(m.at.approx_eq(&Interval::of(12.0, 12.0)));
        assert!(f.min_over(&Interval::of(30.0, 40.0)).is_err());
        assert!(approx_eq(
            f.max_over(&Interval::of(5.0, 12.0)).unwrap(),
            5.0
        ));
    }

    #[test]
    fn add_scalar_and_linear() {
        let f = vee().add_scalar(3.0);
        assert!(approx_eq(f.eval(10.0), 3.0));
        let a = vee().add_identity();
        assert!(approx_eq(a.eval(10.0), 10.0));
        assert!(approx_eq(a.eval(0.0), 10.0));
        let back = a.sub_identity();
        assert!(approx_eq(back.eval(5.0), vee().eval(5.0)));
    }

    #[test]
    fn add_merges_breakpoints() {
        let f = vee(); // breaks at 10
        let g = Pwl::from_points(&[(5.0, 0.0), (15.0, 20.0)]).unwrap();
        let s = f.add(&g).unwrap();
        assert!(s.domain().approx_eq(&Interval::of(5.0, 15.0)));
        assert_eq!(s.n_pieces(), 2); // elementary: [5,10], [10,15]
        for x in [5.0, 7.3, 10.0, 12.9, 15.0] {
            assert!(approx_eq(s.eval(x), f.eval(x) + g.eval(x)));
        }
        // disjoint domains fail
        let h = Pwl::constant(Interval::of(100.0, 200.0), 1.0).unwrap();
        assert!(f.add(&h).is_err());
    }

    #[test]
    fn restrict_clips() {
        let f = vee();
        let r = f.restrict(&Interval::of(5.0, 12.0)).unwrap();
        assert!(r.domain().approx_eq(&Interval::of(5.0, 12.0)));
        assert_eq!(r.n_pieces(), 2);
        for x in [5.0, 9.9, 10.0, 12.0] {
            assert!(approx_eq(r.eval(x), f.eval(x)));
        }
        assert!(f.restrict(&Interval::of(30.0, 40.0)).is_err());
        // degenerate restriction fails
        assert!(f.restrict(&Interval::of(20.0, 25.0)).is_err());
    }

    #[test]
    fn simplify_merges_collinear() {
        let f = Pwl::new(
            vec![0.0, 5.0, 10.0, 20.0],
            vec![
                Linear::constant(3.0).unwrap(),
                Linear::constant(3.0).unwrap(),
                Linear::identity(),
            ],
        )
        .unwrap();
        let s = f.simplify();
        assert_eq!(s.n_pieces(), 2);
        assert_eq!(s.breakpoints(), &[0.0, 10.0, 20.0]);
        for x in [0.0, 4.0, 9.0, 15.0, 20.0] {
            assert!(approx_eq(s.eval(x), f.eval(x)));
        }
        assert_eq!(s.simplify(), s);
    }

    #[test]
    fn concat_glues_adjacent_functions() {
        let left = Pwl::from_points(&[(0.0, 1.0), (5.0, 3.0)]).unwrap();
        let right = Pwl::from_points(&[(5.0, 3.0), (8.0, 0.0), (10.0, 2.0)]).unwrap();
        let glued = left.concat(&right).unwrap();
        assert!(glued.domain().approx_eq(&Interval::of(0.0, 10.0)));
        assert_eq!(glued.n_pieces(), 3);
        assert!(glued.is_continuous());
        for x in [0.0, 2.5, 5.0 + 1e-9, 6.5, 8.0, 10.0] {
            let want = if x <= 5.0 {
                left.eval(x)
            } else {
                right.eval(x)
            };
            assert!(approx_eq(glued.eval(x), want), "x={x}");
        }
        // disjoint domains are rejected
        let far = Pwl::constant(Interval::of(50.0, 60.0), 1.0).unwrap();
        assert!(left.concat(&far).is_err());
        // order matters: right.concat(left) seams at 10 vs 0
        assert!(right.concat(&left).is_err());
    }

    #[test]
    fn reflect_x_mirrors_graph() {
        let f = vee(); // min at x=10 on [0,20]
        let g = f.reflect_x(30.0); // g(x) = f(30 − x), domain [10, 30]
        assert!(g.domain().approx_eq(&Interval::of(10.0, 30.0)));
        for x in [10.0, 14.5, 20.0, 25.0, 30.0] {
            assert!(approx_eq(g.eval(x), f.eval(30.0 - x)), "x={x}");
        }
        assert!(g.is_continuous());
        // minimum moves to the mirrored position
        let m = g.minimum();
        assert!(approx_eq(m.at.lo(), 20.0));
        // involution up to domain arithmetic
        let back = g.reflect_x(30.0);
        assert!(back.domain().approx_eq(&f.domain()));
        for x in [0.0, 7.0, 20.0] {
            assert!(approx_eq(back.eval(x), f.eval(x)));
        }
    }

    #[test]
    fn shift_x_moves_graph() {
        let f = vee().shift_x(100.0);
        assert!(f.domain().approx_eq(&Interval::of(100.0, 120.0)));
        assert!(approx_eq(f.eval(110.0), 0.0));
        assert!(approx_eq(f.eval(100.0), 10.0));
    }

    #[test]
    fn dominated_by_detects_pointwise_order() {
        let low = Pwl::constant(Interval::of(0.0, 10.0), 1.0).unwrap();
        let high = Pwl::constant(Interval::of(0.0, 10.0), 2.0).unwrap();
        assert!(high.dominated_by(&low));
        assert!(!low.dominated_by(&high));
        // crossing functions dominate neither way
        let up = Pwl::from_points(&[(0.0, 0.0), (10.0, 3.0)]).unwrap();
        assert!(!up.dominated_by(&low));
        assert!(!low.dominated_by(&up));
        // equal functions dominate each other (ties allowed)
        assert!(low.dominated_by(&low.clone()));
    }

    #[test]
    fn sort_dedupe_merges_near_duplicates() {
        let mut xs = vec![3.0, 1.0, 1.0 + 1e-12, 2.0, 3.0 - 1e-12];
        sort_dedupe(&mut xs);
        assert_eq!(xs.len(), 3);
        assert!(approx_eq(xs[0], 1.0));
        assert!(approx_eq(xs[1], 2.0));
        assert!(approx_eq(xs[2], 3.0));
    }
}
