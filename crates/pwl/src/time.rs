//! Time-of-day helpers: minutes since local midnight.
//!
//! The workspace measures time in `f64` **minutes since local
//! midnight** (so 7:00 am is `420.0`), matching the paper's examples
//! which are given in minutes (speeds in miles per minute). A day is
//! [`MINUTES_PER_DAY`] long; speed patterns extend periodically past
//! midnight for trips that run into the next day.

/// Minutes in a 24-hour day.
pub const MINUTES_PER_DAY: f64 = 24.0 * 60.0;

/// Build a minutes-of-day value from hours and minutes (e.g.
/// `hm(7, 30)` = 7:30 am = `450.0`).
#[inline]
pub fn hm(hours: u32, minutes: u32) -> f64 {
    f64::from(hours) * 60.0 + f64::from(minutes)
}

/// Build a minutes-of-day value from hours, minutes, seconds.
#[inline]
pub fn hms(hours: u32, minutes: u32, seconds: u32) -> f64 {
    hm(hours, minutes) + f64::from(seconds) / 60.0
}

/// Convert miles-per-hour to miles-per-minute.
#[inline]
pub fn mph_to_mpm(mph: f64) -> f64 {
    mph / 60.0
}

/// Format a minutes value as `h:mm:ss` (rounded to the nearest
/// second), wrapping past midnight with a `+Nd` suffix.
pub fn fmt_minutes(minutes: f64) -> String {
    let total_seconds = (minutes * 60.0).round() as i64;
    let day_seconds = (MINUTES_PER_DAY * 60.0) as i64;
    let days = total_seconds.div_euclid(day_seconds);
    let within = total_seconds.rem_euclid(day_seconds);
    let h = within / 3600;
    let m = (within % 3600) / 60;
    let s = within % 60;
    let base = if s == 0 {
        format!("{h}:{m:02}")
    } else {
        format!("{h}:{m:02}:{s:02}")
    };
    if days == 0 {
        base
    } else {
        format!("{base}+{days}d")
    }
}

/// Format a duration in minutes as `Xm Ys` (e.g. `5m 30s`).
pub fn fmt_duration(minutes: f64) -> String {
    let total_seconds = (minutes * 60.0).round() as i64;
    let m = total_seconds / 60;
    let s = total_seconds % 60;
    if s == 0 {
        format!("{m}m")
    } else {
        format!("{m}m {s}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hm_and_hms() {
        assert_eq!(hm(7, 0), 420.0);
        assert_eq!(hm(0, 0), 0.0);
        assert_eq!(hms(6, 58, 30), 418.5);
        assert_eq!(hms(24, 0, 0), MINUTES_PER_DAY);
    }

    #[test]
    fn speed_conversion() {
        assert!((mph_to_mpm(60.0) - 1.0).abs() < 1e-12);
        assert!((mph_to_mpm(30.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_minutes(hm(7, 0)), "7:00");
        assert_eq!(fmt_minutes(hms(6, 58, 30)), "6:58:30");
        assert_eq!(fmt_minutes(hm(25, 30)), "1:30+1d");
        assert_eq!(fmt_duration(5.0), "5m");
        assert_eq!(fmt_duration(5.5), "5m 30s");
        // paper's 7:03:26 instant (l = 7:06 − 18/7 min)
        let l = hm(7, 6) - 18.0 / 7.0;
        assert_eq!(fmt_minutes(l), "7:03:26");
    }
}
