//! The overload-resilient query service: a long-running front end for
//! the [`Engine`] built for sustained production traffic rather than
//! one-shot batches.
//!
//! The [`QueryService`] wraps an engine behind a **bounded admission
//! queue** and makes every overload decision explicit and observable:
//!
//! * **Admission control & load shedding** — [`QueryService::submit`]
//!   rejects immediately with a typed [`Overloaded`] error when the
//!   queue is full, when the service is draining, or when the
//!   estimated queueing delay already exceeds the submission's
//!   deadline (open-loop clients learn about overload *now*, not
//!   after their deadline has silently passed). Optionally, entries
//!   whose deadline expired while queued are shed from the queue head
//!   before they waste a worker ([`ServiceConfig::shed_expired`]).
//! * **Priority classes** — [`Priority::Interactive`] submissions are
//!   always served before [`Priority::Batch`] ones; both share the
//!   same capacity bound so batch traffic cannot starve the queue.
//! * **Storage circuit breaker** — sustained
//!   [`EngineError::Storage`] fault rates from the CCAM layer trip a
//!   breaker (`Closed → Open`); while open, queries skip the sick
//!   store entirely and are answered from the constant-speed fallback
//!   ([`DegradedReason::StorageUnavailable`]). After a cooldown the
//!   breaker admits a single half-open probe; enough consecutive
//!   probe successes close it again.
//! * **Graceful drain** — [`QueryService::begin_drain`] stops
//!   admission ([`OverloadReason::Draining`]) and either finishes the
//!   queue ([`DrainMode::Finish`]) or cancels it
//!   ([`DrainMode::Cancel`]: queued work resolves to
//!   [`CancelReason::Drained`], in-flight work is cancelled
//!   cooperatively through the service [`CancelToken`]).
//! * **Observability** — every decision lands in [`ServiceStats`],
//!   whose counters reconcile exactly:
//!   `submitted = admitted + rejected` and
//!   `admitted = answered + degraded + failed + cancelled`.
//!
//! # Determinism and the virtual clock
//!
//! All time-dependent decisions (deadlines, estimated waits, breaker
//! cooldowns) read a [`ServiceClock`], not the wall clock. Production
//! deployments use [`WallClock`]; the overload-chaos harness uses a
//! [`ManualClock`] advanced by the measured *work units* of each
//! completed query (`QueryStats::expanded_paths`), so an entire
//! overload scenario — arrivals, sheds, breaker trips, recoveries —
//! replays bit-identically from a seed on the single-threaded
//! [`QueryService::step`] driver. See `DESIGN.md` §11 and
//! `core/tests/overload.rs` for the invariants this enables.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

use crate::backend::PathfindBackend;
use crate::cache::CacheSession;
use crate::engine::Engine;
use crate::epoch::{Epoch, EpochManager};
use crate::query::{
    CancelToken, DegradedAnswer, DegradedReason, QueryBudget, QueryOutcome, QuerySpec, QueryStats,
};
use crate::{AllFpAnswer, EngineError};

/// A stateless SplitMix64-style hash: the arrival schedule derives
/// every gap from `(seed, index)` so schedules are random-access and
/// replayable without carrying generator state.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Lock with poison recovery: the service state is valid after any
/// interrupted mutation (a lost notification at worst), so one
/// panicked worker must not wedge the whole service.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

/// The service's notion of time, in abstract monotone units.
///
/// Everything the service decides on time — queue-wait estimates,
/// deadline sheds, breaker cooldowns, latency histograms — goes
/// through this trait, which is what makes the overload-chaos harness
/// deterministic: swap the wall clock for a [`ManualClock`] driven by
/// measured work units and the whole service replays from a seed.
pub trait ServiceClock: Send + Sync {
    /// Current time. Must be monotone non-decreasing.
    fn now(&self) -> u64;
}

/// Wall-clock time in microseconds since the clock was created.
#[derive(Debug)]
pub struct WallClock {
    base: Instant,
}

impl WallClock {
    /// A clock starting at 0 now.
    pub fn new() -> Self {
        WallClock {
            base: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl ServiceClock for WallClock {
    fn now(&self) -> u64 {
        u64::try_from(self.base.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// A manually-advanced clock for deterministic simulation: the chaos
/// harness advances it by each completed query's measured work units,
/// so "time" is a pure function of the workload.
#[derive(Debug, Default)]
pub struct ManualClock(AtomicU64);

impl ManualClock {
    /// A clock at time 0.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advance by `units`.
    pub fn advance(&self, units: u64) {
        self.0.fetch_add(units, Ordering::Relaxed);
    }

    /// Jump forward to `t` (never backwards: monotone by `fetch_max`).
    pub fn set(&self, t: u64) {
        self.0.fetch_max(t, Ordering::Relaxed);
    }
}

impl ServiceClock for ManualClock {
    fn now(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Submissions and terminal outcomes
// ---------------------------------------------------------------------------

/// Identifies one admitted submission; returned by
/// [`QueryService::submit`] and attached to its terminal outcome.
pub type TicketId = u64;

/// Scheduling class of a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Latency-sensitive traffic; always dequeued before batch work.
    Interactive,
    /// Throughput traffic; runs when no interactive work is queued.
    Batch,
}

impl Priority {
    /// Queue index of this class.
    fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
        }
    }
}

/// One unit of work offered to the service.
#[derive(Debug, Clone)]
pub struct Submission {
    /// The query to answer.
    pub spec: QuerySpec,
    /// Scheduling class (default: [`Priority::Interactive`]).
    pub class: Priority,
    /// Absolute deadline in [`ServiceClock`] units. Used by admission
    /// (reject when the estimated wait already exceeds it) and by
    /// queue-head shedding; independent of the engine-level
    /// [`QueryBudget`] inside `spec`, which bounds the *search* once
    /// it starts.
    pub deadline: Option<u64>,
    /// Caller's estimate of this query's cost in work units
    /// (expansions); feeds the wait estimator. Defaults to
    /// [`ServiceConfig::default_cost`].
    pub cost_hint: Option<u64>,
}

impl Submission {
    /// An interactive submission with no deadline and no cost hint.
    pub fn new(spec: QuerySpec) -> Self {
        Submission {
            spec,
            class: Priority::Interactive,
            deadline: None,
            cost_hint: None,
        }
    }

    /// Set the scheduling class.
    pub fn with_class(mut self, class: Priority) -> Self {
        self.class = class;
        self
    }

    /// Set the absolute service-clock deadline.
    pub fn with_deadline(mut self, deadline: u64) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Set the cost hint in work units.
    pub fn with_cost_hint(mut self, cost: u64) -> Self {
        self.cost_hint = Some(cost);
        self
    }
}

/// Why a submission was rejected at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadReason {
    /// The bounded queue was at capacity.
    QueueFull,
    /// The estimated queueing delay already exceeded the submission's
    /// deadline — executing it would only produce a late answer.
    PredictedLate,
    /// The service is draining and admits nothing new.
    Draining,
}

/// Typed admission rejection: the *immediate* terminal outcome of a
/// submission the service refused to queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overloaded {
    /// Why admission refused.
    pub reason: OverloadReason,
    /// Queue depth observed at the decision.
    pub queue_depth: usize,
    /// Estimated wait (clock units) a new submission would have faced.
    pub estimated_wait: u64,
}

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "overloaded ({:?}): queue depth {}, estimated wait {} units",
            self.reason, self.queue_depth, self.estimated_wait
        )
    }
}

impl std::error::Error for Overloaded {}

/// Why an *admitted* submission was cancelled instead of executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// Its deadline expired while it sat in the queue and
    /// [`ServiceConfig::shed_expired`] shed it from the head.
    ShedExpired,
    /// It was still queued when [`DrainMode::Cancel`] drained the
    /// queue.
    Drained,
    /// It was in flight when the service [`CancelToken`] fired and the
    /// engine stopped it cooperatively.
    TokenCancelled,
}

/// The terminal outcome of one admitted submission. Every admitted
/// ticket resolves to exactly one of these, recorded in submission
/// order of completion and retrievable via
/// [`QueryService::take_outcomes`].
#[derive(Debug)]
pub enum ServiceOutcome {
    /// Exact answer from the primary engine.
    Answered(Box<AllFpAnswer>),
    /// Degraded answer: either the engine's own budget tripped, or
    /// the storage breaker routed the query to the constant-speed
    /// fallback ([`DegradedReason::StorageUnavailable`]).
    Degraded(Box<DegradedAnswer>),
    /// The query failed with a non-degradable error.
    Failed(EngineError),
    /// The submission was cancelled before or during execution.
    Cancelled(CancelReason),
}

impl ServiceOutcome {
    /// Short label for logs and deterministic-replay comparisons.
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceOutcome::Answered(_) => "answered",
            ServiceOutcome::Degraded(_) => "degraded",
            ServiceOutcome::Failed(_) => "failed",
            ServiceOutcome::Cancelled(_) => "cancelled",
        }
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// Circuit-breaker state (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Healthy: queries go to the primary engine; storage faults are
    /// counted over a sliding window.
    #[default]
    Closed,
    /// Tripped: the storage layer is presumed sick, every query is
    /// served from the fallback until the cooldown elapses.
    Open,
    /// Probing: one query at a time is allowed through to the
    /// primary; enough consecutive successes re-close the breaker, a
    /// single failure re-opens it.
    HalfOpen,
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Sliding window: the last `window` primary executions counted.
    pub window: usize,
    /// Storage faults within the window that trip the breaker.
    pub trip_failures: u32,
    /// Clock units the breaker stays open before half-open probing.
    pub cooldown: u64,
    /// Consecutive successful probes required to close again.
    pub probe_successes: u32,
    /// Maximum seeded jitter (clock units) added to the cooldown
    /// before each half-open probe. Many clients watching the same
    /// recovering peer would otherwise re-probe it in lockstep — the
    /// same thundering-herd shape the buffer pool's retry backoff
    /// de-correlates with seeded jitter. `0` disables jitter (exact
    /// legacy cooldown).
    pub probe_jitter: u64,
    /// Seed for the probe jitter. Give each client a distinct seed so
    /// their probe schedules diverge; the schedule for a given seed is
    /// fully deterministic.
    pub probe_seed: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 16,
            trip_failures: 8,
            cooldown: 10_000,
            probe_successes: 2,
            probe_jitter: 0,
            probe_seed: 0,
        }
    }
}

/// Where the dispatcher sends a popped query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Breaker closed: the primary engine.
    Primary,
    /// Breaker half-open: the primary engine, as the designated probe.
    Probe,
    /// Breaker open (or probe slot taken): the constant-speed
    /// fallback.
    Fallback,
}

/// The classic three-state circuit breaker over a sliding fault
/// window.
///
/// [`QueryService`] keeps one behind its lock to guard the primary
/// engine; `fp-cluster` keeps one per RPC peer to stop hammering a
/// crashed or partitioned node. The machine is driven entirely by the
/// caller's clock — no wall time — so a given input schedule replays
/// to the identical transition log.
#[derive(Debug, Default)]
pub struct CircuitBreaker {
    state: BreakerState,
    /// Outcomes (true = storage fault) of the last `window` primary
    /// executions while closed.
    window: VecDeque<bool>,
    faults: u32,
    opened_at: u64,
    probe_in_flight: bool,
    probe_ok: u32,
    /// Times the breaker has tripped open; salts the probe jitter so
    /// consecutive cooldowns of one breaker also de-correlate.
    trips: u64,
    /// `(clock, new_state)` log of every transition, in order.
    transitions: Vec<(u64, BreakerState)>,
}

impl CircuitBreaker {
    /// A fresh breaker in the [`BreakerState::Closed`] state.
    pub fn new() -> Self {
        CircuitBreaker::default()
    }

    fn transition(&mut self, now: u64, next: BreakerState) {
        if next == BreakerState::Open {
            self.trips += 1;
        }
        self.state = next;
        self.transitions.push((now, next));
    }

    /// Seeded jitter added to the current cooldown, in
    /// `0..=cfg.probe_jitter`. A pure function of `(probe_seed,
    /// trips)`, so replays are exact while distinct seeds (one per
    /// client) and successive trips de-correlate.
    fn probe_delay(&self, cfg: &BreakerConfig) -> u64 {
        if cfg.probe_jitter == 0 {
            return cfg.cooldown;
        }
        let r = splitmix64(cfg.probe_seed ^ self.trips.wrapping_mul(0xA076_1D64_78BD_642F));
        cfg.cooldown + r % (cfg.probe_jitter + 1)
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// How many times the breaker has transitioned to
    /// [`BreakerState::Open`].
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// `(clock, new_state)` log of every transition, in order.
    pub fn transitions(&self) -> &[(u64, BreakerState)] {
        &self.transitions
    }

    /// Decide the route for the next popped query.
    pub fn route(&mut self, now: u64, cfg: &BreakerConfig) -> Route {
        match self.state {
            BreakerState::Closed => Route::Primary,
            BreakerState::Open => {
                if now.saturating_sub(self.opened_at) >= self.probe_delay(cfg) {
                    self.probe_ok = 0;
                    self.probe_in_flight = true;
                    self.transition(now, BreakerState::HalfOpen);
                    Route::Probe
                } else {
                    Route::Fallback
                }
            }
            BreakerState::HalfOpen => {
                if self.probe_in_flight {
                    Route::Fallback
                } else {
                    self.probe_in_flight = true;
                    Route::Probe
                }
            }
        }
    }

    /// Feed a completed closed-state primary execution into the
    /// sliding window.
    pub fn on_primary(&mut self, now: u64, storage_fault: bool, cfg: &BreakerConfig) {
        if self.state != BreakerState::Closed {
            // A stale completion from before a trip (possible with
            // concurrent workers): the window restarted, ignore it.
            return;
        }
        self.window.push_back(storage_fault);
        if storage_fault {
            self.faults += 1;
        }
        while self.window.len() > cfg.window {
            if self.window.pop_front() == Some(true) {
                self.faults -= 1;
            }
        }
        if self.faults >= cfg.trip_failures {
            self.opened_at = now;
            self.window.clear();
            self.faults = 0;
            self.transition(now, BreakerState::Open);
        }
    }

    /// Feed a completed half-open probe.
    pub fn on_probe(&mut self, now: u64, storage_fault: bool, cfg: &BreakerConfig) {
        self.probe_in_flight = false;
        if self.state != BreakerState::HalfOpen {
            return;
        }
        if storage_fault {
            self.opened_at = now;
            self.probe_ok = 0;
            self.transition(now, BreakerState::Open);
        } else {
            self.probe_ok += 1;
            if self.probe_ok >= cfg.probe_successes {
                self.transition(now, BreakerState::Closed);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

/// Power-of-two latency histogram: bucket 0 counts latency 0, bucket
/// `i ≥ 1` counts latencies in `[2^(i-1), 2^i)` clock units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 48],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; 48],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// Record one latency observation.
    pub fn record(&mut self, latency: u64) {
        let idx = (64 - latency.leading_zeros() as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += latency;
        self.max = self.max.max(latency);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw buckets (see the type-level doc for boundaries).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

/// Roll-up of every decision the service made. Counters reconcile
/// exactly (see [`ServiceStats::reconciles`]); the chaos harness
/// asserts this after every scenario.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServiceStats {
    /// Submissions offered ([`QueryService::submit`] calls).
    pub submitted: u64,
    /// Submissions accepted into the queue.
    pub admitted: u64,
    /// Submissions rejected at admission with [`Overloaded`].
    pub rejected: u64,
    /// Admitted queries answered exactly by the primary engine.
    pub answered: u64,
    /// Admitted queries that resolved to a degraded answer (engine
    /// budget or storage fallback).
    pub degraded: u64,
    /// Subset of `degraded` served from the fallback because of
    /// storage health (breaker open, or an in-query storage fault).
    pub breaker_fallbacks: u64,
    /// Admitted queries that failed with a non-degradable error.
    pub failed: u64,
    /// Admitted queries cancelled before or during execution (sheds,
    /// drains, token cancellations).
    pub cancelled: u64,
    /// Subset of `cancelled` shed from the queue head past deadline.
    pub shed: u64,
    /// Highest queue depth ever observed (≤ the configured capacity).
    pub queue_depth_high_water: usize,
    /// Breaker state at the time of the snapshot.
    pub breaker_state: BreakerState,
    /// `(clock, new_state)` for every breaker transition, in order.
    pub breaker_transitions: Vec<(u64, BreakerState)>,
    /// Completion latency (submission → terminal outcome, clock
    /// units) per class, indexed by [`Priority::Interactive`] = 0,
    /// [`Priority::Batch`] = 1. Records answered and degraded
    /// completions only.
    pub latency: [LatencyHistogram; 2],
    /// Network epochs ever published by the attached
    /// [`EpochManager`] (0 when the service runs without live
    /// updates; includes the seed epoch).
    pub epochs_published: u64,
    /// Traffic deltas applied by the attached manager.
    pub updates_applied: u64,
    /// Superseded epochs retired (last pin dropped and swept).
    pub epochs_retired: u64,
    /// Superseded epochs still pinned at the snapshot — how far
    /// retirement lags behind publication.
    pub epoch_retire_lag: u64,
    /// Hierarchy shortcut arcs recomposed across all live refreshes.
    pub shortcuts_rebuilt: u64,
}

impl ServiceStats {
    /// The exact accounting identities every snapshot satisfies:
    /// `submitted = admitted + rejected`,
    /// `admitted = answered + degraded + failed + cancelled`,
    /// `shed ⊆ cancelled`, and — when an [`EpochManager`] is attached —
    /// `epochs_published = updates_applied + 1` with
    /// `epochs_retired + epoch_retire_lag = updates_applied` (every
    /// superseded epoch is either retired or still pinned).
    pub fn reconciles(&self) -> bool {
        let epochs_ok = if self.epochs_published == 0 {
            self.updates_applied == 0 && self.epochs_retired == 0 && self.epoch_retire_lag == 0
        } else {
            self.epochs_published == self.updates_applied + 1
                && self.epochs_retired + self.epoch_retire_lag == self.updates_applied
        };
        self.submitted == self.admitted + self.rejected
            && self.admitted == self.answered + self.degraded + self.failed + self.cancelled
            && self.shed <= self.cancelled
            && epochs_ok
    }
}

// ---------------------------------------------------------------------------
// Service configuration
// ---------------------------------------------------------------------------

/// Service tuning.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bound on queued submissions (both classes combined, not
    /// counting in-flight work). Admission rejects with
    /// [`OverloadReason::QueueFull`] at this depth.
    pub queue_capacity: usize,
    /// Shed queue-head entries whose deadline already expired
    /// (resolving them as [`CancelReason::ShedExpired`]) instead of
    /// wasting a worker on a guaranteed-late answer.
    pub shed_expired: bool,
    /// Assumed cost (work units) of a submission with no
    /// [`Submission::cost_hint`].
    pub default_cost: u64,
    /// Initial estimate of clock units per work unit, refined online
    /// by an EWMA over observed service times. With a [`ManualClock`]
    /// advanced 1:1 by work units this stays exact at 1.0.
    pub initial_units_per_cost: f64,
    /// Storage circuit-breaker tuning.
    pub breaker: BreakerConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 64,
            shed_expired: true,
            default_cost: 32,
            initial_units_per_cost: 1.0,
            breaker: BreakerConfig::default(),
        }
    }
}

/// How [`QueryService::begin_drain`] treats outstanding work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainMode {
    /// Stop admitting; queued and in-flight work runs to completion.
    Finish,
    /// Stop admitting; queued work resolves to
    /// [`CancelReason::Drained`] immediately and in-flight work is
    /// cancelled through the service [`CancelToken`].
    Cancel,
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// One queued submission.
#[derive(Debug)]
struct Ticket {
    id: TicketId,
    spec: QuerySpec,
    class: Priority,
    deadline: Option<u64>,
    cost: u64,
    submitted_at: u64,
    /// Pin on the epoch this submission was admitted under: holding
    /// the `Arc` keeps the epoch (network, estimator) alive until this
    /// ticket reaches its terminal outcome, however long it queues.
    /// `None` when the service runs without live updates.
    /// Strong pin on the admission-time epoch: held (never read — the
    /// engine re-resolves through the manager by id) purely so the
    /// epoch cannot retire while this query is in flight. Dropped with
    /// the ticket at its terminal outcome.
    _pin: Option<std::sync::Arc<Epoch>>,
}

/// A popped ticket plus its dispatch decision.
struct Job {
    ticket: Ticket,
    route: Route,
    popped_at: u64,
}

/// Result of executing one job, before the books are updated.
struct Executed {
    outcome: ServiceOutcome,
    /// Measured work units (`expanded_paths`, min 1).
    cost: u64,
    /// The primary engine reported a storage fault.
    storage_fault: bool,
    /// The answer came from the fallback path.
    via_fallback: bool,
    /// The route consulted the primary engine (feeds the breaker).
    primary_used: bool,
    /// The route was the half-open probe.
    probe: bool,
}

/// Mutable service state, behind one lock.
struct ServiceState {
    /// Index 0 = interactive, 1 = batch.
    queues: [VecDeque<Ticket>; 2],
    /// Sum of queued cost hints (work units), for wait estimation.
    queued_cost: u64,
    in_flight: usize,
    draining: Option<DrainMode>,
    next_id: TicketId,
    /// EWMA of observed clock-units-per-work-unit.
    ewma_units_per_cost: f64,
    breaker: CircuitBreaker,
    stats: ServiceStats,
    outcomes: Vec<(TicketId, ServiceOutcome)>,
}

impl ServiceState {
    fn depth(&self) -> usize {
        self.queues[0].len() + self.queues[1].len()
    }

    fn estimated_wait(&self) -> u64 {
        (self.queued_cost as f64 * self.ewma_units_per_cost) as u64
    }
}

/// The long-running query front end. See the module docs for the
/// full behavioral contract and `DESIGN.md` §11 for the design
/// rationale.
///
/// `B` is the primary query backend — the flat [`Engine`] over any
/// network source (typically the CCAM disk stack), or any other
/// [`PathfindBackend`] such as the contraction-hierarchy engine from
/// `fp-hierarchy`. The optional fallback engine always runs over the
/// in-memory [`roadnet::RoadNetwork`] snapshot: when the breaker
/// declares storage sick, answers must not depend on the sick store.
pub struct QueryService<'e, B: PathfindBackend + ?Sized> {
    primary: &'e B,
    fallback: Option<&'e Engine<'e, roadnet::RoadNetwork>>,
    /// Live-update epoch manager; when attached, every admission
    /// stamps the submission with the current epoch and pins it.
    epochs: Option<&'e EpochManager>,
    clock: &'e dyn ServiceClock,
    config: ServiceConfig,
    /// Service-wide cancellation, fired by [`DrainMode::Cancel`] and
    /// polled cooperatively by every in-flight search.
    cancel: CancelToken,
    state: Mutex<ServiceState>,
    /// Signalled on submission and drain; workers park here.
    work: Condvar,
}

impl<'e, B: PathfindBackend + ?Sized> QueryService<'e, B> {
    /// Build a service over `primary` with no dedicated fallback
    /// engine: breaker-rerouted queries run a zero-expansion budget
    /// against the primary backend instead (cheap, but still touching
    /// the possibly-sick store — prefer [`QueryService::with_fallback`]
    /// in production).
    pub fn new(primary: &'e B, clock: &'e dyn ServiceClock, config: ServiceConfig) -> Self {
        QueryService {
            primary,
            fallback: None,
            epochs: None,
            clock,
            config,
            cancel: CancelToken::new(),
            state: Mutex::new(ServiceState {
                queues: [VecDeque::new(), VecDeque::new()],
                queued_cost: 0,
                in_flight: 0,
                draining: None,
                next_id: 0,
                ewma_units_per_cost: 1.0,
                breaker: CircuitBreaker::default(),
                stats: ServiceStats::default(),
                outcomes: Vec::new(),
            }),
            work: Condvar::new(),
        }
    }

    /// Attach an in-memory fallback engine for breaker-rerouted
    /// queries.
    pub fn with_fallback(mut self, fallback: &'e Engine<'e, roadnet::RoadNetwork>) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// Attach a live-update [`EpochManager`]: every admitted
    /// submission is stamped with the epoch current *at admission* and
    /// holds a pin on it until its terminal outcome, so concurrent
    /// [`EpochManager::apply_delta`] publishes can never change the
    /// network version a queued query will be answered against.
    pub fn with_epochs(mut self, epochs: &'e EpochManager) -> Self {
        self.epochs = Some(epochs);
        self
    }

    /// The service-wide cancel token (fired by [`DrainMode::Cancel`]).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Current queued depth (both classes; excludes in-flight work).
    pub fn queue_depth(&self) -> usize {
        lock(&self.state).depth()
    }

    /// Has a drain begun?
    pub fn is_draining(&self) -> bool {
        lock(&self.state).draining.is_some()
    }

    /// Offer one submission. `Ok(id)` means the submission was
    /// admitted and will resolve to exactly one [`ServiceOutcome`];
    /// `Err(Overloaded)` is itself the (immediate) terminal outcome.
    pub fn submit(&self, sub: Submission) -> Result<TicketId, Overloaded> {
        let now = self.clock.now();
        let mut st = lock(&self.state);
        st.stats.submitted += 1;
        if st.draining.is_some() {
            st.stats.rejected += 1;
            return Err(Overloaded {
                reason: OverloadReason::Draining,
                queue_depth: st.depth(),
                estimated_wait: st.estimated_wait(),
            });
        }
        if self.config.shed_expired {
            Self::shed_expired_locked(&mut st, now);
        }
        if st.depth() >= self.config.queue_capacity {
            st.stats.rejected += 1;
            return Err(Overloaded {
                reason: OverloadReason::QueueFull,
                queue_depth: st.depth(),
                estimated_wait: st.estimated_wait(),
            });
        }
        if let Some(deadline) = sub.deadline {
            let wait = st.estimated_wait();
            if now.saturating_add(wait) > deadline {
                st.stats.rejected += 1;
                return Err(Overloaded {
                    reason: OverloadReason::PredictedLate,
                    queue_depth: st.depth(),
                    estimated_wait: wait,
                });
            }
        }
        let id = st.next_id;
        st.next_id += 1;
        st.stats.admitted += 1;
        let cost = sub.cost_hint.unwrap_or(self.config.default_cost).max(1);
        st.queued_cost += cost;
        let mut spec = sub.spec;
        // Pin-at-admission: resolve the epoch now and hold it in the
        // ticket. An already-stamped spec keeps its stamp (its pin may
        // fail to resolve if that epoch retired — the query will then
        // fail with `EpochRetired` rather than silently run on a
        // different network version).
        let pin = self.epochs.and_then(|mgr| {
            let pin = mgr.pin(spec.epoch);
            if let Some(p) = &pin {
                spec.epoch = Some(p.id());
            }
            pin
        });
        st.queues[sub.class.index()].push_back(Ticket {
            id,
            spec,
            class: sub.class,
            deadline: sub.deadline,
            cost,
            submitted_at: now,
            _pin: pin,
        });
        let depth = st.depth();
        st.stats.queue_depth_high_water = st.stats.queue_depth_high_water.max(depth);
        drop(st);
        self.work.notify_one();
        Ok(id)
    }

    /// Shed queue-head entries whose deadline has passed. Head-only by
    /// design: expiry is checked exactly where a worker would pick
    /// work up, so shed decisions depend only on (queue order, clock),
    /// never on scan timing.
    fn shed_expired_locked(st: &mut ServiceState, now: u64) {
        for class in 0..2 {
            while let Some(head) = st.queues[class].front() {
                let expired = head.deadline.is_some_and(|d| d <= now);
                if !expired {
                    break;
                }
                // The head is expired: shedding it is strictly better
                // than executing it (the answer would be late either
                // way), and the freed slot admits fresh work.
                let Some(t) = st.queues[class].pop_front() else {
                    break;
                };
                st.queued_cost = st.queued_cost.saturating_sub(t.cost);
                st.stats.cancelled += 1;
                st.stats.shed += 1;
                st.outcomes
                    .push((t.id, ServiceOutcome::Cancelled(CancelReason::ShedExpired)));
            }
        }
    }

    /// Pop the next ticket (interactive first) and decide its route.
    fn pop_locked(&self, st: &mut ServiceState, now: u64) -> Option<Job> {
        let ticket = match st.queues[0].pop_front() {
            Some(t) => t,
            None => st.queues[1].pop_front()?,
        };
        st.queued_cost = st.queued_cost.saturating_sub(ticket.cost);
        st.in_flight += 1;
        let route = st.breaker.route(now, &self.config.breaker);
        Some(Job {
            ticket,
            route,
            popped_at: now,
        })
    }

    /// Serve one query from the constant-speed fallback: a
    /// zero-expansion budget forces the engine's degraded path (one
    /// time-independent A* plus an exact re-timing of that route),
    /// with the reason rewritten to
    /// [`DegradedReason::StorageUnavailable`].
    fn serve_fallback(&self, spec: &QuerySpec) -> (ServiceOutcome, u64) {
        let degraded_spec = spec
            .clone()
            .with_budget(QueryBudget::default().with_max_expansions(0));
        let result = match self.fallback {
            Some(fb) => fb.run_robust(&degraded_spec),
            None => self.primary.run_robust(&degraded_spec),
        };
        match result {
            Ok(QueryOutcome::Degraded(mut d)) => {
                d.reason = DegradedReason::StorageUnavailable;
                let cost = cost_of(&d.stats);
                (ServiceOutcome::Degraded(Box::new(d)), cost)
            }
            // Degenerate intervals bypass budgets entirely and come
            // back exact; that exactness is real (it never touched
            // the tripped budget), so report it as answered.
            Ok(QueryOutcome::Exact(a)) => {
                let cost = cost_of(&a.stats);
                (ServiceOutcome::Answered(Box::new(a)), cost)
            }
            Err(e) => (ServiceOutcome::Failed(e), 1),
        }
    }

    /// Execute one routed job (no lock held).
    fn execute(&self, job: &Job, session: &mut CacheSession<'_>) -> Executed {
        let probe = job.route == Route::Probe;
        match job.route {
            Route::Fallback => {
                let (outcome, cost) = self.serve_fallback(&job.ticket.spec);
                Executed {
                    outcome,
                    cost,
                    storage_fault: false,
                    via_fallback: true,
                    primary_used: false,
                    probe,
                }
            }
            Route::Primary | Route::Probe => {
                match self.primary.robust_with_session(
                    &job.ticket.spec,
                    session,
                    Some(&self.cancel),
                ) {
                    Ok(QueryOutcome::Exact(a)) => Executed {
                        cost: cost_of(&a.stats),
                        outcome: ServiceOutcome::Answered(Box::new(a)),
                        storage_fault: false,
                        via_fallback: false,
                        primary_used: true,
                        probe,
                    },
                    Ok(QueryOutcome::Degraded(d)) => Executed {
                        cost: cost_of(&d.stats),
                        outcome: ServiceOutcome::Degraded(Box::new(d)),
                        storage_fault: false,
                        via_fallback: false,
                        primary_used: true,
                        probe,
                    },
                    Err(EngineError::Storage { .. }) => {
                        // The primary hit a storage fault mid-query:
                        // count it against the breaker and still give
                        // this caller an answer from the fallback.
                        let (outcome, cost) = self.serve_fallback(&job.ticket.spec);
                        Executed {
                            outcome,
                            cost,
                            storage_fault: true,
                            via_fallback: true,
                            primary_used: true,
                            probe,
                        }
                    }
                    Err(EngineError::Cancelled) => Executed {
                        outcome: ServiceOutcome::Cancelled(CancelReason::TokenCancelled),
                        cost: 1,
                        storage_fault: false,
                        via_fallback: false,
                        primary_used: true,
                        probe,
                    },
                    Err(e) => Executed {
                        outcome: ServiceOutcome::Failed(e),
                        cost: 1,
                        storage_fault: false,
                        via_fallback: false,
                        primary_used: true,
                        probe,
                    },
                }
            }
        }
    }

    /// Update the books for one executed job.
    fn complete(&self, job: Job, ex: Executed) {
        let now = self.clock.now();
        let mut st = lock(&self.state);
        st.in_flight -= 1;
        if ex.primary_used {
            if ex.probe {
                st.breaker
                    .on_probe(now, ex.storage_fault, &self.config.breaker);
            } else {
                st.breaker
                    .on_primary(now, ex.storage_fault, &self.config.breaker);
            }
        }
        match &ex.outcome {
            ServiceOutcome::Answered(_) => st.stats.answered += 1,
            ServiceOutcome::Degraded(_) => {
                st.stats.degraded += 1;
                if ex.via_fallback {
                    st.stats.breaker_fallbacks += 1;
                }
            }
            ServiceOutcome::Failed(_) => st.stats.failed += 1,
            ServiceOutcome::Cancelled(_) => st.stats.cancelled += 1,
        }
        if matches!(
            ex.outcome,
            ServiceOutcome::Answered(_) | ServiceOutcome::Degraded(_)
        ) {
            st.stats.latency[job.ticket.class.index()]
                .record(now.saturating_sub(job.ticket.submitted_at));
        }
        // Refine the wait estimator from observed service time. With
        // a ManualClock driven by the step() harness, execution takes
        // zero clock time (the harness advances the clock *after* the
        // step), so the initial estimate is left untouched — exactly
        // what keeps the simulation deterministic and exact.
        let elapsed = now.saturating_sub(job.popped_at);
        if elapsed > 0 {
            let observed = elapsed as f64 / ex.cost as f64;
            st.ewma_units_per_cost = 0.8 * st.ewma_units_per_cost + 0.2 * observed;
        }
        st.outcomes.push((job.ticket.id, ex.outcome));
    }

    /// Serve exactly one queued query on the calling thread, opening a
    /// fresh cache session for it. Returns `None` when nothing was
    /// queued (head-of-queue sheds may still have happened).
    pub fn step(&self) -> Option<StepReport> {
        let mut session = self.primary.cache_session();
        self.step_with_session(&mut session)
    }

    /// [`QueryService::step`] on a caller-held session, so a
    /// single-threaded driver keeps its L1 cache warm across steps.
    pub fn step_with_session(&self, session: &mut CacheSession<'_>) -> Option<StepReport> {
        let job = {
            let mut st = lock(&self.state);
            let now = self.clock.now();
            if self.config.shed_expired {
                Self::shed_expired_locked(&mut st, now);
            }
            self.pop_locked(&mut st, now)
        }?;
        let ex = self.execute(&job, session);
        let report = StepReport {
            id: job.ticket.id,
            cost: ex.cost,
        };
        self.complete(job, ex);
        Some(report)
    }

    /// Stop admitting new work. [`DrainMode::Cancel`] additionally
    /// resolves all queued tickets to [`CancelReason::Drained`] and
    /// fires the service [`CancelToken`] so in-flight queries stop at
    /// their next cooperative poll.
    pub fn begin_drain(&self, mode: DrainMode) {
        let mut st = lock(&self.state);
        // Finish never downgrades an in-progress Cancel drain.
        if st.draining != Some(DrainMode::Cancel) {
            st.draining = Some(mode);
        }
        if mode == DrainMode::Cancel {
            for class in 0..2 {
                while let Some(t) = st.queues[class].pop_front() {
                    st.queued_cost = st.queued_cost.saturating_sub(t.cost);
                    st.stats.cancelled += 1;
                    st.outcomes
                        .push((t.id, ServiceOutcome::Cancelled(CancelReason::Drained)));
                }
            }
            self.cancel.cancel();
        }
        drop(st);
        self.work.notify_all();
    }

    /// Snapshot the roll-up (counters, breaker log, histograms,
    /// live-update counters when an [`EpochManager`] is attached).
    pub fn stats(&self) -> ServiceStats {
        // Read the epoch counters before taking the service lock (the
        // manager sweep takes its own lock; never nest the two).
        let epochs = self.epochs.map(|mgr| mgr.stats());
        let st = lock(&self.state);
        let mut stats = st.stats.clone();
        stats.breaker_state = st.breaker.state;
        stats.breaker_transitions = st.breaker.transitions.clone();
        if let Some(e) = epochs {
            stats.epochs_published = e.epochs_published;
            stats.updates_applied = e.updates_applied;
            stats.epochs_retired = e.epochs_retired;
            stats.epoch_retire_lag = e.epoch_retire_lag;
            stats.shortcuts_rebuilt = e.shortcuts_rebuilt;
        }
        stats
    }

    /// Drain the recorded terminal outcomes (in completion order).
    pub fn take_outcomes(&self) -> Vec<(TicketId, ServiceOutcome)> {
        std::mem::take(&mut lock(&self.state).outcomes)
    }

    /// Run the service on `workers` dedicated threads while `driver`
    /// (the caller's submission loop) runs on the current thread.
    /// When the driver returns, a [`DrainMode::Finish`] drain begins
    /// automatically (unless the driver already started one) and the
    /// call blocks until every admitted submission has resolved.
    pub fn serve<R>(&self, workers: usize, driver: impl FnOnce(&Self) -> R) -> R
    where
        B: Sync,
    {
        std::thread::scope(|scope| {
            for _ in 0..workers.max(1) {
                scope.spawn(|| self.worker_loop());
            }
            let out = driver(self);
            if !self.is_draining() {
                self.begin_drain(DrainMode::Finish);
            }
            out
        })
    }

    /// One worker: pop → execute → complete until drained.
    fn worker_loop(&self) {
        let mut session = self.primary.cache_session();
        loop {
            let job = {
                let mut st = lock(&self.state);
                loop {
                    let now = self.clock.now();
                    if self.config.shed_expired {
                        Self::shed_expired_locked(&mut st, now);
                    }
                    if let Some(job) = self.pop_locked(&mut st, now) {
                        break Some(job);
                    }
                    if st.draining.is_some() {
                        break None;
                    }
                    st = self
                        .work
                        .wait(st)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            let Some(job) = job else { return };
            let ex = self.execute(&job, &mut session);
            self.complete(job, ex);
        }
    }
}

/// What one [`QueryService::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepReport {
    /// The ticket served.
    pub id: TicketId,
    /// Its measured cost in work units (`expanded_paths`, min 1) —
    /// what a virtual-time harness advances its [`ManualClock`] by.
    pub cost: u64,
}

/// Measured work units of a completed query.
fn cost_of(stats: &QueryStats) -> u64 {
    (stats.expanded_paths as u64).max(1)
}

// ---------------------------------------------------------------------------
// Deterministic open-loop load generation
// ---------------------------------------------------------------------------

/// A seeded open-loop arrival schedule: strictly increasing arrival
/// times in clock units, every gap derived from `(seed, index)` by
/// integer arithmetic only — no wall-clock randomness, no float
/// transforms — so the overload harness replays bit-identically.
///
/// Gaps are uniform on `[1, 2·mean_gap − 1]`, giving an expected gap
/// of exactly `mean_gap`: offered load against a service of capacity
/// one work unit per clock unit is `mean_cost / mean_gap`, so a 2×
/// overload schedule uses `mean_gap = mean_cost / 2`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalSchedule {
    times: Vec<u64>,
}

impl ArrivalSchedule {
    /// Build `n` arrivals with the given seed and mean gap (≥ 1).
    pub fn open_loop(seed: u64, n: usize, mean_gap: u64) -> Self {
        let mean_gap = mean_gap.max(1);
        let mut t = 0u64;
        let mut times = Vec::with_capacity(n);
        for i in 0..n {
            let r = splitmix64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let gap = 1 + r % (2 * mean_gap - 1);
            t += gap;
            times.push(t);
        }
        ArrivalSchedule { times }
    }

    /// The arrival instants, strictly increasing.
    pub fn times(&self) -> &[u64] {
        &self.times
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Is the schedule empty?
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_trips_and_recovers() {
        let cfg = BreakerConfig {
            window: 4,
            trip_failures: 2,
            cooldown: 100,
            probe_successes: 2,
            ..BreakerConfig::default()
        };
        let mut b = CircuitBreaker::default();
        assert_eq!(b.route(0, &cfg), Route::Primary);
        b.on_primary(1, true, &cfg);
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_primary(2, true, &cfg);
        assert_eq!(b.state(), BreakerState::Open);
        // During cooldown everything falls back.
        assert_eq!(b.route(50, &cfg), Route::Fallback);
        // Cooldown over: exactly one probe at a time.
        assert_eq!(b.route(102, &cfg), Route::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.route(103, &cfg), Route::Fallback);
        // Failed probe re-opens.
        b.on_probe(104, true, &cfg);
        assert_eq!(b.state(), BreakerState::Open);
        // Recover: cooldown, then two successful probes.
        assert_eq!(b.route(204, &cfg), Route::Probe);
        b.on_probe(205, false, &cfg);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.route(206, &cfg), Route::Probe);
        b.on_probe(207, false, &cfg);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 2);
        let states: Vec<BreakerState> = b.transitions().iter().map(|&(_, s)| s).collect();
        assert_eq!(
            states,
            vec![
                BreakerState::Open,
                BreakerState::HalfOpen,
                BreakerState::Open,
                BreakerState::HalfOpen,
                BreakerState::Closed,
            ]
        );
    }

    #[test]
    fn breaker_window_slides() {
        let cfg = BreakerConfig {
            window: 4,
            trip_failures: 3,
            cooldown: 100,
            probe_successes: 1,
            ..BreakerConfig::default()
        };
        let mut b = CircuitBreaker::default();
        // Two faults diluted by successes never trip a 3-of-4 window.
        for i in 0..20u64 {
            b.on_primary(i, i % 2 == 0, &cfg);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        // Three faults back to back do.
        for i in 20..23u64 {
            b.on_primary(i, true, &cfg);
        }
        assert_eq!(b.state(), BreakerState::Open);
    }

    /// Drive one breaker through `trips` open/probe cycles and return
    /// the clock at which each half-open probe was admitted.
    fn probe_times(cfg: &BreakerConfig, trips: usize) -> Vec<u64> {
        let mut b = CircuitBreaker::new();
        let mut now = 0u64;
        let mut times = Vec::new();
        for _ in 0..trips {
            // Trip it.
            while b.state() != BreakerState::Open {
                now += 1;
                b.on_primary(now, true, cfg);
            }
            // Poll every clock unit until the probe is admitted.
            loop {
                now += 1;
                if b.route(now, cfg) == Route::Probe {
                    times.push(now);
                    break;
                }
            }
            // Fail the probe so the next iteration re-trips cleanly.
            b.on_probe(now, true, cfg);
        }
        times
    }

    #[test]
    fn probe_jitter_is_seeded_and_deterministic() {
        let base = BreakerConfig {
            window: 2,
            trip_failures: 2,
            cooldown: 100,
            probe_successes: 1,
            probe_jitter: 0,
            probe_seed: 0,
        };
        // jitter 0: exact legacy cooldown, every cycle.
        let legacy = probe_times(&base, 4);
        let mut b = CircuitBreaker::new();
        b.on_primary(1, true, &base);
        b.on_primary(2, true, &base);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.route(101, &base), Route::Fallback);
        assert_eq!(b.route(102, &base), Route::Probe);

        // Same seed → identical probe schedule; different seeds →
        // de-lockstepped schedules within [cooldown, cooldown+jitter].
        let seeded = |seed| BreakerConfig {
            probe_jitter: 40,
            probe_seed: seed,
            ..base
        };
        let a1 = probe_times(&seeded(7), 6);
        let a2 = probe_times(&seeded(7), 6);
        assert_eq!(a1, a2, "same seed must replay the probe schedule");
        let c = probe_times(&seeded(8), 6);
        assert_ne!(a1, c, "distinct client seeds should de-lockstep probes");
        // After a failed probe at `t` the breaker re-opens with
        // `opened_at = t`, so consecutive probe gaps are exactly the
        // per-trip delay: cooldown for the legacy run, within
        // [cooldown, cooldown + probe_jitter] when jittered.
        for gap in legacy.windows(2).map(|w| w[1] - w[0]) {
            assert_eq!(gap, base.cooldown);
        }
        for gap in a1.windows(2).map(|w| w[1] - w[0]) {
            assert!((base.cooldown..=base.cooldown + 40).contains(&gap));
        }
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = LatencyHistogram::default();
        for v in [0u64, 1, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 1011.0 / 7.0).abs() < 1e-9);
        assert_eq!(h.buckets()[0], 1); // {0}
        assert_eq!(h.buckets()[1], 2); // [1,2)
        assert_eq!(h.buckets()[2], 2); // [2,4)
        assert_eq!(h.buckets()[3], 1); // [4,8)
        assert_eq!(h.buckets()[10], 1); // [512,1024)
    }

    #[test]
    fn schedule_is_deterministic_and_has_the_right_mean() {
        let a = ArrivalSchedule::open_loop(7, 4096, 50);
        let b = ArrivalSchedule::open_loop(7, 4096, 50);
        assert_eq!(a, b);
        assert_ne!(a, ArrivalSchedule::open_loop(8, 4096, 50));
        assert!(a.times().windows(2).all(|w| w[0] < w[1]));
        let mean = *a.times().last().unwrap() as f64 / a.len() as f64;
        assert!(
            (mean - 50.0).abs() < 2.0,
            "empirical mean gap {mean} far from 50"
        );
    }

    #[test]
    fn manual_clock_is_monotone() {
        let c = ManualClock::new();
        c.advance(5);
        c.set(3); // never backwards
        assert_eq!(c.now(), 5);
        c.set(9);
        assert_eq!(c.now(), 9);
    }
}
