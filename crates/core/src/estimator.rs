//! Lower-bound travel-time estimators.
//!
//! A\*-style search is correct as long as the heuristic never
//! overestimates (§1, citing \[15\]); the closer the estimate, the
//! smaller the expanded search space. The engine adds
//! `T_est(n ⇒ e)` — a *constant* per node — to every path function in
//! the queue.

use roadnet::{NodeId, Point};

/// A lower bound on the travel time (minutes) from a node to the query
/// target, for every leaving instant.
pub trait LowerBoundEstimator: Send + Sync {
    /// Lower-bound travel time from `from` (at `from_loc`) to `to`
    /// (at `to_loc`), minutes. Must never exceed the true fastest
    /// travel time at any leaving instant.
    fn travel_lower_bound(&self, from: NodeId, from_loc: Point, to: NodeId, to_loc: Point) -> f64;

    /// Short display name (used by the experiment harness).
    fn name(&self) -> &'static str;
}

impl<T: LowerBoundEstimator + ?Sized> LowerBoundEstimator for &T {
    fn travel_lower_bound(&self, from: NodeId, from_loc: Point, to: NodeId, to_loc: Point) -> f64 {
        (**self).travel_lower_bound(from, from_loc, to, to_loc)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Shared estimators: the epoch layer hands the same estimator to many
/// per-epoch engines behind an `Arc` (boundary tables are expensive and
/// reusable across deltas that leave edge distances unchanged).
impl<T: LowerBoundEstimator + ?Sized> LowerBoundEstimator for std::sync::Arc<T> {
    fn travel_lower_bound(&self, from: NodeId, from_loc: Point, to: NodeId, to_loc: Point) -> f64 {
        (**self).travel_lower_bound(from, from_loc, to, to_loc)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Which estimator an [`crate::EngineConfig`] selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    /// Euclidean distance over the network maximum speed ("naiveLB").
    Naive,
    /// Boundary-node estimator over distances ("bdLB", §5), with the
    /// given grid granularity (cells per axis).
    Boundary {
        /// Cells per axis of the space partitioning.
        grid: usize,
    },
    /// Boundary-node estimator precomputed over best-case travel times
    /// (extension; tighter than `Boundary`).
    BoundaryTime {
        /// Cells per axis of the space partitioning.
        grid: usize,
    },
    /// Boundary-node estimator over distances, partitioned by CCAM's
    /// connectivity clustering instead of a geometric grid and
    /// precomputed per partition (restricted-subgraph Dijkstras plus a
    /// boundary interface graph), so the precompute stays tractable on
    /// million-node networks ("bdLB-part").
    BoundaryPartitioned {
        /// Target number of partitions (the realized count may differ
        /// slightly; the boundary table is `groups²`).
        groups: usize,
    },
}

/// The naive estimator: `d_euc(n, e) / v_max` (§4.2 step 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NaiveLb {
    v_max: f64,
}

impl NaiveLb {
    /// Build from the network's maximum speed (miles per minute).
    pub fn new(v_max: f64) -> Self {
        assert!(v_max > 0.0, "maximum speed must be positive");
        NaiveLb { v_max }
    }
}

impl LowerBoundEstimator for NaiveLb {
    fn travel_lower_bound(
        &self,
        _from: NodeId,
        from_loc: Point,
        _to: NodeId,
        to_loc: Point,
    ) -> f64 {
        from_loc.distance(&to_loc) / self.v_max
    }

    fn name(&self) -> &'static str {
        "naiveLB"
    }
}

/// The trivial estimator (always zero) — turns the engine into plain
/// Dijkstra-style expansion; useful as an experimental floor.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroLb;

impl LowerBoundEstimator for ZeroLb {
    fn travel_lower_bound(&self, _: NodeId, _: Point, _: NodeId, _: Point) -> f64 {
        0.0
    }

    fn name(&self) -> &'static str {
        "zeroLB"
    }
}

/// The pointwise maximum of two lower bounds — still a lower bound,
/// never looser than either. The engine wraps the boundary-node
/// estimator with the naive one this way, so enabling bdLB can only
/// shrink the search space.
pub struct MaxEstimator<A, B> {
    a: A,
    b: B,
    name: &'static str,
}

impl<A: LowerBoundEstimator, B: LowerBoundEstimator> MaxEstimator<A, B> {
    /// Combine two estimators under a display name.
    pub fn new(a: A, b: B, name: &'static str) -> Self {
        MaxEstimator { a, b, name }
    }
}

impl<A: LowerBoundEstimator, B: LowerBoundEstimator> LowerBoundEstimator for MaxEstimator<A, B> {
    fn travel_lower_bound(&self, from: NodeId, from_loc: Point, to: NodeId, to_loc: Point) -> f64 {
        self.a
            .travel_lower_bound(from, from_loc, to, to_loc)
            .max(self.b.travel_lower_bound(from, from_loc, to, to_loc))
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_is_distance_over_vmax() {
        let lb = NaiveLb::new(0.5);
        let a = Point { x: 0.0, y: 0.0 };
        let b = Point { x: 3.0, y: 4.0 };
        let t = lb.travel_lower_bound(NodeId(0), a, NodeId(1), b);
        assert!((t - 10.0).abs() < 1e-12);
        assert_eq!(lb.name(), "naiveLB");
        // matches the paper's Figure 3 example: 1 mile at v_max 1 mpm
        let lb1 = NaiveLb::new(1.0);
        let n = Point { x: 0.8, y: 0.6 };
        let e = Point { x: 1.8, y: 0.6 };
        assert!((lb1.travel_lower_bound(NodeId(1), n, NodeId(2), e) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "maximum speed must be positive")]
    fn naive_rejects_zero_speed() {
        NaiveLb::new(0.0);
    }

    #[test]
    fn zero_estimator() {
        let z = ZeroLb;
        let p = Point { x: 0.0, y: 0.0 };
        assert_eq!(z.travel_lower_bound(NodeId(0), p, NodeId(1), p), 0.0);
    }

    #[test]
    fn max_combines() {
        let m = MaxEstimator::new(NaiveLb::new(1.0), ZeroLb, "combo");
        let a = Point { x: 0.0, y: 0.0 };
        let b = Point { x: 6.0, y: 8.0 };
        assert!((m.travel_lower_bound(NodeId(0), a, NodeId(1), b) - 10.0).abs() < 1e-12);
        assert_eq!(m.name(), "combo");
    }
}
