//! The `IntAllFastestPaths` engine (§4).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use pwl::{
    compose_travel_into, compose_travel_simplified, Envelope, Interval, Pwl, PwlRef, PwlScratch,
};
use roadnet::{NetworkSource, NodeId, Point};

use crate::baseline::{astar_at, constant_speed_plan};
use crate::cache::{CacheCounters, CacheSession, TravelFnCache};
use crate::estimator::{EstimatorKind, LowerBoundEstimator, NaiveLb};
use crate::query::{
    AllFpAnswer, BatchStats, CancelToken, DegradedAnswer, DegradedReason, FastestPath,
    QueryOutcome, QuerySpec, QueryStats, SingleFpAnswer,
};
use crate::{AllFpError, BoundaryLb, EngineError, Result, WeightMode};

/// How often (in heap pops) the search polls the wall-clock deadline
/// and the cancellation token. The check runs on pop 0, so a
/// `Duration::ZERO` deadline (or a pre-cancelled token) trips before
/// any expansion work. Expansion caps are checked on **every** pop.
const WATCH_EVERY: u64 = 32;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Which lower-bound estimator to use. Boundary variants are
    /// combined with the naive bound (`max` of both), so they are
    /// never looser.
    pub estimator: EstimatorKind,
    /// Per-node dominance pruning: drop a candidate path whose travel
    /// function is pointwise ≥ that of an already-known path to the
    /// same node (any common suffix then preserves the order, by
    /// FIFO). **On by default** — without it, synthetic grid-like
    /// networks with many near-equal parallel routes make the paper's
    /// basic path-expansion scheme enumerate exponentially many
    /// near-optimal paths before the lower-border rule can terminate.
    /// Set to `false` for the paper-faithful basic algorithm (fine on
    /// small networks; measured by ablation A-2). Answers are
    /// identical either way.
    pub prune_dominated: bool,
    /// Safety valve: abort after this many path expansions.
    pub max_expansions: usize,
    /// Serve per-edge travel-time functions from the engine's
    /// [`TravelFnCache`] instead of rebuilding them from the speed
    /// profile on every expansion. **On by default**; answers are
    /// identical either way (the cache restricts one exact full-period
    /// function — see `cache.rs`), so `false` exists for the
    /// equivalence tests and for ablation measurements.
    pub use_travel_cache: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            estimator: EstimatorKind::Naive,
            prune_dominated: true,
            max_expansions: 2_000_000,
            use_travel_cache: true,
        }
    }
}

/// A path under consideration, stored as a node in the per-query path
/// arena: a parent pointer into the arena, the path's head node, and
/// its exact travel-time function `T(l)` over the query interval. The
/// prioritized minimum of `T + T_est` lives on the queue entry.
///
/// The seed engine stored every path as an owned `Vec<NodeId>`, so
/// expanding a depth-`d` path cost an O(d) clone per successor and the
/// cycle check was a linear scan of that vector. With parent pointers,
/// expansion appends one arena slot (O(1) beyond the travel function
/// itself), the cycle check walks the parent chain (same O(d) bound,
/// no allocation), and full node sequences are materialized only for
/// the handful of paths that end up in an answer.
struct PathState {
    /// Arena index of the path this one extends; `None` for the root.
    parent: Option<u32>,
    /// Last node of the path.
    head: NodeId,
    /// Bloom filter of the nodes on the path (parent's filter plus
    /// `head`'s bit). An unset bit proves the node is *not* on the
    /// path, letting the cycle check skip the parent-chain walk for
    /// most candidates; a set bit still walks the chain, so hash
    /// collisions cost time but never change the answer.
    bloom: u128,
    /// Number of edges in the path (root is 0); pre-sizes
    /// materialization buffers.
    depth: u32,
    /// Cached `travel.min_value()` — the O(pieces) scan is done once
    /// at push time and reused by the early border prune of every
    /// expansion of this path.
    travel_min: f64,
    /// The path's travel function. Owned while the path only lives in
    /// the arena; promoted to shared (`Arc`) the first time an answer
    /// path or border member needs to keep it — every further "copy"
    /// is a refcount bump, and still-owned functions recycle their
    /// buffers into the worker scratch when the arena drains.
    travel: PwlRef,
}

/// Recycle every arena path's travel-function buffers into the worker
/// scratch so the next query on this session reuses their capacity
/// (shared functions just drop their reference).
fn drain_arena(paths: &mut Vec<PathState>, scratch: &mut PwlScratch) {
    for p in paths.drain(..) {
        scratch.recycle_ref(p.travel);
    }
}

/// The node sequence of arena path `idx`, root first.
fn materialize(paths: &[PathState], idx: usize) -> Vec<NodeId> {
    let mut nodes = Vec::with_capacity(paths[idx].depth as usize + 1);
    let mut cur = Some(idx);
    while let Some(i) = cur {
        nodes.push(paths[i].head);
        cur = paths[i].parent.map(|p| p as usize);
    }
    nodes.reverse();
    nodes
}

/// The [`PathState::bloom`] bit for `node`.
#[inline]
fn bloom_bit(node: NodeId) -> u128 {
    1u128 << (node.index() & 127)
}

/// Does arena path `idx` visit `node`? (Cycle check for expansion.)
fn visits(paths: &[PathState], idx: usize, node: NodeId) -> bool {
    if paths[idx].bloom & bloom_bit(node) == 0 {
        return false;
    }
    let mut cur = Some(idx);
    while let Some(i) = cur {
        if paths[i].head == node {
            return true;
        }
        cur = paths[i].parent.map(|p| p as usize);
    }
    false
}

/// Read the partitioning off `border`, compact engine path ids into
/// answer indices, and rebuild the tagged border over those indices by
/// re-merging in identification order (same tie-break semantics as the
/// search itself). Shared by normal termination and by best-so-far
/// assembly when a budget trips.
fn assemble_answer(
    paths: &mut [PathState],
    border: &Envelope<usize>,
    stats: QueryStats,
    scratch: &mut PwlScratch,
) -> Result<AllFpAnswer> {
    let raw_partition = border.partition();
    let mut path_index: Vec<usize> = Vec::new(); // engine path id → answer index
    let mut answer_paths: Vec<FastestPath> = Vec::new();
    let mut partition = Vec::with_capacity(raw_partition.len());
    for (iv, engine_id) in raw_partition {
        let idx = match path_index.iter().position(|&p| p == engine_id) {
            Some(i) => i,
            None => {
                path_index.push(engine_id);
                let nodes = materialize(paths, engine_id);
                // Promote to shared storage: the arena, the answer
                // path, and the border below all reference one `Pwl`.
                let travel = paths[engine_id].travel.share();
                answer_paths.push(FastestPath { nodes, travel });
                answer_paths.len() - 1
            }
        };
        partition.push((iv, idx));
    }
    let mut final_border: Option<Envelope<usize>> = None;
    for (i, fp) in answer_paths.iter().enumerate() {
        match &mut final_border {
            None => final_border = Some(Envelope::new(Arc::clone(&fp.travel), i)),
            Some(b) => b.merge_min_with(scratch, &fp.travel, i)?,
        }
    }
    let lower_border = final_border.ok_or(AllFpError::Internal(
        "lower border partitioned to zero paths",
    ))?;
    Ok(AllFpAnswer {
        paths: answer_paths,
        partition,
        lower_border,
        stats,
    })
}

/// Max-heap adapter (min by `f_min`, FIFO on ties for determinism).
struct QueueEntry {
    f_min: f64,
    seq: u64,
    path: usize,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.f_min == other.f_min && self.seq == other.seq
    }
}
impl Eq for QueueEntry {}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // total_cmp: NaN priorities (impossible by construction — every
        // f_min is a Pwl minimum plus a finite estimate) would order
        // deterministically instead of panicking the worker.
        other
            .f_min
            .total_cmp(&self.f_min)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// How one search run ended (internal; the public APIs map this onto
/// either `Result<AllFpAnswer>` or [`QueryOutcome`]).
enum SearchYield {
    /// Terminated by the paper's rule — the answer is exact.
    Done(AllFpAnswer, Option<SingleFpAnswer>),
    /// A budget tripped first. `best` is the exact partitioning over
    /// the target paths identified so far (`None` when none had
    /// reached the target).
    Exhausted {
        reason: DegradedReason,
        best: Option<AllFpAnswer>,
        stats: QueryStats,
    },
}

/// The per-search budget watcher: deadline, expansion cap, and
/// cancellation, resolved once at search start.
struct Watch<'t> {
    deadline: Option<Instant>,
    max_expansions: usize,
    cancel: Option<&'t CancelToken>,
    pops: u64,
}

impl<'t> Watch<'t> {
    fn new(query: &QuerySpec, config: &EngineConfig, cancel: Option<&'t CancelToken>) -> Self {
        let budget = query.budget.unwrap_or_default();
        let max_expansions = budget
            .max_expansions
            .map_or(config.max_expansions, |b| b.min(config.max_expansions));
        Watch {
            deadline: budget.max_wall.map(|d| Instant::now() + d),
            max_expansions,
            cancel,
            pops: 0,
        }
    }

    /// Poll the cheap-but-not-free signals (cancellation, wall clock)
    /// every [`WATCH_EVERY`] pops, including the very first. Returns
    /// `Err` on cancellation, `Ok(Some(reason))` on an expired
    /// deadline, `Ok(None)` to keep searching.
    fn poll(&mut self) -> Result<Option<DegradedReason>> {
        let due = self.pops.is_multiple_of(WATCH_EVERY);
        self.pops += 1;
        if !due {
            return Ok(None);
        }
        if self.cancel.is_some_and(CancelToken::is_cancelled) {
            return Err(AllFpError::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Ok(Some(DegradedReason::DeadlineExpired));
        }
        Ok(None)
    }

    /// Unconditional poll, placed immediately before each target-path
    /// compound (`session.travel_fn` + `compose_travel_into`) — the
    /// most expensive single step in the search. Pop-granularity
    /// polling alone lets one heavy expansion (hundreds of compounds on
    /// a dense node over a long interval) overshoot the deadline by the
    /// full expansion cost; this bounds the overshoot to roughly one
    /// compound. No-op (not even a clock read) when neither a deadline
    /// nor a cancel token is set, so unbudgeted queries pay one branch
    /// per compound.
    fn poll_compound(&self) -> Result<Option<DegradedReason>> {
        if self.cancel.is_none() && self.deadline.is_none() {
            return Ok(None);
        }
        if self.cancel.is_some_and(CancelToken::is_cancelled) {
            return Err(AllFpError::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Ok(Some(DegradedReason::DeadlineExpired));
        }
        Ok(None)
    }
}

/// Lock a mutex, recovering the guard if a previous holder panicked.
/// Every structure behind these locks (work queues) is valid after any
/// interrupted operation — a lost entry at worst — so poison recovery
/// keeps one panicked query from wedging its whole batch.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Render a caught panic payload for error reporting.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    // Take `String` payloads by value instead of cloning them out of
    // the box.
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => payload.downcast_ref::<&str>().map_or_else(
            || "non-string panic payload".to_string(),
            |s| (*s).to_string(),
        ),
    }
}

/// The query engine: owns a reference to the network source and an
/// estimator, and answers allFP / singleFP queries.
pub struct Engine<'a, S: NetworkSource> {
    source: &'a S,
    estimator: Box<dyn LowerBoundEstimator + 'a>,
    config: EngineConfig,
    cache: std::sync::Arc<TravelFnCache>,
}

impl<'a, S: NetworkSource> Engine<'a, S> {
    /// Build an engine with the configured estimator.
    ///
    /// Boundary estimators need precomputation over the full in-memory
    /// network; use [`Engine::with_estimator`] to run them against a
    /// disk-resident [`NetworkSource`] after building them from the
    /// in-memory copy.
    pub fn new(source: &'a S, config: EngineConfig) -> Self {
        let naive = NaiveLb::new(source.max_speed());
        let cache = cache_for(&config);
        Engine {
            source,
            estimator: Box::new(naive),
            config,
            cache,
        }
    }

    /// Build an engine over any source with an explicit estimator
    /// (e.g. a [`BoundaryLb`] precomputed from the in-memory network,
    /// used against the CCAM store).
    pub fn with_estimator(
        source: &'a S,
        estimator: Box<dyn LowerBoundEstimator + 'a>,
        config: EngineConfig,
    ) -> Self {
        let cache = cache_for(&config);
        Engine {
            source,
            estimator,
            config,
            cache,
        }
    }

    /// Build an engine that **shares** a travel-function cache and an
    /// estimator with other engines — the per-epoch engine shape of
    /// the live-update path ([`crate::epoch`]): every epoch gets its
    /// own network version but all epochs share one cache (exact
    /// across versions because pattern ids are append-only) and, when
    /// the apply rules allow, one estimator.
    pub fn with_shared(
        source: &'a S,
        estimator: std::sync::Arc<dyn LowerBoundEstimator>,
        cache: std::sync::Arc<TravelFnCache>,
        config: EngineConfig,
    ) -> Self {
        Engine {
            source,
            estimator: Box::new(estimator),
            config,
            cache,
        }
    }

    /// The engine's travel-function cache, for callers that share it
    /// across engines (the epoch layer).
    pub fn shared_cache(&self) -> &std::sync::Arc<TravelFnCache> {
        &self.cache
    }

    /// Name of the active estimator.
    pub fn estimator_name(&self) -> &'static str {
        self.estimator.name()
    }

    /// Lifetime hit/miss counters of the engine's travel-function
    /// cache, accumulated across every query (and every thread of
    /// [`Engine::run_batch`]) this engine has answered.
    pub fn cache_counters(&self) -> CacheCounters {
        self.cache.counters()
    }

    /// Answer a batch of allFP queries, using every available core.
    ///
    /// Results come back in input order, one `Result` per query so a
    /// failing query doesn't poison its batch-mates. See
    /// [`Engine::run_batch_stats`] for the scheduling details and the
    /// per-batch statistics roll-up.
    pub fn run_batch(&self, queries: &[QuerySpec]) -> Vec<Result<AllFpAnswer>>
    where
        S: Sync,
    {
        self.run_batch_stats(queries).0
    }

    /// [`Engine::run_batch`] plus the [`BatchStats`] roll-up, with the
    /// worker count taken from `std::thread::available_parallelism`.
    pub fn run_batch_stats(&self, queries: &[QuerySpec]) -> (Vec<Result<AllFpAnswer>>, BatchStats)
    where
        S: Sync,
    {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        self.run_batch_with_threads(queries, workers)
    }

    /// Answer a batch of allFP queries on exactly `workers` threads
    /// (clamped to `1..=queries.len()`), returning results in input
    /// order plus a [`BatchStats`] roll-up.
    ///
    /// # Scheduling
    ///
    /// The batch is split into contiguous per-worker chunks, one
    /// double-ended queue per worker. A worker pops its own queue from
    /// the front; when it runs dry it **steals the back half** of the
    /// first non-empty victim queue, so skewed per-query costs (an
    /// 8-mile allFP next to a 1-mile one) cannot leave workers idle the
    /// way the old static striping did. Work is fixed up front — nobody
    /// pushes after the scope starts — so "every queue empty" is a
    /// stable termination condition.
    ///
    /// The workers share the engine immutably. The travel-function
    /// cache is the only shared mutable state: each worker runs its
    /// queries through a private [`CacheSession`] L1 (kept across all
    /// the queries it processes) over the sharded shared store, so a
    /// miss filled by one worker is a hit for every other while
    /// steady-state lookups take no lock at all.
    pub fn run_batch_with_threads(
        &self,
        queries: &[QuerySpec],
        workers: usize,
    ) -> (Vec<Result<AllFpAnswer>>, BatchStats)
    where
        S: Sync,
    {
        let (slots, stats) = drive_batch(
            || self.cache.session(),
            queries,
            workers,
            |q, session| self.run_with_session(q, false, session).map(|(a, _)| a),
            |r| r.as_ref().ok().map(|a| a.stats),
        );
        // A `None` slot means its worker thread died before reporting
        // (a panic that escaped a query). Error those slots instead of
        // panicking the caller.
        let results = slots
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    Err(AllFpError::Panicked(
                        "batch worker died before reporting this query".to_string(),
                    ))
                })
            })
            .collect();
        (results, stats)
    }

    /// Answer one budget-aware query: exact if the search terminates
    /// within [`QuerySpec::budget`], otherwise a [`QueryOutcome::
    /// Degraded`] answer carrying the exact best-so-far partitioning
    /// plus the constant-speed fallback route — a usable plan under a
    /// deadline instead of an error.
    pub fn run_robust(&self, query: &QuerySpec) -> std::result::Result<QueryOutcome, EngineError> {
        let mut session = self.cache.session();
        self.robust_with_session(query, &mut session, None)
    }

    /// Open a fresh cache session for a caller that runs many queries
    /// back to back on one thread (the service worker loop, a batch
    /// worker, or a [`crate::backend::PathfindBackend`] wrapper that
    /// shares this engine's travel-function cache).
    pub fn cache_session(&self) -> CacheSession<'_> {
        self.cache.session()
    }

    /// The engine's lower-bound estimator, for backends that run their
    /// own prioritized search over a structure derived from this
    /// engine's network (estimates depend only on `(node, target)`
    /// positions, so they lower-bound travel on any overlay whose arcs
    /// represent real paths).
    pub fn estimator(&self) -> &dyn LowerBoundEstimator {
        self.estimator.as_ref()
    }

    /// Shared read access to the network source this engine answers
    /// queries over.
    pub fn source(&self) -> &'a S {
        self.source
    }

    /// Batch counterpart of [`Engine::run_robust`], on exactly
    /// `workers` threads with the same work-stealing scheduler as
    /// [`Engine::run_batch_with_threads`], plus two fault guarantees:
    ///
    /// * **Cancellation** — `cancel` is polled cooperatively by every
    ///   in-flight search; cancelled queries report
    ///   [`EngineError::Cancelled`] in their own slots.
    /// * **Panic isolation** — each query runs under `catch_unwind`,
    ///   so a poisoned query becomes [`EngineError::Panicked`] in its
    ///   own slot while its batch-mates complete normally.
    pub fn run_batch_robust(
        &self,
        queries: &[QuerySpec],
        workers: usize,
        cancel: &CancelToken,
    ) -> (
        Vec<std::result::Result<QueryOutcome, EngineError>>,
        BatchStats,
    )
    where
        S: Sync,
    {
        crate::backend::run_batch_robust(self, queries, workers, cancel)
    }

    /// One budget-aware query on an existing session: the entry point
    /// for callers that keep one warm session across many queries (the
    /// [`crate::service`] worker loop, batch workers, hierarchy
    /// backends falling back to the flat search).
    pub fn robust_with_session(
        &self,
        query: &QuerySpec,
        session: &mut CacheSession<'_>,
        cancel: Option<&CancelToken>,
    ) -> std::result::Result<QueryOutcome, EngineError> {
        match self.search(query, false, session, cancel) {
            Ok(SearchYield::Done(all, _)) => Ok(QueryOutcome::Exact(all)),
            Ok(SearchYield::Exhausted {
                reason,
                best,
                stats,
            }) => Ok(QueryOutcome::Degraded(
                self.degraded_answer(query, reason, best, stats, session)?,
            )),
            Err(e) => Err(EngineError::from(e)),
        }
    }

    /// Assemble the degraded answer for a tripped budget: keep the
    /// exact best-so-far, and plan the constant-speed fallback route
    /// (cheap: one time-independent A*), attaching its *exact*
    /// travel-time function under the real patterns so the caller can
    /// still read departure-time trade-offs off the degraded answer.
    fn degraded_answer(
        &self,
        query: &QuerySpec,
        reason: DegradedReason,
        best: Option<AllFpAnswer>,
        stats: QueryStats,
        session: &mut CacheSession<'_>,
    ) -> std::result::Result<DegradedAnswer, EngineError> {
        let (nodes, _) = constant_speed_plan(
            self.source,
            query.source,
            query.target,
            query.interval.lo(),
            query.category,
        )
        .map_err(EngineError::from)?;
        let travel = Arc::new(
            self.route_travel_fn(&nodes, query, session)
                .map_err(EngineError::from)?,
        );
        let fallback_travel_minutes = travel.minimum().value;
        Ok(DegradedAnswer {
            reason,
            best,
            fallback: FastestPath { nodes, travel },
            fallback_travel_minutes,
            stats,
        })
    }

    /// The exact travel-time function of the fixed route `nodes` over
    /// the query interval, composed edge by edge through the session
    /// cache — **bit-identical** to what the search itself would
    /// compute for this node sequence ([`compose_travel_simplified`]
    /// and the pooled [`compose_travel_into`] agree bit for bit, and
    /// the session serves the same full-period restrictions). Public
    /// so alternative backends (the contraction-hierarchy overlay) can
    /// select a winning node sequence their own way and then reproduce
    /// the flat engine's answer function exactly.
    pub fn route_travel_fn(
        &self,
        nodes: &[NodeId],
        query: &QuerySpec,
        session: &mut CacheSession<'_>,
    ) -> Result<Pwl> {
        let mut travel = Pwl::constant(query.interval, 0.0)?;
        for w in nodes.windows(2) {
            let edges = self.source.successors(w[0])?;
            let edge = edges
                .iter()
                .find(|e| e.to == w[1])
                .ok_or(AllFpError::Unreachable {
                    source: w[0],
                    target: w[1],
                })?;
            let arrivals = pwl::compose::arrival_interval(&travel)?;
            let profile = self.source.pattern(edge.pattern)?.profile(query.category)?;
            let (t_edge, _) = session.travel_fn(
                edge.pattern,
                query.category,
                profile,
                edge.distance,
                &arrivals,
            )?;
            travel = compose_travel_simplified(&travel, &t_edge)?;
        }
        Ok(travel)
    }

    /// Like [`Engine::route_travel_fn`], but seeded from `memo`: when
    /// `nodes` shares a prefix with a route the memo has already
    /// composed (under the same query and session), composition
    /// resumes from the stored cumulative function of the longest such
    /// prefix instead of re-deriving it edge by edge. Because
    /// [`Engine::route_travel_fn`] is a strict left-to-right fold, the
    /// resumed fold performs the *identical* operation sequence on the
    /// identical operands — the result is bit-for-bit the same
    /// function, only cheaper. Returns the route function and the
    /// number of edge compositions the memo saved.
    ///
    /// Candidate routes of one allFP answer typically share long
    /// corridors (they diverge on a handful of arcs), which is exactly
    /// the access pattern the memo exploits; a memo must never be
    /// reused across queries or sessions.
    pub fn route_travel_fn_memoized(
        &self,
        nodes: &[NodeId],
        query: &QuerySpec,
        session: &mut CacheSession<'_>,
        memo: &mut RouteComposeMemo,
    ) -> Result<(Arc<Pwl>, u64)> {
        let n_edges = nodes.len().saturating_sub(1);
        let (mut travel, done) = match memo.best_prefix(nodes) {
            Some((prefix_cum, k)) => (Arc::clone(&prefix_cum[k - 1]), k),
            None => (Arc::new(Pwl::constant(query.interval, 0.0)?), 0),
        };
        let mut cum: Vec<Arc<Pwl>> = Vec::with_capacity(n_edges);
        if done > 0 {
            // Share the matched prefix's cumulative functions so the
            // memo's storage stays one Arc per distinct sub-corridor.
            if let Some((prefix_cum, _)) = memo.best_prefix(nodes) {
                cum.extend(prefix_cum[..done].iter().map(Arc::clone));
            }
        }
        for w in nodes.windows(2).skip(done) {
            let edges = self.source.successors(w[0])?;
            let edge = edges
                .iter()
                .find(|e| e.to == w[1])
                .ok_or(AllFpError::Unreachable {
                    source: w[0],
                    target: w[1],
                })?;
            let arrivals = pwl::compose::arrival_interval(&travel)?;
            let profile = self.source.pattern(edge.pattern)?.profile(query.category)?;
            let (t_edge, _) = session.travel_fn(
                edge.pattern,
                query.category,
                profile,
                edge.distance,
                &arrivals,
            )?;
            travel = Arc::new(compose_travel_simplified(&travel, &t_edge)?);
            cum.push(Arc::clone(&travel));
        }
        memo.record(nodes.to_vec(), cum);
        Ok((travel, done as u64))
    }

    /// Answer the **allFP query**: the full partitioning of the query
    /// interval into sub-intervals with their fastest paths.
    pub fn all_fastest_paths(&self, query: &QuerySpec) -> Result<AllFpAnswer> {
        let mut session = self.cache.session();
        self.run_with_session(query, false, &mut session)
            .map(|(all, _)| all)
    }

    /// Answer the **singleFP query**: the best leaving instant(s) in
    /// the interval and the corresponding fastest path. Terminates as
    /// soon as the first path reaching the target is popped (§4.5) —
    /// no lower-border computation beyond that point.
    pub fn single_fastest_path(&self, query: &QuerySpec) -> Result<SingleFpAnswer> {
        let mut session = self.cache.session();
        self.run_with_session(query, true, &mut session)
            .and_then(|(_, single)| {
                single.ok_or(AllFpError::Internal("singleFP search returned no answer"))
            })
    }

    /// Legacy search surface: exactly the pre-robustness contract. A
    /// tripped budget (engine-level valve *or* per-query budget) is an
    /// [`AllFpError::BudgetExhausted`] error; use the robust entry
    /// points to receive a degraded answer instead.
    fn run_with_session(
        &self,
        query: &QuerySpec,
        single_only: bool,
        session: &mut CacheSession<'_>,
    ) -> Result<(AllFpAnswer, Option<SingleFpAnswer>)> {
        match self.search(query, single_only, session, None)? {
            SearchYield::Done(all, single) => Ok((all, single)),
            SearchYield::Exhausted { stats, .. } => Err(AllFpError::BudgetExhausted {
                expansions: stats.expanded_paths,
            }),
        }
    }

    /// Shared search. When `single_only`, stops at the first popped
    /// target path. Otherwise runs to the paper's termination rule and
    /// assembles the partitioning — or, if a budget trips first,
    /// yields [`SearchYield::Exhausted`] with the exact best-so-far.
    ///
    /// The caller supplies the [`CacheSession`] so batch workers can
    /// keep one warm L1 across every query they process; the serial
    /// entry points open a fresh session per query. `cancel` is polled
    /// between pops (see [`WATCH_EVERY`]).
    fn search(
        &self,
        query: &QuerySpec,
        single_only: bool,
        session: &mut CacheSession<'_>,
        cancel: Option<&CancelToken>,
    ) -> Result<SearchYield> {
        let interval = query.interval;
        let target_loc = self.source.find_node(query.target)?;

        // Degenerate interval → the classic special case (delegated to
        // fixed-instant A*, which is the cheap path: budgets are not
        // consulted there, only cancellation before it starts).
        if interval.is_degenerate() {
            if cancel.is_some_and(CancelToken::is_cancelled) {
                return Err(AllFpError::Cancelled);
            }
            let (all, single) = self.degenerate_instant(query, target_loc)?;
            return Ok(SearchYield::Done(all, single));
        }

        let mut watch = Watch::new(query, &self.config, cancel);
        let mut stats = QueryStats::default();
        let mut paths: Vec<PathState> = Vec::new();
        let mut heap: BinaryHeap<QueueEntry> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut expanded_nodes: Vec<bool> = vec![false; self.source.n_nodes()];
        let mut expanded_node_count = 0usize;
        // Lazily memoized per-node lower-bound estimates: the estimate
        // depends only on (node, target), and candidate edges revisit
        // the same nodes many times per query — each memo hit skips a
        // `find_node` and an estimator evaluation (NaN = not yet
        // computed; real estimates are finite and non-negative).
        let mut node_est: Vec<f64> = vec![f64::NAN; self.source.n_nodes()];
        // per-node travel functions for optional dominance pruning
        let mut node_fns: Vec<Vec<usize>> = if self.config.prune_dominated {
            vec![Vec::new(); self.source.n_nodes()]
        } else {
            Vec::new()
        };

        // Lower border over identified target paths. `border_max`
        // mirrors `border.max_value()` so the per-pop and per-edge
        // pruning checks are O(1) instead of an O(pieces) envelope
        // scan; it only changes when a path merges into the border.
        let mut border: Option<Envelope<usize>> = None;
        let mut border_max = f64::INFINITY;
        let mut single: Option<SingleFpAnswer> = None;

        // Global best-case speed: `distance / max_speed` lower-bounds
        // any edge's travel time, independent of leaving instant.
        let max_speed = self.source.max_speed();
        // Reused successor buffer — one allocation per query, not one
        // per expansion.
        let mut edges: Vec<roadnet::Edge> = Vec::new();

        // Seed: the zero-length path at the source.
        {
            let travel = Pwl::constant(interval, 0.0)?;
            let s_loc = self.source.find_node(query.source)?;
            let est =
                self.estimator
                    .travel_lower_bound(query.source, s_loc, query.target, target_loc);
            let travel_min = travel.min_value();
            let f_min = travel_min + est;
            paths.push(PathState {
                parent: None,
                head: query.source,
                bloom: bloom_bit(query.source),
                depth: 0,
                travel_min,
                travel: travel.into(),
            });
            heap.push(QueueEntry {
                f_min,
                seq,
                path: 0,
            });
            seq += 1;
            stats.pushed += 1;
        }

        // Set when a budget trips (deadline, expansion cap) either at a
        // pop boundary or mid-expansion before a compound; the salvage +
        // degraded assembly lives after the loop so both trip sites
        // share it.
        let mut trip: Option<DegradedReason> = None;

        'search: while let Some(entry) = heap.pop() {
            // Termination (§4.6): the next candidate can no longer beat
            // the border anywhere.
            if border_max.is_finite() && pwl::approx_le(border_max, entry.f_min) {
                break;
            }

            let head = paths[entry.path].head;

            if head == query.target {
                // Identified a target path. Its travel function is
                // promoted to shared storage: the arena, the single
                // answer and the border all hold the same `Arc<Pwl>` —
                // no deep copies at all (the seed engine cloned it for
                // the border and again for the single answer).
                if single.is_none() {
                    let m = paths[entry.path].travel.minimum();
                    let nodes = materialize(&paths, entry.path);
                    single = Some(SingleFpAnswer {
                        path: FastestPath {
                            nodes,
                            travel: paths[entry.path].travel.share(),
                        },
                        travel_minutes: m.value,
                        best_leaving: m.at,
                        stats, // snapshot; finalized below
                    });
                    if single_only {
                        break;
                    }
                }
                stats.border_merges += 1;
                match &mut border {
                    None => {
                        let b = Envelope::new(paths[entry.path].travel.share(), entry.path);
                        border_max = b.max_value();
                        border = Some(b);
                    }
                    Some(b) => {
                        b.merge_min_with(
                            session.scratch_mut(),
                            &paths[entry.path].travel,
                            entry.path,
                        )?;
                        border_max = b.max_value();
                    }
                }
                continue;
            }

            // Budget checks sit *after* target handling: merging an
            // already-popped target path costs one envelope merge and
            // only improves the (possibly degraded) answer, so the
            // budget never forfeits it. Expansion — the expensive part
            // — is what the caps meter.
            let tripped = match watch.poll()? {
                Some(reason) => Some(reason),
                None if stats.expanded_paths >= watch.max_expansions => {
                    Some(DegradedReason::ExpansionsExhausted)
                }
                None => None,
            };
            if let Some(reason) = tripped {
                trip = Some(reason);
                break 'search;
            }

            // Expand.
            stats.expanded_paths += 1;
            if !expanded_nodes[head.index()] {
                expanded_nodes[head.index()] = true;
                expanded_node_count += 1;
            }

            // The leaving-time interval at `head` (the paper's Figure 4
            // step) is a property of the path, not the edge.
            let arrivals = pwl::compose::arrival_interval(&paths[entry.path].travel)?;
            self.source.successors_into(head, &mut edges)?;
            for edge in edges.drain(..) {
                // Cycles can never help under FIFO (positive travel times).
                if visits(&paths, entry.path, edge.to) {
                    continue;
                }

                let est = {
                    let slot = &mut node_est[edge.to.index()];
                    if slot.is_nan() {
                        let v_loc = self.source.find_node(edge.to)?;
                        *slot = self.estimator.travel_lower_bound(
                            edge.to,
                            v_loc,
                            query.target,
                            target_loc,
                        );
                    }
                    *slot
                };

                // Early border bound, before the expensive composition:
                // the extended path's travel function is everywhere ≥
                // parent minimum + distance/v_max, so if even that
                // best case cannot beat the border anywhere, skip the
                // travel-function work entirely. Conservative — every
                // path it kills, the exact check below would kill too.
                if border_max.is_finite() {
                    let optimistic = paths[entry.path].travel_min + edge.distance / max_speed + est;
                    if pwl::approx_le(border_max, optimistic) {
                        stats.pruned_by_border += 1;
                        continue;
                    }
                }

                // Deadline/cancel check at compound granularity: the
                // prunes above are O(1), but the travel-function +
                // composition work below is the expensive step, so a
                // heavy expansion must not run all its compounds after
                // the deadline has already passed.
                if let Some(reason) = watch.poll_compound()? {
                    trip = Some(reason);
                    break 'search;
                }

                let profile = self.source.pattern(edge.pattern)?.profile(query.category)?;
                let (t_edge, hit) = session.travel_fn(
                    edge.pattern,
                    query.category,
                    profile,
                    edge.distance,
                    &arrivals,
                )?;
                stats.cache_lookups += 1;
                if hit {
                    stats.cache_hits += 1;
                } else {
                    stats.cache_misses += 1;
                }
                let travel =
                    compose_travel_into(session.scratch_mut(), &paths[entry.path].travel, &t_edge)?;
                session.scratch_mut().recycle(t_edge);
                let n = travel.n_pieces();
                stats.pieces_total += n as u64;
                stats.pieces_max = stats.pieces_max.max(n as u64);
                stats.bytes_allocated += (8 * (n + 1) + 16 * n) as u64;
                let travel_min = travel.min_value();
                let f_min = travel_min + est;

                // Border bound: a path whose best possible outcome cannot
                // beat the border anywhere is dead.
                if border_max.is_finite() && pwl::approx_le(border_max, f_min) {
                    stats.pruned_by_border += 1;
                    session.scratch_mut().recycle(travel);
                    continue;
                }

                // Optional per-node dominance pruning (extension).
                if self.config.prune_dominated {
                    let scratch = session.scratch_mut();
                    let dominated = node_fns[edge.to.index()]
                        .iter()
                        .any(|&p| travel.dominated_by_with(scratch, &paths[p].travel));
                    if dominated {
                        stats.pruned_dominated += 1;
                        session.scratch_mut().recycle(travel);
                        continue;
                    }
                }

                let idx = paths.len();
                let parent = u32::try_from(entry.path)
                    .map_err(|_| AllFpError::Internal("path arena outgrew u32 indices"))?;
                paths.push(PathState {
                    parent: Some(parent),
                    head: edge.to,
                    bloom: paths[entry.path].bloom | bloom_bit(edge.to),
                    depth: paths[entry.path].depth + 1,
                    travel_min,
                    travel: travel.into(),
                });
                if self.config.prune_dominated {
                    node_fns[edge.to.index()].push(idx);
                }
                heap.push(QueueEntry {
                    f_min,
                    seq,
                    path: idx,
                });
                seq += 1;
                stats.pushed += 1;
            }
        }

        if let Some(reason) = trip {
            // Salvage before reporting: complete target paths still
            // *queued* (A* pops them only after every optimistic
            // incomplete path is exhausted, i.e. at the very end) merge
            // into the border with envelope merges only — no
            // composition work, so the overrun past the budget is
            // small and bounded. Merge best-first for deterministic
            // tie-breaks.
            for e in std::mem::take(&mut heap)
                .into_sorted_vec()
                .into_iter()
                .rev()
            {
                if paths[e.path].head != query.target {
                    continue;
                }
                stats.border_merges += 1;
                match &mut border {
                    None => border = Some(Envelope::new(paths[e.path].travel.share(), e.path)),
                    Some(b) => {
                        b.merge_min_with(session.scratch_mut(), &paths[e.path].travel, e.path)?;
                    }
                }
            }
            stats.expanded_nodes = expanded_node_count;
            let best = match &border {
                Some(b) => Some(assemble_answer(
                    &mut paths,
                    b,
                    stats,
                    session.scratch_mut(),
                )?),
                None => None,
            };
            drain_arena(&mut paths, session.scratch_mut());
            if let Some(b) = border {
                b.recycle_into(session.scratch_mut());
            }
            return Ok(SearchYield::Exhausted {
                reason,
                best,
                stats,
            });
        }

        stats.expanded_nodes = expanded_node_count;

        if single_only {
            let mut s = single.ok_or(AllFpError::Unreachable {
                source: query.source,
                target: query.target,
            })?;
            s.stats = stats;
            // fabricate a minimal answer shell for the shared return
            // type — the shell shares the single path's function
            let shell = Envelope::new(Arc::clone(&s.path.travel), 0usize);
            let all = AllFpAnswer {
                paths: vec![s.path.clone()],
                partition: vec![(interval, 0)],
                lower_border: shell,
                stats,
            };
            drain_arena(&mut paths, session.scratch_mut());
            if let Some(b) = border {
                b.recycle_into(session.scratch_mut());
            }
            return Ok(SearchYield::Done(all, Some(s)));
        }

        let border = border.ok_or(AllFpError::Unreachable {
            source: query.source,
            target: query.target,
        })?;
        let all = assemble_answer(&mut paths, &border, stats, session.scratch_mut())?;
        drain_arena(&mut paths, session.scratch_mut());
        border.recycle_into(session.scratch_mut());

        if let Some(s) = &mut single {
            s.stats = stats;
        }
        Ok(SearchYield::Done(all, single))
    }

    /// A degenerate (single-instant) interval: the classic special
    /// case, delegated to fixed-instant A\*.
    fn degenerate_instant(
        &self,
        query: &QuerySpec,
        _target_loc: Point,
    ) -> Result<(AllFpAnswer, Option<SingleFpAnswer>)> {
        let l = query.interval.lo();
        let ans = astar_at(
            self.source,
            query.source,
            query.target,
            l,
            query.category,
            self.estimator.as_ref(),
        )?;
        let stats = QueryStats {
            expanded_paths: ans.expanded_nodes,
            expanded_nodes: ans.expanded_nodes,
            ..QueryStats::default()
        };
        let shown = Interval::of(l, l + 1e-3);
        let travel = Arc::new(Pwl::constant(shown, ans.travel_minutes)?);
        let fp = FastestPath {
            nodes: ans.nodes,
            travel: Arc::clone(&travel),
        };
        let single = SingleFpAnswer {
            path: fp.clone(),
            travel_minutes: ans.travel_minutes,
            best_leaving: Interval::of(l, l),
            stats,
        };
        let all = AllFpAnswer {
            paths: vec![fp],
            partition: vec![(query.interval, 0)],
            lower_border: Envelope::new(travel, 0),
            stats,
        };
        Ok((all, Some(single)))
    }
}

/// Per-query memo of already-composed candidate routes for
/// [`Engine::route_travel_fn_memoized`]: each recorded route keeps the
/// cumulative travel function *after every edge*, so a later route
/// sharing a prefix resumes the fold mid-way with bit-identical
/// results. Scoped to one (query, session) pair — create it fresh per
/// answer assembly and drop it with the answer.
#[derive(Default)]
pub struct RouteComposeMemo {
    routes: Vec<(Vec<NodeId>, Vec<Arc<Pwl>>)>,
}

impl RouteComposeMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stored route with the longest shared edge prefix against
    /// `nodes`, as `(cumulative functions, edges matched)`; `None`
    /// when no stored route shares even the first edge.
    fn best_prefix(&self, nodes: &[NodeId]) -> Option<(&[Arc<Pwl>], usize)> {
        let mut best: Option<(&[Arc<Pwl>], usize)> = None;
        for (stored, cum) in &self.routes {
            let mut k = 0usize;
            let max = cum.len().min(nodes.len().saturating_sub(1));
            while k < max && stored[k + 1] == nodes[k + 1] && stored[k] == nodes[k] {
                k += 1;
            }
            if k > 0 && best.is_none_or(|(_, b)| k > b) {
                best = Some((&cum[..], k));
            }
        }
        best
    }

    fn record(&mut self, nodes: Vec<NodeId>, cum: Vec<Arc<Pwl>>) {
        self.routes.push((nodes, cum));
    }
}

impl<'a> Engine<'a, roadnet::RoadNetwork> {
    /// Build an engine from an in-memory network, performing boundary
    /// precomputation if the config asks for it.
    pub fn for_network(net: &'a roadnet::RoadNetwork, config: EngineConfig) -> Result<Self> {
        let estimator = build_estimator(net, &config)?;
        let cache = cache_for(&config);
        Ok(Engine {
            source: net,
            estimator,
            config,
            cache,
        })
    }
}

/// The shared work-stealing batch driver: runs `run` once per query
/// (workers share the backend immutably, each holding one warm
/// [`CacheSession`] from `open_session` across all its queries) and
/// returns the per-query results in input order. A slot is `None` only
/// if its worker thread died before reporting — callers map that onto
/// their error type. Free-standing so every [`crate::backend::
/// PathfindBackend`] batch entry point shares one scheduler.
pub(crate) fn drive_batch<'c, R: Send>(
    open_session: impl Fn() -> CacheSession<'c> + Sync,
    queries: &[QuerySpec],
    workers: usize,
    run: impl Fn(&QuerySpec, &mut CacheSession<'c>) -> R + Sync,
    stats_of: impl Fn(&R) -> Option<QueryStats> + Sync,
) -> (Vec<Option<R>>, BatchStats) {
    let workers = workers.max(1).min(queries.len());
    if queries.is_empty() {
        return (Vec::new(), BatchStats::default());
    }
    if workers <= 1 {
        let mut session = open_session();
        let mut stats = BatchStats::new(1);
        let results: Vec<Option<R>> = queries
            .iter()
            .map(|q| {
                let r = run(q, &mut session);
                stats.record(0, stats_of(&r).as_ref());
                Some(r)
            })
            .collect();
        return (results, stats);
    }

    // One deque of query indices per worker, seeded with contiguous
    // chunks (preserves whatever locality the caller's ordering
    // has). `Mutex<VecDeque>` per worker: the owner and an
    // occasional thief are the only contenders.
    let chunk = queries.len().div_ceil(workers);
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(queries.len());
            Mutex::new((lo..hi.max(lo)).collect())
        })
        .collect();
    let steals = AtomicU64::new(0);

    type Yield<R> = (Vec<(usize, R)>, usize, QueryStats);
    let per_worker: Vec<std::thread::Result<Yield<R>>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let queues = &queues;
            let steals = &steals;
            let run = &run;
            let stats_of = &stats_of;
            let open_session = &open_session;
            handles.push(scope.spawn(move || {
                let mut session = open_session();
                let mut out: Vec<(usize, R)> = Vec::new();
                let mut processed = 0usize;
                let mut cache_stats = QueryStats::default();
                loop {
                    let next = lock(&queues[w]).pop_front();
                    let i = match next {
                        Some(i) => i,
                        None => match steal_into(queues, w, steals) {
                            Some(i) => i,
                            None => break,
                        },
                    };
                    let r = run(&queries[i], &mut session);
                    if let Some(qs) = stats_of(&r) {
                        cache_stats.cache_lookups += qs.cache_lookups;
                        cache_stats.cache_hits += qs.cache_hits;
                        cache_stats.cache_misses += qs.cache_misses;
                    }
                    processed += 1;
                    out.push((i, r));
                }
                (out, processed, cache_stats)
            }));
        }
        // Collect join *results*: a worker that died (panic that
        // escaped `run`) loses its slots but cannot kill the batch.
        handles.into_iter().map(|h| h.join()).collect()
    });

    let mut stats = BatchStats::new(workers);
    stats.steals = steals.load(AtomicOrdering::Relaxed);
    let mut results: Vec<Option<R>> = (0..queries.len()).map(|_| None).collect();
    for (w, yielded) in per_worker.into_iter().enumerate() {
        let Ok((rs, processed, cache_stats)) = yielded else {
            continue; // dead worker: its unreported slots stay None
        };
        stats.queries_per_worker[w] = processed;
        stats.cache_lookups += cache_stats.cache_lookups;
        stats.cache_hits += cache_stats.cache_hits;
        stats.cache_misses += cache_stats.cache_misses;
        for (i, r) in rs {
            results[i] = Some(r);
        }
    }
    (results, stats)
}

/// Steal the back half of the first non-empty victim queue into worker
/// `w`'s own queue, returning one stolen index to run immediately.
/// Returns `None` when every queue is empty (batch drained).
///
/// Locks are taken one at a time (victim released before the thief's
/// own queue is touched), so there is no lock-ordering hazard. Stealing
/// from the *back* keeps the victim's front — the indices it is about
/// to pop — intact, minimizing contention on the hot end.
fn steal_into(queues: &[Mutex<VecDeque<usize>>], w: usize, steals: &AtomicU64) -> Option<usize> {
    let n = queues.len();
    for off in 1..n {
        let v = (w + off) % n;
        let mut victim = lock(&queues[v]);
        let len = victim.len();
        if len == 0 {
            continue;
        }
        let take = len.div_ceil(2);
        let mut grabbed: Vec<usize> = Vec::with_capacity(take);
        while grabbed.len() < take {
            match victim.pop_back() {
                Some(i) => grabbed.push(i),
                None => break,
            }
        }
        drop(victim);
        steals.fetch_add(1, AtomicOrdering::Relaxed);
        // Popped back-to-front, so reverse to run in input order.
        grabbed.reverse();
        let mut it = grabbed.into_iter();
        let first = it.next();
        let mut own = lock(&queues[w]);
        own.extend(it);
        return first;
    }
    None
}

/// The travel-function cache matching a config's `use_travel_cache`.
fn cache_for(config: &EngineConfig) -> std::sync::Arc<TravelFnCache> {
    std::sync::Arc::new(if config.use_travel_cache {
        TravelFnCache::new()
    } else {
        TravelFnCache::disabled()
    })
}

/// Build the configured estimator for a network (boundary variants
/// need the in-memory graph for precomputation). The result can be
/// handed to [`Engine::with_estimator`] over any [`NetworkSource`]
/// that exposes the same node ids (e.g. a CCAM store of this network).
pub fn build_estimator(
    net: &roadnet::RoadNetwork,
    config: &EngineConfig,
) -> Result<Box<dyn LowerBoundEstimator>> {
    let naive = NaiveLb::new(net.max_speed());
    Ok(match config.estimator {
        EstimatorKind::Naive => Box::new(naive),
        EstimatorKind::Boundary { grid } => {
            let bd = BoundaryLb::build(net, grid, WeightMode::Distance)?;
            Box::new(crate::estimator::MaxEstimator::new(naive, bd, "bdLB"))
        }
        EstimatorKind::BoundaryTime { grid } => {
            let bd = BoundaryLb::build(net, grid, WeightMode::BestTime)?;
            Box::new(crate::estimator::MaxEstimator::new(naive, bd, "bdLB-time"))
        }
        EstimatorKind::BoundaryPartitioned { groups } => {
            let bd = BoundaryLb::build_partitioned_auto(net, groups, WeightMode::Distance)?;
            Box::new(crate::estimator::MaxEstimator::new(naive, bd, "bdLB-part"))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwl::time::{hm, hms};
    use roadnet::examples::paper_running_example;
    use traffic::DayCategory;

    fn paper_query() -> QuerySpec {
        let (_, ids) = paper_running_example();
        QuerySpec::new(
            ids.s,
            ids.e,
            Interval::of(hm(6, 50), hm(7, 5)),
            DayCategory::WORKDAY,
        )
    }

    #[test]
    fn single_fp_matches_section_4_5() {
        let (net, ids) = paper_running_example();
        let engine = Engine::new(&net, EngineConfig::default());
        let ans = engine.single_fastest_path(&paper_query()).unwrap();
        // "s ⇒ n → e is the result for singleFP. At 7:00 it has the
        // least travel time (5 min)" — optimal leaving [7:00, 7:03].
        assert_eq!(ans.path.nodes, vec![ids.s, ids.n, ids.e]);
        assert!((ans.travel_minutes - 5.0).abs() < 1e-9);
        assert!(pwl::approx_eq(ans.best_leaving.lo(), hm(7, 0)));
        assert!(pwl::approx_eq(ans.best_leaving.hi(), hm(7, 3)));
    }

    #[test]
    fn all_fp_matches_section_4_6() {
        let (net, ids) = paper_running_example();
        let engine = Engine::new(&net, EngineConfig::default());
        let ans = engine.all_fastest_paths(&paper_query()).unwrap();
        // Paper §4.6:
        //   s → e        on [6:50, 6:58:30)
        //   s → n → e    on [6:58:30, 7:03:26)
        //   s → e        on [7:03:26, 7:05]
        assert_eq!(ans.partition.len(), 3, "{}", ans.describe());
        let p0 = &ans.paths[ans.partition[0].1];
        let p1 = &ans.paths[ans.partition[1].1];
        let p2 = &ans.paths[ans.partition[2].1];
        assert_eq!(p0.nodes, vec![ids.s, ids.e]);
        assert_eq!(p1.nodes, vec![ids.s, ids.n, ids.e]);
        assert_eq!(p2.nodes, vec![ids.s, ids.e]);
        assert!(pwl::approx_eq(ans.partition[0].0.hi(), hms(6, 58, 30)));
        assert!(pwl::approx_eq(
            ans.partition[1].0.hi(),
            hm(7, 6) - 18.0 / 7.0
        ));
        assert!(pwl::approx_eq(ans.partition[2].0.hi(), hm(7, 5)));
        // border covers I exactly
        assert!(ans.lower_border.domain().approx_eq(&paper_query().interval));
        // travel at 7:01 is the 5-minute via-n window
        assert!((ans.travel_at(hm(7, 1)).unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn unreachable_target_errors() {
        let (net, ids) = paper_running_example();
        let engine = Engine::new(&net, EngineConfig::default());
        let q = QuerySpec::new(
            ids.e,
            ids.s,
            Interval::of(hm(6, 50), hm(7, 5)),
            DayCategory::WORKDAY,
        );
        assert!(matches!(
            engine.all_fastest_paths(&q),
            Err(AllFpError::Unreachable { .. })
        ));
        assert!(matches!(
            engine.single_fastest_path(&q),
            Err(AllFpError::Unreachable { .. })
        ));
    }

    #[test]
    fn degenerate_interval_degrades_to_astar() {
        let (net, ids) = paper_running_example();
        let engine = Engine::new(&net, EngineConfig::default());
        let q = QuerySpec::new(
            ids.s,
            ids.e,
            Interval::of(hm(7, 0), hm(7, 0)),
            DayCategory::WORKDAY,
        );
        let single = engine.single_fastest_path(&q).unwrap();
        assert_eq!(single.path.nodes, vec![ids.s, ids.n, ids.e]);
        assert!((single.travel_minutes - 5.0).abs() < 1e-9);
        let all = engine.all_fastest_paths(&q).unwrap();
        assert_eq!(all.partition.len(), 1);
    }

    #[test]
    fn nonworkday_has_single_constant_answer() {
        let (net, ids) = paper_running_example();
        let engine = Engine::new(&net, EngineConfig::default());
        let q = QuerySpec::new(
            ids.s,
            ids.e,
            Interval::of(hm(6, 50), hm(7, 5)),
            DayCategory::NON_WORKDAY,
        );
        // On a non-workday every edge moves at 1 mpm: via-n = 5 miles =
        // 5 minutes beats the 6-mile direct road everywhere.
        let ans = engine.all_fastest_paths(&q).unwrap();
        assert_eq!(ans.partition.len(), 1);
        assert_eq!(
            ans.paths[ans.partition[0].1].nodes,
            vec![ids.s, ids.n, ids.e]
        );
        assert!((ans.travel_at(hm(7, 0)).unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn pruning_preserves_answers() {
        let (net, _) = paper_running_example();
        let plain = Engine::new(
            &net,
            EngineConfig {
                prune_dominated: false,
                ..EngineConfig::default()
            },
        );
        let pruned = Engine::new(
            &net,
            EngineConfig {
                prune_dominated: true,
                ..EngineConfig::default()
            },
        );
        let q = paper_query();
        let a = plain.all_fastest_paths(&q).unwrap();
        let b = pruned.all_fastest_paths(&q).unwrap();
        assert_eq!(a.partition.len(), b.partition.len());
        for (x, y) in a.partition.iter().zip(b.partition.iter()) {
            assert!(x.0.approx_eq(&y.0));
            assert_eq!(a.paths[x.1].nodes, b.paths[y.1].nodes);
        }
    }

    #[test]
    fn budget_exhaustion_reports() {
        let (net, _) = paper_running_example();
        let engine = Engine::new(
            &net,
            EngineConfig {
                max_expansions: 0,
                ..EngineConfig::default()
            },
        );
        assert!(matches!(
            engine.all_fastest_paths(&paper_query()),
            Err(AllFpError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn estimator_names_reported() {
        let (net, _) = paper_running_example();
        let engine = Engine::new(&net, EngineConfig::default());
        assert_eq!(engine.estimator_name(), "naiveLB");
        let bd = Engine::for_network(
            &net,
            EngineConfig {
                estimator: EstimatorKind::Boundary { grid: 2 },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(bd.estimator_name(), "bdLB");
        let bdt = Engine::for_network(
            &net,
            EngineConfig {
                estimator: EstimatorKind::BoundaryTime { grid: 2 },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(bdt.estimator_name(), "bdLB-time");
    }

    #[test]
    fn error_displays_are_informative() {
        let e = AllFpError::Unreachable {
            source: NodeId(1),
            target: NodeId(2),
        };
        assert!(e.to_string().contains("no path"));
        let e = AllFpError::BudgetExhausted { expansions: 42 };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn stats_are_populated() {
        let (net, _) = paper_running_example();
        let engine = Engine::new(&net, EngineConfig::default());
        let ans = engine.all_fastest_paths(&paper_query()).unwrap();
        assert!(ans.stats.expanded_paths >= 2);
        assert!(ans.stats.expanded_nodes >= 2);
        assert!(ans.stats.pushed >= 3);
        assert_eq!(ans.stats.border_merges, 2);
    }

    #[test]
    fn cache_counters_are_consistent() {
        let (net, _) = paper_running_example();
        let engine = Engine::new(&net, EngineConfig::default());
        let q = paper_query();
        let a = engine.all_fastest_paths(&q).unwrap();
        assert!(a.stats.cache_lookups > 0);
        assert_eq!(
            a.stats.cache_hits + a.stats.cache_misses,
            a.stats.cache_lookups
        );
        // A second identical query is served entirely from the cache.
        let b = engine.all_fastest_paths(&q).unwrap();
        assert_eq!(b.stats.cache_misses, 0);
        assert_eq!(b.stats.cache_hits, b.stats.cache_lookups);
        // Engine-wide counters add up across the two queries.
        let c = engine.cache_counters();
        assert_eq!(
            (c.hits + c.misses) as usize,
            a.stats.cache_lookups + b.stats.cache_lookups
        );
    }

    #[test]
    fn disabled_cache_counts_every_lookup_as_miss() {
        let (net, _) = paper_running_example();
        let engine = Engine::new(
            &net,
            EngineConfig {
                use_travel_cache: false,
                ..EngineConfig::default()
            },
        );
        let q = paper_query();
        for _ in 0..2 {
            let a = engine.all_fastest_paths(&q).unwrap();
            assert_eq!(a.stats.cache_hits, 0);
            assert_eq!(a.stats.cache_misses, a.stats.cache_lookups);
        }
    }

    #[test]
    fn cache_toggle_preserves_answers() {
        let (net, _) = paper_running_example();
        let cached = Engine::new(&net, EngineConfig::default());
        let plain = Engine::new(
            &net,
            EngineConfig {
                use_travel_cache: false,
                ..EngineConfig::default()
            },
        );
        let q = paper_query();
        let a = cached.all_fastest_paths(&q).unwrap();
        let b = plain.all_fastest_paths(&q).unwrap();
        assert_eq!(a.partition.len(), b.partition.len());
        for (x, y) in a.partition.iter().zip(b.partition.iter()) {
            assert!(x.0.approx_eq(&y.0));
            assert_eq!(a.paths[x.1].nodes, b.paths[y.1].nodes);
        }
    }

    #[test]
    fn run_batch_matches_serial() {
        let (net, ids) = paper_running_example();
        let engine = Engine::new(&net, EngineConfig::default());
        let mut queries = Vec::new();
        for k in 0..9u32 {
            queries.push(QuerySpec::new(
                ids.s,
                ids.e,
                Interval::of(hm(6, 40 + k), hm(7, 1 + k)),
                DayCategory::WORKDAY,
            ));
        }
        // one unreachable query mixed in: it must fail alone
        queries.push(QuerySpec::new(
            ids.e,
            ids.s,
            Interval::of(hm(6, 50), hm(7, 5)),
            DayCategory::WORKDAY,
        ));
        let batch = engine.run_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (q, got) in queries.iter().zip(batch.iter()) {
            match engine.all_fastest_paths(q) {
                Ok(want) => {
                    let got = got.as_ref().expect("batch result matches serial");
                    assert_eq!(got.partition.len(), want.partition.len());
                    for (x, y) in got.partition.iter().zip(want.partition.iter()) {
                        assert!(x.0.approx_eq(&y.0));
                        assert_eq!(got.paths[x.1].nodes, want.paths[y.1].nodes);
                    }
                }
                Err(_) => assert!(got.is_err()),
            }
        }
    }

    #[test]
    fn run_batch_with_threads_covers_every_query_at_any_width() {
        let (net, ids) = paper_running_example();
        let engine = Engine::new(&net, EngineConfig::default());
        let queries: Vec<QuerySpec> = (0..7u32)
            .map(|k| {
                QuerySpec::new(
                    ids.s,
                    ids.e,
                    Interval::of(hm(6, 40 + k), hm(7, 1 + k)),
                    DayCategory::WORKDAY,
                )
            })
            .collect();
        let (serial, serial_stats) = engine.run_batch_with_threads(&queries, 1);
        assert_eq!(serial_stats.workers, 1);
        assert_eq!(serial_stats.total_queries(), queries.len());
        assert_eq!(serial_stats.steals, 0);
        // every thread width (including more workers than queries) must
        // produce the serial answers in input order
        for workers in [2usize, 3, 4, 16] {
            let (got, stats) = engine.run_batch_with_threads(&queries, workers);
            assert_eq!(stats.workers, workers.min(queries.len()));
            assert_eq!(stats.total_queries(), queries.len());
            assert_eq!(stats.queries_per_worker.len(), stats.workers);
            assert_eq!(got.len(), serial.len());
            for (g, s) in got.iter().zip(serial.iter()) {
                let (g, s) = (g.as_ref().unwrap(), s.as_ref().unwrap());
                assert_eq!(g.partition.len(), s.partition.len());
                for (x, y) in g.partition.iter().zip(s.partition.iter()) {
                    assert!(x.0.approx_eq(&y.0));
                    assert_eq!(g.paths[x.1].nodes, s.paths[y.1].nodes);
                }
            }
            // per-query stats survive the roll-up: lookups were tallied
            // and split exactly into hits and misses
            assert_eq!(stats.cache_lookups, stats.cache_hits + stats.cache_misses);
            assert!(stats.cache_lookups > 0);
            let rate = stats.cache_hit_rate();
            assert!((0.0..=1.0).contains(&rate));
        }
    }

    #[test]
    fn run_batch_empty_and_error_handling() {
        let (net, ids) = paper_running_example();
        let engine = Engine::new(&net, EngineConfig::default());
        let (results, stats) = engine.run_batch_with_threads(&[], 4);
        assert!(results.is_empty());
        assert_eq!(stats, BatchStats::default());
        // a batch of only unreachable queries still returns one error
        // per query and exact per-worker accounting
        let bad: Vec<QuerySpec> = (0..4)
            .map(|k| {
                QuerySpec::new(
                    ids.e,
                    ids.s,
                    Interval::of(hm(6, 40 + k), hm(7, 0)),
                    DayCategory::WORKDAY,
                )
            })
            .collect();
        let (results, stats) = engine.run_batch_with_threads(&bad, 2);
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|r| r.is_err()));
        assert_eq!(stats.total_queries(), 4);
        // errors carry no stats, so the cache roll-up stays empty
        assert_eq!(stats.cache_lookups, 0);
        assert_eq!(stats.cache_hit_rate(), 0.0);
    }

    #[test]
    fn steal_takes_back_half_and_preserves_order() {
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..3)
            .map(|w| {
                Mutex::new(if w == 1 {
                    (10..15).collect() // victim: 10 11 12 13 14
                } else {
                    VecDeque::new()
                })
            })
            .collect();
        let steals = AtomicU64::new(0);
        // worker 0 steals ceil(5/2)=3 from the back: 12 13 14
        let first = steal_into(&queues, 0, &steals);
        assert_eq!(first, Some(12));
        let own: Vec<usize> = queues[0].lock().unwrap().iter().copied().collect();
        assert_eq!(own, vec![13, 14], "remainder queued in input order");
        let victim: Vec<usize> = queues[1].lock().unwrap().iter().copied().collect();
        assert_eq!(victim, vec![10, 11], "victim keeps its front");
        assert_eq!(steals.load(AtomicOrdering::Relaxed), 1);
        // worker 2 scans victims in ring order starting after itself,
        // so it hits worker 0 first and takes ceil(2/2)=1 off the back
        assert_eq!(steal_into(&queues, 2, &steals), Some(14));
        // worker 0's queue still counts as its own, never as its victim
        queues[0].lock().unwrap().clear();
        queues[1].lock().unwrap().clear();
        assert_eq!(steal_into(&queues, 0, &steals), None);
        assert_eq!(steals.load(AtomicOrdering::Relaxed), 2);
    }

    #[test]
    fn work_stealing_rebalances_a_skewed_batch() {
        // Even 3-query chunks per worker; a steal happens whenever one
        // worker drains its chunk while another still holds work, which
        // needs real interleaving — so the assertion is gated on the
        // host actually having more than one core.
        let (net, ids) = paper_running_example();
        let engine = Engine::new(&net, EngineConfig::default());
        let queries: Vec<QuerySpec> = (0..12u32)
            .map(|k| {
                QuerySpec::new(
                    ids.s,
                    ids.e,
                    Interval::of(hm(6, 40 + k % 8), hm(7, 1 + k % 8)),
                    DayCategory::WORKDAY,
                )
            })
            .collect();
        let mut saw_steal = false;
        for _ in 0..20 {
            let (_, stats) = engine.run_batch_with_threads(&queries, 4);
            assert_eq!(stats.total_queries(), queries.len());
            if stats.steals > 0 {
                saw_steal = true;
                break;
            }
        }
        // On a single-core host the first worker may legitimately drain
        // everything before the others get scheduled, so only assert
        // when the host can actually interleave workers.
        if std::thread::available_parallelism().map_or(1, |n| n.get()) > 1 {
            assert!(saw_steal, "4 workers never stole from a 12-query batch");
        }
    }

    #[test]
    fn exhausted_query_budget_degrades_with_valid_fallback() {
        use crate::query::{QueryBudget, QueryOutcome};
        let (net, ids) = paper_running_example();
        let engine = Engine::new(&net, EngineConfig::default());
        // Zero expansions: nothing can reach the target, so best is
        // None and only the constant-speed fallback is available.
        let q = paper_query().with_budget(QueryBudget::default().with_max_expansions(0));
        let out = engine.run_robust(&q).unwrap();
        let QueryOutcome::Degraded(d) = out else {
            panic!("expected degraded outcome");
        };
        assert_eq!(d.reason, crate::DegradedReason::ExpansionsExhausted);
        assert!(d.best.is_none());
        assert_eq!(d.fallback.nodes.first(), Some(&ids.s));
        assert_eq!(d.fallback.nodes.last(), Some(&ids.e));
        // the fallback's travel function is exact: driving the route
        // under the real patterns must match it
        for l in [hm(6, 50), hm(6, 57), hm(7, 2)] {
            let driven =
                crate::baseline::evaluate_path(&net, &d.fallback.nodes, l, q.category).unwrap();
            assert!(
                (d.fallback.travel.eval_clamped(l) - driven).abs() < 1e-9,
                "fallback travel fn disagrees with driving at {l}"
            );
        }
        assert!(d.fallback_travel_minutes > 0.0);
        // the legacy API maps the same budget onto the legacy error
        assert!(matches!(
            engine.all_fastest_paths(&q),
            Err(AllFpError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn partial_budget_keeps_best_so_far() {
        use crate::query::{QueryBudget, QueryOutcome};
        // The 3-node paper example merges its target paths only after
        // the last expansion, so a partial border needs a network where
        // expansions continue past the first merge: a grid.
        let net = roadnet::generators::grid(5, 5, 0.3, traffic::RoadClass::LocalOutside).unwrap();
        let engine = Engine::new(&net, EngineConfig::default());
        let base = QuerySpec::new(
            NodeId(0),
            NodeId(24),
            Interval::of(hm(6, 50), hm(7, 5)),
            DayCategory::WORKDAY,
        );
        let exact = engine.all_fastest_paths(&base).unwrap();
        let full = exact.stats.expanded_paths;
        assert!(full > 2);
        // Scan caps downward: the first just-under-full cap should trip
        // after at least one target path has merged.
        let mut saw_partial = false;
        for cap in (1..full).rev() {
            let q = base
                .clone()
                .with_budget(QueryBudget::default().with_max_expansions(cap));
            let QueryOutcome::Degraded(d) = engine.run_robust(&q).unwrap() else {
                continue;
            };
            assert_eq!(d.reason, crate::DegradedReason::ExpansionsExhausted);
            assert!(d.stats.expanded_paths <= cap);
            let Some(best) = d.best else { continue };
            saw_partial = true;
            // every best-so-far path is drivable and its travel
            // function exact
            for fp in &best.paths {
                let l = fp.travel.domain().lo();
                let driven =
                    crate::baseline::evaluate_path(&net, &fp.nodes, l, q.category).unwrap();
                assert!((fp.travel.eval_clamped(l) - driven).abs() < 1e-9);
            }
            break;
        }
        assert!(saw_partial, "no cap produced a partial best-so-far");
    }

    #[test]
    fn zero_deadline_degrades_immediately() {
        use crate::query::{QueryBudget, QueryOutcome};
        let (net, _) = paper_running_example();
        let engine = Engine::new(&net, EngineConfig::default());
        let q = paper_query()
            .with_budget(QueryBudget::default().with_deadline(std::time::Duration::ZERO));
        let out = engine.run_robust(&q).unwrap();
        let QueryOutcome::Degraded(d) = out else {
            panic!("expected degraded outcome");
        };
        assert_eq!(d.reason, crate::DegradedReason::DeadlineExpired);
        assert!(!d.fallback.nodes.is_empty());
    }

    #[test]
    fn unbudgeted_robust_outcome_is_exact() {
        let (net, _) = paper_running_example();
        let engine = Engine::new(&net, EngineConfig::default());
        let want = engine.all_fastest_paths(&paper_query()).unwrap();
        let out = engine.run_robust(&paper_query()).unwrap();
        let got = out.exact().expect("no budget → exact");
        assert_eq!(got.partition.len(), want.partition.len());
        for (x, y) in got.partition.iter().zip(want.partition.iter()) {
            assert!(x.0.approx_eq(&y.0));
            assert_eq!(got.paths[x.1].nodes, want.paths[y.1].nodes);
        }
    }

    #[test]
    fn cancelled_token_cancels_every_slot() {
        use crate::query::CancelToken;
        let (net, _) = paper_running_example();
        let engine = Engine::new(&net, EngineConfig::default());
        let queries: Vec<QuerySpec> = (0..6).map(|_| paper_query()).collect();
        let cancel = CancelToken::new();
        cancel.cancel();
        let (results, stats) = engine.run_batch_robust(&queries, 3, &cancel);
        assert_eq!(results.len(), queries.len());
        assert_eq!(stats.total_queries(), queries.len());
        for r in results {
            assert!(matches!(r, Err(crate::EngineError::Cancelled)));
        }
    }

    #[test]
    fn robust_batch_matches_exact_serial() {
        let (net, ids) = paper_running_example();
        let engine = Engine::new(&net, EngineConfig::default());
        let queries: Vec<QuerySpec> = (0..8u32)
            .map(|k| {
                QuerySpec::new(
                    ids.s,
                    ids.e,
                    Interval::of(hm(6, 40 + k), hm(7, 1 + k)),
                    DayCategory::WORKDAY,
                )
            })
            .collect();
        let cancel = crate::CancelToken::new();
        let (results, stats) = engine.run_batch_robust(&queries, 4, &cancel);
        assert_eq!(stats.total_queries(), queries.len());
        for (q, r) in queries.iter().zip(results.iter()) {
            let want = engine.all_fastest_paths(q).unwrap();
            let got = r.as_ref().unwrap().exact().expect("unbudgeted → exact");
            assert_eq!(got.partition.len(), want.partition.len());
            for (x, y) in got.partition.iter().zip(want.partition.iter()) {
                assert!(x.0.approx_eq(&y.0));
                assert_eq!(got.paths[x.1].nodes, want.paths[y.1].nodes);
            }
        }
    }

    #[test]
    fn arena_materializes_deep_paths() {
        // A 5-node chain exercises materialization and the
        // parent-chain cycle check beyond depth 2.
        let schema = traffic::PatternSchema::table1().unwrap();
        let mut net = roadnet::RoadNetwork::with_schema(&schema);
        let mut ids = Vec::new();
        for i in 0..5 {
            ids.push(net.add_node(f64::from(i), 0.0).unwrap());
        }
        for w in ids.windows(2) {
            net.add_bidirectional(w[0], w[1], 1.0, traffic::RoadClass::LocalOutside)
                .unwrap();
        }
        let engine = Engine::new(&net, EngineConfig::default());
        let q = QuerySpec::new(
            ids[0],
            ids[4],
            Interval::of(hm(6, 50), hm(7, 5)),
            DayCategory::WORKDAY,
        );
        let ans = engine.all_fastest_paths(&q).unwrap();
        assert_eq!(ans.paths[ans.partition[0].1].nodes, ids);
        let single = engine.single_fastest_path(&q).unwrap();
        assert_eq!(single.path.nodes, ids);
    }
}
