//! The `IntAllFastestPaths` engine (§4).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use pwl::{compose_travel, Envelope, Interval, Pwl};
use roadnet::{NetworkSource, NodeId, Point};
use traffic::travel::travel_time_fn;

use crate::baseline::astar_at;
use crate::estimator::{EstimatorKind, LowerBoundEstimator, NaiveLb};
use crate::query::{AllFpAnswer, FastestPath, QuerySpec, QueryStats, SingleFpAnswer};
use crate::{AllFpError, BoundaryLb, Result, WeightMode};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Which lower-bound estimator to use. Boundary variants are
    /// combined with the naive bound (`max` of both), so they are
    /// never looser.
    pub estimator: EstimatorKind,
    /// Per-node dominance pruning: drop a candidate path whose travel
    /// function is pointwise ≥ that of an already-known path to the
    /// same node (any common suffix then preserves the order, by
    /// FIFO). **On by default** — without it, synthetic grid-like
    /// networks with many near-equal parallel routes make the paper's
    /// basic path-expansion scheme enumerate exponentially many
    /// near-optimal paths before the lower-border rule can terminate.
    /// Set to `false` for the paper-faithful basic algorithm (fine on
    /// small networks; measured by ablation A-2). Answers are
    /// identical either way.
    pub prune_dominated: bool,
    /// Safety valve: abort after this many path expansions.
    pub max_expansions: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            estimator: EstimatorKind::Naive,
            prune_dominated: true,
            max_expansions: 2_000_000,
        }
    }
}

/// A path under consideration: its node sequence and exact travel-time
/// function `T(l)` over the query interval. The prioritized minimum of
/// `T + T_est` lives on the queue entry.
struct PathState {
    nodes: Vec<NodeId>,
    travel: Pwl,
}

/// Max-heap adapter (min by `f_min`, FIFO on ties for determinism).
struct QueueEntry {
    f_min: f64,
    seq: u64,
    path: usize,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.f_min == other.f_min && self.seq == other.seq
    }
}
impl Eq for QueueEntry {}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .f_min
            .partial_cmp(&self.f_min)
            .expect("no NaN priorities")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The query engine: owns a reference to the network source and an
/// estimator, and answers allFP / singleFP queries.
pub struct Engine<'a, S: NetworkSource> {
    source: &'a S,
    estimator: Box<dyn LowerBoundEstimator + 'a>,
    config: EngineConfig,
}

impl<'a, S: NetworkSource> Engine<'a, S> {
    /// Build an engine with the configured estimator.
    ///
    /// Boundary estimators need precomputation over the full in-memory
    /// network; use [`Engine::with_estimator`] to run them against a
    /// disk-resident [`NetworkSource`] after building them from the
    /// in-memory copy.
    pub fn new(source: &'a S, config: EngineConfig) -> Self {
        let naive = NaiveLb::new(source.max_speed());
        Engine { source, estimator: Box::new(naive), config }
    }

    /// Build an engine over any source with an explicit estimator
    /// (e.g. a [`BoundaryLb`] precomputed from the in-memory network,
    /// used against the CCAM store).
    pub fn with_estimator(
        source: &'a S,
        estimator: Box<dyn LowerBoundEstimator + 'a>,
        config: EngineConfig,
    ) -> Self {
        Engine { source, estimator, config }
    }

    /// Name of the active estimator.
    pub fn estimator_name(&self) -> &'static str {
        self.estimator.name()
    }

    /// Answer the **allFP query**: the full partitioning of the query
    /// interval into sub-intervals with their fastest paths.
    pub fn all_fastest_paths(&self, query: &QuerySpec) -> Result<AllFpAnswer> {
        self.run(query, false).map(|(all, _)| all)
    }

    /// Answer the **singleFP query**: the best leaving instant(s) in
    /// the interval and the corresponding fastest path. Terminates as
    /// soon as the first path reaching the target is popped (§4.5) —
    /// no lower-border computation beyond that point.
    pub fn single_fastest_path(&self, query: &QuerySpec) -> Result<SingleFpAnswer> {
        self.run(query, true).map(|(_, single)| single.expect("single answer on success"))
    }

    /// Shared search. When `single_only`, stops at the first popped
    /// target path. Otherwise runs to the paper's termination rule and
    /// assembles the partitioning.
    fn run(&self, query: &QuerySpec, single_only: bool) -> Result<(AllFpAnswer, Option<SingleFpAnswer>)> {
        let interval = query.interval;
        let target_loc = self.source.find_node(query.target)?;

        // Degenerate interval → the classic special case.
        if interval.is_degenerate() {
            return self.degenerate_instant(query, target_loc);
        }

        let mut stats = QueryStats::default();
        let mut paths: Vec<PathState> = Vec::new();
        let mut heap: BinaryHeap<QueueEntry> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut expanded_nodes: Vec<bool> = vec![false; self.source.n_nodes()];
        let mut expanded_node_count = 0usize;
        // per-node travel functions for optional dominance pruning
        let mut node_fns: Vec<Vec<usize>> = if self.config.prune_dominated {
            vec![Vec::new(); self.source.n_nodes()]
        } else {
            Vec::new()
        };

        // Lower border over identified target paths.
        let mut border: Option<Envelope<usize>> = None;
        let mut single: Option<SingleFpAnswer> = None;

        // Seed: the zero-length path at the source.
        {
            let travel = Pwl::constant(interval, 0.0)?;
            let s_loc = self.source.find_node(query.source)?;
            let est = self.estimator.travel_lower_bound(
                query.source,
                s_loc,
                query.target,
                target_loc,
            );
            let f_min = travel.add_scalar(est).minimum().value;
            paths.push(PathState { nodes: vec![query.source], travel });
            heap.push(QueueEntry { f_min, seq, path: 0 });
            seq += 1;
            stats.pushed += 1;
        }

        while let Some(entry) = heap.pop() {
            // Termination (§4.6): the next candidate can no longer beat
            // the border anywhere.
            if let Some(b) = &border {
                if pwl::approx_le(b.max_value(), entry.f_min) {
                    break;
                }
            }

            if stats.expanded_paths >= self.config.max_expansions {
                return Err(AllFpError::BudgetExhausted { expansions: stats.expanded_paths });
            }

            let head = *paths[entry.path].nodes.last().expect("paths are non-empty");

            if head == query.target {
                // Identified a target path.
                let travel = paths[entry.path].travel.clone();
                if single.is_none() {
                    let m = travel.minimum();
                    single = Some(SingleFpAnswer {
                        path: FastestPath {
                            nodes: paths[entry.path].nodes.clone(),
                            travel: travel.clone(),
                        },
                        travel_minutes: m.value,
                        best_leaving: m.at,
                        stats, // snapshot; finalized below
                    });
                    if single_only {
                        break;
                    }
                }
                stats.border_merges += 1;
                match &mut border {
                    None => border = Some(Envelope::new(travel, entry.path)),
                    Some(b) => b.merge_min(&travel, entry.path)?,
                }
                continue;
            }

            // Expand.
            stats.expanded_paths += 1;
            if !expanded_nodes[head.index()] {
                expanded_nodes[head.index()] = true;
                expanded_node_count += 1;
            }

            // The leaving-time interval at `head` (the paper's Figure 4
            // step) is a property of the path, not the edge.
            let arrivals = pwl::compose::arrival_interval(&paths[entry.path].travel)?;
            for edge in self.source.successors(head)? {
                // Cycles can never help under FIFO (positive travel times).
                if paths[entry.path].nodes.contains(&edge.to) {
                    continue;
                }
                let profile = self.source.pattern(edge.pattern)?.profile(query.category)?;
                let t_edge = travel_time_fn(profile, edge.distance, &arrivals)?;
                let travel = compose_travel(&paths[entry.path].travel, &t_edge)?.simplify();

                let v_loc = self.source.find_node(edge.to)?;
                let est =
                    self.estimator.travel_lower_bound(edge.to, v_loc, query.target, target_loc);
                let f_min = travel.minimum().value + est;

                // Border bound: a path whose best possible outcome cannot
                // beat the border anywhere is dead.
                if let Some(b) = &border {
                    if pwl::approx_le(b.max_value(), f_min) {
                        stats.pruned_by_border += 1;
                        continue;
                    }
                }

                // Optional per-node dominance pruning (extension).
                if self.config.prune_dominated {
                    let dominated = node_fns[edge.to.index()]
                        .iter()
                        .any(|&p| travel.dominated_by(&paths[p].travel));
                    if dominated {
                        stats.pruned_dominated += 1;
                        continue;
                    }
                }

                let mut nodes = paths[entry.path].nodes.clone();
                nodes.push(edge.to);
                let idx = paths.len();
                paths.push(PathState { nodes, travel });
                if self.config.prune_dominated {
                    node_fns[edge.to.index()].push(idx);
                }
                heap.push(QueueEntry { f_min, seq, path: idx });
                seq += 1;
                stats.pushed += 1;
            }
        }

        stats.expanded_nodes = expanded_node_count;

        if single_only {
            let mut s = single.ok_or(AllFpError::Unreachable {
                source: query.source,
                target: query.target,
            })?;
            s.stats = stats;
            // fabricate a minimal answer shell for the shared return type
            let border = Envelope::new(s.path.travel.clone(), 0usize);
            let all = AllFpAnswer {
                paths: vec![s.path.clone()],
                partition: vec![(interval, 0)],
                lower_border: border,
                stats,
            };
            return Ok((all, Some(s)));
        }

        let border = border.ok_or(AllFpError::Unreachable {
            source: query.source,
            target: query.target,
        })?;

        // Read the partitioning off the lower border; compact path ids.
        let raw_partition = border.partition();
        let mut path_index: Vec<usize> = Vec::new(); // engine path id → answer index
        let mut answer_paths: Vec<FastestPath> = Vec::new();
        let mut partition = Vec::with_capacity(raw_partition.len());
        for (iv, engine_id) in raw_partition {
            let idx = match path_index.iter().position(|&p| p == engine_id) {
                Some(i) => i,
                None => {
                    path_index.push(engine_id);
                    answer_paths.push(FastestPath {
                        nodes: paths[engine_id].nodes.clone(),
                        travel: paths[engine_id].travel.clone(),
                    });
                    answer_paths.len() - 1
                }
            };
            partition.push((iv, idx));
        }

        // Rebuild the border with answer indices as tags by re-merging
        // the answer paths in identification order (same tie-break
        // semantics as the search itself).
        let mut final_border: Option<Envelope<usize>> = None;
        for (i, fp) in answer_paths.iter().enumerate() {
            match &mut final_border {
                None => final_border = Some(Envelope::new(fp.travel.clone(), i)),
                Some(b) => b.merge_min(&fp.travel, i)?,
            }
        }
        let lower_border = final_border.expect("at least one answer path");

        if let Some(s) = &mut single {
            s.stats = stats;
        }
        Ok((
            AllFpAnswer { paths: answer_paths, partition, lower_border, stats },
            single,
        ))
    }

    /// A degenerate (single-instant) interval: the classic special
    /// case, delegated to fixed-instant A\*.
    fn degenerate_instant(
        &self,
        query: &QuerySpec,
        _target_loc: Point,
    ) -> Result<(AllFpAnswer, Option<SingleFpAnswer>)> {
        let l = query.interval.lo();
        let ans = astar_at(
            self.source,
            query.source,
            query.target,
            l,
            query.category,
            self.estimator.as_ref(),
        )?;
        let stats = QueryStats {
            expanded_paths: ans.expanded_nodes,
            expanded_nodes: ans.expanded_nodes,
            ..QueryStats::default()
        };
        let shown = Interval::of(l, l + 1e-3);
        let travel = Pwl::constant(shown, ans.travel_minutes)?;
        let fp = FastestPath { nodes: ans.nodes, travel: travel.clone() };
        let single = SingleFpAnswer {
            path: fp.clone(),
            travel_minutes: ans.travel_minutes,
            best_leaving: Interval::of(l, l),
            stats,
        };
        let all = AllFpAnswer {
            paths: vec![fp],
            partition: vec![(query.interval, 0)],
            lower_border: Envelope::new(travel, 0),
            stats,
        };
        Ok((all, Some(single)))
    }
}

impl<'a> Engine<'a, roadnet::RoadNetwork> {
    /// Build an engine from an in-memory network, performing boundary
    /// precomputation if the config asks for it.
    pub fn for_network(net: &'a roadnet::RoadNetwork, config: EngineConfig) -> Result<Self> {
        let estimator = build_estimator(net, &config)?;
        Ok(Engine { source: net, estimator, config })
    }
}

/// Build the configured estimator for a network (boundary variants
/// need the in-memory graph for precomputation). The result can be
/// handed to [`Engine::with_estimator`] over any [`NetworkSource`]
/// that exposes the same node ids (e.g. a CCAM store of this network).
pub fn build_estimator(
    net: &roadnet::RoadNetwork,
    config: &EngineConfig,
) -> Result<Box<dyn LowerBoundEstimator>> {
    let naive = NaiveLb::new(net.max_speed());
    Ok(match config.estimator {
        EstimatorKind::Naive => Box::new(naive),
        EstimatorKind::Boundary { grid } => {
            let bd = BoundaryLb::build(net, grid, WeightMode::Distance)?;
            Box::new(crate::estimator::MaxEstimator::new(naive, bd, "bdLB"))
        }
        EstimatorKind::BoundaryTime { grid } => {
            let bd = BoundaryLb::build(net, grid, WeightMode::BestTime)?;
            Box::new(crate::estimator::MaxEstimator::new(naive, bd, "bdLB-time"))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwl::time::{hm, hms};
    use roadnet::examples::paper_running_example;
    use traffic::DayCategory;

    fn paper_query() -> QuerySpec {
        let (_, ids) = paper_running_example();
        QuerySpec::new(
            ids.s,
            ids.e,
            Interval::of(hm(6, 50), hm(7, 5)),
            DayCategory::WORKDAY,
        )
    }

    #[test]
    fn single_fp_matches_section_4_5() {
        let (net, ids) = paper_running_example();
        let engine = Engine::new(&net, EngineConfig::default());
        let ans = engine.single_fastest_path(&paper_query()).unwrap();
        // "s ⇒ n → e is the result for singleFP. At 7:00 it has the
        // least travel time (5 min)" — optimal leaving [7:00, 7:03].
        assert_eq!(ans.path.nodes, vec![ids.s, ids.n, ids.e]);
        assert!((ans.travel_minutes - 5.0).abs() < 1e-9);
        assert!(pwl::approx_eq(ans.best_leaving.lo(), hm(7, 0)));
        assert!(pwl::approx_eq(ans.best_leaving.hi(), hm(7, 3)));
    }

    #[test]
    fn all_fp_matches_section_4_6() {
        let (net, ids) = paper_running_example();
        let engine = Engine::new(&net, EngineConfig::default());
        let ans = engine.all_fastest_paths(&paper_query()).unwrap();
        // Paper §4.6:
        //   s → e        on [6:50, 6:58:30)
        //   s → n → e    on [6:58:30, 7:03:26)
        //   s → e        on [7:03:26, 7:05]
        assert_eq!(ans.partition.len(), 3, "{}", ans.describe());
        let p0 = &ans.paths[ans.partition[0].1];
        let p1 = &ans.paths[ans.partition[1].1];
        let p2 = &ans.paths[ans.partition[2].1];
        assert_eq!(p0.nodes, vec![ids.s, ids.e]);
        assert_eq!(p1.nodes, vec![ids.s, ids.n, ids.e]);
        assert_eq!(p2.nodes, vec![ids.s, ids.e]);
        assert!(pwl::approx_eq(ans.partition[0].0.hi(), hms(6, 58, 30)));
        assert!(pwl::approx_eq(ans.partition[1].0.hi(), hm(7, 6) - 18.0 / 7.0));
        assert!(pwl::approx_eq(ans.partition[2].0.hi(), hm(7, 5)));
        // border covers I exactly
        assert!(ans.lower_border.domain().approx_eq(&paper_query().interval));
        // travel at 7:01 is the 5-minute via-n window
        assert!((ans.travel_at(hm(7, 1)).unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn unreachable_target_errors() {
        let (net, ids) = paper_running_example();
        let engine = Engine::new(&net, EngineConfig::default());
        let q = QuerySpec::new(
            ids.e,
            ids.s,
            Interval::of(hm(6, 50), hm(7, 5)),
            DayCategory::WORKDAY,
        );
        assert!(matches!(
            engine.all_fastest_paths(&q),
            Err(AllFpError::Unreachable { .. })
        ));
        assert!(matches!(
            engine.single_fastest_path(&q),
            Err(AllFpError::Unreachable { .. })
        ));
    }

    #[test]
    fn degenerate_interval_degrades_to_astar() {
        let (net, ids) = paper_running_example();
        let engine = Engine::new(&net, EngineConfig::default());
        let q = QuerySpec::new(
            ids.s,
            ids.e,
            Interval::of(hm(7, 0), hm(7, 0)),
            DayCategory::WORKDAY,
        );
        let single = engine.single_fastest_path(&q).unwrap();
        assert_eq!(single.path.nodes, vec![ids.s, ids.n, ids.e]);
        assert!((single.travel_minutes - 5.0).abs() < 1e-9);
        let all = engine.all_fastest_paths(&q).unwrap();
        assert_eq!(all.partition.len(), 1);
    }

    #[test]
    fn nonworkday_has_single_constant_answer() {
        let (net, ids) = paper_running_example();
        let engine = Engine::new(&net, EngineConfig::default());
        let q = QuerySpec::new(
            ids.s,
            ids.e,
            Interval::of(hm(6, 50), hm(7, 5)),
            DayCategory::NON_WORKDAY,
        );
        // On a non-workday every edge moves at 1 mpm: via-n = 5 miles =
        // 5 minutes beats the 6-mile direct road everywhere.
        let ans = engine.all_fastest_paths(&q).unwrap();
        assert_eq!(ans.partition.len(), 1);
        assert_eq!(ans.paths[ans.partition[0].1].nodes, vec![ids.s, ids.n, ids.e]);
        assert!((ans.travel_at(hm(7, 0)).unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn pruning_preserves_answers() {
        let (net, _) = paper_running_example();
        let plain = Engine::new(
            &net,
            EngineConfig { prune_dominated: false, ..EngineConfig::default() },
        );
        let pruned = Engine::new(
            &net,
            EngineConfig { prune_dominated: true, ..EngineConfig::default() },
        );
        let q = paper_query();
        let a = plain.all_fastest_paths(&q).unwrap();
        let b = pruned.all_fastest_paths(&q).unwrap();
        assert_eq!(a.partition.len(), b.partition.len());
        for (x, y) in a.partition.iter().zip(b.partition.iter()) {
            assert!(x.0.approx_eq(&y.0));
            assert_eq!(a.paths[x.1].nodes, b.paths[y.1].nodes);
        }
    }

    #[test]
    fn budget_exhaustion_reports() {
        let (net, _) = paper_running_example();
        let engine = Engine::new(
            &net,
            EngineConfig { max_expansions: 0, ..EngineConfig::default() },
        );
        assert!(matches!(
            engine.all_fastest_paths(&paper_query()),
            Err(AllFpError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn estimator_names_reported() {
        let (net, _) = paper_running_example();
        let engine = Engine::new(&net, EngineConfig::default());
        assert_eq!(engine.estimator_name(), "naiveLB");
        let bd = Engine::for_network(
            &net,
            EngineConfig { estimator: EstimatorKind::Boundary { grid: 2 }, ..Default::default() },
        )
        .unwrap();
        assert_eq!(bd.estimator_name(), "bdLB");
        let bdt = Engine::for_network(
            &net,
            EngineConfig {
                estimator: EstimatorKind::BoundaryTime { grid: 2 },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(bdt.estimator_name(), "bdLB-time");
    }

    #[test]
    fn error_displays_are_informative() {
        let e = AllFpError::Unreachable { source: NodeId(1), target: NodeId(2) };
        assert!(e.to_string().contains("no path"));
        let e = AllFpError::BudgetExhausted { expansions: 42 };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn stats_are_populated() {
        let (net, _) = paper_running_example();
        let engine = Engine::new(&net, EngineConfig::default());
        let ans = engine.all_fastest_paths(&paper_query()).unwrap();
        assert!(ans.stats.expanded_paths >= 2);
        assert!(ans.stats.expanded_nodes >= 2);
        assert!(ans.stats.pushed >= 3);
        assert_eq!(ans.stats.border_merges, 2);
    }
}
