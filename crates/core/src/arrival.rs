//! Arrival-interval queries — the "or arrival time interval" half of
//! the paper's problem statement (§1: "a user-defined leaving or
//! arrival time interval I").
//!
//! The paper presents the algorithm for leaving intervals only; this
//! module answers the arrival variant *exactly* by a time-mirroring
//! reduction instead of a second engine:
//!
//! 1. Build `G′` = the network with every edge reversed and every
//!    speed profile reflected around midnight
//!    ([`roadnet::RoadNetwork::reversed_time_mirrored`]). Driving
//!    `v → u` in `G′` starting at `1440 − a` covers distance
//!    `∫ v(1440 − τ) dτ` — by substitution exactly the distance an
//!    original `u → v` trip covers *ending* at `a`. Travel times, FIFO,
//!    and path feasibility all carry over.
//! 2. Run the ordinary leaving-interval engine on `G′` from the
//!    *target* with the mirrored interval `[1440 − a_hi, 1440 − a_lo]`.
//! 3. Mirror the answer back: reverse each path, reflect each
//!    sub-interval and travel-time function (`T_arr(a) = T′(1440 − a)`).
//!
//! The result partitions the arrival interval `A` into sub-intervals,
//! each with the path that minimizes travel time (equivalently:
//! maximizes the departure time) for every arrival instant in it.

use std::sync::Arc;

use pwl::time::MINUTES_PER_DAY;
use pwl::{Envelope, Interval};
use roadnet::{NodeId, RoadNetwork};
use traffic::DayCategory;

use crate::engine::{Engine, EngineConfig};
use crate::query::{FastestPath, QuerySpec, QueryStats};
use crate::Result;

/// An arrival-interval query: be at `target` within `arrival`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalQuerySpec {
    /// The source node `s`.
    pub source: NodeId,
    /// The end node `e`.
    pub target: NodeId,
    /// The arrival-time interval at `e` (minutes since midnight).
    pub arrival: Interval,
    /// The day category.
    pub category: DayCategory,
}

/// Answer to an arrival-interval allFP query.
#[derive(Debug, Clone)]
pub struct ArrivalAllFpAnswer {
    /// The distinct fastest paths, each with its travel-time function
    /// **of the arrival time** `T(a)` (leave at `a − T(a)`).
    pub paths: Vec<FastestPath>,
    /// Partitioning of the arrival interval; indices into `paths`.
    pub partition: Vec<(Interval, usize)>,
    /// The lower border over arrival times.
    pub lower_border: Envelope<usize>,
    /// Search statistics (measured on the mirrored network).
    pub stats: QueryStats,
}

impl ArrivalAllFpAnswer {
    /// Departure time for arriving exactly at `a` on the best path.
    pub fn departure_at(&self, a: f64) -> Option<f64> {
        Some(a - self.lower_border.as_pwl().try_eval(a)?)
    }
}

/// Answer to an arrival-interval singleFP query: the overall fastest
/// way to arrive within the window.
#[derive(Debug, Clone)]
pub struct ArrivalSingleFpAnswer {
    /// The fastest path (travel as a function of arrival time).
    pub path: FastestPath,
    /// Minimal travel time, minutes.
    pub travel_minutes: f64,
    /// The interval of optimal *arrival* instants.
    pub best_arrival: Interval,
    /// The corresponding departure instant for the earliest optimal
    /// arrival.
    pub departure: f64,
    /// Search statistics.
    pub stats: QueryStats,
}

/// A prepared arrival-query planner: owns the mirrored network and
/// its (possibly precomputed) estimator, so repeated queries rebuild
/// neither.
pub struct ArrivalPlanner {
    mirrored: RoadNetwork,
    estimator: Box<dyn crate::LowerBoundEstimator>,
    config: EngineConfig,
}

impl ArrivalPlanner {
    /// Build the mirrored network (and, for boundary configs, its
    /// precomputed tables) once.
    pub fn new(net: &RoadNetwork, config: EngineConfig) -> Result<Self> {
        let mirrored = net.reversed_time_mirrored();
        let estimator = crate::engine::build_estimator(&mirrored, &config)?;
        Ok(ArrivalPlanner {
            mirrored,
            estimator,
            config,
        })
    }

    /// The mirrored network (exposed for tests and diagnostics).
    pub fn mirrored(&self) -> &RoadNetwork {
        &self.mirrored
    }

    fn engine(&self) -> Engine<'_, RoadNetwork> {
        Engine::with_estimator(
            &self.mirrored,
            Box::new(self.estimator.as_ref()),
            self.config.clone(),
        )
    }

    /// Answer an arrival-interval **allFP** query.
    pub fn all_fastest_paths(&self, query: &ArrivalQuerySpec) -> Result<ArrivalAllFpAnswer> {
        let mirrored_query = self.mirror_query(query);
        let engine = self.engine();
        let ans = engine.all_fastest_paths(&mirrored_query)?;

        // Mirror back. Path i keeps its index; intervals reverse order.
        let paths: Vec<FastestPath> = ans
            .paths
            .iter()
            .map(|p| FastestPath {
                nodes: p.nodes.iter().rev().copied().collect(),
                travel: Arc::new(p.travel.reflect_x(MINUTES_PER_DAY)),
            })
            .collect();
        let partition: Vec<(Interval, usize)> = ans
            .partition
            .iter()
            .rev()
            .map(|(iv, idx)| {
                (
                    Interval::of(MINUTES_PER_DAY - iv.hi(), MINUTES_PER_DAY - iv.lo()),
                    *idx,
                )
            })
            .collect();
        // Rebuild the tagged border over arrival time in identification
        // order (same tie-break semantics as the mirrored search).
        let mut border: Option<Envelope<usize>> = None;
        for (i, p) in paths.iter().enumerate() {
            match &mut border {
                None => border = Some(Envelope::new(Arc::clone(&p.travel), i)),
                Some(b) => b.merge_min(&p.travel, i)?,
            }
        }
        let lower_border = border.ok_or(crate::AllFpError::Internal(
            "mirrored allFP answer carried no paths",
        ))?;
        Ok(ArrivalAllFpAnswer {
            paths,
            partition,
            lower_border,
            stats: ans.stats,
        })
    }

    /// Answer an arrival-interval **singleFP** query: the minimum
    /// travel time over all arrival instants in the window.
    pub fn single_fastest_path(&self, query: &ArrivalQuerySpec) -> Result<ArrivalSingleFpAnswer> {
        let mirrored_query = self.mirror_query(query);
        let engine = self.engine();
        let single = engine.single_fastest_path(&mirrored_query)?;
        let travel = Arc::new(single.path.travel.reflect_x(MINUTES_PER_DAY));
        let best_arrival = Interval::of(
            MINUTES_PER_DAY - single.best_leaving.hi(),
            MINUTES_PER_DAY - single.best_leaving.lo(),
        );
        let departure = best_arrival.lo() - single.travel_minutes;
        Ok(ArrivalSingleFpAnswer {
            path: FastestPath {
                nodes: single.path.nodes.iter().rev().copied().collect(),
                travel,
            },
            travel_minutes: single.travel_minutes,
            best_arrival,
            departure,
            stats: single.stats,
        })
    }

    fn mirror_query(&self, query: &ArrivalQuerySpec) -> QuerySpec {
        // mirrored search starts at the *target* and walks reversed
        // edges toward the source
        QuerySpec::new(
            query.target,
            query.source,
            Interval::of(
                MINUTES_PER_DAY - query.arrival.hi(),
                MINUTES_PER_DAY - query.arrival.lo(),
            ),
            query.category,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::evaluate_path;
    use pwl::time::hm;
    use pwl::MonotonePwl;
    use roadnet::examples::paper_running_example;

    #[test]
    fn paper_example_arrival_window() {
        // Arrive at e between 7:00 and 7:08 on a workday.
        let (net, ids) = paper_running_example();
        let planner = ArrivalPlanner::new(&net, EngineConfig::default()).unwrap();
        let q = ArrivalQuerySpec {
            source: ids.s,
            target: ids.e,
            arrival: Interval::of(hm(7, 0), hm(7, 8)),
            category: DayCategory::WORKDAY,
        };
        let ans = planner.all_fastest_paths(&q).unwrap();

        // partition covers the arrival window, contiguously
        assert!(pwl::approx_eq(ans.partition[0].0.lo(), hm(7, 0)));
        assert!(pwl::approx_eq(
            ans.partition.last().unwrap().0.hi(),
            hm(7, 8)
        ));
        for w in ans.partition.windows(2) {
            assert!(pwl::approx_eq(w[0].0.hi(), w[1].0.lo()));
            assert_ne!(w[0].1, w[1].1);
        }

        // every reported (arrival, path) pair is feasible and matches
        // when driven forward from the implied departure
        for (iv, idx) in &ans.partition {
            for a in [iv.lo(), iv.mid(), iv.hi()] {
                let t = ans.paths[*idx].travel.eval_clamped(a);
                let depart = a - t;
                let driven =
                    evaluate_path(&net, &ans.paths[*idx].nodes, depart, q.category).unwrap();
                assert!(
                    pwl::approx_eq(depart + driven, a),
                    "path {idx} at a={a}: depart {depart} + driven {driven} != a"
                );
            }
        }

        // singleFP: the overall fastest arrival should use the 5-minute
        // via-n window (arrivals shortly after 7:05)
        let single = planner.single_fastest_path(&q).unwrap();
        assert_eq!(single.path.nodes, vec![ids.s, ids.n, ids.e]);
        assert!((single.travel_minutes - 5.0).abs() < 1e-9);
        assert!(pwl::approx_eq(
            single.departure + 5.0,
            single.best_arrival.lo()
        ));
    }

    #[test]
    fn arrival_border_is_inverse_of_forward_border() {
        // Forward: a*(l) = l + border_fwd(l) is the optimal-arrival
        // function (strictly increasing). Backward: the arrival
        // answer's departure δ(a) must be its inverse wherever both are
        // defined.
        let (net, ids) = paper_running_example();
        let engine = Engine::new(&net, EngineConfig::default());
        let fwd = engine
            .all_fastest_paths(&QuerySpec::new(
                ids.s,
                ids.e,
                Interval::of(hm(6, 40), hm(7, 10)),
                DayCategory::WORKDAY,
            ))
            .unwrap();
        let a_star = MonotonePwl::arrival_from_travel(fwd.lower_border.as_pwl()).unwrap();

        let planner = ArrivalPlanner::new(&net, EngineConfig::default()).unwrap();
        let arr = planner
            .all_fastest_paths(&ArrivalQuerySpec {
                source: ids.s,
                target: ids.e,
                arrival: Interval::of(hm(7, 0), hm(7, 10)),
                category: DayCategory::WORKDAY,
            })
            .unwrap();

        // probe arrivals that forward-optimal departures can reach
        let reach = a_star.range();
        for k in 0..=20 {
            let a = hm(7, 0) + (hm(7, 10) - hm(7, 0)) * (k as f64) / 20.0;
            if !reach.contains_approx(a) {
                continue;
            }
            let dep_bwd = arr.departure_at(a).unwrap();
            let dep_fwd = a_star.inverse_at(a).unwrap();
            assert!(
                (dep_bwd - dep_fwd).abs() < 1e-6,
                "a={a}: backward departure {dep_bwd} vs forward inverse {dep_fwd}"
            );
        }
    }

    #[test]
    fn mirrored_network_shape() {
        let (net, ids) = paper_running_example();
        let planner = ArrivalPlanner::new(&net, EngineConfig::default()).unwrap();
        let m = planner.mirrored();
        assert_eq!(m.n_nodes(), 3);
        assert_eq!(m.n_edges(), 3);
        // e now has two outgoing (reversed) edges, s has none
        assert_eq!(m.neighbors(ids.e).unwrap().len(), 2);
        assert!(m.neighbors(ids.s).unwrap().is_empty());
    }
}
