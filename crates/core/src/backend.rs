//! The [`PathfindBackend`] abstraction: one query contract, many
//! search strategies.
//!
//! The flat [`Engine`] answers every query with a best-first search
//! over the original network. Preprocessing-based backends (the
//! time-dependent contraction hierarchy in `fp-hierarchy`) answer the
//! same queries over a derived structure, orders of magnitude faster —
//! but everything *around* the search (the admission-controlled
//! [`crate::service::QueryService`], robust batches, deadlines,
//! cancellation, the degraded-fallback machinery) must not care which
//! strategy produced an answer. This trait is that seam.
//!
//! # Contract
//!
//! Implementations must be **answer-equivalent** to the flat engine:
//! for any query, `single_fastest_path` / `all_fastest_paths` /
//! `robust_with_session` return the same answers the flat engine
//! would (bit-for-bit for singleFP — see the golden equivalence suite
//! in `core/tests/hierarchy_equivalence.rs`). Budgets, cancellation
//! and degradation must behave identically in kind: a tripped budget
//! yields [`QueryOutcome::Degraded`] with a usable constant-speed
//! fallback plan, a fired [`CancelToken`] yields
//! [`EngineError::Cancelled`] at the next cooperative poll.
//!
//! Sessions come from the backend's own [`PathfindBackend::
//! cache_session`]; callers that serve many queries on one thread
//! (service workers, batch workers) open one session and keep it warm
//! across all of them, exactly as they did against the flat engine.

use std::panic::{catch_unwind, AssertUnwindSafe};

use roadnet::NetworkSource;

use crate::cache::{CacheCounters, CacheSession};
use crate::engine::{drive_batch, Engine};
use crate::query::{AllFpAnswer, BatchStats, CancelToken, QueryOutcome, QuerySpec, SingleFpAnswer};
use crate::{EngineError, Result};

/// A query-answering strategy interchangeable with the flat
/// [`Engine`]: same queries, same answers, same budget/cancellation
/// semantics. See the module docs for the exact contract.
///
/// The trait is object-safe, so experiment harnesses can hold a
/// `Box<dyn PathfindBackend + '_>` chosen by a CLI flag.
pub trait PathfindBackend {
    /// Short name for reports and benchmark output (`"flat"`,
    /// `"hierarchy"`, …).
    fn backend_name(&self) -> &'static str;

    /// Open a fresh travel-function cache session. Callers that run
    /// many queries back to back on one thread keep one session warm
    /// across all of them.
    fn cache_session(&self) -> CacheSession<'_>;

    /// Lifetime hit/miss counters of the backend's travel-function
    /// cache.
    fn cache_counters(&self) -> CacheCounters;

    /// Answer the allFP query exactly (or error — budget exhaustion
    /// is an error on this legacy surface, as on the flat engine).
    fn all_fastest_paths(&self, query: &QuerySpec) -> Result<AllFpAnswer>;

    /// Answer the singleFP query exactly (or error).
    fn single_fastest_path(&self, query: &QuerySpec) -> Result<SingleFpAnswer>;

    /// One budget-aware query on an existing session: exact if the
    /// search finishes within budget, a degraded answer (best-so-far
    /// plus constant-speed fallback) if a budget trips, an error only
    /// for non-degradable failures. `cancel` is polled cooperatively.
    fn robust_with_session(
        &self,
        query: &QuerySpec,
        session: &mut CacheSession<'_>,
        cancel: Option<&CancelToken>,
    ) -> std::result::Result<QueryOutcome, EngineError>;

    /// [`PathfindBackend::robust_with_session`] on a fresh session.
    fn run_robust(&self, query: &QuerySpec) -> std::result::Result<QueryOutcome, EngineError> {
        let mut session = self.cache_session();
        self.robust_with_session(query, &mut session, None)
    }
}

impl<'a, S: NetworkSource> PathfindBackend for Engine<'a, S> {
    fn backend_name(&self) -> &'static str {
        "flat"
    }

    fn cache_session(&self) -> CacheSession<'_> {
        Engine::cache_session(self)
    }

    fn cache_counters(&self) -> CacheCounters {
        Engine::cache_counters(self)
    }

    fn all_fastest_paths(&self, query: &QuerySpec) -> Result<AllFpAnswer> {
        Engine::all_fastest_paths(self, query)
    }

    fn single_fastest_path(&self, query: &QuerySpec) -> Result<SingleFpAnswer> {
        Engine::single_fastest_path(self, query)
    }

    fn robust_with_session(
        &self,
        query: &QuerySpec,
        session: &mut CacheSession<'_>,
        cancel: Option<&CancelToken>,
    ) -> std::result::Result<QueryOutcome, EngineError> {
        Engine::robust_with_session(self, query, session, cancel)
    }

    fn run_robust(&self, query: &QuerySpec) -> std::result::Result<QueryOutcome, EngineError> {
        Engine::run_robust(self, query)
    }
}

/// Robust batch execution over any backend: the same work-stealing
/// scheduler, panic isolation and cooperative cancellation as
/// [`Engine::run_batch_robust`], generic over the search strategy.
/// Results come back in input order, one slot per query.
pub fn run_batch_robust<B: PathfindBackend + Sync + ?Sized>(
    backend: &B,
    queries: &[QuerySpec],
    workers: usize,
    cancel: &CancelToken,
) -> (
    Vec<std::result::Result<QueryOutcome, EngineError>>,
    BatchStats,
) {
    let (slots, stats) = drive_batch(
        || backend.cache_session(),
        queries,
        workers,
        |q, session| {
            // AssertUnwindSafe: the session (plain maps + tallies)
            // and the shared cache (poison-recovering locks over
            // immutable-once-inserted values) are both valid after
            // an interrupted query.
            catch_unwind(AssertUnwindSafe(|| {
                backend.robust_with_session(q, session, Some(cancel))
            }))
            .unwrap_or_else(|payload| {
                Err(EngineError::Panicked(crate::engine::panic_message(payload)))
            })
        },
        |r| r.as_ref().ok().map(|o| *o.stats()),
    );
    let results = slots
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| {
                Err(EngineError::Panicked(
                    "batch worker died before reporting this query".to_string(),
                ))
            })
        })
        .collect();
    (results, stats)
}
